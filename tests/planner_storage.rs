//! Integration tests for the planner (operator choice, pushdown, index)
//! and the storage substrate (chunk files, layout model) on generated
//! data.

use ongoing_core::allen::TemporalPredicate;
use ongoing_datasets::{synthetic, History, SyntheticConfig};
use ongoing_relation::Expr;
use ongoingdb::engine::plan::{compile, JoinStrategy, PlannerConfig};
use ongoingdb::engine::storage::{chunkfile, layout};
use ongoingdb::engine::{queries, Database, QueryBuilder};

fn db_with_dex(n: usize) -> Database {
    let db = Database::new();
    db.create_table(
        "Dex",
        synthetic::generate(&SyntheticConfig::dex(n, None, 3)),
    )
    .unwrap();
    db
}

#[test]
fn planner_picks_hash_join_for_equi_conjuncts() {
    let db = db_with_dex(50);
    let plan = queries::self_join(&db, "Dex", "K", TemporalPredicate::Overlaps).unwrap();
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
    let explain = phys.explain();
    assert!(explain.contains("HashJoin"), "{explain}");
    // The temporal conjunct stays as an ongoing residual.
    assert!(explain.contains("ongoing:"), "{explain}");
}

#[test]
fn planner_picks_sweep_join_without_equi_keys() {
    let db = db_with_dex(50);
    let l = QueryBuilder::scan_as(&db, "Dex", "R").unwrap();
    let r = QueryBuilder::scan_as(&db, "Dex", "S").unwrap();
    let plan = l
        .join(r, |s| {
            Ok(Expr::col(s, "R.VT")?.overlaps(Expr::col(s, "S.VT")?))
        })
        .unwrap()
        .build();
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
    assert!(phys.explain().contains("SweepJoin"), "{}", phys.explain());
}

#[test]
fn before_join_does_not_use_sweep() {
    // `before` does not imply a shared time point; the envelope pre-filter
    // would be unsound, so the planner must fall back to nested loops.
    let db = db_with_dex(30);
    let l = QueryBuilder::scan_as(&db, "Dex", "R").unwrap();
    let r = QueryBuilder::scan_as(&db, "Dex", "S").unwrap();
    let plan = l
        .join(r, |s| {
            Ok(Expr::col(s, "R.VT")?.before(Expr::col(s, "S.VT")?))
        })
        .unwrap()
        .build();
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
    assert!(
        phys.explain().contains("NestedLoopJoin"),
        "{}",
        phys.explain()
    );
}

#[test]
fn pushdown_moves_single_side_conjuncts_below_join() {
    let db = db_with_dex(30);
    let l = QueryBuilder::scan_as(&db, "Dex", "R").unwrap();
    let r = QueryBuilder::scan_as(&db, "Dex", "S").unwrap();
    let joined = l
        .join(r, |s| {
            Ok(Expr::col(s, "R.K")?
                .eq(Expr::col(s, "S.K")?)
                .and(Expr::col(s, "R.ID")?.lt(Expr::lit(10i64)))
                .and(Expr::col(s, "S.ID")?.lt(Expr::lit(20i64))))
        })
        .unwrap()
        .build();
    let phys = compile(&db, &joined, &PlannerConfig::default()).unwrap();
    let explain = phys.explain();
    // Both single-side conjuncts become filters below the join.
    assert_eq!(
        explain.matches("Filter").count(),
        2,
        "expected two pushed-down filters:\n{explain}"
    );
    let without = compile(
        &db,
        &joined,
        &PlannerConfig {
            pushdown: false,
            ..PlannerConfig::default()
        },
    )
    .unwrap();
    assert_eq!(without.explain().matches("Filter").count(), 0);
    // Same results either way.
    let a = phys.execute().unwrap();
    let b = without.execute().unwrap();
    assert_eq!(a.len(), b.len());
}

#[test]
fn index_scan_is_used_and_correct() {
    let db = db_with_dex(400);
    let h = History::synthetic();
    let w = h.last_fraction(0.1);
    let plan =
        queries::selection(&db, "Dex", TemporalPredicate::Overlaps, (w.start, w.end)).unwrap();
    let cfg = PlannerConfig {
        use_interval_index: true,
        ..PlannerConfig::default()
    };
    let phys = compile(&db, &plan, &cfg).unwrap();
    assert!(phys.explain().contains("IndexScan"), "{}", phys.explain());
    let via_index = phys.execute().unwrap();
    let via_scan = compile(&db, &plan, &PlannerConfig::default())
        .unwrap()
        .execute()
        .unwrap();
    assert_eq!(via_index.len(), via_scan.len());
    // Instantiated mode works through the index too.
    for rt in [h.midpoint(), h.end] {
        assert_eq!(
            phys.execute_at(rt).unwrap(),
            compile(&db, &plan, &PlannerConfig::default())
                .unwrap()
                .execute_at(rt)
                .unwrap()
        );
    }
}

#[test]
fn chunk_files_store_generated_relations() {
    let rel = synthetic::generate(&SyntheticConfig::dex(2_000, Some(1), 9));
    let encoded = chunkfile::encode_chunk(rel.tuples());
    let restored = chunkfile::decode_chunk(&encoded).unwrap();
    assert_eq!(restored.as_slice(), rel.tuples());
    // ~40 B payloads plus framing: the on-disk image stays in the same
    // ballpark as the layout model's estimate, not a multiple of it.
    let f = layout::measure_relation(&rel);
    assert!(
        encoded.len() < 2 * f.total_bytes.max(1),
        "chunk image {} B vs layout model {} B",
        encoded.len(),
        f.total_bytes
    );
    // Damage anywhere in the image is detected.
    let mut bad = encoded;
    bad[17] ^= 0x80;
    assert!(chunkfile::decode_chunk(&bad).is_err());
}

#[test]
fn layout_model_tracks_ongoing_overhead() {
    let rel = synthetic::generate(&SyntheticConfig::dex(1_000, None, 5));
    let f = layout::measure_relation(&rel);
    assert_eq!(f.tuples, 1_000);
    // Base relations have trivial RTs: exactly one range, 29 bytes each.
    assert_eq!(f.rt_bytes, 29 * 1_000);
    assert_eq!(f.max_rt_cardinality, 1);
    // Ongoing format carries the RT plus doubled intervals.
    assert!(f.ongoing_over_fixed() > 1.3, "{}", f.ongoing_over_fixed());
}

#[test]
fn all_join_strategies_agree_on_mozilla_complex_join() {
    let db = ongoing_datasets::mozilla_database(40, 13);
    let plan = queries::complex_join(&db, TemporalPredicate::Overlaps).unwrap();
    let mut sizes = Vec::new();
    for strategy in [
        JoinStrategy::Auto,
        JoinStrategy::NestedLoop,
        JoinStrategy::Sweep,
    ] {
        let cfg = PlannerConfig {
            join_strategy: strategy,
            ..PlannerConfig::default()
        };
        let rel = compile(&db, &plan, &cfg).unwrap().execute().unwrap();
        sizes.push(rel.coalesce().len());
    }
    assert_eq!(sizes[0], sizes[1]);
    assert_eq!(sizes[0], sizes[2]);
}
