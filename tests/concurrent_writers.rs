//! Multi-writer stress suite for the retrying write path.
//!
//! PR 4 made `modify_table` optimistic: fork off-lock, publish via
//! compare-and-swap, error on conflict. This suite pins the PR 5
//! contract that turned the error into an internal event:
//!
//! 1. **No lost or duplicated updates** — N writer threads × M rounds of
//!    `modify_table` (inserts, terminates, sequenced updates, deletes on
//!    disjoint key spaces) complete with *zero* surfaced
//!    [`EngineError::ConcurrentModification`]; the final table equals a
//!    serialized naive replay (`ongoing_bench::naive`) of the same
//!    operations — every committed round applied exactly once.
//! 2. **No torn versions** — every round publishes a *pair* of marker
//!    rows atomically; concurrent snapshot-pinned readers never observe a
//!    version containing half a pair, and a pinned version never changes.
//! 3. **Attempts are observable** — `modify_table_with` reports the
//!    publication attempt count; a deterministic nested-writer conflict
//!    retries exactly once, and an always-conflicting closure surfaces
//!    `ConcurrentModification { table, attempts }` only after the budget.

use ongoing_bench::naive;
use ongoing_core::time::tp;
use ongoing_relation::{Expr, OngoingRelation, Schema, Tuple, Value};
use ongoingdb::engine::catalog::RetryPolicy;
use ongoingdb::engine::modify::Modifier;
use ongoingdb::engine::{Database, EngineError};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

const WRITERS: i64 = 8;
const ROUNDS: i64 = 50;
/// Disjoint per-writer key spaces: writer `t` owns `[t·SPACE, (t+1)·SPACE)`.
const SPACE: i64 = 1_000_000;

fn schema() -> Schema {
    Schema::builder().int("K").int("G").interval("VT").build()
}

/// The static base table (keys < SPACE·0 are never touched by writers).
fn base_rows(n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::base(vec![
                Value::Int(-1 - i),
                Value::Int(i % 13),
                Value::Interval(ongoing_core::OngoingInterval::from_until_now(tp(i % 40))),
            ])
        })
        .collect()
}

/// Writer `t`, round `r`: one `modify_table` closure — published
/// atomically or not at all. Inserts a marker *pair*, and every few
/// rounds terminates / updates / deletes earlier own keys.
fn writer_round(m: &mut Modifier, t: i64, r: i64) -> ongoingdb::engine::Result<()> {
    let id = |round: i64, half: i64| t * SPACE + round * 2 + half;
    let k_eq = |k: i64| Expr::Col(0).eq(Expr::lit(k));
    m.insert_open(
        vec![Value::Int(id(r, 0)), Value::Int(r), Value::Bool(false)],
        tp(r % 50),
    )?;
    m.insert_open(
        vec![Value::Int(id(r, 1)), Value::Int(r), Value::Bool(false)],
        tp(r % 50),
    )?;
    if r % 3 == 0 && r >= 3 {
        // Terminate an earlier pair (cap past the start: rows stay).
        m.terminate(&k_eq(id(r - 3, 0)), tp(90))?;
        m.terminate(&k_eq(id(r - 3, 1)), tp(90))?;
    }
    if r % 5 == 0 && r >= 5 {
        m.update(&k_eq(id(r - 5, 0)), &[(1, Value::Int(-r))], tp(45))?;
        m.update(&k_eq(id(r - 5, 1)), &[(1, Value::Int(-r))], tp(45))?;
    }
    if r % 7 == 0 && r >= 7 {
        m.delete(&k_eq(id(r - 7, 0)))?;
        m.delete(&k_eq(id(r - 7, 1)))?;
    }
    Ok(())
}

/// The same round against the naive `Vec<Tuple>` model.
fn replay_round(rows: &mut Vec<Tuple>, t: i64, r: i64) {
    let id = |round: i64, half: i64| t * SPACE + round * 2 + half;
    naive::insert_open(rows, id(r, 0), r, tp(r % 50));
    naive::insert_open(rows, id(r, 1), r, tp(r % 50));
    if r % 3 == 0 && r >= 3 {
        naive::terminate(rows, id(r - 3, 0), tp(90));
        naive::terminate(rows, id(r - 3, 1), tp(90));
    }
    if r % 5 == 0 && r >= 5 {
        naive::update(rows, id(r - 5, 0), -r, tp(45));
        naive::update(rows, id(r - 5, 1), -r, tp(45));
    }
    if r % 7 == 0 && r >= 7 {
        naive::delete(rows, id(r - 7, 0));
        naive::delete(rows, id(r - 7, 1));
    }
}

/// Canonical multiset order (all RTs are trivial in this workload, so
/// value order is a total order up to identical tuples).
fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort_unstable_by(|a, b| ongoing_relation::value::cmp_rows(a.values(), b.values()));
    rows
}

/// Marker-pair invariant: for every writer, the present `2r` ids must
/// exactly match the present `2r+1` ids — half-applied rounds are torn
/// versions. Update splits may duplicate an id (two versions); dedup.
fn assert_untorn(rows: &[Tuple], context: &str) {
    let mut halves: std::collections::HashMap<i64, [std::collections::BTreeSet<i64>; 2]> =
        std::collections::HashMap::new();
    for t in rows {
        let k = t.value(0).as_int().unwrap();
        if k < 0 {
            continue; // static base row
        }
        let (writer, local) = (k / SPACE, k % SPACE);
        let entry = halves.entry(writer).or_default();
        entry[(local % 2) as usize].insert(local / 2);
    }
    for (writer, [a, b]) in &halves {
        assert_eq!(
            a, b,
            "{context}: torn version — writer {writer} has unpaired markers"
        );
    }
}

#[test]
fn eight_writers_fifty_rounds_no_lost_updates() {
    let db = Arc::new(Database::new());
    let base = base_rows(500);
    db.create_table(
        "T",
        OngoingRelation::from_tuples(schema(), base.clone()).unwrap(),
    )
    .unwrap();
    // Writers qualify through the keyed index, under contention.
    db.create_key_index("T", "K").unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let max_attempts_seen = Arc::new(AtomicU32::new(0));
    let total_attempts = Arc::new(AtomicU32::new(0));

    std::thread::scope(|s| {
        // Snapshot-pinned readers: every pinned version satisfies the
        // pair invariant and never changes while held.
        for _ in 0..2 {
            let db = Arc::clone(&db);
            let done = Arc::clone(&done);
            s.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let pinned = db.table("T").unwrap();
                    let rows: Vec<Tuple> = pinned.data().iter().cloned().collect();
                    assert_untorn(&rows, "reader");
                    // The pinned version is immutable: re-reading it
                    // observes the identical sequence.
                    let again: Vec<Tuple> = pinned.data().iter().cloned().collect();
                    assert_eq!(rows, again, "pinned snapshot changed under reader");
                    std::thread::yield_now();
                }
            });
        }
        for t in 0..WRITERS {
            let db = Arc::clone(&db);
            let max_seen = Arc::clone(&max_attempts_seen);
            let total = Arc::clone(&total_attempts);
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let (_, attempts) = db
                        .modify_table_with("T", RetryPolicy::default(), |rel| {
                            writer_round(&mut Modifier::new(rel, "VT")?, t, r)
                        })
                        .unwrap_or_else(|e| {
                            panic!("writer {t} round {r}: surfaced {e} — retry failed")
                        });
                    max_seen.fetch_max(attempts, Ordering::Relaxed);
                    total.fetch_add(attempts, Ordering::Relaxed);
                }
            });
        }
        // Monitor: the readers must outlive the writers, so a dedicated
        // thread flips `done` once every writer's final-round marker pair
        // is visible (round `ROUNDS-1` pairs are never deleted — deletes
        // only target rounds ≤ ROUNDS-8).
        let db_mon = Arc::clone(&db);
        let done_mon = Arc::clone(&done);
        s.spawn(move || loop {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let rows: Vec<Tuple> = db_mon.table("T").unwrap().data().iter().cloned().collect();
            let complete = (0..WRITERS).all(|t| {
                rows.iter()
                    .any(|tu| tu.value(0).as_int() == Some(t * SPACE + (ROUNDS - 1) * 2 + 1))
            });
            if complete {
                done_mon.store(true, Ordering::Relaxed);
                break;
            }
        });
    });

    // Differential check: serialized naive replay (disjoint key spaces
    // commute, so per-writer program order is a valid serialization).
    let mut replay = base;
    for t in 0..WRITERS {
        for r in 0..ROUNDS {
            replay_round(&mut replay, t, r);
        }
    }
    let live: Vec<Tuple> = db.table("T").unwrap().data().iter().cloned().collect();
    assert_untorn(&live, "final");
    assert_eq!(
        live.len(),
        replay.len(),
        "lost or duplicated updates: row-count mismatch"
    );
    assert_eq!(
        sorted(live),
        sorted(replay),
        "final table diverged from the serialized naive replay"
    );
    let (max, total) = (
        max_attempts_seen.load(Ordering::Relaxed),
        total_attempts.load(Ordering::Relaxed),
    );
    assert!(max >= 1 && total >= (WRITERS * ROUNDS) as u32);
    println!(
        "writers done: {total} attempts for {} commits (max {max} per commit)",
        WRITERS * ROUNDS
    );
}

#[test]
fn eight_durable_writers_recover_to_the_serialized_replay() {
    // The same multi-writer workload against an on-disk database, with a
    // tiny checkpoint threshold so checkpoints race the concurrent
    // commits, then a simulated crash (drop without persist) and
    // recovery: the reopened database must equal the serialized naive
    // replay — every committed round durable exactly once, no torn pairs.
    let rounds: i64 = 20;
    let dir = ongoingdb::engine::storage::TempDir::new("writers-durable");
    let base = base_rows(200);
    {
        let db = Arc::new(
            Database::open_with(
                dir.path(),
                ongoingdb::engine::DurableOptions {
                    fsync: false,
                    checkpoint_bytes: 8 << 10,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        db.create_table(
            "T",
            OngoingRelation::from_tuples(schema(), base.clone()).unwrap(),
        )
        .unwrap();
        db.create_key_index("T", "K").unwrap();
        std::thread::scope(|s| {
            for t in 0..WRITERS {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    for r in 0..rounds {
                        db.modify_table("T", |rel| {
                            writer_round(&mut Modifier::new(rel, "VT")?, t, r)
                        })
                        .unwrap_or_else(|e| panic!("durable writer {t} round {r}: {e}"));
                    }
                });
            }
        });
        let stats = db.durable_stats().unwrap();
        assert!(stats.checkpoints > 0, "workload must exercise checkpoints");
    } // drop = crash: whatever the WAL holds is the durable state.

    let db = Database::open(dir.path()).unwrap();
    let recovered: Vec<Tuple> = db.table("T").unwrap().data().iter().cloned().collect();
    assert_untorn(&recovered, "recovered");
    let mut replay = base;
    for t in 0..WRITERS {
        for r in 0..rounds {
            replay_round(&mut replay, t, r);
        }
    }
    assert_eq!(
        sorted(recovered),
        sorted(replay),
        "recovered table diverged from the serialized naive replay"
    );
    // Recovered key index still accelerates keyed predicates and the
    // database keeps accepting durable writes.
    assert_eq!(db.table("T").unwrap().data().key_indexed_columns(), &[0]);
    db.modify_table("T", |rel| {
        Modifier::new(rel, "VT")?.delete(&Expr::Col(0).eq(Expr::lit(-1i64)))
    })
    .unwrap();
}

#[test]
fn nested_conflict_retries_and_reports_attempts() {
    let db = Database::new();
    db.create_table(
        "T",
        OngoingRelation::from_tuples(schema(), base_rows(50)).unwrap(),
    )
    .unwrap();
    // First run: a nested writer publishes mid-closure, so the outer CAS
    // must fail; the retry re-runs the closure against the new version
    // and succeeds. Deterministic — no thread timing involved.
    let mut first = true;
    let (n, attempts) = db
        .modify_table_with("T", RetryPolicy::default(), |rel| {
            if first {
                first = false;
                db.modify_table("T", |inner| {
                    let mut m = Modifier::new(inner, "VT")?;
                    m.insert_open(
                        vec![Value::Int(7_000), Value::Int(0), Value::Bool(false)],
                        tp(1),
                    )
                })?;
            }
            Modifier::new(rel, "VT")?.terminate(&Expr::Col(0).eq(Expr::lit(-1i64)), tp(99))
        })
        .unwrap();
    assert_eq!(n, 1, "the retried modification applied exactly once");
    assert_eq!(attempts, 2, "one conflict, one successful retry");
    // Both the nested insert and the retried terminate are visible.
    let data = db.table("T").unwrap().data().clone();
    assert_eq!(data.len(), 51);
    assert!(data.iter().any(|t| t.value(0) == &Value::Int(7_000)));
}

#[test]
fn nested_gated_modification_does_not_self_deadlock() {
    // queue_after = 0 puts every attempt under the FIFO gate. A closure
    // nesting a gated modify_table on the same table would deadlock on
    // its own ticket; the gate detects the re-entry and runs the nested
    // call ungated instead. The outer CAS then conflicts once and the
    // retry succeeds.
    let db = Database::new();
    db.create_table(
        "T",
        OngoingRelation::from_tuples(schema(), base_rows(20)).unwrap(),
    )
    .unwrap();
    let policy = RetryPolicy {
        queue_after: 0,
        ..RetryPolicy::default()
    };
    let mut first = true;
    let (_, attempts) = db
        .modify_table_with("T", policy, |rel| {
            if first {
                first = false;
                db.modify_table_with("T", policy, |inner| {
                    let mut m = Modifier::new(inner, "VT")?;
                    m.insert_open(
                        vec![Value::Int(8_000), Value::Int(0), Value::Bool(false)],
                        tp(1),
                    )
                })?;
            }
            Modifier::new(rel, "VT")?.terminate(&Expr::Col(0).eq(Expr::lit(-1i64)), tp(99))
        })
        .unwrap();
    assert_eq!(attempts, 2);
    assert_eq!(db.table("T").unwrap().data().len(), 21);
}

#[test]
fn uncontended_modification_reports_one_attempt() {
    let db = Database::new();
    db.create_table(
        "T",
        OngoingRelation::from_tuples(schema(), base_rows(10)).unwrap(),
    )
    .unwrap();
    let (_, attempts) = db
        .modify_table_with("T", RetryPolicy::default(), |rel| {
            Modifier::new(rel, "VT")?.delete(&Expr::Col(0).eq(Expr::lit(-3i64)))
        })
        .unwrap();
    assert_eq!(attempts, 1);
}

#[test]
fn no_retry_policy_surfaces_the_first_conflict() {
    let db = Database::new();
    db.create_table(
        "T",
        OngoingRelation::from_tuples(schema(), base_rows(10)).unwrap(),
    )
    .unwrap();
    let r = db.modify_table_with("T", RetryPolicy::no_retry(), |rel| {
        db.put_table(
            "T",
            OngoingRelation::from_tuples(schema(), base_rows(3)).unwrap(),
        )
        .unwrap();
        Modifier::new(rel, "VT")?.delete(&Expr::Col(0).eq(Expr::lit(-1i64)))
    });
    match r {
        Err(EngineError::ConcurrentModification { table, attempts }) => {
            assert_eq!(table, "T");
            assert_eq!(attempts, 1);
        }
        other => panic!("expected ConcurrentModification, got {other:?}"),
    }
}

#[test]
fn queued_writers_commit_in_ticket_order() {
    // queue_after = 0: every attempt runs under the FIFO gate, so N
    // contending writers serialize and each commits on its first attempt.
    let db = Arc::new(Database::new());
    db.create_table(
        "T",
        OngoingRelation::from_tuples(schema(), base_rows(20)).unwrap(),
    )
    .unwrap();
    let policy = RetryPolicy {
        queue_after: 0,
        ..RetryPolicy::default()
    };
    let worst = Arc::new(AtomicU32::new(0));
    std::thread::scope(|s| {
        for t in 0..6i64 {
            let db = Arc::clone(&db);
            let worst = Arc::clone(&worst);
            s.spawn(move || {
                for r in 0..10i64 {
                    let (_, attempts) = db
                        .modify_table_with("T", policy, |rel| {
                            Modifier::new(rel, "VT")?.insert_open(
                                vec![Value::Int(t * SPACE + r), Value::Int(r), Value::Bool(false)],
                                tp(r % 9),
                            )
                        })
                        .expect("queued writer must not surface a conflict");
                    worst.fetch_max(attempts, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(db.table("T").unwrap().data().len(), 20 + 60);
    // Every writer forks *inside* the gate and all writers are gated, so
    // publications serialize completely: no CAS can ever fail.
    assert_eq!(
        worst.load(Ordering::Relaxed),
        1,
        "queued writers conflicted"
    );
}

#[test]
fn eight_writers_under_a_tight_memory_budget_evict_and_stay_exact() {
    // PR 7 interaction test: the multi-writer workload against a durable
    // database whose chunk cache is far smaller than the table, with a
    // tiny checkpoint threshold so checkpoints keep demoting freshly
    // sealed chunks to cold mid-flight. Writers then page those chunks
    // back in through the budgeted cache while qualifying their updates —
    // eviction under contention must never lose, duplicate or tear a
    // committed round.
    let rounds: i64 = 15;
    let budget: u64 = 64 << 10;
    let dir = ongoingdb::engine::storage::TempDir::new("writers-evict");
    let base = base_rows(8 * ongoing_relation::TARGET_CHUNK_ROWS as i64);
    let db = Arc::new(
        Database::open_with(
            dir.path(),
            ongoingdb::engine::DurableOptions {
                fsync: false,
                checkpoint_bytes: 16 << 10,
                memory_budget: budget,
            },
        )
        .unwrap(),
    );
    db.create_table(
        "T",
        OngoingRelation::from_tuples(schema(), base.clone()).unwrap(),
    )
    .unwrap();
    db.create_key_index("T", "K").unwrap();
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for r in 0..rounds {
                    db.modify_table("T", |rel| {
                        writer_round(&mut Modifier::new(rel, "VT")?, t, r)
                    })
                    .unwrap_or_else(|e| panic!("budgeted writer {t} round {r}: {e}"));
                }
            });
        }
    });

    assert!(
        db.durable_stats().unwrap().checkpoints > 0,
        "workload must exercise checkpoints"
    );

    // The final full scan pages the whole (≈8×-budget) table through the
    // budgeted cache: by the time it finishes, chunks demoted at the
    // checkpoints must have been read back and the cache must have
    // shed entries under pressure.
    let live: Vec<Tuple> = db.table("T").unwrap().data().iter().cloned().collect();
    let stats = db.durable_stats().unwrap();
    assert!(
        stats.cache_misses > 0,
        "demoted chunks must page back in through the cache"
    );
    assert!(
        stats.cache_evictions > 0,
        "an 8×-budget table must evict under a {budget}-byte budget"
    );
    assert_untorn(&live, "budgeted final");
    let mut replay = base;
    for t in 0..WRITERS {
        for r in 0..rounds {
            replay_round(&mut replay, t, r);
        }
    }
    assert_eq!(
        sorted(live),
        sorted(replay),
        "budgeted table diverged from the serialized naive replay"
    );
}
