//! Edge-case and failure-injection tests across the stack: domain limits,
//! empty inputs, degenerate plans, and error paths.

use ongoing_core::date::{date, md, AsDate, AsMd};
use ongoing_core::time::tp;
use ongoing_core::{
    allen, ops, Emptiness, IntervalSet, OngoingInt, OngoingInterval, OngoingPoint, TimePoint,
};
use ongoing_relation::{Expr, OngoingRelation, Schema, Value};
use ongoingdb::engine::plan::{compile, PlannerConfig};
use ongoingdb::engine::{Database, EngineError, QueryBuilder};

// ---------------------------------------------------------------------
// Domain limits.
// ---------------------------------------------------------------------

#[test]
fn predicates_at_domain_limits() {
    // now vs the limits themselves.
    let now = OngoingPoint::now();
    let top = OngoingPoint::fixed(TimePoint::POS_INF);
    let bottom = OngoingPoint::fixed(TimePoint::NEG_INF);
    // now < +inf everywhere except... ∥now∥rt = rt < +inf always (rt finite).
    let b = ops::lt(now, top);
    for rt in [TimePoint::MIN_FINITE, tp(0), TimePoint::MAX_FINITE] {
        assert!(b.bind(rt), "rt={rt}");
    }
    // -inf < now everywhere (for finite rt).
    let b = ops::lt(bottom, now);
    for rt in [TimePoint::MIN_FINITE, tp(0), TimePoint::MAX_FINITE] {
        assert!(b.bind(rt));
    }
}

#[test]
fn interval_spanning_everything() {
    let all = OngoingInterval::fixed(TimePoint::NEG_INF, TimePoint::POS_INF);
    assert_eq!(all.emptiness(), Emptiness::NeverEmpty);
    let never = OngoingInterval::fixed(TimePoint::POS_INF, TimePoint::NEG_INF);
    assert_eq!(never.emptiness(), Emptiness::AlwaysEmpty);
    // overlaps of everything with anything non-empty is always true.
    let b = allen::overlaps(all, OngoingInterval::fixed(tp(0), tp(1)));
    assert!(b.is_always_true());
}

#[test]
fn ongoing_int_saturation_at_extremes() {
    // Duration of the unbounded expanding interval saturates, never panics.
    let d = OngoingInt::duration(OngoingInterval::fixed(
        TimePoint::NEG_INF,
        TimePoint::POS_INF,
    ));
    assert_eq!(d.bind(tp(0)), i64::MAX);
    let d = OngoingInt::duration(OngoingInterval::from_until_now(TimePoint::NEG_INF));
    assert!(d.bind(tp(5)) > 0);
}

#[test]
fn interval_set_infinite_ranges() {
    let s = IntervalSet::from_ranges([(TimePoint::NEG_INF, tp(0)), (tp(10), TimePoint::POS_INF)]);
    assert_eq!(s.cardinality(), 2);
    assert_eq!(s.complement(), IntervalSet::range(tp(0), tp(10)));
    assert_eq!(s.total_duration(), i64::MAX);
    // points_in clips to the window.
    let pts: Vec<i64> = s.points_in(tp(-2), tp(12)).map(|p| p.ticks()).collect();
    assert_eq!(pts, vec![-2, -1, 10, 11]);
}

#[test]
fn date_boundaries() {
    assert_eq!(AsDate(date(1, 1, 1)).to_string(), "0001/01/01");
    assert_eq!(AsMd(md(12, 31)).to_string(), "12/31");
    // Non-2019 dates fall back to full format in AsMd.
    assert_eq!(AsMd(date(2020, 1, 1)).to_string(), "2020/01/01");
}

// ---------------------------------------------------------------------
// Degenerate relations and plans.
// ---------------------------------------------------------------------

fn empty_db() -> Database {
    let db = Database::new();
    db.create_table(
        "E",
        OngoingRelation::new(Schema::builder().int("K").interval("VT").build()),
    )
    .unwrap();
    db
}

#[test]
fn queries_over_empty_relations() {
    let db = empty_db();
    let plan =
        QueryBuilder::scan(&db, "E")
            .unwrap()
            .filter(|s| {
                Ok(Expr::col(s, "VT")?.overlaps(Expr::lit(Value::Interval(
                    OngoingInterval::fixed(tp(0), tp(10)),
                ))))
            })
            .unwrap()
            .build();
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
    assert!(phys.execute().unwrap().is_empty());
    assert!(phys.execute_at(tp(5)).unwrap().is_empty());
}

#[test]
fn self_join_of_empty_is_empty() {
    let db = empty_db();
    let l = QueryBuilder::scan_as(&db, "E", "L").unwrap();
    let r = QueryBuilder::scan_as(&db, "E", "R").unwrap();
    let plan = l
        .join(r, |s| Ok(Expr::col(s, "L.K")?.eq(Expr::col(s, "R.K")?)))
        .unwrap()
        .build();
    assert!(ongoingdb::engine::execute(&db, &plan).unwrap().is_empty());
}

#[test]
fn union_and_difference_with_empty() {
    let db = empty_db();
    let mut t = OngoingRelation::new(Schema::builder().int("K").interval("VT").build());
    t.insert(vec![
        Value::Int(1),
        Value::Interval(OngoingInterval::from_until_now(tp(0))),
    ])
    .unwrap();
    db.create_table("T", t).unwrap();
    let t_scan = || QueryBuilder::scan(&db, "T").unwrap();
    let e_scan = || QueryBuilder::scan(&db, "E").unwrap();
    let u = t_scan().union(e_scan()).unwrap().build();
    assert_eq!(ongoingdb::engine::execute(&db, &u).unwrap().len(), 1);
    let d = t_scan().difference(e_scan()).unwrap().build();
    assert_eq!(ongoingdb::engine::execute(&db, &d).unwrap().len(), 1);
    let d2 = e_scan().difference(t_scan()).unwrap().build();
    assert!(ongoingdb::engine::execute(&db, &d2).unwrap().is_empty());
}

#[test]
fn difference_with_self_is_empty_everywhere() {
    let db = empty_db();
    let mut t = OngoingRelation::new(Schema::builder().int("K").interval("VT").build());
    for i in 0..5 {
        t.insert(vec![
            Value::Int(i),
            Value::Interval(OngoingInterval::from_until_now(tp(i))),
        ])
        .unwrap();
    }
    db.create_table("T", t).unwrap();
    let plan = QueryBuilder::scan(&db, "T")
        .unwrap()
        .difference(QueryBuilder::scan(&db, "T").unwrap())
        .unwrap()
        .build();
    let r = ongoingdb::engine::execute(&db, &plan).unwrap();
    assert!(r.is_empty());
}

#[test]
fn selection_with_always_false_and_always_true() {
    let db = empty_db();
    let mut t = OngoingRelation::new(Schema::builder().int("K").interval("VT").build());
    t.insert(vec![
        Value::Int(1),
        Value::Interval(OngoingInterval::fixed(tp(0), tp(5))),
    ])
    .unwrap();
    db.create_table("T", t).unwrap();
    let plan = |lit: bool| {
        QueryBuilder::scan(&db, "T")
            .unwrap()
            .filter(|_| Ok(Expr::lit(lit)))
            .unwrap()
            .build()
    };
    assert_eq!(
        ongoingdb::engine::execute(&db, &plan(true)).unwrap().len(),
        1
    );
    assert!(ongoingdb::engine::execute(&db, &plan(false))
        .unwrap()
        .is_empty());
}

// ---------------------------------------------------------------------
// Error paths.
// ---------------------------------------------------------------------

#[test]
fn planner_reports_bad_columns() {
    let db = empty_db();
    let e = QueryBuilder::scan(&db, "E")
        .unwrap()
        .filter(|s| Ok(Expr::col(s, "missing")?.eq(Expr::lit(1i64))))
        .err()
        .unwrap();
    assert!(matches!(e, EngineError::Schema(_)));
}

#[test]
fn type_errors_surface_through_execution() {
    let db = empty_db();
    let mut t = OngoingRelation::new(Schema::builder().int("K").interval("VT").build());
    t.insert(vec![
        Value::Int(1),
        Value::Interval(OngoingInterval::fixed(tp(0), tp(5))),
    ])
    .unwrap();
    db.create_table("T", t).unwrap();
    // Comparing an int column to a string literal fails at evaluation.
    let plan = QueryBuilder::scan(&db, "T")
        .unwrap()
        .filter(|s| Ok(Expr::col(s, "K")?.lt(Expr::lit("oops"))))
        .unwrap()
        .build();
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
    assert!(matches!(phys.execute(), Err(EngineError::Eval(_))));
}

#[test]
fn interval_index_rejects_non_interval_columns() {
    let db = empty_db();
    let t = db.table("E").unwrap();
    assert!(t.interval_index(0).is_err());
    assert!(t.interval_index(1).is_ok());
    assert!(t.interval_index(9).is_err());
}

// ---------------------------------------------------------------------
// Instantiated-mode specifics.
// ---------------------------------------------------------------------

#[test]
fn instantiated_union_applies_set_semantics() {
    let db = empty_db();
    let mut t = OngoingRelation::new(Schema::builder().int("K").interval("VT").build());
    // Two tuples with different stored intervals that instantiate equally
    // at rt 5: [0, now) and [0, 5).
    t.insert(vec![
        Value::Int(1),
        Value::Interval(OngoingInterval::from_until_now(tp(0))),
    ])
    .unwrap();
    t.insert(vec![
        Value::Int(1),
        Value::Interval(OngoingInterval::fixed(tp(0), tp(5))),
    ])
    .unwrap();
    db.create_table("T", t).unwrap();
    let plan = QueryBuilder::scan(&db, "T")
        .unwrap()
        .union(QueryBuilder::scan(&db, "T").unwrap())
        .unwrap()
        .build();
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
    // At rt 5 both tuples instantiate to (1, [0, 5)) — one row.
    assert_eq!(phys.execute_at(tp(5)).unwrap().len(), 1);
    // ... and the ongoing result agrees under bind.
    assert_eq!(phys.execute().unwrap().bind(tp(5)).len(), 1);
    // At rt 7 they differ — two rows.
    assert_eq!(phys.execute_at(tp(7)).unwrap().len(), 2);
}

#[test]
fn ongoing_literals_in_predicates_bind_in_clifford_mode() {
    // Regression test for the fuzzer finding: a query literal like
    // [3, now) must be instantiated by the baseline too.
    let db = empty_db();
    let mut t = OngoingRelation::new(Schema::builder().int("K").interval("VT").build());
    t.insert(vec![
        Value::Int(1),
        Value::Interval(OngoingInterval::fixed(tp(0), tp(20))),
    ])
    .unwrap();
    db.create_table("T", t).unwrap();
    let plan = QueryBuilder::scan(&db, "T")
        .unwrap()
        .filter(|s| {
            Ok(Expr::col(s, "VT")?.overlaps(Expr::lit(Value::Interval(
                OngoingInterval::from_until_now(tp(3)),
            ))))
        })
        .unwrap()
        .build();
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
    let ongoing = phys.execute().unwrap();
    for rt in [tp(0), tp(3), tp(4), tp(19), tp(25)] {
        assert_eq!(ongoing.bind(rt), phys.execute_at(rt).unwrap(), "rt={rt}");
    }
    // [3, now) is empty until rt > 3, so nothing overlaps before then.
    assert!(phys.execute_at(tp(3)).unwrap().is_empty());
    assert_eq!(phys.execute_at(tp(4)).unwrap().len(), 1);
}

#[test]
fn projection_of_intersection_instantiates_consistently() {
    let db = empty_db();
    let mut t = OngoingRelation::new(Schema::builder().int("K").interval("VT").build());
    t.insert(vec![
        Value::Int(1),
        Value::Interval(OngoingInterval::from_until_now(tp(0))),
    ])
    .unwrap();
    db.create_table("T", t).unwrap();
    let b = QueryBuilder::scan(&db, "T").unwrap();
    let schema = b.schema().clone();
    let plan = b
        .project(vec![ongoing_relation::algebra::ProjItem::named(
            Expr::col(&schema, "VT")
                .unwrap()
                .intersect(Expr::lit(Value::Interval(OngoingInterval::fixed(
                    tp(2),
                    tp(8),
                )))),
            "clipped",
        )])
        .unwrap()
        .build();
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
    let ongoing = phys.execute().unwrap();
    for rt in [tp(1), tp(5), tp(12)] {
        assert_eq!(ongoing.bind(rt), phys.execute_at(rt).unwrap(), "rt={rt}");
    }
}

#[test]
fn matview_of_aggregate_serves_snapshots() {
    use ongoing_relation::aggregate::AggFn;
    let db = empty_db();
    let mut t = OngoingRelation::new(Schema::builder().int("K").interval("VT").build());
    for i in 0..6 {
        t.insert_with_rt(
            vec![
                Value::Int(i % 2),
                Value::Interval(OngoingInterval::fixed(tp(0), tp(1))),
            ],
            IntervalSet::range(tp(i), tp(i + 10)),
        )
        .unwrap();
    }
    db.create_table("T", t).unwrap();
    let plan = QueryBuilder::scan(&db, "T")
        .unwrap()
        .aggregate(&["K"], vec![AggFn::CountStar], vec!["cnt".into()])
        .unwrap()
        .build();
    let view = ongoingdb::engine::matview::MaterializedView::create(
        &db,
        "per_k",
        plan.clone(),
        PlannerConfig::default(),
    )
    .unwrap();
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
    for rt in -1i64..18 {
        assert_eq!(view.instantiate(tp(rt)), phys.execute_at(tp(rt)).unwrap());
    }
}
