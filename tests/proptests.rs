//! Property-based tests (proptest) for the core invariants.
//!
//! The soundness criterion of every ongoing operation is differential:
//! `∥f(x, y)∥rt = fF(∥x∥rt, ∥y∥rt)` for all reference times. These
//! properties sample random ongoing points/intervals (including the
//! unbounded shapes) and verify the criterion over a window of reference
//! times wide enough to cross every breakpoint, plus structural invariants
//! (canonical interval sets, Table IV cardinality bounds, codec round
//! trips).

use ongoing_core::allen::TemporalPredicate;
use ongoing_core::time::tp;
use ongoing_core::{allen, ops, IntervalSet, OngoingInt, OngoingInterval, OngoingPoint, TimePoint};
use ongoing_relation::{algebra, Tuple, Value};
use proptest::prelude::*;

const LO: i64 = -12;
const HI: i64 = 12;

/// An ongoing point with components in a small window, occasionally
/// unbounded — every Fig. 3 shape occurs.
fn arb_point() -> impl Strategy<Value = OngoingPoint> {
    (LO..=HI, LO..=HI, 0u8..6).prop_map(|(x, y, shape)| {
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        match shape {
            0 => OngoingPoint::fixed(tp(a)),
            1 => OngoingPoint::now(),
            2 => OngoingPoint::growing(tp(a)),
            3 => OngoingPoint::limited(tp(b)),
            _ => OngoingPoint::new(tp(a), tp(b)).unwrap(),
        }
    })
}

fn arb_interval() -> impl Strategy<Value = OngoingInterval> {
    (arb_point(), arb_point()).prop_map(|(ts, te)| OngoingInterval::new(ts, te))
}

fn arb_set() -> impl Strategy<Value = IntervalSet> {
    proptest::collection::vec((LO..=HI, 1i64..=6), 0..5).prop_map(|ranges| {
        IntervalSet::from_ranges(ranges.into_iter().map(|(s, len)| (tp(s), tp(s + len))))
    })
}

fn rts() -> impl Iterator<Item = TimePoint> {
    (LO - 3..=HI + 3).map(tp)
}

proptest! {
    #[test]
    fn lt_min_max_are_pointwise_sound(p in arb_point(), q in arb_point()) {
        let b = ops::lt(p, q);
        let mn = ops::min(p, q);
        let mx = ops::max(p, q);
        for rt in rts() {
            prop_assert_eq!(b.bind(rt), p.bind(rt) < q.bind(rt));
            prop_assert_eq!(mn.bind(rt), p.bind(rt).min_f(q.bind(rt)));
            prop_assert_eq!(mx.bind(rt), p.bind(rt).max_f(q.bind(rt)));
        }
    }

    #[test]
    fn derived_comparisons_are_pointwise_sound(p in arb_point(), q in arb_point()) {
        for rt in rts() {
            prop_assert_eq!(ops::le(p, q).bind(rt), p.bind(rt) <= q.bind(rt));
            prop_assert_eq!(ops::eq(p, q).bind(rt), p.bind(rt) == q.bind(rt));
            prop_assert_eq!(ops::ne(p, q).bind(rt), p.bind(rt) != q.bind(rt));
        }
    }

    #[test]
    fn lt_decision_tree_matches_naive(p in arb_point(), q in arb_point()) {
        prop_assert_eq!(ops::lt(p, q), ops::lt_naive(p, q));
        prop_assert!(ops::lt_comparisons(p, q) <= 3);
    }

    #[test]
    fn omega_is_closed_under_min_max(p in arb_point(), q in arb_point()) {
        // Constructors enforce a <= b; closure means these never panic and
        // the results are valid points of Ω.
        let mn = ops::min(p, q);
        let mx = ops::max(p, q);
        prop_assert!(mn.a() <= mn.b());
        prop_assert!(mx.a() <= mx.b());
    }

    #[test]
    fn allen_predicates_are_pointwise_sound(l in arb_interval(), r in arb_interval()) {
        for pred in TemporalPredicate::ALL {
            let b = pred.eval(l, r);
            for rt in rts() {
                prop_assert_eq!(
                    b.bind(rt),
                    pred.eval_fixed(l.bind(rt), r.bind(rt)),
                    "{} {} {} at {}", l, pred.name(), r, rt
                );
            }
        }
    }

    #[test]
    fn interval_intersection_is_pointwise_sound(l in arb_interval(), r in arb_interval()) {
        let x = l.intersect(r);
        for rt in rts() {
            let (ls, le) = l.bind(rt);
            let (rs, re) = r.bind(rt);
            prop_assert_eq!(x.bind(rt), (ls.max_f(rs), le.min_f(re)));
        }
    }

    #[test]
    fn table_iv_rt_cardinality_bounds(l in arb_interval(), r in arb_interval()) {
        // Table IV: at most 2 ranges in general; at most 1 when both
        // intervals come from the same one-sided-ongoing family (the
        // "expanding" and "shrinking" columns: fixed-start or fixed-end
        // data). Mixed/general intervals may need 2 (overlaps, and the
        // vacuous branches of during/equals on general intervals).
        use ongoing_core::IntervalKind;
        let fixed_start = |i: OngoingInterval| {
            matches!(i.kind(), IntervalKind::Fixed | IntervalKind::Expanding)
        };
        let fixed_end = |i: OngoingInterval| {
            matches!(i.kind(), IntervalKind::Fixed | IntervalKind::Shrinking)
        };
        for pred in TemporalPredicate::ALL {
            let card = pred.eval(l, r).true_set().cardinality();
            prop_assert!(card <= 2, "{} produced cardinality {}", pred.name(), card);
            let same_family = (fixed_start(l) && fixed_start(r))
                || (fixed_end(l) && fixed_end(r));
            if same_family {
                prop_assert!(
                    card <= 1,
                    "{} on same-family inputs {} / {} produced {}",
                    pred.name(),
                    l,
                    r,
                    card
                );
            }
        }
    }

    #[test]
    fn interval_set_ops_match_pointwise_model(a in arb_set(), b in arb_set()) {
        let inter = a.intersect(&b);
        let uni = a.union(&b);
        let comp = a.complement();
        let diff = a.difference(&b);
        prop_assert!(inter.is_canonical());
        prop_assert!(uni.is_canonical());
        prop_assert!(comp.is_canonical());
        prop_assert!(diff.is_canonical());
        for rt in rts() {
            let (ia, ib) = (a.contains(rt), b.contains(rt));
            prop_assert_eq!(inter.contains(rt), ia && ib);
            prop_assert_eq!(uni.contains(rt), ia || ib);
            prop_assert_eq!(comp.contains(rt), !ia);
            prop_assert_eq!(diff.contains(rt), ia && !ib);
        }
    }

    #[test]
    fn interval_set_laws(a in arb_set(), b in arb_set(), c in arb_set()) {
        // De Morgan, distributivity, involution — on canonical forms.
        prop_assert_eq!(
            a.intersect(&b).complement(),
            a.complement().union(&b.complement())
        );
        prop_assert_eq!(
            a.union(&b).intersect(&c),
            a.intersect(&c).union(&b.intersect(&c))
        );
        prop_assert_eq!(a.complement().complement(), a.clone());
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn ongoing_int_ops_are_pointwise_sound(p in arb_point(), q in arb_point(), k in -4i64..=4) {
        let f = OngoingInt::from_point(p);
        let g = OngoingInt::from_point(q);
        let sum = f.add(&g);
        let diff = f.sub(&g);
        let mx = f.max_with(&g);
        let mn = f.min_with(&g);
        let scaled = f.scale(k);
        for rt in rts() {
            let (fv, gv) = (p.bind(rt).ticks(), q.bind(rt).ticks());
            prop_assert_eq!(sum.bind(rt), fv + gv);
            prop_assert_eq!(diff.bind(rt), fv - gv);
            prop_assert_eq!(mx.bind(rt), fv.max(gv));
            prop_assert_eq!(mn.bind(rt), fv.min(gv));
            prop_assert_eq!(scaled.bind(rt), fv * k);
        }
    }

    #[test]
    fn duration_is_pointwise_sound(i in arb_interval()) {
        let d = OngoingInt::duration(i);
        for rt in rts() {
            let (s, e) = i.bind(rt);
            prop_assert_eq!(d.bind(rt), s.distance_to(e).max(0));
        }
    }

    #[test]
    fn nonempty_set_matches_bind(i in arb_interval()) {
        let ne = i.nonempty_set();
        for rt in rts() {
            prop_assert_eq!(ne.contains(rt), i.nonempty_at(rt));
        }
    }

    #[test]
    fn selection_commutes_with_bind(
        ivs in proptest::collection::vec(arb_interval(), 1..12),
        w in arb_interval(),
    ) {
        // σ over random single-column relations: ∥σ(R)∥rt == σF(∥R∥rt).
        use ongoing_relation::{Expr, OngoingRelation, Schema};
        let schema = Schema::builder().interval("VT").build();
        let mut rel = OngoingRelation::new(schema.clone());
        for iv in &ivs {
            rel.insert(vec![Value::Interval(*iv)]).unwrap();
        }
        let pred = Expr::col(&schema, "VT").unwrap()
            .overlaps(Expr::lit(Value::Interval(w)));
        let q = algebra::select(&rel, &pred).unwrap();
        for rt in rts() {
            let lhs = q.bind(rt);
            let rhs: Vec<Vec<Value>> = rel
                .bind(rt)
                .rows()
                .iter()
                .filter(|row| {
                    let iv = row[0].as_interval().unwrap();
                    allen::fixed::overlaps(
                        (iv.ts().a(), iv.te().a()),
                        w.bind(rt),
                    )
                })
                .cloned()
                .collect();
            prop_assert_eq!(lhs, ongoing_relation::FixedRelation::from_rows(rhs));
        }
    }

    #[test]
    fn tuple_codec_round_trips(
        vals in proptest::collection::vec(arb_value(), 0..6),
        rt in arb_set(),
    ) {
        use ongoingdb::engine::storage::codec::{decode_tuple, encode_tuple};
        let t = Tuple::with_rt(vals, rt);
        let bytes = encode_tuple(&t);
        prop_assert_eq!(decode_tuple(&bytes).unwrap(), t);
    }

    #[test]
    fn difference_commutes_with_bind(
        l_ivs in proptest::collection::vec(arb_interval(), 0..8),
        r_ivs in proptest::collection::vec(arb_interval(), 0..8),
    ) {
        use ongoing_relation::{OngoingRelation, Schema};
        let schema = Schema::builder().interval("VT").build();
        let mut l = OngoingRelation::new(schema.clone());
        for iv in &l_ivs {
            l.insert(vec![Value::Interval(*iv)]).unwrap();
        }
        let mut r = OngoingRelation::new(schema);
        for iv in &r_ivs {
            r.insert(vec![Value::Interval(*iv)]).unwrap();
        }
        let d = algebra::difference(&l, &r).unwrap();
        for rt in rts() {
            let lhs = d.bind(rt);
            let rbound = r.bind(rt);
            let rows: Vec<Vec<Value>> = l
                .bind(rt)
                .rows()
                .iter()
                .filter(|row| !rbound.contains(row))
                .cloned()
                .collect();
            prop_assert_eq!(lhs, ongoing_relation::FixedRelation::from_rows(rows));
        }
    }
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[a-z]{0,12}".prop_map(|s| Value::str(&s)),
        any::<bool>().prop_map(Value::Bool),
        (LO..=HI).prop_map(|t| Value::Time(tp(t))),
        arb_point().prop_map(Value::Point),
        arb_interval().prop_map(Value::Interval),
    ]
}
