//! Crash-recovery fault-injection suite: the durability subsystem's
//! contract, proven differentially.
//!
//! The durability model reduces every crash to a WAL prefix length (chunk
//! files and the manifest are fsynced *before* anything references them),
//! so [`FaultFs`] can simulate any kill point by snapshotting the database
//! directory and truncating its log at an arbitrary byte offset. The
//! contract pinned here:
//!
//! 1. **Exactly the committed prefix.** For *any* kill point, reopening
//!    recovers precisely the publications whose WAL record survived
//!    complete — never a partially-applied publication, never a lost
//!    committed one. The oracle is `ongoing_bench::naive`: a serialized
//!    replay of the longest committed operation prefix over a plain
//!    `Vec<Tuple>`.
//! 2. **Torn ≠ corrupt.** A record the crash cut short is truncated away
//!    silently; a *complete* record (or manifest, or chunk file) whose
//!    bytes were damaged surfaces as [`EngineError::CorruptStorage`] — not
//!    a panic, not silent data loss.
//! 3. **Laziness.** Opening reads no chunk files (`tuples_loaded == 0`
//!    until first table access), which is also why chunk damage surfaces
//!    at `table()`, not at `open()`.
//! 4. **The codec is total.** Every `Value` shape and run-time interval
//!    set round-trips exactly, and every strict prefix of an encoding is
//!    rejected.

use ongoing_bench::naive as model;
use ongoing_core::time::tp;
use ongoing_core::{IntervalSet, OngoingInt, OngoingInterval, OngoingPoint, TimePoint};
use ongoing_relation::{Expr, OngoingRelation, Schema, Tuple, Value};
use ongoingdb::engine::modify::Modifier;
use ongoingdb::engine::storage::{codec, manifest, wal, DurableOptions, FaultFs, TempDir};
use ongoingdb::engine::{Database, EngineError};
use proptest::prelude::*;
use std::path::Path;

const CHUNK: usize = ongoing_relation::TARGET_CHUNK_ROWS;

fn schema() -> Schema {
    Schema::builder().int("K").int("G").interval("VT").build()
}

fn k_eq(k: i64) -> Expr {
    Expr::Col(0).eq(Expr::lit(k))
}

/// Test options: no fsync (crashes are simulated by explicit truncation,
/// and the suite should not hammer the build machine's disks).
fn opts(checkpoint_bytes: u64) -> DurableOptions {
    DurableOptions {
        fsync: false,
        checkpoint_bytes,
        ..Default::default()
    }
}

/// Seed relation plus the naive model's view of the same rows.
fn seed(rows: usize) -> (OngoingRelation, Vec<Tuple>) {
    let mut rel = OngoingRelation::new(schema());
    let mut model_rows = Vec::new();
    for i in 0..rows as i64 {
        let iv = OngoingInterval::fixed(tp(i % 17), tp(i % 17 + 4));
        let vals = vec![Value::Int(i % 12), Value::Int(0), Value::Interval(iv)];
        rel.insert(vals.clone()).unwrap();
        model_rows.push(Tuple::base(vals));
    }
    (rel, model_rows)
}

/// A deterministic relation big enough to span sealed chunks.
fn big_relation(rows: usize) -> OngoingRelation {
    let mut r = OngoingRelation::new(schema());
    for i in 0..rows as i64 {
        let iv = OngoingInterval::from_until_now(tp(i % 97));
        r.insert(vec![Value::Int(i), Value::Int(i % 13), Value::Interval(iv)])
            .unwrap();
    }
    r
}

/// The sequence number of the last publication the directory holds
/// durably: the checkpoint LSN, or the last complete WAL record past it.
fn durable_seq(dir: &Path) -> u64 {
    let lsn = manifest::read_manifest(&ongoingdb::engine::RealFs, &dir.join("MANIFEST"))
        .unwrap()
        .map_or(0, |m| m.lsn);
    let (records, _tail) = wal::scan(&ongoingdb::engine::RealFs, &dir.join("wal.log")).unwrap();
    lsn.max(records.last().map_or(0, |(seq, _, _)| *seq))
}

// ---------------------------------------------------------------------
// 1. Differential crash-injection property: any kill point recovers
//    exactly the committed prefix, replayed by the naive model.
// ---------------------------------------------------------------------

/// One randomized committed publication.
#[derive(Debug, Clone)]
enum Op {
    InsertOpen { k: i64, start: i64 },
    Terminate { k: i64, at: i64 },
    Update { k: i64, g: i64, at: i64 },
    Delete { k: i64 },
    CreateIndex,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let k = 0i64..12;
    prop_oneof![
        (k.clone(), 0i64..60).prop_map(|(k, start)| Op::InsertOpen { k, start }),
        (k.clone(), 0i64..60).prop_map(|(k, at)| Op::Terminate { k, at }),
        (k.clone(), 0i64..9, 0i64..60).prop_map(|(k, g, at)| Op::Update { k, g, at }),
        k.prop_map(|k| Op::Delete { k }),
        (0u8..1).prop_map(|_| Op::CreateIndex),
    ]
}

/// Applies one op through the durable catalog (one publication each).
fn apply_db(db: &Database, op: &Op) {
    match op {
        Op::InsertOpen { k, start } => {
            db.modify_table("T", |rel| {
                Modifier::new(rel, "VT")?.insert_open(
                    vec![Value::Int(*k), Value::Int(1), Value::Bool(false)],
                    tp(*start),
                )
            })
            .unwrap();
        }
        Op::Terminate { k, at } => {
            db.modify_table("T", |rel| {
                Modifier::new(rel, "VT")?.terminate(&k_eq(*k), tp(*at))
            })
            .unwrap();
        }
        Op::Update { k, g, at } => {
            db.modify_table("T", |rel| {
                Modifier::new(rel, "VT")?.update(&k_eq(*k), &[(1, Value::Int(*g))], tp(*at))
            })
            .unwrap();
        }
        Op::Delete { k } => {
            db.modify_table("T", |rel| Modifier::new(rel, "VT")?.delete(&k_eq(*k)))
                .unwrap();
        }
        Op::CreateIndex => db.create_key_index("T", "K").unwrap(),
    }
}

/// Applies the same op to the naive model (index creation is a logical
/// no-op).
fn apply_model(rows: &mut Vec<Tuple>, op: &Op) {
    match op {
        Op::InsertOpen { k, start } => model::insert_open(rows, *k, 1, tp(*start)),
        Op::Terminate { k, at } => model::terminate(rows, *k, tp(*at)),
        Op::Update { k, g, at } => model::update(rows, *k, *g, tp(*at)),
        Op::Delete { k } => model::delete(rows, *k),
        Op::CreateIndex => {}
    }
}

/// Reopens the crash snapshot at `dir` and checks it against the naive
/// replay of the longest committed prefix (`states[s - 1]` for durable
/// sequence `s`; sequence 0 means not even `create_table` survived).
fn assert_recovers_committed_prefix(dir: &Path, states: &[Vec<Tuple>]) {
    let s = durable_seq(dir) as usize;
    let db = Database::open_with(dir, opts(u64::MAX)).unwrap();
    if s == 0 {
        assert!(
            matches!(db.table("T"), Err(EngineError::UnknownTable(_))),
            "nothing was durable, yet the table exists"
        );
        return;
    }
    // Laziness: recovery planned the table but read no chunk file yet.
    assert_eq!(db.durable_stats().unwrap().tuples_loaded, 0);
    let expect = &states[s - 1];
    let table = db.table("T").unwrap();
    let got: Vec<Tuple> = table.data().iter().cloned().collect();
    assert_eq!(
        &got, expect,
        "recovery at durable seq {s} diverged from the naive replay"
    );
    // No partially-applied publication is visible at any instantiation
    // point either (the paper's bind criterion).
    let oracle = OngoingRelation::from_tuples(schema(), expect.clone()).unwrap();
    for rt in (-2i64..70).step_by(13) {
        assert_eq!(table.data().bind(tp(rt)), oracle.bind(tp(rt)), "rt {rt}");
    }
}

proptest! {
    #[test]
    fn any_kill_point_recovers_exactly_the_committed_prefix(
        seed_rows in 0usize..30,
        ops in proptest::collection::vec(arb_op(), 1..20),
        cut_mills in proptest::collection::vec(0u64..1001, 1..4),
        checkpointed in 0u8..2,
    ) {
        // Run the workload against a durable database; every op is one
        // publication and must cost exactly one WAL record (O(delta):
        // commits append, they never rewrite). `states[i]` is the naive
        // model after WAL sequence i + 1 (seq 1 = create_table).
        let home = TempDir::new("rec-home");
        let checkpoint_bytes = if checkpointed == 1 { 512 } else { u64::MAX };
        let db = Database::open_with(home.path(), opts(checkpoint_bytes)).unwrap();
        let (rel, mut rows) = seed(seed_rows);
        db.create_table("T", rel).unwrap();
        let mut states = vec![rows.clone()];
        for (i, op) in ops.iter().enumerate() {
            apply_db(&db, op);
            apply_model(&mut rows, op);
            states.push(rows.clone());
            prop_assert_eq!(
                db.durable_stats().unwrap().wal_records,
                i as u64 + 2,
                "a publication must append exactly one WAL record"
            );
        }
        drop(db);

        // Kill the log at arbitrary byte offsets and reopen each snapshot.
        let wal_len = FaultFs::file_len(&home.path().join("wal.log")).unwrap();
        for (c, mills) in cut_mills.iter().enumerate() {
            let crash = TempDir::new(&format!("rec-crash{c}"));
            let dst = crash.path().join("db");
            FaultFs::clone_dir(home.path(), &dst).unwrap();
            FaultFs::truncate(&dst.join("wal.log"), wal_len * mills / 1000).unwrap();
            assert_recovers_committed_prefix(&dst, &states);
        }
    }
}

/// The same contract, exhaustively: *every* byte offset of a small WAL is
/// a valid kill point, and each one recovers a clean committed prefix.
#[test]
fn every_wal_byte_offset_is_a_recoverable_kill_point() {
    let home = TempDir::new("rec-exhaustive");
    let db = Database::open_with(home.path(), opts(u64::MAX)).unwrap();
    let (rel, mut rows) = seed(8);
    db.create_table("T", rel).unwrap();
    let mut states = vec![rows.clone()];
    for op in [
        Op::InsertOpen { k: 3, start: 10 },
        Op::Terminate { k: 3, at: 30 },
        Op::Delete { k: 5 },
    ] {
        apply_db(&db, &op);
        apply_model(&mut rows, &op);
        states.push(rows.clone());
    }
    drop(db);

    let wal_len = FaultFs::file_len(&home.path().join("wal.log")).unwrap();
    let crash = TempDir::new("rec-exhaustive-crash");
    for cut in 0..=wal_len {
        let dst = crash.path().join(format!("at-{cut}"));
        FaultFs::clone_dir(home.path(), &dst).unwrap();
        FaultFs::truncate(&dst.join("wal.log"), cut).unwrap();
        assert_recovers_committed_prefix(&dst, &states);
        std::fs::remove_dir_all(&dst).unwrap();
    }
}

// ---------------------------------------------------------------------
// 2. Corruption is detected, not absorbed: damage to a *complete* WAL
//    record, the manifest, or a chunk file surfaces as CorruptStorage.
// ---------------------------------------------------------------------

/// A small durable database with a few committed publications, dropped
/// (crashed cleanly) so the suite can mutilate its files.
fn crashed_db(dir: &Path, checkpoint: bool) {
    let db = Database::open_with(dir, opts(u64::MAX)).unwrap();
    db.create_table("T", big_relation(CHUNK + 40)).unwrap();
    apply_db(&db, &Op::Terminate { k: 7, at: 50 });
    apply_db(&db, &Op::InsertOpen { k: 900, start: 5 });
    if checkpoint {
        db.persist().unwrap();
    }
}

#[test]
fn midlog_damage_is_corruption_not_truncation() {
    let home = TempDir::new("rec-midlog");
    crashed_db(home.path(), false);
    // Flip a byte inside the *body* of the first record (header is 8
    // bytes) with later records intact: a complete record failing its
    // checksum is damage, not a torn tail, and must refuse to open.
    FaultFs::flip_byte(&home.path().join("wal.log"), 10).unwrap();
    match Database::open_with(home.path(), opts(u64::MAX)) {
        Err(EngineError::CorruptStorage(msg)) => {
            assert!(msg.contains("wal"), "{msg}");
        }
        other => panic!("expected CorruptStorage, got {other:?}"),
    }
}

#[test]
fn torn_final_record_truncates_cleanly() {
    let home = TempDir::new("rec-torn");
    crashed_db(home.path(), false);
    // Cut 3 bytes off the last record: a torn append, recovered silently
    // to the previous publication (seq 2 of 3).
    let wal = home.path().join("wal.log");
    let len = FaultFs::file_len(&wal).unwrap();
    FaultFs::truncate(&wal, len - 3).unwrap();
    assert_eq!(durable_seq(home.path()), 2);
    let db = Database::open_with(home.path(), opts(u64::MAX)).unwrap();
    let table = db.table("T").unwrap();
    assert_eq!(table.data().len(), CHUNK + 40, "insert must be rolled back");
    // The reopened log was physically truncated: appending works and the
    // next recovery sees the new publication.
    apply_db(&db, &Op::Delete { k: 3 });
    drop(db);
    assert_eq!(durable_seq(home.path()), 3);
}

#[test]
fn manifest_damage_is_detected() {
    let home = TempDir::new("rec-manifest");
    crashed_db(home.path(), true);
    FaultFs::flip_byte(&home.path().join("MANIFEST"), 40).unwrap();
    match Database::open_with(home.path(), opts(u64::MAX)) {
        Err(EngineError::CorruptStorage(msg)) => assert!(msg.contains("MANIFEST"), "{msg}"),
        other => panic!("expected CorruptStorage, got {other:?}"),
    }
}

#[test]
fn chunk_damage_surfaces_lazily_at_first_access() {
    let home = TempDir::new("rec-chunk");
    crashed_db(home.path(), true);
    // Damage one chunk file. Recovery is lazy, so opening still succeeds…
    let chunk = std::fs::read_dir(home.path().join("chunks"))
        .unwrap()
        .next()
        .expect("checkpoint must have written chunk files")
        .unwrap()
        .path();
    FaultFs::flip_byte(&chunk, 21).unwrap();
    let db = Database::open_with(home.path(), opts(u64::MAX)).unwrap();
    assert_eq!(db.durable_stats().unwrap().tuples_loaded, 0);
    if DurableOptions::default().memory_budget == u64::MAX {
        // …and the damage is reported on first materialization (eager
        // loading reads and verifies every chunk file).
        match db.table("T") {
            Err(EngineError::CorruptStorage(_)) => {}
            other => panic!("expected CorruptStorage, got {other:?}"),
        }
    } else {
        // Under a finite memory budget materialization is lazy too — the
        // table comes back over cold chunks with zero reads — so the
        // damage surfaces as a typed error at first page-in instead.
        let table = db.table("T").unwrap();
        let err = table
            .data()
            .lazy_views()
            .iter()
            .find_map(|v| v.pin().err())
            .expect("damage must surface at first page-in");
        assert!(err.0.contains("corrupt"), "{}", err.0);
    }
}

// ---------------------------------------------------------------------
// 3. Persistence round-trip: layout, key indexes and writability survive
//    recovery, through both the WAL-replay and the checkpoint path.
// ---------------------------------------------------------------------

#[test]
fn recovered_database_preserves_indexes_and_accepts_writes() {
    let home = TempDir::new("rec-roundtrip");
    let expect: Vec<Tuple>;
    {
        let db = Database::open_with(home.path(), opts(u64::MAX)).unwrap();
        db.create_table("T", big_relation(CHUNK + 100)).unwrap();
        db.create_key_index("T", "K").unwrap();
        apply_db(&db, &Op::Terminate { k: 9, at: 40 });
        db.persist().unwrap(); // checkpoint path
        apply_db(&db, &Op::Delete { k: 11 }); // WAL-replay path on top
        expect = db.table("T").unwrap().data().iter().cloned().collect();
    }
    // First recovery: exact data, key index still declared.
    let db = Database::open_with(home.path(), opts(u64::MAX)).unwrap();
    let table = db.table("T").unwrap();
    let got: Vec<Tuple> = table.data().iter().cloned().collect();
    assert_eq!(got, expect);
    assert_eq!(table.data().key_indexed_columns(), &[0]);
    assert!(db.durable_stats().unwrap().tuples_loaded > 0);
    // The recovered table keeps accepting (and persisting) publications.
    apply_db(&db, &Op::InsertOpen { k: 777, start: 3 });
    let expect2: Vec<Tuple> = db.table("T").unwrap().data().iter().cloned().collect();
    drop(db);
    let db = Database::open_with(home.path(), opts(u64::MAX)).unwrap();
    let got2: Vec<Tuple> = db.table("T").unwrap().data().iter().cloned().collect();
    assert_eq!(got2, expect2);
}

#[test]
fn drop_table_is_durable() {
    let home = TempDir::new("rec-drop");
    {
        let db = Database::open_with(home.path(), opts(u64::MAX)).unwrap();
        db.create_table("T", big_relation(20)).unwrap();
        db.create_table("U", big_relation(10)).unwrap();
        db.drop_table("T").unwrap();
    }
    let db = Database::open_with(home.path(), opts(u64::MAX)).unwrap();
    assert!(matches!(db.table("T"), Err(EngineError::UnknownTable(_))));
    assert_eq!(db.table("U").unwrap().data().len(), 10);
}

// ---------------------------------------------------------------------
// 4. Codec totality: every Value shape and RT shape round-trips, and
//    every strict prefix of an encoding is rejected.
// ---------------------------------------------------------------------

fn arb_time() -> impl Strategy<Value = TimePoint> {
    prop_oneof![
        (-1_000i64..1_000).prop_map(tp),
        (0u8..1).prop_map(|_| TimePoint::NEG_INF),
        (0u8..1).prop_map(|_| TimePoint::POS_INF),
    ]
}

fn arb_point() -> impl Strategy<Value = OngoingPoint> {
    prop_oneof![
        (-500i64..500).prop_map(|a| OngoingPoint::fixed(tp(a))),
        (0u8..1).prop_map(|_| OngoingPoint::now()),
        (-500i64..500).prop_map(|a| OngoingPoint::growing(tp(a))),
        (-500i64..500).prop_map(|b| OngoingPoint::limited(tp(b))),
        ((-500i64..500), (0i64..300))
            .prop_map(|(a, d)| OngoingPoint::new(tp(a), tp(a + d)).unwrap()),
    ]
}

fn arb_rt() -> impl Strategy<Value = IntervalSet> {
    prop_oneof![
        (0u8..1).prop_map(|_| IntervalSet::empty()),
        (0u8..1).prop_map(|_| IntervalSet::full()),
        proptest::collection::vec(((1i64..20), (1i64..20)), 0..5).prop_map(|parts| {
            // Disjoint, sorted ranges: gap then length, left to right.
            let mut cur = -100i64;
            let mut ranges = Vec::new();
            for (gap, len) in parts {
                ranges.push((tp(cur + gap), tp(cur + gap + len)));
                cur += gap + len;
            }
            IntervalSet::from_ranges(ranges)
        }),
    ]
}

fn arb_count() -> impl Strategy<Value = OngoingInt> {
    prop_oneof![
        (-50i64..50).prop_map(OngoingInt::constant),
        arb_point().prop_map(OngoingInt::from_point),
        arb_rt().prop_map(|s| OngoingInt::indicator(&s)),
        (arb_point(), arb_point())
            .prop_map(|(ts, te)| OngoingInt::duration(OngoingInterval::new(ts, te))),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[a-z]{0,12}".prop_map(|s| Value::str(&s)),
        (0usize..3).prop_map(|i| Value::str(["", "héllo wörld", "データ"][i])),
        any::<bool>().prop_map(Value::Bool),
        arb_time().prop_map(Value::Time),
        (arb_time(), arb_time()).prop_map(|(s, e)| Value::Span(s, e)),
        arb_point().prop_map(Value::Point),
        (arb_point(), arb_point())
            .prop_map(|(ts, te)| Value::Interval(OngoingInterval::new(ts, te))),
        arb_count().prop_map(Value::Count),
    ]
}

proptest! {
    #[test]
    fn codec_round_trips_every_value_and_rt_shape(
        values in proptest::collection::vec(arb_value(), 0..6),
        rt in arb_rt(),
    ) {
        let t = Tuple::with_rt(values, rt);
        let bytes = codec::encode_tuple(&t);
        prop_assert_eq!(codec::decode_tuple(&bytes).unwrap(), t);
        // The encoding is exactly consumed, so every strict prefix — a
        // chunk or WAL payload cut short — must fail loudly.
        for cut in 0..bytes.len() {
            prop_assert!(
                codec::decode_tuple(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded", bytes.len()
            );
        }
    }
}
