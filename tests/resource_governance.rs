//! Resource-governance suite: memory budget, deadlines, cancellation.
//!
//! PR 7 gave the engine three governors; this suite pins their contracts:
//!
//! 1. **Out-of-core execution.** A durable table several times the chunk
//!    cache's byte budget reopens *cold* (`tuples_loaded == 0` until first
//!    access) and scans/joins with peak resident cache bytes at or below
//!    the budget — producing results identical to an unbounded reopen of
//!    the same directory.
//! 2. **Deadlines & cancellation are cooperative and clean.** An expired
//!    deadline or a cancelled [`QueryControl`] surfaces within one morsel
//!    as a typed error ([`EngineError::DeadlineExceeded`] /
//!    [`EngineError::Cancelled`]) — never a panic — and the store stays
//!    fully usable afterwards.
//! 3. **Write deadlines never tear.** `RetryPolicy::timeout` bounds a
//!    perpetually conflicting `modify_table` (including backoff sleeps and
//!    writer-queue waits); expiry means *not applied*, and a timed-out
//!    queued writer's abandoned ticket never stalls the writers behind it.

use ongoing_core::time::tp;
use ongoing_core::OngoingInterval;
use ongoing_relation::{Expr, OngoingRelation, Schema, Tuple, Value};
use ongoingdb::engine::catalog::RetryPolicy;
use ongoingdb::engine::modify::Modifier;
use ongoingdb::engine::plan::{compile, JoinStrategy, PlannerConfig};
use ongoingdb::engine::storage::{DurableOptions, TempDir};
use ongoingdb::engine::{Database, EngineError, ExecContext, QueryBuilder, QueryControl};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CHUNK: usize = ongoing_relation::TARGET_CHUNK_ROWS;

fn schema() -> Schema {
    Schema::builder().int("K").int("G").interval("VT").build()
}

fn big_rows(n: usize) -> Vec<Tuple> {
    (0..n as i64)
        .map(|k| {
            Tuple::base(vec![
                Value::Int(k),
                Value::Int(k % 7),
                Value::Interval(OngoingInterval::from_until_now(tp(k % 40))),
            ])
        })
        .collect()
}

/// Durable options with an explicit budget (ignoring the env override so
/// the test controls both sides of the comparison).
fn opts(memory_budget: u64) -> DurableOptions {
    DurableOptions {
        fsync: false,
        checkpoint_bytes: u64::MAX,
        memory_budget,
    }
}

/// Total and maximum chunk-file bytes under `<dir>/chunks`.
fn chunk_file_bytes(dir: &Path) -> (u64, u64) {
    let mut total = 0;
    let mut max = 0;
    for entry in std::fs::read_dir(dir.join("chunks")).expect("chunks dir") {
        let len = entry.unwrap().metadata().unwrap().len();
        total += len;
        max = max.max(len);
    }
    (total, max)
}

/// The two governed query shapes: a filtered scan of the big table, and a
/// hash join probing it with a small build side.
fn run_queries(db: &Database) -> (Vec<Tuple>, Vec<Tuple>) {
    // Two workers: parallel paging coverage while keeping worst-case
    // concurrent pins (one morsel per worker) well inside any budget the
    // caller derives from the table size — peak ≤ budget must hold on
    // machines of any core count.
    let cfg = PlannerConfig {
        join_strategy: JoinStrategy::Hash,
        parallelism: 2,
        ..PlannerConfig::default()
    };
    let filter = QueryBuilder::scan(db, "T")
        .unwrap()
        .filter(|s| Ok(Expr::col(s, "G")?.eq(Expr::lit(3i64))))
        .unwrap()
        .build();
    let filtered: Vec<Tuple> = compile(db, &filter, &cfg)
        .unwrap()
        .execute_ctx(&cfg.exec_context())
        .unwrap()
        .iter()
        .cloned()
        .collect();

    let t = QueryBuilder::scan_as(db, "T", "T").unwrap();
    let s = QueryBuilder::scan_as(db, "S", "S").unwrap();
    let join = t
        .join(s, |sch| {
            Ok(Expr::col(sch, "T.K")?.eq(Expr::col(sch, "S.K")?))
        })
        .unwrap()
        .build();
    let joined: Vec<Tuple> = compile(db, &join, &cfg)
        .unwrap()
        .execute_ctx(&cfg.exec_context())
        .unwrap()
        .iter()
        .cloned()
        .collect();
    (filtered, joined)
}

#[test]
fn out_of_core_scan_and_join_match_unbounded_within_budget() {
    let dir = TempDir::new("govern-ooc");

    // Seed: a 16-chunk table plus a small join side, checkpointed into
    // sealed chunk files.
    {
        let db = Database::open_with(dir.path(), opts(u64::MAX)).unwrap();
        db.create_table(
            "T",
            OngoingRelation::from_tuples(schema(), big_rows(16 * CHUNK)).unwrap(),
        )
        .unwrap();
        db.create_table(
            "S",
            OngoingRelation::from_tuples(schema(), big_rows(64)).unwrap(),
        )
        .unwrap();
        db.persist().unwrap();
    }

    // Budget: a quarter of the table's on-disk bytes (≥ 4× out-of-core),
    // comfortably above the largest single chunk so every morsel fits.
    let (total, max_file) = chunk_file_bytes(dir.path());
    let budget = (total / 4).max(2 * max_file);
    assert!(
        total >= 4 * budget,
        "seed table must be ≥ 4× the budget (total {total}, budget {budget})"
    );

    // Budgeted reopen: cold tables load zero tuples until first access,
    // queries stay within budget, eviction actually happens.
    let (filtered, joined) = {
        let db = Database::open_with(dir.path(), opts(budget)).unwrap();
        db.table("T").unwrap();
        db.table("S").unwrap();
        let stats = db.durable_stats().unwrap();
        assert_eq!(
            stats.tuples_loaded, 0,
            "budgeted open must materialize nothing"
        );

        let out = run_queries(&db);
        let stats = db.durable_stats().unwrap();
        assert!(
            stats.cache_peak_bytes <= budget,
            "peak resident {} exceeded budget {budget}",
            stats.cache_peak_bytes
        );
        assert!(stats.cache_misses > 0, "scans must page chunks in");
        assert!(
            stats.cache_evictions > 0,
            "a 4×-budget scan must evict under pressure"
        );
        out
    };

    // Unbounded reopen of the same directory: bit-identical results.
    let db = Database::open_with(dir.path(), opts(u64::MAX)).unwrap();
    let (filtered_full, joined_full) = run_queries(&db);
    assert_eq!(filtered, filtered_full, "budgeted filter result diverged");
    assert_eq!(joined, joined_full, "budgeted join result diverged");
    assert_eq!(
        filtered.len(),
        16 * CHUNK / 7 + usize::from(16 * CHUNK % 7 > 3)
    );
    assert_eq!(joined.len(), 64);
}

#[test]
fn zero_deadline_fails_within_one_morsel_and_leaves_store_intact() {
    let dir = TempDir::new("govern-deadline");
    let db = Database::open_with(dir.path(), opts(u64::MAX)).unwrap();
    db.create_table(
        "T",
        OngoingRelation::from_tuples(schema(), big_rows(2 * CHUNK)).unwrap(),
    )
    .unwrap();

    let plan = QueryBuilder::scan(&db, "T")
        .unwrap()
        .filter(|s| Ok(Expr::col(s, "G")?.eq(Expr::lit(1i64))))
        .unwrap()
        .build();
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();

    // Already-expired deadline: the very first morsel-boundary check
    // fails, as a typed error.
    let expired = ExecContext::serial().with_timeout(Duration::ZERO);
    match phys.execute_ctx(&expired) {
        Err(EngineError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // The store is untouched: the same plan without a deadline succeeds,
    // and the table still accepts writes.
    let ok = phys.execute_ctx(&ExecContext::serial()).unwrap();
    assert!(!ok.is_empty());
    db.modify_table("T", |rel| {
        Modifier::new(rel, "VT")?.insert_open(
            vec![Value::Int(-1), Value::Int(0), Value::Bool(false)],
            tp(1),
        )
    })
    .unwrap();
}

#[test]
fn cancelled_control_surfaces_cancelled_from_any_thread() {
    let db = Database::new();
    db.create_table(
        "T",
        OngoingRelation::from_tuples(schema(), big_rows(CHUNK)).unwrap(),
    )
    .unwrap();
    let plan = QueryBuilder::scan(&db, "T")
        .unwrap()
        .filter(|s| Ok(Expr::col(s, "G")?.eq(Expr::lit(2i64))))
        .unwrap()
        .build();
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();

    // The caller keeps one handle and cancels from another thread; the
    // clone inside the context observes it at the next check.
    let control = QueryControl::unbounded();
    let handle = control.clone();
    std::thread::spawn(move || handle.cancel()).join().unwrap();
    assert!(control.is_cancelled());
    let ctx = ExecContext::serial().with_control(control);
    match phys.execute_ctx(&ctx) {
        Err(EngineError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // Cancellation is per-token, not per-plan: a fresh context runs fine.
    assert!(phys.execute_ctx(&ExecContext::serial()).is_ok());
}

#[test]
fn modify_timeout_bounds_a_perpetually_conflicting_writer() {
    let db = Database::new();
    db.create_table(
        "T",
        OngoingRelation::from_tuples(schema(), big_rows(32)).unwrap(),
    )
    .unwrap();

    // Every attempt's fork is stale by publication time: the closure
    // itself republishes the table. Without a timeout this retries until
    // max_attempts; with one it must return DeadlineExceeded promptly —
    // and the interference pattern guarantees the modification itself was
    // never applied.
    let policy = RetryPolicy {
        max_attempts: u32::MAX,
        queue_after: u32::MAX,
        timeout: Some(Duration::from_millis(100)),
        ..RetryPolicy::default()
    };
    let started = Instant::now();
    let result = db.modify_table_with("T", policy, |rel| {
        db.put_table(
            "T",
            OngoingRelation::from_tuples(schema(), big_rows(32)).unwrap(),
        )?;
        Modifier::new(rel, "VT")?.insert_open(
            vec![Value::Int(-7), Value::Int(0), Value::Bool(false)],
            tp(1),
        )
    });
    match result {
        Err(EngineError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "timeout failed to bound the retry loop"
    );
    // Not applied: the conflicting writes won, the timed-out insert lost.
    let rows: Vec<Tuple> = db.table("T").unwrap().data().iter().cloned().collect();
    assert!(
        !rows.iter().any(|t| t.value(0).as_int() == Some(-7)),
        "timed-out modification must not be applied"
    );
}

#[test]
fn abandoned_queue_ticket_never_stalls_later_writers() {
    let db = Arc::new(Database::new());
    db.create_table(
        "T",
        OngoingRelation::from_tuples(schema(), big_rows(8)).unwrap(),
    )
    .unwrap();
    // Strict FIFO writers: everyone queues from the first attempt.
    let fifo = RetryPolicy {
        queue_after: 0,
        ..RetryPolicy::default()
    };

    let a_entered = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Writer A takes the gate and holds it in its closure.
        let db_a = Arc::clone(&db);
        let entered = Arc::clone(&a_entered);
        let a = s.spawn(move || {
            db_a.modify_table_with("T", fifo, |rel| {
                entered.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(250));
                Modifier::new(rel, "VT")?.insert_open(
                    vec![Value::Int(-10), Value::Int(0), Value::Bool(false)],
                    tp(1),
                )
            })
        });
        while !a_entered.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }

        // Writer B queues behind A and times out waiting — its abandoned
        // ticket must be skipped, not served into the void.
        let timed_out = RetryPolicy {
            timeout: Some(Duration::from_millis(20)),
            ..fifo
        };
        let b = db.modify_table_with("T", timed_out, |rel| {
            Modifier::new(rel, "VT")?.insert_open(
                vec![Value::Int(-20), Value::Int(0), Value::Bool(false)],
                tp(1),
            )
        });
        match b {
            Err(EngineError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded for queued writer, got {other:?}"),
        }

        // Writer C queues after B's abandonment, behind A — it must be
        // served once A releases, within a bounded wait.
        let started = Instant::now();
        db.modify_table_with("T", fifo, |rel| {
            Modifier::new(rel, "VT")?.insert_open(
                vec![Value::Int(-30), Value::Int(0), Value::Bool(false)],
                tp(1),
            )
        })
        .expect("writer C must not stall behind the abandoned ticket");
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "writer C stalled behind an abandoned ticket"
        );
        a.join().unwrap().expect("writer A");
    });

    let rows: Vec<Tuple> = db.table("T").unwrap().data().iter().cloned().collect();
    let has = |k: i64| rows.iter().any(|t| t.value(0).as_int() == Some(k));
    assert!(has(-10) && has(-30), "writers A and C must have committed");
    assert!(!has(-20), "timed-out writer B must not have committed");
}
