//! Observability suite: the metrics registry, per-query trace spans,
//! `EXPLAIN ANALYZE` and the structured event log (PR 8).
//!
//! Pinned contracts:
//!
//! 1. **Work-unit metrics are deterministic.** The same workload at 1 and
//!    4 executor threads leaves bit-identical executor counters and store
//!    gauges in the registry; only wall-clock metrics may differ.
//! 2. **`EXPLAIN ANALYZE` actuals are the executor's counters** — the
//!    root span equals `execute_with_stats`' totals exactly, and
//!    per-operator self work plus child work reconstructs them.
//! 3. **Exposition is complete**: `metrics_text()` lists every core
//!    executor, store, and durability metric under its stable name.
//! 4. **The event ring stays bounded and ordered** under concurrent
//!    writers: sequence numbers strictly increase, the ring never exceeds
//!    its capacity, and `dropped()` accounts for the rest.
//! 5. **The JSONL sink survives transient write faults** through the
//!    `Vfs` seam: a torn or failed append is retried; no event line is
//!    lost or duplicated.

use ongoing_core::time::tp;
use ongoing_core::OngoingInterval;
use ongoing_relation::{Expr, OngoingRelation, Schema, Value};
use ongoingdb::engine::modify::Modifier;
use ongoingdb::engine::obs::{
    EventLog, DURABLE_METRIC_NAMES, EXEC_METRIC_NAMES, STORE_METRIC_NAMES,
};
use ongoingdb::engine::sql::{explain_analyze_with, run_statement, StatementResult};
use ongoingdb::engine::storage::{FaultKind, FaultMode, FaultPlan, FaultVfs, TempDir};
use ongoingdb::engine::{Database, DurableOptions, EngineEvent, MetricsSnapshot, PlannerConfig};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::builder().int("K").int("G").interval("VT").build()
}

fn seeded(rows: usize) -> OngoingRelation {
    let mut r = OngoingRelation::new(schema());
    for i in 0..rows as i64 {
        r.insert(vec![
            Value::Int(i),
            Value::Int(i % 5),
            Value::Interval(OngoingInterval::fixed(tp(i % 60), tp(i % 60 + 7))),
        ])
        .unwrap();
    }
    r
}

fn fixture() -> Database {
    let db = Database::new();
    db.observability().set_slow_query_ms(0); // event-log every query
    db.create_table("T", seeded(3_000)).unwrap();
    db.create_table("S", seeded(64)).unwrap();
    db
}

const QUERIES: &[&str] = &[
    "SELECT K FROM T WHERE G = 2",
    "SELECT T.K, S.G FROM T JOIN S ON T.K = S.K",
    "SELECT K FROM T WHERE G = 0 UNION SELECT K FROM S WHERE G = 1",
];

/// Runs the mixed workload at `threads` workers and returns the final
/// snapshot.
fn workload(threads: usize) -> MetricsSnapshot {
    let db = fixture();
    let cfg = PlannerConfig {
        parallelism: threads,
        ..PlannerConfig::default()
    };
    for r in 0..3i64 {
        db.modify_table("T", |rel| {
            let mut m = Modifier::new(rel, "VT")?;
            m.insert_open(
                vec![Value::Int(900_000 + r), Value::Int(r), Value::Bool(false)],
                tp(r % 30),
            )?;
            m.terminate(&Expr::Col(0).eq(Expr::lit(r * 17)), tp(80))?;
            Ok(())
        })
        .unwrap();
        for sql in QUERIES {
            explain_analyze_with(&db, sql, &cfg).unwrap();
        }
    }
    db.metrics_snapshot()
}

#[test]
fn serial_and_parallel_runs_leave_identical_work_metrics() {
    let serial = workload(1);
    let parallel = workload(4);
    let mut names: Vec<&str> = EXEC_METRIC_NAMES.to_vec();
    names.extend(STORE_METRIC_NAMES);
    names.extend(["ongoingdb_queries", "ongoingdb_publications"]);
    for name in names {
        assert_eq!(
            serial.value(name),
            parallel.value(name),
            "{name} must be bit-identical at 1 and 4 threads"
        );
    }
}

#[test]
fn explain_analyze_actuals_match_executor_counters() {
    let db = fixture();
    let cfg = PlannerConfig::default();
    let sql = "SELECT T.K, S.G FROM T JOIN S ON T.K = S.K WHERE T.G = 2";
    let report = explain_analyze_with(&db, sql, &cfg).unwrap();

    // A second, untraced execution of the same plan must count the same.
    let plan = ongoingdb::engine::sql::plan_query(&db, sql).unwrap();
    let phys = ongoingdb::engine::plan::compile(&db, &plan, &cfg).unwrap();
    let (_, stats) = phys.execute_with_stats(&cfg.exec_context()).unwrap();
    assert_eq!(report.stats, stats, "traced run must not change counting");
    assert_eq!(
        report.root.total_work, stats,
        "root span == executor totals"
    );

    // Parent self work + child totals reconstruct the root exactly.
    let child: u64 = report
        .root
        .children
        .iter()
        .map(|c| c.total_work.total_work())
        .sum();
    assert_eq!(
        report.root.self_work.total_work() + child,
        stats.total_work()
    );

    // Every operator line in the text carries estimates and actuals.
    for line in report.text.lines().filter(|l| l.contains("est rows≈")) {
        assert!(line.contains("rows="), "{line}");
        assert!(line.contains("work="), "{line}");
        assert!(line.contains("wall="), "{line}");
    }

    // The statement form renders the same tree shape.
    match run_statement(&db, &format!("EXPLAIN ANALYZE {sql}")).unwrap() {
        StatementResult::Explained(text) => {
            assert_eq!(
                text.lines().count(),
                report.text.lines().count(),
                "statement and API renderings must share the layout"
            );
        }
        other => panic!("expected Explained, got {other:?}"),
    }
}

#[test]
fn metrics_text_exposes_every_core_metric() {
    let dir = TempDir::new("obs-exposition");
    let db = Database::open_with(
        dir.path(),
        DurableOptions {
            fsync: false,
            ..DurableOptions::default()
        },
    )
    .unwrap();
    db.create_table("T", seeded(256)).unwrap();
    run_statement(&db, "SELECT K FROM T WHERE G = 1").unwrap();
    db.persist().unwrap();
    let text = db.metrics_text();
    for name in EXEC_METRIC_NAMES
        .iter()
        .chain(DURABLE_METRIC_NAMES.iter())
        .chain(STORE_METRIC_NAMES.iter())
    {
        assert!(
            text.contains(&format!("\n{name} ")) || text.starts_with(&format!("{name} ")),
            "exposition missing {name}:\n{text}"
        );
    }
    // Registry counters folded by the query path are present too.
    assert!(text.contains("\nongoingdb_queries 1"));
}

#[test]
fn event_ring_bounds_and_orders_under_concurrent_writers() {
    const WRITERS: i64 = 8;
    const ROUNDS: i64 = 20;
    const CAPACITY: usize = 32;
    let db = Arc::new(Database::new());
    db.create_table("T", seeded(128)).unwrap();
    db.observability().events.set_capacity(CAPACITY);
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for r in 0..ROUNDS {
                    db.modify_table("T", |rel| {
                        Modifier::new(rel, "VT")?.insert_open(
                            vec![
                                Value::Int(t * 10_000 + r),
                                Value::Int(t),
                                Value::Bool(false),
                            ],
                            tp(5),
                        )?;
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    let events = db.recent_events();
    assert!(events.len() <= CAPACITY, "ring exceeded its capacity");
    assert!(
        events.windows(2).all(|w| w[0].seq < w[1].seq),
        "sequence numbers must strictly increase"
    );
    let obs = db.observability();
    let total = events.last().unwrap().seq + 1;
    assert_eq!(
        obs.events.dropped(),
        total - events.len() as u64,
        "dropped() must account for every record that fell off"
    );
    // Publications were recorded: at least one per successful commit.
    let publications = events
        .iter()
        .filter(|r| matches!(r.event, EngineEvent::Publication { .. }))
        .count();
    assert!(publications > 0);
}

#[test]
fn jsonl_sink_survives_transient_write_faults() {
    // Sweep the fault over the first few appends, in both shapes: a clean
    // error and a torn (short) write. Either way every event must land in
    // the file exactly once, in order.
    for mode in [FaultMode::Error, FaultMode::ShortWrite] {
        for at in 0..4u64 {
            let dir = TempDir::new("obs-sink");
            let path = dir.path().join("events.jsonl");
            let vfs = Arc::new(FaultVfs::with_fault(FaultPlan {
                at,
                kind: FaultKind::Transient,
                mode,
            }));
            let log = EventLog::with_capacity(64);
            log.set_sink(Arc::clone(&vfs) as Arc<dyn ongoingdb::engine::Vfs>, &path);
            for i in 0..10u32 {
                log.record(EngineEvent::CasConflict {
                    table: "T".into(),
                    attempt: i,
                });
            }
            assert_eq!(log.sink_errors(), 0, "transient faults must be absorbed");
            let text = std::fs::read_to_string(&path).unwrap();
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(
                lines.len(),
                10,
                "mode {mode:?} fault at {at}: lost or duplicated lines"
            );
            for (i, line) in lines.iter().enumerate() {
                assert!(
                    line.starts_with(&format!("{{\"seq\":{i},")),
                    "line {i} out of order after {mode:?} fault at {at}: {line}"
                );
                assert!(line.ends_with('}'), "torn line survived: {line}");
            }
            // The ring saw the same ten records.
            assert_eq!(log.recent().len(), 10);
        }
    }
}

#[test]
fn slow_query_threshold_and_sink_via_database() {
    let db = fixture();
    run_statement(&db, "SELECT K FROM T WHERE G = 3").unwrap();
    let slow: Vec<_> = db
        .recent_events()
        .into_iter()
        .filter(|r| matches!(r.event, EngineEvent::SlowQuery { .. }))
        .collect();
    assert_eq!(slow.len(), 1, "threshold 0 must log every query");
    match &slow[0].event {
        EngineEvent::SlowQuery { query, work, .. } => {
            assert!(query.contains("SELECT K FROM T"));
            assert!(*work > 0);
        }
        _ => unreachable!(),
    }
    // Raising the threshold silences the log again.
    db.observability().set_slow_query_ms(1_000_000);
    run_statement(&db, "SELECT K FROM T WHERE G = 3").unwrap();
    let after = db
        .recent_events()
        .into_iter()
        .filter(|r| matches!(r.event, EngineEvent::SlowQuery { .. }))
        .count();
    assert_eq!(after, 1, "fast query above threshold must not log");
}

/// Pins the two documented `ONGOINGDB_SLOW_QUERY_MS` contracts: `0` means
/// *log every query* (not *disable logging*), and an unset variable means
/// the 250 ms default.
#[test]
fn slow_query_zero_logs_everything_and_default_is_250ms() {
    assert_eq!(ongoingdb::engine::obs::DEFAULT_SLOW_QUERY_MS, 250);
    // The default path. Guarded so an externally exported
    // ONGOINGDB_SLOW_QUERY_MS (which legitimately overrides the default)
    // doesn't turn this pin into a false failure.
    if std::env::var(ongoingdb::engine::SLOW_QUERY_ENV).is_err() {
        let db = Database::new();
        assert_eq!(db.observability().slow_query_ns(), 250 * 1_000_000);
    }
    // The zero path: every query logs, however fast.
    let db = fixture();
    assert_eq!(db.observability().slow_query_ns(), 0);
    for _ in 0..3 {
        run_statement(&db, "SELECT K FROM T WHERE G = 1").unwrap();
    }
    let slow = db
        .recent_events()
        .into_iter()
        .filter(|r| matches!(r.event, EngineEvent::SlowQuery { .. }))
        .count();
    assert_eq!(
        slow, 3,
        "threshold 0 must log every query, repeats included"
    );
}
