//! Property tests for the statistics & cost-based planning subsystem.
//!
//! Over the shared calibration grid of [`ongoing_bench::shapes`] — varied
//! interval length, overlap density (clustered vs. spread start points),
//! and key skew — the tests assert the two contracts of the cost model:
//!
//! (a) **estimate accuracy**: the estimated work units of a plan stay
//!     within a bounded factor of the deterministic `ExecStats` counters an
//!     actual execution measures, for every join strategy; and
//! (b) **plan-choice quality**: the plan the cost-based `Auto` strategy
//!     picks never measures worse than 2x the best enumerated alternative.
//!
//! Everything is deterministic (arithmetic data generators, stride-sampled
//! statistics, work-unit counters), so the assertions hold at every
//! `ONGOINGDB_THREADS` setting.

use ongoing_bench::shapes::{self, Shape};
use ongoing_core::allen::TemporalPredicate;
use ongoing_core::{OngoingInterval, TimePoint};
use ongoing_engine::plan::{compile, JoinStrategy, PlannerConfig};
use ongoing_engine::stats::cost;
use ongoing_engine::{queries, Database, LogicalPlan};
use ongoing_relation::{OngoingRelation, Value};

/// Rows per side for the grid shapes (small enough for fast loops, large
/// enough that strategy costs separate by orders of magnitude).
const ROWS: usize = 200;

fn grid() -> Vec<Shape> {
    shapes::grid(ROWS)
}

fn cfg(strategy: JoinStrategy) -> PlannerConfig {
    PlannerConfig {
        join_strategy: strategy,
        ..PlannerConfig::default()
    }
}

/// Compiles and executes, returning (estimated work, measured work,
/// explain text).
fn est_and_actual(db: &Database, plan: &LogicalPlan, c: &PlannerConfig) -> (f64, u64, String) {
    let phys = compile(db, plan, c).unwrap();
    let est = cost::estimate(&phys).work.total();
    let (_, stats) = phys.execute_with_stats(&c.exec_context()).unwrap();
    (est, stats.total_work(), phys.explain())
}

/// Maximum allowed est/actual (and actual/est) factor on the grid. The
/// model is a planning-grade estimator, not a simulator: histogram
/// interpolation, the uniform-key assumption and the envelope≈predicate
/// proxy each contribute bounded error, and the factor below is asserted
/// for every shape × strategy combination.
const ACCURACY_FACTOR: f64 = 4.0;

#[test]
fn estimates_track_measured_work_units_across_shapes() {
    for shape in grid() {
        let db = shapes::database(&shape);
        db.analyze_all();
        let plan = shapes::key_overlap_join(&db);
        for strategy in [
            JoinStrategy::NestedLoop,
            JoinStrategy::Hash,
            JoinStrategy::Sweep,
        ] {
            let c = cfg(strategy);
            let (est, actual, explain) = est_and_actual(&db, &plan, &c);
            let actual = actual.max(1) as f64;
            let ratio = est / actual;
            assert!(
                (1.0 / ACCURACY_FACTOR..=ACCURACY_FACTOR).contains(&ratio),
                "shape {} strategy {strategy:?}: est {est:.0} vs actual {actual:.0} \
                 (ratio {ratio:.2})\n{explain}",
                shape.name,
            );
        }
    }
}

#[test]
fn chosen_plan_is_never_far_from_the_best_alternative() {
    for shape in grid() {
        let db = shapes::database(&shape);
        db.analyze_all();
        let plan = shapes::key_overlap_join(&db);
        let (_, chosen, chosen_explain) = est_and_actual(&db, &plan, &cfg(JoinStrategy::Auto));
        let best = [
            JoinStrategy::NestedLoop,
            JoinStrategy::Hash,
            JoinStrategy::Sweep,
        ]
        .into_iter()
        .map(|s| est_and_actual(&db, &plan, &cfg(s)).1)
        .min()
        .unwrap();
        assert!(
            chosen <= best.saturating_mul(2),
            "shape {}: cost-based choice measured {chosen} vs best alternative {best}\n\
             {chosen_explain}",
            shape.name,
        );
    }
}

#[test]
fn statistics_flip_the_join_choice_with_the_data_shape() {
    // Selective keys, long clustered intervals: the hash join prunes
    // harder than envelope overlap.
    let db = shapes::database(&shapes::hash_wins(240));
    db.analyze_all();
    let phys = compile(
        &db,
        &shapes::key_overlap_join(&db),
        &cfg(JoinStrategy::Auto),
    )
    .unwrap();
    assert!(phys.explain().contains("HashJoin"), "{}", phys.explain());

    // Degenerate keys (2 distinct values), tiny intervals spread over ten
    // years: envelope overlap prunes ~1000x harder than the keys.
    let db = shapes::database(&shapes::sweep_wins(240));
    db.analyze_all();
    let phys = compile(
        &db,
        &shapes::key_overlap_join(&db),
        &cfg(JoinStrategy::Auto),
    )
    .unwrap();
    assert!(phys.explain().contains("SweepJoin"), "{}", phys.explain());

    // Without statistics the same query keeps the classic hash priority.
    let db = shapes::database(&shapes::sweep_wins(240));
    let phys = compile(
        &db,
        &shapes::key_overlap_join(&db),
        &cfg(JoinStrategy::Auto),
    )
    .unwrap();
    assert!(phys.explain().contains("HashJoin"), "{}", phys.explain());
}

#[test]
fn cost_based_choice_really_beats_the_heuristic_on_sweep_shapes() {
    // On the sweep-friendly shape the measured work of the cost-chosen
    // plan must genuinely undercut the heuristic hash join — the end-to-end
    // point of the subsystem.
    let db = shapes::database(&shapes::sweep_wins(240));
    db.analyze_all();
    let plan = shapes::key_overlap_join(&db);
    let (_, auto_work, _) = est_and_actual(&db, &plan, &cfg(JoinStrategy::Auto));
    let (_, hash_work, _) = est_and_actual(&db, &plan, &cfg(JoinStrategy::Hash));
    assert!(
        auto_work * 5 < hash_work,
        "cost-based {auto_work} should be far below forced hash {hash_work}"
    );
}

#[test]
fn explain_shows_estimates_next_to_actuals() {
    let db = shapes::database(&grid()[0]);
    db.analyze_all();
    let plan = shapes::key_overlap_join(&db);
    let c = cfg(JoinStrategy::Auto);
    let phys = compile(&db, &plan, &c).unwrap();
    let pre = phys.explain_with_estimates();
    assert!(pre.contains("est rows≈"), "{pre}");
    assert!(pre.contains("self work≈"), "{pre}");
    let (_, stats) = phys.execute_with_stats(&c.exec_context()).unwrap();
    let full = phys.explain_with_stats(&stats);
    assert!(full.contains("stats: scanned="), "{full}");
    assert!(full.contains("est:   scanned≈"), "{full}");
    // Plain explain stays annotation-free for the strategy tests.
    assert!(!phys.explain().contains('≈'));
}

#[test]
fn serial_and_parallel_agree_on_cost_chosen_plans() {
    let db = shapes::database(&grid()[5]);
    db.analyze_all();
    let plan = shapes::key_overlap_join(&db);
    let base = PlannerConfig {
        join_strategy: JoinStrategy::Auto,
        parallelism: 1,
        ..PlannerConfig::default()
    };
    let phys = compile(&db, &plan, &base).unwrap();
    let (serial, serial_stats) = phys.execute_with_stats(&base.exec_context()).unwrap();
    for threads in [2, 4] {
        let c = PlannerConfig {
            parallelism: threads,
            ..base.clone()
        };
        let (par, par_stats) = compile(&db, &plan, &c)
            .unwrap()
            .execute_with_stats(&c.exec_context())
            .unwrap();
        assert_eq!(serial, par, "results must match at {threads} threads");
        assert_eq!(
            serial_stats, par_stats,
            "stats must match at {threads} threads"
        );
    }
}

#[test]
fn analyze_then_modify_refreshes_statistics_past_the_threshold() {
    let db = shapes::database(&grid()[0]);
    db.analyze("L").unwrap();
    let before = db.table("L").unwrap().statistics().unwrap();
    assert_eq!(before.rows, ROWS as u64);

    // A small modification stays below the staleness threshold: the
    // statistics object is unchanged.
    db.modify_table("L", |rel| {
        rel.insert(vec![
            Value::Int(9_000),
            Value::Int(0),
            Value::Interval(OngoingInterval::from_until_now(TimePoint::new(10))),
        ])
        .map_err(ongoing_engine::EngineError::Schema)
    })
    .unwrap();
    let after_small = db.table("L").unwrap().statistics().unwrap();
    assert_eq!(after_small.rows, before.rows, "below threshold: kept");

    // Bulk growth past 50 + 10% of the analyzed rows triggers a refresh.
    db.modify_table("L", |rel| {
        for i in 0..80i64 {
            rel.insert(vec![
                Value::Int(10_000 + i),
                Value::Int(1),
                Value::Interval(OngoingInterval::fixed(
                    TimePoint::new(i),
                    TimePoint::new(i + 5),
                )),
            ])
            .map_err(ongoing_engine::EngineError::Schema)?;
        }
        Ok(())
    })
    .unwrap();
    let after_bulk = db.table("L").unwrap().statistics().unwrap();
    assert_eq!(
        after_bulk.rows,
        ROWS as u64 + 81,
        "past threshold: refreshed"
    );

    // An in-place update that rewrites many rows without changing the row
    // count also counts as modification volume (positional tuple diff) and
    // triggers a refresh — observable through the distinct count of K.
    assert!(after_bulk.fixed(1).unwrap().distinct > 150);
    db.modify_table("L", |rel| {
        let mut out = OngoingRelation::new(rel.schema().clone());
        for (i, t) in rel.tuples().iter().enumerate() {
            let mut vals = t.values().to_vec();
            if i < 100 {
                vals[1] = Value::Int(7_777);
            }
            out.push(ongoing_relation::Tuple::with_rt(vals, t.rt().clone()));
        }
        *rel = out;
        Ok(())
    })
    .unwrap();
    let after_update = db.table("L").unwrap().statistics().unwrap();
    assert_eq!(after_update.rows, after_bulk.rows, "length unchanged");
    assert!(
        after_update.fixed(1).unwrap().distinct < 150,
        "in-place rewrite must refresh the distinct count: {}",
        after_update.fixed(1).unwrap().distinct
    );

    // Never-analyzed tables stay un-analyzed through modifications.
    db.modify_table("R", |rel| {
        rel.insert(vec![
            Value::Int(1),
            Value::Int(1),
            Value::Interval(OngoingInterval::from_until_now(TimePoint::new(3))),
        ])
        .map_err(ongoing_engine::EngineError::Schema)
    })
    .unwrap();
    assert!(db.table("R").unwrap().statistics().is_none());
}

#[test]
fn fig11_complex_join_plans_from_statistics() {
    // The Fig. 11 workload planned without any strategy hint: with
    // collected statistics the cost model must (a) plan every join from
    // estimates and (b) stay within 2x of the best enumerated alternative
    // in *measured* work units.
    let db = ongoing_datasets::mozilla_database(300, 42);
    db.analyze_all();
    let plan = queries::complex_join(&db, TemporalPredicate::Overlaps).unwrap();
    let (_, auto_work, explain) = est_and_actual(&db, &plan, &cfg(JoinStrategy::Auto));
    let best = [
        JoinStrategy::NestedLoop,
        JoinStrategy::Hash,
        JoinStrategy::Sweep,
    ]
    .into_iter()
    .map(|s| est_and_actual(&db, &plan, &cfg(s)).1)
    .min()
    .unwrap();
    assert!(
        auto_work <= best.saturating_mul(2),
        "complex join: cost-based {auto_work} vs best {best}\n{explain}"
    );
    // The analyzed choice agrees with the un-analyzed heuristic result set.
    let db2 = ongoing_datasets::mozilla_database(300, 42);
    let plan2 = queries::complex_join(&db2, TemporalPredicate::Overlaps).unwrap();
    let a = compile(&db, &plan, &cfg(JoinStrategy::Auto))
        .unwrap()
        .execute()
        .unwrap();
    let b = compile(&db2, &plan2, &cfg(JoinStrategy::Auto))
        .unwrap()
        .execute()
        .unwrap();
    assert_eq!(a.coalesce().len(), b.coalesce().len());
}
