//! Transient-I/O fault sweep: every [`Vfs`] call a durable workload makes
//! is failed, one site at a time, and the engine's response is checked
//! against the governance contract:
//!
//! 1. **Transient read/write faults are absorbed.** The storage layer's
//!    bounded-backoff retry ([`with_retry`]) clears them; the workload
//!    completes with results identical to the fault-free baseline.
//! 2. **Fsync failures are fail-stop.** A failed `sync`/`sync_dir` is
//!    *never* retried (fsyncgate: the page cache can no longer be
//!    trusted). It surfaces as a typed error, the durable handle is
//!    poisoned, and a fresh open recovers a consistent committed prefix.
//! 3. **Permanent faults surface, never panic.** The disk going bad for
//!    good yields a typed [`EngineError`]; reopening on a healthy fs
//!    still recovers exactly a committed prefix — every acknowledged
//!    commit present, no partial one.
//!
//! The sweep enumerates its sites by first running the workload under a
//! tracing [`FaultVfs`], so new I/O paths are covered automatically.

use ongoing_core::time::tp;
use ongoing_core::OngoingInterval;
use ongoing_relation::{OngoingRelation, Schema, Tuple, Value};
use ongoingdb::engine::modify::Modifier;
use ongoingdb::engine::storage::{
    DurableOptions, FaultKind, FaultMode, FaultPlan, FaultVfs, OpKind, TempDir,
};
use ongoingdb::engine::{Database, Vfs};
use std::path::Path;
use std::sync::Arc;

/// Inserted-marker rounds the workload commits after creating the table.
const ROUNDS: i64 = 3;
/// Base rows seeded at table creation.
const BASE: i64 = 64;
/// Acknowledgement points: create, each round, checkpoint, reopen+scan.
const STEPS: u32 = 1 + ROUNDS as u32 + 1 + 1;

fn schema() -> Schema {
    Schema::builder().int("K").int("G").interval("VT").build()
}

fn base_rows() -> Vec<Tuple> {
    (0..BASE)
        .map(|k| {
            Tuple::base(vec![
                Value::Int(k),
                Value::Int(k % 7),
                Value::Interval(OngoingInterval::from_until_now(tp(k % 40))),
            ])
        })
        .collect()
}

/// Explicit options: real fsyncs (the sweep injects sync faults), no
/// automatic checkpoints (the workload checkpoints once, explicitly, so
/// the op trace is deterministic), no budget paging.
fn opts() -> DurableOptions {
    DurableOptions {
        fsync: true,
        checkpoint_bytes: u64::MAX,
        memory_budget: u64::MAX,
    }
}

/// The swept workload: create a table, commit `ROUNDS` marker inserts,
/// checkpoint, then crash-reopen on the same vfs and scan. Bumps
/// `acked` after every acknowledged step; returns the final sorted keys.
fn workload(dir: &Path, vfs: Arc<dyn Vfs>, acked: &mut u32) -> ongoingdb::engine::Result<Vec<i64>> {
    {
        let db = Database::open_with_vfs(dir, opts(), Arc::clone(&vfs))?;
        db.create_table(
            "T",
            OngoingRelation::from_tuples(schema(), base_rows())
                .expect("seed relation is in-memory"),
        )?;
        *acked += 1;
        for r in 0..ROUNDS {
            db.modify_table("T", |rel| {
                Modifier::new(rel, "VT")?.insert_open(
                    vec![Value::Int(100 + r), Value::Int(-1), Value::Bool(false)],
                    tp(r % 40),
                )
            })?;
            *acked += 1;
        }
        db.persist()?;
        *acked += 1;
    }
    let db = Database::open_with_vfs(dir, opts(), vfs)?;
    let mut keys: Vec<i64> = db
        .table("T")?
        .data()
        .iter()
        .map(|t| t.value(0).as_int().expect("int key"))
        .collect();
    keys.sort_unstable();
    *acked += 1;
    Ok(keys)
}

/// The committed-prefix oracle: reopening `dir` on the healthy fs must
/// find either no table (nothing was ever acknowledged) or the base rows
/// plus the markers of rounds `0..m` for some `m` — with every
/// *acknowledged* round durable (`m ≥` the acked round count).
fn assert_committed_prefix(dir: &Path, acked: u32, site: usize) {
    let db = Database::open_with(dir, opts())
        .unwrap_or_else(|e| panic!("site {site}: healthy reopen failed: {e}"));
    if !db.table_names().contains(&"T".to_string()) {
        assert_eq!(acked, 0, "site {site}: acknowledged create lost");
        return;
    }
    let mut keys: Vec<i64> = db
        .table("T")
        .unwrap_or_else(|e| panic!("site {site}: recovered table unreadable: {e}"))
        .data()
        .iter()
        .map(|t| t.value(0).as_int().expect("int key"))
        .collect();
    keys.sort_unstable();
    let rounds = keys.iter().filter(|&&k| k >= 100).count() as i64;
    let mut expect: Vec<i64> = (0..BASE).collect();
    expect.extend((0..rounds).map(|r| 100 + r));
    assert_eq!(
        keys, expect,
        "site {site}: recovered state is not a committed prefix"
    );
    let acked_rounds = acked.saturating_sub(1).min(ROUNDS as u32) as i64;
    assert!(
        rounds >= acked_rounds,
        "site {site}: acknowledged round lost ({rounds} durable < {acked_rounds} acked)"
    );
}

/// Runs the workload with one armed fault and checks the contract for
/// that (site, kind, mode) cell.
fn check_site(at: usize, op: OpKind, kind: FaultKind, mode: FaultMode, baseline: &[i64]) {
    let label = format!("site {at} ({op:?}) {kind:?} {mode:?}");
    let dir = TempDir::new("sweep-run");
    let vfs = Arc::new(FaultVfs::with_fault(FaultPlan {
        at: at as u64,
        kind,
        mode,
    }));
    let mut acked = 0;
    let result = workload(dir.path(), Arc::clone(&vfs) as Arc<dyn Vfs>, &mut acked);
    assert!(vfs.injected() > 0, "{label}: fault never fired");
    match (kind, op) {
        (FaultKind::Transient, OpKind::Read | OpKind::Write) => {
            let keys = result.unwrap_or_else(|e| panic!("{label}: not absorbed: {e}"));
            assert_eq!(keys, baseline, "{label}: result diverged after retry");
        }
        _ => {
            // Sync faults are fail-stop even when transient; permanent
            // faults always surface. Either way: a typed error (the `?`
            // chain — no panic reaches here), never a torn store.
            let err = result.expect_err(&format!("{label}: fault swallowed"));
            assert!(
                !err.to_string().is_empty(),
                "{label}: error must describe the failure"
            );
        }
    }
    assert_committed_prefix(dir.path(), acked, at);
}

/// Baseline run under a tracing vfs: the op-kind trace enumerates the
/// sweep's injection sites, and the result is the equivalence oracle.
fn baseline() -> (Vec<OpKind>, Vec<i64>) {
    let dir = TempDir::new("sweep-base");
    let vfs = Arc::new(FaultVfs::tracing());
    let mut acked = 0;
    let keys = workload(dir.path(), Arc::clone(&vfs) as Arc<dyn Vfs>, &mut acked)
        .expect("fault-free baseline");
    assert_eq!(acked, STEPS);
    let trace = vfs.trace();
    // The workload must actually exercise all three op classes, or the
    // sweep proves nothing.
    for class in [OpKind::Read, OpKind::Write, OpKind::Sync] {
        assert!(
            trace.contains(&class),
            "workload has no {class:?} site to sweep"
        );
    }
    (trace, keys)
}

#[test]
fn transient_faults_at_every_site_are_absorbed_or_fail_stop() {
    let (trace, keys) = baseline();
    println!("sweeping {} transient sites", trace.len());
    for (at, &op) in trace.iter().enumerate() {
        check_site(at, op, FaultKind::Transient, FaultMode::Error, &keys);
        // Torn variants: short writes for write sites, reported-failed
        // fsyncs for sync sites.
        match op {
            OpKind::Write => check_site(at, op, FaultKind::Transient, FaultMode::ShortWrite, &keys),
            OpKind::Sync => check_site(at, op, FaultKind::Transient, FaultMode::FailSync, &keys),
            OpKind::Read => {}
        }
    }
}

#[test]
fn permanent_faults_at_every_site_surface_typed_and_recover_a_prefix() {
    let (trace, keys) = baseline();
    println!("sweeping {} permanent sites", trace.len());
    for (at, &op) in trace.iter().enumerate() {
        check_site(at, op, FaultKind::Permanent, FaultMode::Error, &keys);
    }
}

#[test]
fn poisoned_handle_fails_every_later_operation_until_reopen() {
    // Arm the first sync fault: the create-table commit's WAL fsync.
    let dir = TempDir::new("sweep-poison");
    let probe = Arc::new(FaultVfs::tracing());
    {
        let mut acked = 0;
        workload(dir.path(), Arc::clone(&probe) as Arc<dyn Vfs>, &mut acked).unwrap();
    }
    let first_sync = probe
        .trace()
        .iter()
        .position(|k| *k == OpKind::Sync)
        .expect("workload fsyncs") as u64;

    let dir = TempDir::new("sweep-poison-run");
    let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::with_fault(FaultPlan {
        at: first_sync,
        kind: FaultKind::Transient,
        mode: FaultMode::FailSync,
    }));
    let db = Database::open_with_vfs(dir.path(), opts(), vfs).unwrap();
    let err = db
        .create_table(
            "T",
            OngoingRelation::from_tuples(schema(), base_rows()).unwrap(),
        )
        .expect_err("failed fsync must fail the commit");
    assert!(
        err.to_string().contains("fsync"),
        "unexpected error shape: {err}"
    );
    // Fail-stop: the handle is poisoned even though the fault was
    // transient — every later durable operation refuses until reopen.
    let err = db
        .create_table(
            "T",
            OngoingRelation::from_tuples(schema(), base_rows()).unwrap(),
        )
        .expect_err("poisoned handle must refuse further commits");
    assert!(
        err.to_string().contains("poisoned"),
        "expected poisoned-handle error, got: {err}"
    );
    drop(db);
    // A fresh open re-reads the actual on-disk state and works.
    let db = Database::open_with(dir.path(), opts()).unwrap();
    db.create_table(
        "T",
        OngoingRelation::from_tuples(schema(), base_rows()).unwrap(),
    )
    .unwrap();
    assert_eq!(db.table("T").unwrap().data().len(), BASE as usize);
}
