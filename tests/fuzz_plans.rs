//! Randomized whole-plan differential testing.
//!
//! Generates random logical plans (selections, joins, products, unions,
//! differences, projections, aggregations — nested up to depth 3) over
//! randomly generated ongoing relations and verifies the paper's master
//! criterion `∀rt: ∥Q(D)∥rt ≡ Q(∥D∥rt)` at every breakpoint-relevant
//! reference time, under every join strategy.
//!
//! This is the heaviest single guarantee in the suite: any divergence
//! between the ongoing executors (interval-set arithmetic, RT
//! restriction) and the instantiated executors (fixed evaluation) for any
//! generated plan shape is a bug.

use ongoing_core::allen::TemporalPredicate;
use ongoing_core::time::tp;
use ongoing_core::{IntervalSet, OngoingInterval, OngoingPoint, TimePoint};
use ongoing_relation::aggregate::AggFn;
use ongoing_relation::{Expr, OngoingRelation, Schema, Value};
use ongoingdb::engine::plan::{compile, JoinStrategy, PlannerConfig};
use ongoingdb::engine::{Database, LogicalPlan, QueryBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const LO: i64 = -10;
const HI: i64 = 10;

fn random_point(rng: &mut SmallRng) -> OngoingPoint {
    let a = rng.gen_range(LO..=HI);
    let b = rng.gen_range(a..=HI + 3);
    match rng.gen_range(0..5) {
        0 => OngoingPoint::fixed(tp(a)),
        1 => OngoingPoint::now(),
        2 => OngoingPoint::growing(tp(a)),
        3 => OngoingPoint::limited(tp(b)),
        _ => OngoingPoint::new(tp(a), tp(b)).unwrap(),
    }
}

fn random_interval(rng: &mut SmallRng) -> OngoingInterval {
    OngoingInterval::new(random_point(rng), random_point(rng))
}

fn random_rt_set(rng: &mut SmallRng) -> IntervalSet {
    if rng.gen_bool(0.5) {
        return IntervalSet::full();
    }
    let n = rng.gen_range(1..3);
    IntervalSet::from_ranges((0..n).map(|_| {
        let s = rng.gen_range(LO..=HI);
        (tp(s), tp(s + rng.gen_range(1..8i64)))
    }))
}

/// A random relation over (K: Int, C: Str, VT: OngoingInterval).
fn random_relation(rng: &mut SmallRng, rows: usize) -> OngoingRelation {
    let schema = Schema::builder().int("K").str("C").interval("VT").build();
    let mut r = OngoingRelation::new(schema);
    for _ in 0..rows {
        r.insert_with_rt(
            vec![
                Value::Int(rng.gen_range(0..4)),
                Value::str(["x", "y", "z"][rng.gen_range(0..3usize)]),
                Value::Interval(random_interval(rng)),
            ],
            random_rt_set(rng),
        )
        .unwrap();
    }
    r
}

fn random_pred(rng: &mut SmallRng, schema: &Schema) -> Expr {
    let col = |rng: &mut SmallRng, schema: &Schema, want_interval: bool| {
        let candidates: Vec<usize> = schema
            .attrs()
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                if want_interval {
                    a.ty == ongoing_relation::ValueType::OngoingInterval
                } else {
                    a.ty == ongoing_relation::ValueType::Int
                        || a.ty == ongoing_relation::ValueType::Str
                }
            })
            .map(|(i, _)| i)
            .collect();
        candidates[rng.gen_range(0..candidates.len())]
    };
    match rng.gen_range(0..5) {
        0 => {
            // Fixed equality between two fixed columns or a literal.
            let i = col(rng, schema, false);
            if rng.gen_bool(0.5) {
                let j = col(rng, schema, false);
                if schema.attr(i).unwrap().ty == schema.attr(j).unwrap().ty {
                    return Expr::Col(i).eq(Expr::Col(j));
                }
            }
            match schema.attr(i).unwrap().ty {
                ongoing_relation::ValueType::Int => {
                    Expr::Col(i).eq(Expr::lit(rng.gen_range(0..4i64)))
                }
                _ => Expr::Col(i).eq(Expr::lit(["x", "y", "z"][rng.gen_range(0..3usize)])),
            }
        }
        1 => {
            // Temporal predicate between two interval columns.
            let preds = TemporalPredicate::ALL;
            let p = preds[rng.gen_range(0..preds.len())];
            Expr::Col(col(rng, schema, true)).temporal(p, Expr::Col(col(rng, schema, true)))
        }
        2 => {
            // Temporal predicate against a literal window.
            let preds = TemporalPredicate::ALL;
            let p = preds[rng.gen_range(0..preds.len())];
            Expr::Col(col(rng, schema, true))
                .temporal(p, Expr::lit(Value::Interval(random_interval(rng))))
        }
        3 => {
            // Point comparison: START/END vs now or a date.
            let c = Expr::Col(col(rng, schema, true));
            let lhs = if rng.gen_bool(0.5) {
                c.start_point()
            } else {
                c.end_point()
            };
            let rhs = if rng.gen_bool(0.5) {
                Expr::lit(Value::Point(OngoingPoint::now()))
            } else {
                Expr::lit(Value::Time(tp(rng.gen_range(LO..=HI))))
            };
            match rng.gen_range(0..3) {
                0 => lhs.lt(rhs),
                1 => lhs.le(rhs),
                _ => lhs.eq(rhs),
            }
        }
        _ => {
            // Boolean combination.
            let a = random_pred(rng, schema);
            let b = random_pred(rng, schema);
            match rng.gen_range(0..3) {
                0 => a.and(b),
                1 => a.or(b),
                _ => a.not(),
            }
        }
    }
}

fn random_plan(rng: &mut SmallRng, db: &Database, depth: usize) -> LogicalPlan {
    let table = ["T0", "T1", "T2"][rng.gen_range(0..3usize)];
    let alias = format!("A{}", rng.gen_range(0..100));
    let mut b = QueryBuilder::scan_as(db, table, &alias).unwrap();
    if depth > 0 {
        match rng.gen_range(0..6) {
            0 => {
                // Nested join.
                let rhs_table = ["T0", "T1", "T2"][rng.gen_range(0..3usize)];
                let rhs_alias = format!("B{}", rng.gen_range(0..100));
                let rhs = QueryBuilder::scan_as(db, rhs_table, &rhs_alias).unwrap();
                let schema = b.schema().product(rhs.schema());
                let pred = random_pred(rng, &schema);
                b = b.join(rhs, |_| Ok(pred)).unwrap();
            }
            1 => {
                let schema = b.schema().clone();
                let pred = random_pred(rng, &schema);
                b = b.filter(|_| Ok(pred)).unwrap();
            }
            2 => {
                // Union of two selections over the same table.
                let other = QueryBuilder::scan_as(db, table, "U").unwrap();
                let pred = random_pred(rng, other.schema());
                let other = other.filter(|_| Ok(pred)).unwrap();
                b = b.union(other).unwrap();
            }
            3 => {
                let other = QueryBuilder::scan_as(db, table, "D").unwrap();
                let pred = random_pred(rng, other.schema());
                let other = other.filter(|_| Ok(pred)).unwrap();
                b = b.difference(other).unwrap();
            }
            4 => {
                // Aggregate over the scan.
                let group = if rng.gen_bool(0.5) {
                    vec!["K"]
                } else {
                    vec!["C"]
                };
                b = b
                    .aggregate(&group, vec![AggFn::CountStar], vec!["cnt".into()])
                    .unwrap();
            }
            _ => {
                // Projection (drop a column).
                let n = b.schema().len();
                let keep: Vec<usize> = (0..n).filter(|&i| i != n - 1 || n == 1).collect();
                let names: Vec<String> = keep
                    .iter()
                    .map(|&i| b.schema().attrs()[i].name.clone())
                    .collect();
                let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
                b = b.project_cols(&refs).unwrap();
            }
        }
    }
    b.build()
}

#[test]
fn random_plans_commute_with_bind() {
    let mut rng = SmallRng::seed_from_u64(20260609);
    let db = Database::new();
    for (i, rows) in [7usize, 5, 9].iter().enumerate() {
        db.create_table(&format!("T{i}"), random_relation(&mut rng, *rows))
            .unwrap();
    }
    let rts: Vec<TimePoint> = (LO - 4..=HI + 6).map(tp).collect();
    for trial in 0..120 {
        let plan = random_plan(&mut rng, &db, 1 + trial % 2);
        for strategy in [JoinStrategy::Auto, JoinStrategy::NestedLoop] {
            let cfg = PlannerConfig {
                join_strategy: strategy,
                ..PlannerConfig::default()
            };
            let phys = compile(&db, &plan, &cfg).unwrap();
            let ongoing = match phys.execute() {
                Ok(o) => o,
                Err(e) => panic!(
                    "trial {trial} ({strategy:?}): {e}\nplan:\n{}",
                    phys.explain()
                ),
            };
            for &rt in &rts {
                let lhs = ongoing.bind(rt);
                let rhs = phys.execute_at(rt).unwrap();
                assert_eq!(
                    lhs,
                    rhs,
                    "trial {trial} ({strategy:?}): divergence at rt={rt}\nplan:\n{}",
                    phys.explain()
                );
            }
        }
    }
}

#[test]
fn random_plans_agree_across_join_strategies() {
    let mut rng = SmallRng::seed_from_u64(77);
    let db = Database::new();
    for i in 0..3 {
        db.create_table(&format!("T{i}"), random_relation(&mut rng, 6))
            .unwrap();
    }
    for trial in 0..40 {
        let plan = random_plan(&mut rng, &db, 1);
        let mut reference: Option<Vec<String>> = None;
        for strategy in [
            JoinStrategy::Auto,
            JoinStrategy::NestedLoop,
            JoinStrategy::Hash,
            JoinStrategy::Sweep,
        ] {
            let cfg = PlannerConfig {
                join_strategy: strategy,
                ..PlannerConfig::default()
            };
            let rel = compile(&db, &plan, &cfg).unwrap().execute().unwrap();
            let mut rows: Vec<String> = rel
                .coalesce()
                .tuples()
                .iter()
                .map(|t| t.to_string())
                .collect();
            rows.sort();
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(&rows, r, "trial {trial} strategy {strategy:?}"),
            }
        }
    }
}
