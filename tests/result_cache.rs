//! Versioned result cache suite (PR 10).
//!
//! Pinned contracts:
//!
//! 1. **Hits are bit-identical to execution.** A cached answer — the
//!    relation *and* the deterministic work-unit stats — equals what the
//!    executor produces, at every pool size. The cache may change wall
//!    time, never results or recorded metrics.
//! 2. **Publications invalidate for free.** A table publication swaps the
//!    table `Arc`; the very next lookup misses (version identity), with no
//!    invalidation registry anywhere.
//! 3. **The budget holds.** Estimated resident bytes never exceed the
//!    configured budget; overflow evicts by GDSF rank and counts
//!    `ongoingdb_result_cache_evictions`.
//! 4. **Keyed read paths are transparent.** `KeyScan` and keyed hash-join
//!    builds (borrowed from the store's per-chunk `KeyMap`s) return
//!    exactly what the unindexed plans return, ongoing and instantiated.

use ongoing_core::time::tp;
use ongoing_core::OngoingInterval;
use ongoing_relation::{OngoingRelation, Schema, Value};
use ongoingdb::engine::exec::{
    RESULT_CACHE_BYTES_METRIC, RESULT_CACHE_EVICTIONS_METRIC, RESULT_CACHE_HITS_METRIC,
    RESULT_CACHE_MISSES_METRIC,
};
use ongoingdb::engine::plan::compile;
use ongoingdb::engine::sql::{plan_query, prepare, query, run_statement};
use ongoingdb::engine::{Database, MaterializedView, PlannerConfig, RefreshOutcome};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `rows` bugs over (K: Int, C: Str, VT: OngoingInterval), deterministic.
fn bug_relation(rows: usize, indexed: bool) -> OngoingRelation {
    let schema = Schema::builder().int("K").str("C").interval("VT").build();
    let mut r = OngoingRelation::new(schema);
    for i in 0..rows as i64 {
        let iv = if i % 3 == 0 {
            OngoingInterval::from_until_now(tp(i % 40))
        } else {
            OngoingInterval::fixed(tp(i % 40), tp(i % 40 + 5 + i % 7))
        };
        r.insert(vec![
            Value::Int(i % 23),
            Value::str(["x", "y", "z"][(i % 3) as usize]),
            Value::Interval(iv),
        ])
        .unwrap();
    }
    if indexed {
        r.create_key_index(0).unwrap();
    }
    // Dense chunks, empty pending tail: the keyed-build gate measures an
    // overlay-free store, and chunk boundaries are stable across runs.
    r.compact();
    r
}

fn fixture(indexed: bool) -> Database {
    let db = Database::new();
    db.create_table("T", bug_relation(600, indexed)).unwrap();
    db.create_table("S", bug_relation(60, false)).unwrap();
    db
}

fn counter(db: &Database, name: &str) -> u64 {
    db.metrics_snapshot().value(name)
}

#[test]
fn repeated_execution_hits_the_cache_with_identical_results() {
    let sql = "SELECT K, VT FROM T WHERE K = 7";
    for parallelism in [1usize, 4] {
        let db = fixture(true);
        let cfg = PlannerConfig {
            parallelism,
            ..PlannerConfig::default()
        };
        // Uncached reference: compile and execute directly, no cache seam.
        let phys = compile(&db, &plan_query(&db, sql).unwrap(), &cfg).unwrap();
        let (reference, ref_stats) = phys.execute_with_stats(&cfg.exec_context()).unwrap();
        assert!(!reference.is_empty());

        let stmt = prepare(&db, sql).unwrap();
        let hits0 = counter(&db, RESULT_CACHE_HITS_METRIC);
        let misses0 = counter(&db, RESULT_CACHE_MISSES_METRIC);
        for round in 0..3 {
            let (rel, stats) = stmt.execute_with(&db, &cfg).unwrap();
            assert_eq!(
                rel, reference,
                "pool {parallelism}, round {round}: cached result diverged"
            );
            assert_eq!(
                stats, ref_stats,
                "pool {parallelism}, round {round}: cached stats diverged"
            );
        }
        assert_eq!(counter(&db, RESULT_CACHE_MISSES_METRIC), misses0 + 1);
        assert_eq!(counter(&db, RESULT_CACHE_HITS_METRIC), hits0 + 2);
    }
}

#[test]
fn publication_invalidates_and_the_next_read_sees_new_data() {
    let db = fixture(true);
    let sql = "SELECT K, C FROM T WHERE K = 7";
    let stmt = prepare(&db, sql).unwrap();
    let before = stmt.execute(&db).unwrap().len();
    stmt.execute(&db).unwrap(); // hit
    let hits = counter(&db, RESULT_CACHE_HITS_METRIC);
    let misses = counter(&db, RESULT_CACHE_MISSES_METRIC);
    // Publish: the table Arc swaps, so the cached entry is stale.
    db.modify_table("T", |r| {
        r.insert(vec![
            Value::Int(7),
            Value::str("fresh"),
            Value::Interval(OngoingInterval::from_until_now(tp(1))),
        ])?;
        Ok(())
    })
    .unwrap();
    let after = stmt.execute(&db).unwrap();
    assert_eq!(
        after.len(),
        before + 1,
        "stale hit served after publication"
    );
    assert!(after.iter().any(|t| t.value(1).as_str() == Some("fresh")));
    assert_eq!(counter(&db, RESULT_CACHE_MISSES_METRIC), misses + 1);
    // The refreshed entry serves hits again.
    stmt.execute(&db).unwrap();
    assert_eq!(counter(&db, RESULT_CACHE_HITS_METRIC), hits + 1);
}

#[test]
fn budget_is_respected_and_overflow_evicts() {
    let mut db = Database::new();
    db.configure_result_cache(4096);
    db.create_table("T", bug_relation(600, true)).unwrap();
    db.create_table("S", bug_relation(60, false)).unwrap();
    // Distinct point queries, each with a small result, until the budget
    // cannot hold them all.
    for k in 0..12 {
        run_statement(&db, &format!("SELECT K, C FROM T WHERE K = {k}")).unwrap();
    }
    let budget = db.result_cache().budget();
    assert!(budget == 4096);
    assert!(
        db.result_cache().resident_bytes() <= budget,
        "resident {} exceeds budget {budget}",
        db.result_cache().resident_bytes()
    );
    assert_eq!(
        counter(&db, RESULT_CACHE_BYTES_METRIC),
        db.result_cache().resident_bytes()
    );
    assert!(
        counter(&db, RESULT_CACHE_EVICTIONS_METRIC) > 0,
        "12 entries in 4 KiB must evict"
    );
    // Whatever survived still answers correctly.
    let r = query(&db, "SELECT K, C FROM T WHERE K = 11").unwrap();
    assert!(r.iter().all(|t| t.value(0) == &Value::Int(11)));
}

#[test]
fn zero_budget_disables_the_cache_without_changing_results() {
    let mut db = Database::new();
    db.configure_result_cache(0);
    db.create_table("T", bug_relation(600, true)).unwrap();
    let a = query(&db, "SELECT K FROM T WHERE K = 3").unwrap();
    let b = query(&db, "SELECT K FROM T WHERE K = 3").unwrap();
    assert_eq!(a, b);
    assert_eq!(counter(&db, RESULT_CACHE_HITS_METRIC), 0);
    assert_eq!(counter(&db, RESULT_CACHE_MISSES_METRIC), 0);
}

#[test]
fn keyed_read_paths_match_the_unindexed_plans() {
    let indexed = fixture(true);
    let plain = fixture(false);
    let cases = [
        "SELECT K, C, VT FROM T WHERE K = 7",
        "SELECT K, C, VT FROM T WHERE K = 7 AND C = 'x'",
        "SELECT S.K, T.C FROM S JOIN T ON S.K = T.K",
    ];
    for (i, sql) in cases.iter().enumerate() {
        for parallelism in [1usize, 4] {
            let cfg = PlannerConfig {
                parallelism,
                ..PlannerConfig::default()
            };
            let pi = compile(&indexed, &plan_query(&indexed, sql).unwrap(), &cfg).unwrap();
            let pp = compile(&plain, &plan_query(&plain, sql).unwrap(), &cfg).unwrap();
            if i < 2 {
                assert!(
                    pi.explain().contains("KeyScan"),
                    "case {i} should lower to a KeyScan:\n{}",
                    pi.explain()
                );
            } else {
                assert!(
                    pi.explain().contains("(keyed build)"),
                    "case {i} should borrow the keyed build:\n{}",
                    pi.explain()
                );
            }
            assert!(!pp.explain().contains("KeyScan"));
            assert!(!pp.explain().contains("(keyed build)"));
            let (ri, _si) = pi.execute_with_stats(&cfg.exec_context()).unwrap();
            let (rp, _sp) = pp.execute_with_stats(&cfg.exec_context()).unwrap();
            assert_eq!(ri, rp, "case {i}, pool {parallelism}: ongoing diverged");
            for rt in [tp(-5), tp(0), tp(20), tp(60)] {
                let (rows_i, _) = pi.rows_at_with_stats(rt, &cfg.exec_context()).unwrap();
                let (rows_p, _) = pp.rows_at_with_stats(rt, &cfg.exec_context()).unwrap();
                assert_eq!(
                    rows_i, rows_p,
                    "case {i}, pool {parallelism}, rt {rt}: instantiated diverged"
                );
            }
        }
    }
}

#[test]
fn materialized_views_ride_the_cache_and_skip_clean_refreshes() {
    let db = fixture(true);
    let plan = plan_query(&db, "SELECT K, VT FROM T WHERE K = 7").unwrap();
    let misses0 = counter(&db, RESULT_CACHE_MISSES_METRIC);
    let view = MaterializedView::create(&db, "v", plan.clone(), PlannerConfig::default()).unwrap();
    // Re-creating the same view over unchanged versions is a cache hit.
    let hits0 = counter(&db, RESULT_CACHE_HITS_METRIC);
    let again = MaterializedView::create(&db, "v2", plan, PlannerConfig::default()).unwrap();
    assert_eq!(view.result(), again.result());
    assert_eq!(counter(&db, RESULT_CACHE_HITS_METRIC), hits0 + 1);
    assert_eq!(counter(&db, RESULT_CACHE_MISSES_METRIC), misses0 + 1);
    // A clean refresh does not even consult the cache: O(#tables) no-op.
    let mut view = view;
    let lookups = counter(&db, RESULT_CACHE_HITS_METRIC) + counter(&db, RESULT_CACHE_MISSES_METRIC);
    assert_eq!(view.refresh(&db).unwrap(), RefreshOutcome::Unchanged);
    assert_eq!(
        counter(&db, RESULT_CACHE_HITS_METRIC) + counter(&db, RESULT_CACHE_MISSES_METRIC),
        lookups
    );
    // After a publication the refresh recomputes and sees the new row.
    let before = view.len();
    db.modify_table("T", |r| {
        r.insert(vec![
            Value::Int(7),
            Value::str("new"),
            Value::Interval(OngoingInterval::from_until_now(tp(2))),
        ])?;
        Ok(())
    })
    .unwrap();
    assert_eq!(view.refresh(&db).unwrap(), RefreshOutcome::Recomputed);
    assert_eq!(view.len(), before + 1);
}

/// Randomized sweep: random predicates over the fixture tables, each run
/// uncached (direct execution) and through the cache seam twice, at pool
/// sizes 1 and 4 — results and work stats must agree everywhere.
#[test]
fn fuzz_cached_execution_is_bit_identical_at_every_pool_size() {
    let mut rng = SmallRng::seed_from_u64(20260808);
    let db = fixture(true);
    for trial in 0..10 {
        let k = rng.gen_range(0..23i64);
        let c = ["x", "y", "z"][rng.gen_range(0..3usize)];
        let sql = match rng.gen_range(0..4) {
            0 => format!("SELECT K, C, VT FROM T WHERE K = {k}"),
            1 => format!("SELECT K, VT FROM T WHERE K = {k} AND C = '{c}'"),
            2 => format!(
                "SELECT K, C FROM T WHERE VT OVERLAPS PERIOD(DATE '2019-01-{:02}', DATE '2019-02-01')",
                rng.gen_range(1..28)
            ),
            _ => format!("SELECT S.K, T.C FROM S JOIN T ON S.K = T.K AND S.C = '{c}'"),
        };
        let stmt = prepare(&db, &sql).unwrap();
        for parallelism in [1usize, 4] {
            let cfg = PlannerConfig {
                parallelism,
                ..PlannerConfig::default()
            };
            let phys = compile(&db, &plan_query(&db, &sql).unwrap(), &cfg).unwrap();
            let (reference, ref_stats) = phys.execute_with_stats(&cfg.exec_context()).unwrap();
            for round in 0..2 {
                let (rel, stats) = stmt.execute_with(&db, &cfg).unwrap();
                assert_eq!(
                    rel, reference,
                    "trial {trial} pool {parallelism} round {round}: {sql}"
                );
                assert_eq!(
                    stats, ref_stats,
                    "trial {trial} pool {parallelism} round {round}: {sql}"
                );
            }
        }
    }
    assert!(counter(&db, RESULT_CACHE_HITS_METRIC) > 0);
}
