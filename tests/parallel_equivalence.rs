//! Parallel-vs-serial equivalence fuzzing.
//!
//! The partition-parallel executors promise a strong determinism contract:
//! for *any* plan, executing with `parallelism` in {2, 4, 8} produces an
//! [`OngoingRelation`] that is **identical** (same tuples, same order, same
//! reference times) to single-threaded execution, the instantiated row bags
//! match row-for-row, and the [`ExecStats`] work-unit counters are equal.
//! Relations here are sized well above the executor's internal morsel
//! thresholds so the multi-worker code paths genuinely fan out.

use ongoing_core::allen::TemporalPredicate;
use ongoing_core::time::tp;
use ongoing_core::{IntervalSet, OngoingInterval, OngoingPoint, TimePoint};
use ongoing_relation::{Expr, OngoingRelation, Schema, Value};
use ongoingdb::engine::plan::{compile, JoinStrategy, PlannerConfig};
use ongoingdb::engine::{
    Database, ExecContext, LogicalPlan, QueryBuilder, TraceCollector, WorkerPool,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const LO: i64 = -40;
const HI: i64 = 40;

fn random_point(rng: &mut SmallRng) -> OngoingPoint {
    let a = rng.gen_range(LO..=HI);
    let b = rng.gen_range(a..=HI + 5);
    match rng.gen_range(0..5) {
        0 => OngoingPoint::fixed(tp(a)),
        1 => OngoingPoint::now(),
        2 => OngoingPoint::growing(tp(a)),
        3 => OngoingPoint::limited(tp(b)),
        _ => OngoingPoint::new(tp(a), tp(b)).unwrap(),
    }
}

fn random_interval(rng: &mut SmallRng) -> OngoingInterval {
    OngoingInterval::new(random_point(rng), random_point(rng))
}

fn random_rt_set(rng: &mut SmallRng) -> IntervalSet {
    if rng.gen_bool(0.5) {
        return IntervalSet::full();
    }
    let n = rng.gen_range(1..3);
    IntervalSet::from_ranges((0..n).map(|_| {
        let s = rng.gen_range(LO..=HI);
        (tp(s), tp(s + rng.gen_range(1..20i64)))
    }))
}

/// A random relation over (K: Int, C: Str, VT: OngoingInterval).
fn random_relation(rng: &mut SmallRng, rows: usize) -> OngoingRelation {
    let schema = Schema::builder().int("K").str("C").interval("VT").build();
    let mut r = OngoingRelation::new(schema);
    for _ in 0..rows {
        r.insert_with_rt(
            vec![
                Value::Int(rng.gen_range(0..16)),
                Value::str(["x", "y", "z"][rng.gen_range(0..3usize)]),
                Value::Interval(random_interval(rng)),
            ],
            random_rt_set(rng),
        )
        .unwrap();
    }
    r
}

fn random_pred(rng: &mut SmallRng, interval_cols: &[usize]) -> Expr {
    let icol = |rng: &mut SmallRng| interval_cols[rng.gen_range(0..interval_cols.len())];
    match rng.gen_range(0..4) {
        0 => {
            // Equality on the first fixed column against a literal.
            Expr::Col(0).eq(Expr::lit(rng.gen_range(0..16i64)))
        }
        1 => {
            let preds = TemporalPredicate::ALL;
            let p = preds[rng.gen_range(0..preds.len())];
            Expr::Col(icol(rng)).temporal(p, Expr::Col(icol(rng)))
        }
        2 => {
            let preds = TemporalPredicate::ALL;
            let p = preds[rng.gen_range(0..preds.len())];
            Expr::Col(icol(rng)).temporal(p, Expr::lit(Value::Interval(random_interval(rng))))
        }
        _ => {
            let a = random_pred(rng, interval_cols);
            let b = random_pred(rng, interval_cols);
            if rng.gen_bool(0.5) {
                a.and(b)
            } else {
                a.or(b)
            }
        }
    }
}

/// Random plan shapes that exercise every partition-parallel operator:
/// morsel filters over the big table, hash/sweep/nested-loop joins with a
/// partitioned outer side, unions and projections on top.
fn random_plan(rng: &mut SmallRng, db: &Database) -> LogicalPlan {
    let b = QueryBuilder::scan_as(db, "Big", "A").unwrap();
    match rng.gen_range(0..5) {
        0 => {
            // Filter pipeline over the big table.
            let pred = random_pred(rng, &[2]);
            b.filter(|_| Ok(pred)).unwrap().build()
        }
        1 => {
            // Equi-join (hash join) Mid ⋈ Small plus a temporal residual.
            let l = QueryBuilder::scan_as(db, "Mid", "L").unwrap();
            let r = QueryBuilder::scan_as(db, "Small", "R").unwrap();
            l.join(r, |s| {
                Ok(Expr::col(s, "L.K")?
                    .eq(Expr::col(s, "R.K")?)
                    .and(Expr::col(s, "L.VT")?.overlaps(Expr::col(s, "R.VT")?)))
            })
            .unwrap()
            .build()
        }
        2 => {
            // Pure temporal join → sweep join under Auto.
            let l = QueryBuilder::scan_as(db, "Mid", "L").unwrap();
            let r = QueryBuilder::scan_as(db, "Small", "R").unwrap();
            l.join(r, |s| {
                Ok(Expr::col(s, "L.VT")?.overlaps(Expr::col(s, "R.VT")?))
            })
            .unwrap()
            .build()
        }
        3 => {
            // Non-equi, non-sweepable predicate → nested loops.
            let l = QueryBuilder::scan_as(db, "Mid", "L").unwrap();
            let r = QueryBuilder::scan_as(db, "Small", "R").unwrap();
            let pred = random_pred(rng, &[2, 5]);
            l.join(r, |_| Ok(pred)).unwrap().build()
        }
        _ => {
            // Union of two filtered scans, projected.
            let p1 = random_pred(rng, &[2]);
            let p2 = random_pred(rng, &[2]);
            let left = b.filter(|_| Ok(p1)).unwrap();
            let right = QueryBuilder::scan_as(db, "Big", "B")
                .unwrap()
                .filter(|_| Ok(p2))
                .unwrap();
            left.union(right)
                .unwrap()
                .project_cols(&["A.K", "A.VT"])
                .unwrap()
                .build()
        }
    }
}

fn fuzz_db(rng: &mut SmallRng) -> Database {
    let db = Database::new();
    // Sizes chosen to exceed the executors' morsel thresholds so parallel
    // runs really use >1 worker per operator.
    db.create_table("Big", random_relation(rng, 2000)).unwrap();
    db.create_table("Mid", random_relation(rng, 700)).unwrap();
    db.create_table("Small", random_relation(rng, 60)).unwrap();
    db
}

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    let mut rng = SmallRng::seed_from_u64(20260730);
    let db = fuzz_db(&mut rng);
    let rts: Vec<TimePoint> = [LO - 3, -7, 0, 13, HI + 4].map(tp).into();
    for trial in 0..14 {
        let plan = random_plan(&mut rng, &db);
        let cfg = PlannerConfig::default();
        let phys = compile(&db, &plan, &cfg).unwrap();
        let (serial, serial_stats) = phys.execute_with_stats(&ExecContext::serial()).unwrap();
        for p in [2usize, 4, 8] {
            let ctx = ExecContext::new(p);
            let (parallel, parallel_stats) = phys.execute_with_stats(&ctx).unwrap();
            assert_eq!(
                parallel,
                serial,
                "trial {trial}, parallelism {p}: ongoing result diverged\nplan:\n{}",
                phys.explain()
            );
            assert_eq!(
                parallel_stats,
                serial_stats,
                "trial {trial}, parallelism {p}: work-unit counts diverged\nplan:\n{}",
                phys.explain_with_stats(&serial_stats)
            );
            for &rt in &rts {
                let (rows_s, stats_s) =
                    phys.rows_at_with_stats(rt, &ExecContext::serial()).unwrap();
                let (rows_p, stats_p) = phys.rows_at_with_stats(rt, &ctx).unwrap();
                assert_eq!(
                    rows_p, rows_s,
                    "trial {trial}, parallelism {p}, rt {rt}: instantiated rows diverged"
                );
                assert_eq!(
                    stats_p, stats_s,
                    "trial {trial}, parallelism {p}, rt {rt}: instantiated stats diverged"
                );
            }
        }
    }
}

#[test]
fn parallel_equivalence_holds_for_every_join_strategy() {
    let mut rng = SmallRng::seed_from_u64(4242);
    let db = fuzz_db(&mut rng);
    // One representative plan per join family, pinned through the planner
    // knob so each physical operator is covered even if Auto would choose
    // differently.
    let l = QueryBuilder::scan_as(&db, "Mid", "L").unwrap();
    let r = QueryBuilder::scan_as(&db, "Small", "R").unwrap();
    let plan = l
        .join(r, |s| {
            Ok(Expr::col(s, "L.K")?
                .eq(Expr::col(s, "R.K")?)
                .and(Expr::col(s, "L.VT")?.overlaps(Expr::col(s, "R.VT")?)))
        })
        .unwrap()
        .build();
    for strategy in [
        JoinStrategy::Auto,
        JoinStrategy::NestedLoop,
        JoinStrategy::Hash,
        JoinStrategy::Sweep,
    ] {
        let cfg = PlannerConfig {
            join_strategy: strategy,
            ..PlannerConfig::default()
        };
        let phys = compile(&db, &plan, &cfg).unwrap();
        let (serial, serial_stats) = phys.execute_with_stats(&ExecContext::serial()).unwrap();
        for p in [2usize, 4, 8] {
            let (parallel, parallel_stats) = phys.execute_with_stats(&ExecContext::new(p)).unwrap();
            assert_eq!(parallel, serial, "{strategy:?} at parallelism {p}");
            assert_eq!(
                parallel_stats, serial_stats,
                "{strategy:?} stats at parallelism {p}"
            );
        }
    }
}

/// The shared-pool contract: any number of queries running *concurrently*
/// on one pool — of any size — each produce exactly the serial result,
/// work-unit stats, and span work units. The pool only changes wall clock.
#[test]
fn concurrent_queries_on_shared_pools_match_serial() {
    let mut rng = SmallRng::seed_from_u64(20260808);
    let db = fuzz_db(&mut rng);
    let cfg = PlannerConfig::default();
    let plans: Vec<LogicalPlan> = (0..8).map(|_| random_plan(&mut rng, &db)).collect();
    let compiled: Vec<_> = plans
        .iter()
        .map(|p| compile(&db, p, &cfg).unwrap())
        .collect();
    let expected: Vec<_> = compiled
        .iter()
        .map(|phys| phys.execute_with_stats(&ExecContext::serial()).unwrap())
        .collect();
    for (pool_size, n_queries) in [(1usize, 3usize), (2, 4), (4, 8), (8, 6)] {
        let pool = WorkerPool::new(pool_size);
        std::thread::scope(|s| {
            for q in 0..n_queries {
                let idx = (q * 3 + pool_size) % compiled.len();
                let phys = &compiled[idx];
                let (exp_rel, exp_stats) = &expected[idx];
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let tracer = Arc::new(TraceCollector::new());
                    let ctx = ExecContext::new(4)
                        .with_pool(pool)
                        .with_trace(Arc::clone(&tracer));
                    let (rel, stats) = phys.execute_with_stats(&ctx).unwrap();
                    assert_eq!(
                        &rel, exp_rel,
                        "pool size {pool_size}, query {q}: result diverged from serial"
                    );
                    assert_eq!(
                        &stats, exp_stats,
                        "pool size {pool_size}, query {q}: work units diverged from serial"
                    );
                    let root = tracer.finish().pop().expect("root span");
                    assert_eq!(
                        &root.total_work, exp_stats,
                        "pool size {pool_size}, query {q}: span work units diverged"
                    );
                });
            }
        });
        assert_eq!(pool.active_queries(), 0, "all queries must unregister");
        assert_eq!(pool.queue_depth(), 0, "no morsels may be left behind");
    }
}

/// Fair scheduling: on a single-worker pool, a one-morsel query submitted
/// behind a many-morsel nested-loop join still completes while the big
/// query is in flight — round-robin serves each query one morsel per turn.
#[test]
fn pool_is_fair_across_concurrent_queries() {
    let mut rng = SmallRng::seed_from_u64(31415);
    let db = fuzz_db(&mut rng);
    let pool = WorkerPool::new(1);
    let nl_cfg = PlannerConfig {
        join_strategy: JoinStrategy::NestedLoop,
        ..PlannerConfig::default()
    };
    // Heavy: Big ⋈ Big nested loops — millions of pairs, many morsels.
    let heavy_plan = QueryBuilder::scan_as(&db, "Big", "L")
        .unwrap()
        .join(QueryBuilder::scan_as(&db, "Big", "R").unwrap(), |s| {
            Ok(Expr::col(s, "L.K")?.eq(Expr::col(s, "R.K")?))
        })
        .unwrap()
        .build();
    let heavy = compile(&db, &heavy_plan, &nl_cfg).unwrap();
    // Light: one cheap filter over the small table — a single morsel.
    let light_plan = QueryBuilder::scan_as(&db, "Small", "A")
        .unwrap()
        .filter(|s| Ok(Expr::col(s, "A.K")?.eq(Expr::lit(3i64))))
        .unwrap()
        .build();
    let light = compile(&db, &light_plan, &PlannerConfig::default()).unwrap();
    let (light_serial, _) = light.execute_with_stats(&ExecContext::serial()).unwrap();

    let heavy_done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let heavy_pool = Arc::clone(&pool);
        let heavy_flag = Arc::clone(&heavy_done);
        let heavy = &heavy;
        s.spawn(move || {
            let ctx = ExecContext::new(4).with_pool(heavy_pool);
            heavy.execute_with_stats(&ctx).unwrap();
            heavy_flag.store(true, Ordering::Relaxed);
        });
        // Let the heavy query queue its backlog on the lone worker.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let ctx = ExecContext::new(4).with_pool(Arc::clone(&pool));
        let (light_rel, _) = light.execute_with_stats(&ctx).unwrap();
        assert_eq!(light_rel, light_serial);
        assert!(
            !heavy_done.load(Ordering::Relaxed),
            "the one-morsel query must complete while the heavy query is still in flight"
        );
    });
}

#[test]
fn index_scan_is_parallel_deterministic() {
    let mut rng = SmallRng::seed_from_u64(99);
    let db = fuzz_db(&mut rng);
    let plan =
        QueryBuilder::scan_as(&db, "Big", "A")
            .unwrap()
            .filter(|s| {
                Ok(Expr::col(s, "A.VT")?.overlaps(Expr::lit(Value::Interval(
                    OngoingInterval::fixed(tp(-5), tp(15)),
                ))))
            })
            .unwrap()
            .build();
    let cfg = PlannerConfig {
        use_interval_index: true,
        ..PlannerConfig::default()
    };
    let phys = compile(&db, &plan, &cfg).unwrap();
    assert!(phys.explain().contains("IndexScan"), "{}", phys.explain());
    let (serial, serial_stats) = phys.execute_with_stats(&ExecContext::serial()).unwrap();
    assert!(serial_stats.index_candidates > 0);
    for p in [2usize, 4, 8] {
        let (parallel, parallel_stats) = phys.execute_with_stats(&ExecContext::new(p)).unwrap();
        assert_eq!(parallel, serial, "index scan at parallelism {p}");
        assert_eq!(parallel_stats, serial_stats, "stats at parallelism {p}");
    }
}
