//! Integration tests for the three state-of-the-art baselines (Sec. III):
//! Clifford's results get invalidated, Torp's `Tf` cannot evaluate
//! predicates, and `Forever` returns provably incorrect answers.

use ongoing_core::allen::TemporalPredicate;
use ongoing_core::date::md;
use ongoing_core::{ops, OngoingInterval, OngoingPoint, TimePoint};
use ongoing_relation::{Expr, OngoingRelation, Schema, Value};
use ongoingdb::engine::baseline::{clifford, forever, torp};
use ongoingdb::engine::matview::MaterializedView;
use ongoingdb::engine::{execute, Database, PlannerConfig, QueryBuilder};

/// The Fig. 1 database.
fn running_example_db() -> Database {
    let db = Database::new();
    let mut b = OngoingRelation::new(Schema::builder().int("BID").str("C").interval("VT").build());
    b.insert(vec![
        Value::Int(500),
        Value::str("Spam filter"),
        Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
    ])
    .unwrap();
    b.insert(vec![
        Value::Int(501),
        Value::str("Spam filter"),
        Value::Interval(OngoingInterval::fixed(md(3, 30), md(8, 21))),
    ])
    .unwrap();
    db.create_table("B", b).unwrap();

    let mut p = OngoingRelation::new(Schema::builder().int("PID").str("C").interval("VT").build());
    p.insert(vec![
        Value::Int(201),
        Value::str("Spam filter"),
        Value::Interval(OngoingInterval::fixed(md(8, 15), md(8, 24))),
    ])
    .unwrap();
    p.insert(vec![
        Value::Int(202),
        Value::str("Spam filter"),
        Value::Interval(OngoingInterval::fixed(md(8, 24), md(8, 27))),
    ])
    .unwrap();
    db.create_table("P", p).unwrap();
    db
}

/// "Which bugs might be resolved before patch 201 goes live?"
fn before_patch_201(db: &Database) -> ongoingdb::engine::LogicalPlan {
    QueryBuilder::scan_as(db, "B", "B")
        .unwrap()
        .join(QueryBuilder::scan_as(db, "P", "P").unwrap(), |s| {
            Ok(Expr::col(s, "P.PID")?
                .eq(Expr::lit(201i64))
                .and(Expr::col(s, "B.VT")?.before(Expr::col(s, "P.VT")?)))
        })
        .unwrap()
        .project_cols(&["B.BID"])
        .unwrap()
        .build()
}

#[test]
fn forever_is_incorrect() {
    // Sec. III: with Forever end points, bug 500 is missing from the
    // result at rt 05/14 — the ongoing approach keeps it.
    let db = running_example_db();
    let plan = before_patch_201(&db);

    // Ground truth (ongoing): bug 500 is in the answer at rt 05/14.
    let ongoing = execute(&db, &plan).unwrap();
    let truth = ongoing.bind(md(5, 14));
    assert!(truth.contains(&[Value::Int(500)]), "bug 500 must qualify");

    // Forever database: rewrite and re-ask.
    let fdb = Database::new();
    for name in db.table_names() {
        let t = db.table(&name).unwrap();
        fdb.create_table(&name, forever::rewrite_relation(t.data()))
            .unwrap();
    }
    let fplan = before_patch_201(&fdb);
    let fres = execute(&fdb, &fplan).unwrap().bind(md(5, 14));
    assert!(
        !fres.contains(&[Value::Int(500)]),
        "Forever silently loses bug 500 — the incorrectness the paper describes"
    );
}

#[test]
fn clifford_results_differ_across_reference_times() {
    let db = running_example_db();
    let plan = before_patch_201(&db);
    let r_may = clifford::run_at(&db, &plan, md(5, 14)).unwrap();
    let r_sep = clifford::run_at(&db, &plan, md(9, 1)).unwrap();
    assert!(r_may.contains(&[Value::Int(500)]));
    assert!(
        !r_sep.contains(&[Value::Int(500)]),
        "by September the bug can no longer end before the patch"
    );
    assert_ne!(r_may, r_sep, "instantiated results get outdated");
}

#[test]
fn ongoing_view_replaces_all_clifford_reevaluations() {
    let db = running_example_db();
    let plan = before_patch_201(&db);
    let view = MaterializedView::create(&db, "v", plan.clone(), PlannerConfig::default()).unwrap();
    // One ongoing result serves every reference time Clifford would need a
    // fresh evaluation for.
    let mut day = md(1, 1);
    while day < md(12, 31) {
        assert_eq!(
            view.instantiate(day),
            clifford::run_at(&db, &plan, day).unwrap(),
            "rt={day}"
        );
        day = TimePoint::new(day.ticks() + 13);
    }
}

#[test]
fn cliff_max_is_past_every_endpoint_and_stabilizes_memberships() {
    let db = running_example_db();
    let rt = clifford::cliff_max_reference_time(&db);
    assert!(rt > md(8, 27));
    // Expanding-interval instantiations keep growing with rt (that is the
    // paper's point), but *membership* results of queries whose output has
    // no ongoing attributes are stable from Cliff_max on: every predicate
    // over the data has crossed its last breakpoint.
    let plan = before_patch_201(&db);
    let at_max = clifford::run_at(&db, &plan, rt).unwrap();
    let later = clifford::run_at(&db, &plan, TimePoint::new(rt.ticks() + 1000)).unwrap();
    assert_eq!(at_max, later);
    // ... and at Cliff_max every [a, now) interval instantiates non-empty.
    let b = db.table("B").unwrap();
    for t in b.data().tuples() {
        let iv = t.value(2).as_interval().unwrap();
        assert!(iv.nonempty_at(rt));
    }
}

#[test]
fn torp_handles_modifications_but_not_predicates() {
    // A now-relative modification: terminating an open interval at a fixed
    // date — expressible in Tf via intersection.
    let open = torp::TfInterval::new(torp::TfPoint::Fixed(md(1, 25)), torp::TfPoint::NOW);
    let cap = torp::TfInterval::new(
        torp::TfPoint::Fixed(TimePoint::NEG_INF),
        torp::TfPoint::Fixed(md(8, 21)),
    );
    let capped = open.intersect(cap).expect("stays in Tf");
    assert_eq!(capped.ts, torp::TfPoint::Fixed(md(1, 25)));
    assert_eq!(capped.te, torp::TfPoint::MinNow(md(8, 21)));
    // ... and it instantiates exactly like the Ω intersection.
    for rt in [md(2, 1), md(8, 21), md(12, 1)] {
        let omega = open.to_omega().intersect(cap.to_omega());
        assert_eq!(capped.to_omega().bind(rt), omega.bind(rt));
    }

    // But the domain is not closed (Table I): combining a growing point
    // with a fixed bound leaves Tf, so predicate evaluation à la Sec. VI is
    // impossible and queries fall back to Clifford.
    let grown = torp::TfPoint::MaxNow(md(3, 1));
    assert_eq!(grown.min(torp::TfPoint::Fixed(md(8, 1))), None);
    let db = running_example_db();
    let plan = before_patch_201(&db);
    assert_eq!(
        torp::run_query_at(&db, &plan, md(5, 14)).unwrap(),
        clifford::run_at(&db, &plan, md(5, 14)).unwrap()
    );
}

#[test]
fn table_i_closure_summary() {
    // T: fixed points only, closed trivially (minF/maxF).
    // Tnow (Clifford): now cannot combine with fixed points at all — the
    // domain offers no min/max beyond instantiation.
    // Tf (Torp): counterexample above.
    // Ω: closed — exercised here across all shapes.
    let shapes = [
        OngoingPoint::fixed(md(5, 1)),
        OngoingPoint::now(),
        OngoingPoint::growing(md(5, 1)),
        OngoingPoint::limited(md(5, 1)),
        OngoingPoint::new(md(3, 1), md(9, 1)).unwrap(),
    ];
    for &p in &shapes {
        for &q in &shapes {
            // Closure: constructing the result never fails, and it binds
            // pointwise-correctly.
            let mn = ops::min(p, q);
            let mx = ops::max(p, q);
            for rt in [md(1, 1), md(5, 1), md(12, 31)] {
                assert_eq!(mn.bind(rt), p.bind(rt).min_f(q.bind(rt)));
                assert_eq!(mx.bind(rt), p.bind(rt).max_f(q.bind(rt)));
            }
        }
    }
}

#[test]
fn instantiate_relation_is_bind() {
    let db = running_example_db();
    let b = db.table("B").unwrap();
    let snap = clifford::instantiate_relation(b.data(), md(5, 14));
    assert_eq!(snap, b.data().bind(md(5, 14)));
    assert_eq!(snap.len(), 2);
}

#[test]
fn selection_predicates_agree_with_ongoing_for_every_allen_relation() {
    // All 7 Table-II predicates: Clifford at rt equals ongoing-then-bind.
    let db = running_example_db();
    for pred in TemporalPredicate::ALL {
        let plan =
            ongoingdb::engine::queries::selection(&db, "B", pred, (md(6, 1), md(9, 1))).unwrap();
        let ongoing = execute(&db, &plan).unwrap();
        for rt in [md(1, 1), md(6, 15), md(8, 22), md(11, 11)] {
            assert_eq!(
                ongoing.bind(rt),
                clifford::run_at(&db, &plan, rt).unwrap(),
                "{} at rt={rt}",
                pred.name()
            );
        }
    }
}
