//! Keyed qualification: the indexed write path ≡ the scan write path.
//!
//! The keyed index ([`ongoing_relation::keyindex`]) changes *which rows a
//! modification visits*, never which rows it edits. This suite pins that:
//!
//! 1. **Differential property test** — random `Modifier` sequences
//!    (inserts / terminates / sequenced updates / deletes interleaved
//!    with full and partial compaction) over an indexed and an unindexed
//!    relation produce identical tuple sequences, identical modified
//!    counts and identical logical-write counts after every step.
//! 2. **Work units** — a fixed 10-row keyed modification costs O(rows
//!    touched) qualification work: flat (≤ 1.1×) across a 10× table-size
//!    step, while the scan path grows ~10× (the PR's acceptance
//!    criterion).
//! 3. **Cost-based choice** — `Modifier` picks the index for selective
//!    probes and falls back to the scan when the probe matches
//!    everything, via the cost model's `qualification_path`.
//! 4. **Probe extraction** — equality and range conjuncts (either
//!    operand order) drive the index; type-mismatched constants and
//!    ongoing columns never do.

use ongoing_core::time::tp;
use ongoing_core::OngoingInterval;
use ongoing_relation::{Expr, OngoingRelation, Schema, Tuple, Value};
use ongoingdb::engine::modify::Modifier;
use ongoingdb::engine::{Database, QualPath};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::builder().int("K").int("G").interval("VT").build()
}

fn k_eq(k: i64) -> Expr {
    Expr::Col(0).eq(Expr::lit(k))
}

fn seeded(rows: usize, indexed: bool) -> OngoingRelation {
    let mut r = OngoingRelation::new(schema());
    for i in 0..rows as i64 {
        let iv = if i % 4 == 0 {
            OngoingInterval::from_until_now(tp(i % 89))
        } else {
            OngoingInterval::fixed(tp(i % 89), tp(i % 89 + 3 + i % 7))
        };
        r.insert(vec![Value::Int(i), Value::Int(i % 11), Value::Interval(iv)])
            .unwrap();
    }
    r.seal_pending();
    if indexed {
        r.create_key_index(0).unwrap();
    }
    r
}

// ---------------------------------------------------------------------
// 1. Differential property test: indexed ≡ unindexed over random edit
//    sequences with interleaved (partial) compaction.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    InsertOpen { k: i64, start: i64 },
    Terminate { k: i64, at: i64 },
    TerminateRange { lo: i64, hi: i64, at: i64 },
    Update { k: i64, g: i64, at: i64 },
    Delete { k: i64 },
    Compact,
    CompactRuns,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let k = 0i64..24;
    prop_oneof![
        (k.clone(), 0i64..60).prop_map(|(k, start)| Op::InsertOpen { k, start }),
        (k.clone(), 0i64..60).prop_map(|(k, at)| Op::Terminate { k, at }),
        (k.clone(), 0i64..8, 0i64..60).prop_map(|(lo, w, at)| Op::TerminateRange {
            lo,
            hi: lo + w,
            at
        }),
        (k.clone(), 0i64..9, 0i64..60).prop_map(|(k, g, at)| Op::Update { k, g, at }),
        k.prop_map(|k| Op::Delete { k }),
        (0u8..1).prop_map(|_| Op::Compact),
        (0u8..1).prop_map(|_| Op::CompactRuns),
    ]
}

fn apply(rel: &mut OngoingRelation, op: &Op) -> usize {
    let mut m = Modifier::new(rel, "VT").unwrap();
    match op {
        Op::InsertOpen { k, start } => {
            m.insert_open(
                vec![Value::Int(*k), Value::Int(1), Value::Bool(false)],
                tp(*start),
            )
            .unwrap();
            1
        }
        Op::Terminate { k, at } => m.terminate(&k_eq(*k), tp(*at)).unwrap(),
        Op::TerminateRange { lo, hi, at } => {
            // K >= lo AND K < hi: a range probe on the indexed column.
            let pred = Expr::Col(0)
                .ne(Expr::lit(-1i64))
                .and(Expr::lit(*lo).le(Expr::Col(0)))
                .and(Expr::Col(0).lt(Expr::lit(*hi)));
            m.terminate(&pred, tp(*at)).unwrap()
        }
        Op::Update { k, g, at } => m
            .update(&k_eq(*k), &[(1, Value::Int(*g))], tp(*at))
            .unwrap(),
        Op::Delete { k } => m.delete(&k_eq(*k)).unwrap(),
        Op::Compact => {
            rel.compact();
            0
        }
        Op::CompactRuns => {
            rel.compact_runs();
            0
        }
    }
}

proptest! {
    #[test]
    fn keyed_qualification_equals_scan_qualification(
        seed_rows in 0usize..40,
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let mut indexed = seeded(seed_rows, true);
        let mut scanned = seeded(seed_rows, false);
        for op in &ops {
            let n_indexed = apply(&mut indexed, op);
            let n_scanned = apply(&mut scanned, op);
            // Identical modified counts (the "selected ordinals") …
            prop_assert_eq!(n_indexed, n_scanned, "modified counts diverged on {:?}", op);
            // … identical tuple sequences …
            prop_assert_eq!(indexed.len(), scanned.len());
            let a: Vec<Tuple> = indexed.iter().cloned().collect();
            let b: Vec<Tuple> = scanned.iter().cloned().collect();
            prop_assert_eq!(&a, &b, "sequences diverged after {:?}", op);
            // … and identical logical-write counts (physical write_work
            // legitimately differs: the indexed store meters its index
            // builds).
            prop_assert_eq!(indexed.logical_writes(), scanned.logical_writes());
        }
        // Instantiations agree everywhere (the paper's criterion).
        for rt in (-2i64..70).step_by(9) {
            prop_assert_eq!(indexed.bind(tp(rt)), scanned.bind(tp(rt)));
        }
    }
}

// ---------------------------------------------------------------------
// 2. Work units: keyed qualification is O(rows touched), scan is
//    O(table) — the acceptance-criterion assertion.
// ---------------------------------------------------------------------

/// Terminate 10 spread-out keys through the catalog; returns the
/// qualification work units the modification spent.
fn ten_key_qual_cost(db: &Database, rows: usize) -> u64 {
    let before = db.table("T").unwrap().data().qual_work();
    db.modify_table("T", |rel| {
        let mut m = Modifier::new(rel, "VT")?;
        for i in 0..10i64 {
            m.terminate(&k_eq(rows as i64 / 2 + i * 13), tp(3_000))?;
        }
        Ok(())
    })
    .unwrap();
    db.table("T").unwrap().data().qual_work() - before
}

#[test]
fn keyed_qualification_work_is_flat_across_table_sizes() {
    let sizes = [10_000usize, 100_000];
    let mut keyed = Vec::new();
    let mut scan = Vec::new();
    for &n in &sizes {
        let db = Database::new();
        db.create_table("T", seeded(n, false)).unwrap();
        db.create_key_index("T", "K").unwrap();
        keyed.push(ten_key_qual_cost(&db, n));

        let db = Database::new();
        db.create_table("T", seeded(n, false)).unwrap();
        scan.push(ten_key_qual_cost(&db, n));
    }
    let flat = keyed[1] as f64 / keyed[0] as f64;
    let growth = scan[1] as f64 / scan[0] as f64;
    println!("keyed: {keyed:?} ({flat:.2}x); scan: {scan:?} ({growth:.2}x)");
    assert!(
        flat <= 1.1,
        "keyed 10-row qualification must stay flat across a 10x size step, got {flat:.2}x ({keyed:?})"
    );
    assert!(
        growth >= 8.0,
        "scan qualification must grow with the table, got {growth:.2}x ({scan:?})"
    );
    // And the keyed absolute cost is O(rows touched): far below the
    // 100k-row table it addressed.
    assert!(
        keyed[1] < sizes[1] as u64 / 100,
        "keyed qualification {} wu is not O(rows touched)",
        keyed[1]
    );
}

// ---------------------------------------------------------------------
// 3. Cost-based index-vs-scan choice.
// ---------------------------------------------------------------------

#[test]
fn cost_model_flips_between_index_and_scan() {
    let mut rel = seeded(4_000, true);
    let m = Modifier::new(&mut rel, "VT").unwrap();
    // Selective equality: keyed.
    match m.qualification(&k_eq(17)) {
        QualPath::Keyed { col, keyed, scan } => {
            assert_eq!(col, 0);
            assert!(keyed < scan, "keyed {keyed} must beat scan {scan}");
        }
        other => panic!("selective probe must use the index, got {other:?}"),
    }
    // A probe matching every row: the scan's constants win.
    let all = Expr::lit(-1i64).le(Expr::Col(0));
    assert!(
        !m.qualification(&all).is_keyed(),
        "probe matching everything must fall back to the scan"
    );
    // No usable conjunct (inequality only): scan.
    assert!(!m
        .qualification(&Expr::Col(0).ne(Expr::lit(5i64)))
        .is_keyed());
    // Predicate on an unindexed column: scan.
    assert!(!m
        .qualification(&Expr::Col(1).eq(Expr::lit(3i64)))
        .is_keyed());
}

#[test]
fn range_conjuncts_qualify_through_the_index() {
    let mut indexed = seeded(3_000, true);
    let mut scanned = seeded(3_000, false);
    // G = 4 AND 100 <= K AND K < 140: the K-range drives the index, the
    // G-conjunct is evaluated as a residual on the candidates.
    let pred = Expr::Col(1)
        .eq(Expr::lit(4i64))
        .and(Expr::lit(100i64).le(Expr::Col(0)))
        .and(Expr::Col(0).lt(Expr::lit(140i64)));
    {
        let m = Modifier::new(&mut indexed, "VT").unwrap();
        match m.qualification(&pred) {
            QualPath::Keyed { keyed, scan, .. } => assert!(keyed < scan / 10),
            other => panic!("range probe must use the index, got {other:?}"),
        }
    }
    let qual_before = indexed.qual_work();
    let a = Modifier::new(&mut indexed, "VT")
        .unwrap()
        .terminate(&pred, tp(500))
        .unwrap();
    let visited = indexed.qual_work() - qual_before;
    let b = Modifier::new(&mut scanned, "VT")
        .unwrap()
        .terminate(&pred, tp(500))
        .unwrap();
    assert_eq!(a, b);
    assert_eq!(
        indexed.iter().cloned().collect::<Vec<_>>(),
        scanned.iter().cloned().collect::<Vec<_>>()
    );
    assert!(visited <= 60, "40-key range visited {visited} of 3000 rows");
}

// ---------------------------------------------------------------------
// 4. Probe-extraction edge cases and index lifecycle.
// ---------------------------------------------------------------------

#[test]
fn contradictory_range_conjuncts_match_nothing() {
    // `K >= 5 AND K <= 3` derives an inverted range probe; it must
    // qualify zero rows, not panic inside the chunk maps' range lookup.
    let mut rel = seeded(1_000, true);
    for pred in [
        Expr::lit(5i64)
            .le(Expr::Col(0))
            .and(Expr::Col(0).le(Expr::lit(3i64))),
        Expr::lit(5i64)
            .lt(Expr::Col(0))
            .and(Expr::Col(0).lt(Expr::lit(5i64))),
    ] {
        let n = Modifier::new(&mut rel, "VT")
            .unwrap()
            .terminate(&pred, tp(500))
            .unwrap();
        assert_eq!(n, 0, "{pred}");
    }
    assert_eq!(rel.len(), 1_000);
}

#[test]
fn type_mismatched_constants_never_drive_the_index() {
    // `K = "x"` on an Int column type-errors on every row under a scan;
    // the keyed path must not silently skip those rows instead.
    let mut rel = seeded(100, true);
    let m = Modifier::new(&mut rel, "VT").unwrap();
    assert!(!m.qualification(&Expr::Col(0).eq(Expr::lit("x"))).is_keyed());
    let err = Modifier::new(&mut rel, "VT")
        .unwrap()
        .delete(&Expr::Col(0).eq(Expr::lit("x")));
    assert!(err.is_err(), "type mismatch must still surface");
}

#[test]
fn residual_conjunct_errors_surface_lazily() {
    // An ill-typed *residual* conjunct (`G = "x"` on an Int column)
    // errors for every row the qualification visits. With a selective
    // key conjunct the index prunes the visits: candidates still error,
    // but a probe matching nothing visits nothing — the documented
    // lazy-error semantics shared with any index access path.
    let mut rel = seeded(100, true);
    let bad_residual = |k: i64| {
        Expr::Col(1)
            .eq(Expr::lit("x"))
            .and(Expr::Col(0).eq(Expr::lit(k)))
    };
    let hit = Modifier::new(&mut rel, "VT")
        .unwrap()
        .delete(&bad_residual(5));
    assert!(hit.is_err(), "errors on visited rows must surface");
    let miss = Modifier::new(&mut rel, "VT")
        .unwrap()
        .delete(&bad_residual(999_999));
    assert_eq!(
        miss.expect("no rows visited, no error observed"),
        0,
        "a probe matching nothing qualifies nothing"
    );
    assert_eq!(rel.len(), 100);
}

#[test]
fn key_index_rejects_ongoing_columns() {
    let mut rel = seeded(10, false);
    assert!(rel.create_key_index(2).is_err(), "VT is ongoing");
    assert!(rel.create_key_index(0).is_ok());
    assert_eq!(rel.key_indexed_columns(), &[0]);
}

#[test]
fn updates_to_the_indexed_column_stay_addressable() {
    // A sequenced update that *reassigns the key* puts the new version in
    // the overlay; later probes for the new key must find it there.
    let mut indexed = seeded(2_000, true);
    let mut scanned = seeded(2_000, false);
    for rel in [&mut indexed, &mut scanned] {
        let mut m = Modifier::new(rel, "VT").unwrap();
        m.update(&k_eq(700), &[(0, Value::Int(999_999))], tp(30))
            .unwrap();
    }
    for rel in [&mut indexed, &mut scanned] {
        let n = Modifier::new(rel, "VT")
            .unwrap()
            .terminate(&k_eq(999_999), tp(70))
            .unwrap();
        assert_eq!(n, 1, "reassigned key must be found");
    }
    assert_eq!(
        indexed.iter().cloned().collect::<Vec<_>>(),
        scanned.iter().cloned().collect::<Vec<_>>()
    );
}

#[test]
fn catalog_key_index_survives_publication_and_compaction() {
    let db = Database::new();
    db.create_table("T", seeded(2_000, false)).unwrap();
    db.create_key_index("T", "K").unwrap();
    assert_eq!(db.table("T").unwrap().data().key_indexed_columns(), &[0]);
    // Churn enough to trigger partial compaction; the index must ride
    // through every publish and fold.
    for r in 0..120i64 {
        db.modify_table("T", |rel| {
            let mut m = Modifier::new(rel, "VT")?;
            m.insert_open(
                vec![
                    Value::Int(10_000 + r),
                    Value::Int(r % 11),
                    Value::Bool(false),
                ],
                tp(r % 80),
            )?;
            m.terminate(&k_eq(r * 16 % 2_000), tp(r % 80 + 1))?;
            Ok(())
        })
        .unwrap();
    }
    let table = db.table("T").unwrap();
    assert_eq!(table.data().key_indexed_columns(), &[0]);
    // Keyed lookups still see every row, including churned-in ones.
    let before = table.data().qual_work();
    let n = db
        .modify_table("T", |rel| Modifier::new(rel, "VT")?.delete(&k_eq(10_057)))
        .unwrap();
    assert_eq!(n, 1);
    let visited = db.table("T").unwrap().data().qual_work() - before;
    assert!(
        visited < 500,
        "churned keyed lookup visited {visited} rows (table ~2120)"
    );
}
