//! The paper's master correctness criterion, end to end:
//!
//! ```text
//! ∀rt ( ∥Q(D)∥rt ≡ Q(∥D∥rt) )
//! ```
//!
//! For a battery of queries over generated ongoing databases, the
//! instantiation of the ongoing result at every probed reference time must
//! equal the result of Clifford-style evaluation (instantiate the inputs,
//! run the fixed query). The ongoing side runs through the optimized
//! physical plans (hash joins, sweep joins, pushdown); the instantiated
//! side runs through the same plans' fixed mode — and both are additionally
//! cross-checked against the naive reference algebra.

use ongoing_core::allen::TemporalPredicate;
use ongoing_core::TimePoint;
use ongoing_datasets::{synthetic, History, SyntheticConfig};
use ongoing_relation::{algebra, Expr, OngoingRelation, Value};
use ongoingdb::engine::plan::{compile, JoinStrategy, PlannerConfig};
use ongoingdb::engine::{queries, Database, LogicalPlan, QueryBuilder};

/// Reference times probed in every check: inside, outside and at the edges
/// of the synthetic history.
fn probe_rts() -> Vec<TimePoint> {
    let h = History::synthetic();
    let mut rts = vec![
        TimePoint::new(h.start.ticks() - 400),
        h.start,
        h.midpoint(),
        h.end.pred(),
        h.end,
        TimePoint::new(h.end.ticks() + 400),
    ];
    for i in 1..10 {
        rts.push(TimePoint::new(h.start.ticks() + h.days() * i / 10));
    }
    rts
}

fn check_equivalence(db: &Database, plan: &LogicalPlan, label: &str) {
    let cfg = PlannerConfig::default();
    let physical = compile(db, plan, &cfg).unwrap();
    let ongoing = physical.execute().unwrap();
    for rt in probe_rts() {
        let lhs = ongoing.bind(rt);
        let rhs = physical.execute_at(rt).unwrap();
        assert_eq!(
            lhs,
            rhs,
            "{label}: ∥Q(D)∥rt != Q(∥D∥rt) at rt={rt}\nplan:\n{}",
            physical.explain()
        );
    }
}

fn small_db() -> Database {
    let db = Database::new();
    db.create_table(
        "Dex",
        synthetic::generate(&SyntheticConfig {
            join_group_size: 3,
            ..SyntheticConfig::dex(120, None, 71)
        }),
    )
    .unwrap();
    db.create_table(
        "Dsh",
        synthetic::generate(&SyntheticConfig {
            join_group_size: 3,
            ..SyntheticConfig::dsh(120, Some(2), 72)
        }),
    )
    .unwrap();
    db
}

#[test]
fn selection_equivalence_for_every_temporal_predicate() {
    let db = small_db();
    let h = History::synthetic();
    let w = h.last_fraction(0.1);
    for pred in TemporalPredicate::ALL {
        for table in ["Dex", "Dsh"] {
            let plan = queries::selection(&db, table, pred, (w.start, w.end)).unwrap();
            check_equivalence(&db, &plan, &format!("Qσ_{} on {table}", pred.name()));
        }
    }
}

#[test]
fn self_join_equivalence_overlaps_and_before() {
    let db = small_db();
    for pred in [TemporalPredicate::Overlaps, TemporalPredicate::Before] {
        for table in ["Dex", "Dsh"] {
            let plan = queries::self_join(&db, table, "K", pred).unwrap();
            check_equivalence(&db, &plan, &format!("Q⋈_{} on {table}", pred.name()));
        }
    }
}

#[test]
fn join_across_interval_shapes() {
    let db = small_db();
    let l = QueryBuilder::scan_as(&db, "Dex", "R").unwrap();
    let r = QueryBuilder::scan_as(&db, "Dsh", "S").unwrap();
    let plan = l
        .join(r, |s| {
            Ok(Expr::col(s, "R.VT")?.overlaps(Expr::col(s, "S.VT")?))
        })
        .unwrap()
        .build();
    check_equivalence(&db, &plan, "Dex ⋈_overlaps Dsh (no equi keys)");
}

#[test]
fn union_difference_project_equivalence() {
    let db = small_db();
    let h = History::synthetic();
    let w = h.last_fraction(0.3);
    let sel = |table: &str, pred| {
        QueryBuilder::scan(&db, table)
            .unwrap()
            .filter(|s| {
                Ok(Expr::col(s, "VT")?.temporal(
                    pred,
                    Expr::lit(Value::Interval(ongoing_core::OngoingInterval::fixed(
                        w.start, w.end,
                    ))),
                ))
            })
            .unwrap()
    };
    let union_plan = sel("Dex", TemporalPredicate::Overlaps)
        .union(sel("Dex", TemporalPredicate::Before))
        .unwrap()
        .build();
    check_equivalence(&db, &union_plan, "union of selections");

    let diff_plan = sel("Dex", TemporalPredicate::Overlaps)
        .difference(sel("Dex", TemporalPredicate::During))
        .unwrap()
        .build();
    check_equivalence(&db, &diff_plan, "difference of selections");

    let proj_plan = sel("Dex", TemporalPredicate::Overlaps)
        .project_cols(&["K", "VT"])
        .unwrap()
        .build();
    check_equivalence(&db, &proj_plan, "projection");
}

#[test]
fn complex_join_equivalence_on_mozilla() {
    let db = ongoing_datasets::mozilla_database(60, 5);
    for pred in [TemporalPredicate::Overlaps, TemporalPredicate::Before] {
        let plan = queries::complex_join(&db, pred).unwrap();
        check_equivalence(&db, &plan, &format!("QC⋈_{}", pred.name()));
    }
}

#[test]
fn physical_plans_match_reference_algebra() {
    // The optimized executors (hash join, sweep join, pushdown) must return
    // exactly what the naive Theorem-2 algebra returns.
    let db = small_db();
    let dex = db.table("Dex").unwrap();
    let dsh = db.table("Dsh").unwrap();

    let l = dex.data().clone().qualify("R");
    let r = dsh.data().clone().qualify("S");
    let schema = l.schema().product(r.schema());
    let pred = Expr::col(&schema, "R.K")
        .unwrap()
        .eq(Expr::col(&schema, "S.K").unwrap())
        .and(
            Expr::col(&schema, "R.VT")
                .unwrap()
                .overlaps(Expr::col(&schema, "S.VT").unwrap()),
        );
    let reference = algebra::join(&l, &r, &pred).unwrap().coalesce();

    let plan = QueryBuilder::scan_as(&db, "Dex", "R")
        .unwrap()
        .join(QueryBuilder::scan_as(&db, "Dsh", "S").unwrap(), |s| {
            Ok(Expr::col(s, "R.K")?
                .eq(Expr::col(s, "S.K")?)
                .and(Expr::col(s, "R.VT")?.overlaps(Expr::col(s, "S.VT")?)))
        })
        .unwrap()
        .build();

    for strategy in [
        JoinStrategy::Auto,
        JoinStrategy::NestedLoop,
        JoinStrategy::Hash,
        JoinStrategy::Sweep,
    ] {
        let cfg = PlannerConfig {
            join_strategy: strategy,
            ..PlannerConfig::default()
        };
        let got = compile(&db, &plan, &cfg)
            .unwrap()
            .execute()
            .unwrap()
            .coalesce();
        assert_eq!(
            sorted(&got),
            sorted(&reference),
            "strategy {strategy:?} diverges from reference algebra"
        );
    }
}

#[test]
fn ablation_configs_agree() {
    // Disabling pushdown / predicate splitting / enabling the interval
    // index must never change results — only performance.
    let db = small_db();
    let h = History::synthetic();
    let w = h.last_fraction(0.1);
    let plan =
        queries::selection(&db, "Dex", TemporalPredicate::Overlaps, (w.start, w.end)).unwrap();
    let base = compile(&db, &plan, &PlannerConfig::default())
        .unwrap()
        .execute()
        .unwrap();
    for cfg in [
        PlannerConfig {
            pushdown: false,
            ..PlannerConfig::default()
        },
        PlannerConfig {
            split_predicates: false,
            ..PlannerConfig::default()
        },
        PlannerConfig {
            use_interval_index: true,
            ..PlannerConfig::default()
        },
    ] {
        let got = compile(&db, &plan, &cfg).unwrap().execute().unwrap();
        assert_eq!(sorted(&got.coalesce()), sorted(&base.coalesce()), "{cfg:?}");
    }
}

fn sorted(rel: &OngoingRelation) -> Vec<String> {
    let mut rows: Vec<String> = rel.tuples().iter().map(|t| format!("{t}")).collect();
    rows.sort();
    rows
}
