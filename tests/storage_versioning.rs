//! Versioned copy-on-write tuple store: storage-layer contracts.
//!
//! The storage refactor promises four things, each pinned here:
//!
//! 1. **Snapshot isolation** — a reader holding a pinned table version
//!    never observes a concurrent writer's effects, and the writer's new
//!    version physically shares every untouched chunk with the snapshot.
//! 2. **Off-lock writers** — the `modify_table` closure runs against a
//!    private fork, so readers (and even other catalog operations) proceed
//!    while a modification is in flight; conflicting publications fail
//!    with [`EngineError::ConcurrentModification`] instead of corrupting.
//! 3. **Chunked scans ≡ flat scans** — executing over the chunk-partitioned
//!    store is bit-identical (results, order, work-unit stats) at every
//!    parallelism level, with overlays, tombstones and insert chunks
//!    present.
//! 4. **Deltas are exact** — `compact()` is semantically a no-op, and the
//!    staleness accounting counts a one-row edit as one row no matter
//!    where in the table the row sits (the positional-diff regression).
//!
//! Plus a differential property test: random `Modifier` sequences against
//! a naive `Vec<Tuple>` re-implementation of the same semantics.

use ongoing_core::date::md;
use ongoing_core::time::tp;
use ongoing_core::{OngoingInterval, OngoingPoint};
use ongoing_relation::{Expr, OngoingRelation, Schema, Tuple, Value};
use ongoingdb::engine::modify::Modifier;
use ongoingdb::engine::plan::{compile, PlannerConfig};
use ongoingdb::engine::{Database, EngineError, ExecContext};
use ongoingdb::engine::{LogicalPlan, QueryBuilder};
use proptest::prelude::*;

const CHUNK: usize = ongoing_relation::TARGET_CHUNK_ROWS;

fn schema() -> Schema {
    Schema::builder().int("K").int("G").interval("VT").build()
}

/// A deterministic relation big enough to span several chunks.
fn big_relation(rows: usize) -> OngoingRelation {
    let mut r = OngoingRelation::new(schema());
    for i in 0..rows as i64 {
        let start = tp(i % 97);
        let iv = if i % 3 == 0 {
            OngoingInterval::from_until_now(start)
        } else {
            OngoingInterval::fixed(start, tp(i % 97 + 5 + i % 11))
        };
        r.insert(vec![Value::Int(i), Value::Int(i % 13), Value::Interval(iv)])
            .unwrap();
    }
    r
}

fn k_eq(k: i64) -> Expr {
    Expr::Col(0).eq(Expr::lit(k))
}

// ---------------------------------------------------------------------
// 1. Snapshot isolation + physical sharing.
// ---------------------------------------------------------------------

#[test]
fn pinned_version_is_isolated_from_writers_and_shares_chunks() {
    let rows = 3 * CHUNK + 100;
    let db = Database::new();
    db.create_table("T", big_relation(rows)).unwrap();

    // Pin the current version and materialize what the reader sees.
    let snap = db.table("T").unwrap();
    let before: Vec<Tuple> = snap.data().iter().cloned().collect();

    // Writer: terminate one key, delete another, insert a fresh row.
    let n = db
        .modify_table("T", |rel| {
            let mut m = Modifier::new(rel, "VT")?;
            let a = m.terminate(&k_eq(7), tp(50))?;
            let b = m.delete(&k_eq((CHUNK + 3) as i64))?;
            m.insert_open(
                vec![Value::Int(-1), Value::Int(0), Value::Bool(false)],
                tp(5),
            )?;
            Ok(a + b)
        })
        .unwrap();
    assert_eq!(n, 2);

    // The pinned snapshot is untouched — same length, same tuples.
    assert_eq!(snap.data().len(), rows);
    let after_snap: Vec<Tuple> = snap.data().iter().cloned().collect();
    assert_eq!(after_snap, before, "reader observed writer effects");

    // The published version differs, but shares every untouched chunk.
    let current = db.table("T").unwrap();
    assert_eq!(current.data().len(), rows); // -1 deleted, +1 inserted
    let shared = current.data().shares_chunks_with(snap.data());
    let snap_chunks = snap.data().storage_summary().chunks;
    assert!(
        shared >= snap_chunks - 2,
        "version shares {shared} of {snap_chunks} chunks with its base"
    );
    assert!(current.data().iter().any(|t| t.value(0) == &Value::Int(-1)));
}

// ---------------------------------------------------------------------
// 2. Off-lock writers: readers proceed mid-modification; conflicting
//    publications error instead of clobbering.
// ---------------------------------------------------------------------

#[test]
fn closure_runs_off_lock_and_conflicts_error() {
    let db = Database::new();
    db.create_table("T", big_relation(CHUNK)).unwrap();

    // Reading — and even replacing — the table *from inside the closure*
    // works because the closure runs against a private fork with no
    // catalog lock held (the pre-refactor implementation deadlocked here).
    // The closure republishes on every attempt, so every retry conflicts
    // too: the error surfaces only once the whole budget is spent, and it
    // reports the budget.
    let policy = ongoingdb::engine::catalog::RetryPolicy {
        max_attempts: 3,
        ..Default::default()
    };
    let mut runs = 0u32;
    let r = db.modify_table_with("T", policy, |rel| {
        runs += 1;
        let mid_write_view = db.table("T").expect("reader not blocked by writer");
        assert!(!mid_write_view.data().is_empty());
        let mut m = Modifier::new(rel, "VT")?;
        m.delete(&k_eq(3))?;
        // A concurrent writer publishes first:
        db.put_table("T", big_relation(10)).unwrap();
        Ok(())
    });
    match r {
        Err(EngineError::ConcurrentModification { table, attempts }) => {
            assert_eq!(table, "T");
            assert_eq!(attempts, 3, "budget must be exhausted before surfacing");
        }
        other => panic!("expected ConcurrentModification, got {other:?}"),
    }
    assert_eq!(runs, 3, "every attempt re-runs the closure");
    // The losing modification was not applied; the winner's data stands.
    assert_eq!(db.table("T").unwrap().data().len(), 10);
}

// ---------------------------------------------------------------------
// 3. Serial ≡ parallel over genuinely fragmented stores.
// ---------------------------------------------------------------------

/// Fragments T: overlays in several chunks, tombstones, splits, and a
/// small insert-batch chunk on top of the dense base.
fn fragmented_db(rows: usize) -> Database {
    let db = Database::new();
    db.create_table("T", big_relation(rows)).unwrap();
    db.create_table("S", big_relation(90)).unwrap();
    db.modify_table("T", |rel| {
        let mut m = Modifier::new(rel, "VT")?;
        for k in [2i64, 55, 1000, 1500, 2400] {
            m.terminate(&k_eq(k), tp(40))?;
        }
        m.update(
            &Expr::Col(1).eq(Expr::lit(5i64)),
            &[(0, Value::Int(9999))],
            tp(30),
        )?;
        m.delete(&k_eq(70))?;
        for i in 0..20 {
            m.insert_open(
                vec![
                    Value::Int(100_000 + i),
                    Value::Int(i % 13),
                    Value::Bool(false),
                ],
                tp(10 + i % 40),
            )?;
        }
        Ok(())
    })
    .unwrap();
    let s = db.table("T").unwrap().data().storage_summary();
    assert!(s.overlay_rows > 0, "fixture must carry overlays: {s:?}");
    assert!(s.dead_rows > 0, "fixture must carry tombstones: {s:?}");
    db
}

fn plans(db: &Database) -> Vec<LogicalPlan> {
    let filter =
        QueryBuilder::scan_as(db, "T", "A")
            .unwrap()
            .filter(|s| {
                Ok(Expr::col(s, "A.VT")?.overlaps(Expr::lit(Value::Interval(
                    OngoingInterval::fixed(tp(20), tp(60)),
                ))))
            })
            .unwrap()
            .build();
    let hash = QueryBuilder::scan_as(db, "T", "L")
        .unwrap()
        .join(QueryBuilder::scan_as(db, "S", "R").unwrap(), |s| {
            Ok(Expr::col(s, "L.G")?
                .eq(Expr::col(s, "R.G")?)
                .and(Expr::col(s, "L.VT")?.overlaps(Expr::col(s, "R.VT")?)))
        })
        .unwrap()
        .build();
    let sweep = QueryBuilder::scan_as(db, "T", "L")
        .unwrap()
        .join(QueryBuilder::scan_as(db, "S", "R").unwrap(), |s| {
            Ok(Expr::col(s, "L.VT")?.overlaps(Expr::col(s, "R.VT")?))
        })
        .unwrap()
        .build();
    vec![filter, hash, sweep]
}

#[test]
fn chunked_scans_are_bit_identical_at_every_parallelism() {
    let db = fragmented_db(3 * CHUNK);
    for (i, plan) in plans(&db).iter().enumerate() {
        let phys = compile(&db, plan, &PlannerConfig::default()).unwrap();
        let (serial, serial_stats) = phys.execute_with_stats(&ExecContext::serial()).unwrap();
        for p in [1usize, 2, 4, 8] {
            let ctx = ExecContext::new(p);
            let (parallel, parallel_stats) = phys.execute_with_stats(&ctx).unwrap();
            assert_eq!(parallel, serial, "plan {i}, parallelism {p}: result");
            assert_eq!(
                parallel_stats, serial_stats,
                "plan {i}, parallelism {p}: stats"
            );
            for rt in [tp(0), tp(25), tp(47), tp(90)] {
                let (rows_s, st_s) = phys.rows_at_with_stats(rt, &ExecContext::serial()).unwrap();
                let (rows_p, st_p) = phys.rows_at_with_stats(rt, &ctx).unwrap();
                assert_eq!(rows_p, rows_s, "plan {i}, p {p}, rt {rt}: rows");
                assert_eq!(st_p, st_s, "plan {i}, p {p}, rt {rt}: stats");
            }
        }
    }
}

// ---------------------------------------------------------------------
// 4a. Delta-then-compact equivalence.
// ---------------------------------------------------------------------

#[test]
fn compact_is_a_semantic_noop() {
    let db = fragmented_db(2 * CHUNK);
    let fragmented = db.table("T").unwrap().data().clone();
    let mut compacted = fragmented.clone();
    compacted.compact();

    // Same logical relation…
    assert_eq!(compacted, fragmented);
    assert_eq!(compacted.len(), fragmented.len());
    assert_eq!(compacted.tuples(), fragmented.tuples());
    for rt in [tp(0), tp(33), tp(80)] {
        assert_eq!(compacted.bind(rt), fragmented.bind(rt));
    }
    // …different physical layout: folded dense.
    let s = compacted.storage_summary();
    assert_eq!(s.overlay_rows, 0);
    assert_eq!(s.dead_rows, 0);
    assert_eq!(s.pending_rows, 0);

    // Queries over a compacted catalog table match the fragmented run.
    let plan = plans(&db).remove(0);
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
    let (frag_result, frag_stats) = phys.execute_with_stats(&ExecContext::new(4)).unwrap();
    db.put_table("T", compacted).unwrap();
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
    let (comp_result, comp_stats) = phys.execute_with_stats(&ExecContext::new(4)).unwrap();
    assert_eq!(comp_result, frag_result);
    assert_eq!(comp_stats, frag_stats);
}

// ---------------------------------------------------------------------
// 4b. Staleness regression: deleting one mid-table row counts as one
//     touched row, not ~N (the positional-diff bug).
// ---------------------------------------------------------------------

#[test]
fn delete_one_row_advances_staleness_by_one() {
    let db = Database::new();
    db.create_table("T", big_relation(200)).unwrap();
    let stats = db.analyze("T").unwrap();
    assert_eq!(stats.rows, 200);

    // Deleting a single row mid-table shifts 100 successors positionally;
    // the old positional diff counted ~100 touched rows and re-analyzed.
    // The COW delta counts exactly one, far below the threshold (50 + 10%).
    db.modify_table("T", |rel| Modifier::new(rel, "VT")?.delete(&k_eq(100)))
        .unwrap();
    let after = db.table("T").unwrap().statistics().unwrap();
    assert_eq!(
        after.rows, 200,
        "statistics must not auto-refresh after a one-row delete"
    );

    // Crossing the threshold for real still refreshes.
    db.modify_table("T", |rel| {
        let mut m = Modifier::new(rel, "VT")?;
        for k in 0..80 {
            m.delete(&k_eq(k))?;
        }
        Ok(())
    })
    .unwrap();
    let refreshed = db.table("T").unwrap().statistics().unwrap();
    assert!(
        refreshed.rows < 200,
        "bulk delete past the threshold must refresh (rows={})",
        refreshed.rows
    );
}

#[test]
fn staleness_counts_logical_rows_not_overlay_copies() {
    // A chunk that already carries a large edit overlay forces every new
    // version to copy that overlay (copy-on-write bookkeeping). That
    // physical work must NOT count toward statistics staleness: a one-row
    // edit is one touched row even on a heavily-overlaid chunk.
    let db = Database::new();
    db.create_table("T", big_relation(1_000)).unwrap();
    db.modify_table("T", |rel| {
        let mut m = Modifier::new(rel, "VT")?;
        // 60 touched rows: a sizable overlay, but below the per-chunk
        // dirty-run fold trigger (dead + overlay ≤ 25 % of a 512-row
        // chunk; an in-place replace contributes one of each) so the
        // overlay survives publication. The cap point lies past every
        // start (starts are < 97), so every row is replaced in place
        // rather than tombstoned.
        for k in 0..60 {
            m.terminate(&k_eq(k), tp(200))?;
        }
        Ok(())
    })
    .unwrap();
    let overlay = db.table("T").unwrap().data().storage_summary().overlay_rows;
    assert!(overlay >= 50, "fixture needs a big overlay, got {overlay}");
    let stats = db.analyze("T").unwrap();
    let rows = stats.rows;

    // One-row edits: each copies the ~300-entry overlay physically, but
    // advances staleness by 1 — far below the threshold, no refresh.
    for k in 400..410 {
        db.modify_table("T", |rel| Modifier::new(rel, "VT")?.delete(&k_eq(k)))
            .unwrap();
    }
    let after = db.table("T").unwrap().statistics().unwrap();
    assert_eq!(
        after.rows, rows,
        "overlay copy-on-write must not inflate the staleness counter"
    );
}

// ---------------------------------------------------------------------
// 5. Differential property test: Modifier over the COW store vs a naive
//    Vec<Tuple> re-implementation of the same semantics.
// ---------------------------------------------------------------------

/// One randomized modification step.
#[derive(Debug, Clone)]
enum Op {
    InsertOpen { k: i64, start: i64 },
    Terminate { k: i64, at: i64 },
    Update { k: i64, g: i64, at: i64 },
    Delete { k: i64 },
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let k = 0i64..12;
    prop_oneof![
        (k.clone(), 0i64..60).prop_map(|(k, start)| Op::InsertOpen { k, start }),
        (k.clone(), 0i64..60).prop_map(|(k, at)| Op::Terminate { k, at }),
        (k.clone(), 0i64..9, 0i64..60).prop_map(|(k, g, at)| Op::Update { k, g, at }),
        k.prop_map(|k| Op::Delete { k }),
        (0u8..2).prop_map(|_| Op::Compact),
    ]
}

// The naive model — the pre-refactor semantics over a plain `Vec<Tuple>`
// — lives in `ongoing_bench::naive`, shared with `repro_churn`'s replay.
use ongoing_bench::naive as model;

proptest! {
    #[test]
    fn modifier_sequences_match_the_naive_model(
        seed_rows in 0usize..40,
        ops in proptest::collection::vec(arb_op(), 1..30),
    ) {
        let mut rel = OngoingRelation::new(schema());
        let mut rows: Vec<Tuple> = Vec::new();
        for i in 0..seed_rows as i64 {
            let iv = OngoingInterval::fixed(tp(i % 17), tp(i % 17 + 4));
            rel.insert(vec![Value::Int(i % 12), Value::Int(0), Value::Interval(iv)])
                .unwrap();
            rows.push(Tuple::base(vec![
                Value::Int(i % 12),
                Value::Int(0),
                Value::Interval(iv),
            ]));
        }
        for op in &ops {
            match op {
                Op::InsertOpen { k, start } => {
                    Modifier::new(&mut rel, "VT").unwrap().insert_open(
                        vec![Value::Int(*k), Value::Int(1), Value::Bool(false)],
                        tp(*start),
                    ).unwrap();
                    model::insert_open(&mut rows, *k, 1, tp(*start));
                }
                Op::Terminate { k, at } => {
                    Modifier::new(&mut rel, "VT").unwrap()
                        .terminate(&k_eq(*k), tp(*at)).unwrap();
                    model::terminate(&mut rows, *k, tp(*at));
                }
                Op::Update { k, g, at } => {
                    Modifier::new(&mut rel, "VT").unwrap()
                        .update(&k_eq(*k), &[(1, Value::Int(*g))], tp(*at)).unwrap();
                    model::update(&mut rows, *k, *g, tp(*at));
                }
                Op::Delete { k } => {
                    Modifier::new(&mut rel, "VT").unwrap().delete(&k_eq(*k)).unwrap();
                    model::delete(&mut rows, *k);
                }
                Op::Compact => rel.compact(),
            }
            // Same tuple sequence after every step…
            prop_assert_eq!(rel.len(), rows.len());
            let got: Vec<Tuple> = rel.iter().cloned().collect();
            prop_assert_eq!(&got, &rows, "store diverged from model after {:?}", op);
            // …and the compatibility slice agrees with chunk iteration.
            prop_assert_eq!(rel.tuples(), &rows[..]);
        }
        // Instantiations agree everywhere (the paper's criterion).
        let oracle = OngoingRelation::from_tuples(schema(), rows).unwrap();
        for rt in (-2i64..70).step_by(7) {
            prop_assert_eq!(rel.bind(tp(rt)), oracle.bind(tp(rt)));
        }
    }
}

// ---------------------------------------------------------------------
// Catalog-level churn sanity: sustained modifications stay O(delta) and
// the auto-compaction policy keeps fragmentation bounded.
// ---------------------------------------------------------------------

#[test]
fn sustained_churn_keeps_fragmentation_bounded() {
    let db = Database::new();
    db.create_table("T", big_relation(2 * CHUNK)).unwrap();
    let base_work = db.table("T").unwrap().data().write_work();
    for round in 0..300i64 {
        db.modify_table("T", |rel| {
            let mut m = Modifier::new(rel, "VT")?;
            m.insert_open(
                vec![
                    Value::Int(500_000 + round),
                    Value::Int(round % 13),
                    Value::Bool(false),
                ],
                tp(round % 90),
            )?;
            m.terminate(&k_eq(round % 700), tp(round % 90 + 1))?;
            Ok(())
        })
        .unwrap();
    }
    let data = db.table("T").unwrap().data().clone();
    let s = data.storage_summary();
    let ideal = data.len().div_ceil(CHUNK);
    let slack = ongoing_relation::store::COMPACT_CHUNK_SLACK.max(ideal);
    assert!(
        s.chunks <= ideal + slack + 1,
        "compaction policy failed to bound chunk count: {s:?}"
    );
    // Total physical write work stays far below 300 × O(table) — the
    // pre-refactor cost of 300 whole-table clones.
    let spent = data.write_work() - base_work;
    let clone_cost = 300 * 2 * CHUNK as u64;
    assert!(
        spent < clone_cost / 4,
        "write work {spent} should be well under the clone-path cost {clone_cost}"
    );
}

// ---------------------------------------------------------------------
// Partial compaction: sustained churn folds fragmented chunk *runs*,
// never the whole table — the per-publication write-work spike stays
// O(run) while the clone path (and a full fold) would be O(table).
// ---------------------------------------------------------------------

#[test]
fn churn_folds_are_run_sized_not_table_sized() {
    let n = 16 * CHUNK; // 8192 rows — a whole-table fold would cost ≥ n.
    let db = Database::new();
    db.create_table("T", big_relation(n)).unwrap();
    let mut prev = db.table("T").unwrap().data().write_work();
    let mut max_spike = 0u64;
    for round in 0..400i64 {
        db.modify_table("T", |rel| {
            let mut m = Modifier::new(rel, "VT")?;
            m.insert_open(
                vec![
                    Value::Int(900_000 + round),
                    Value::Int(round % 13),
                    Value::Bool(false),
                ],
                tp(round % 90),
            )?;
            m.terminate(&k_eq(round * 37 % n as i64), tp(round % 90 + 2))?;
            Ok(())
        })
        .unwrap();
        let now = db.table("T").unwrap().data().write_work();
        max_spike = max_spike.max(now - prev);
        prev = now;
    }
    // Every publication — including the ones that compacted — spent
    // O(fragmented run), bounded by a couple of chunk sizes, nowhere near
    // the 8192-row table.
    assert!(
        max_spike <= 2 * CHUNK as u64,
        "a publication spent {max_spike} wu — an O(table) fold leaked in"
    );
    // And fragmentation still stays bounded.
    let data = db.table("T").unwrap().data().clone();
    let s = data.storage_summary();
    let ideal = data.len().div_ceil(CHUNK);
    assert!(
        s.chunks <= ideal + ongoing_relation::store::COMPACT_CHUNK_SLACK.max(ideal) + 1,
        "partial compaction failed to bound fragmentation: {s:?}"
    );
}

// ---------------------------------------------------------------------
// Interval indexes address live positions on the current version.
// ---------------------------------------------------------------------

#[test]
fn interval_index_ids_follow_the_live_ordinals() {
    let db = fragmented_db(2 * CHUNK);
    let table = db.table("T").unwrap();
    let idx = table.interval_index(2).unwrap();
    let ids = idx.query(tp(20), tp(45));
    assert!(!ids.is_empty());
    for &id in &ids {
        let t = table.data().tuple_at(id).expect("live position");
        let iv = t.value(2).as_interval().unwrap();
        assert!(
            iv.ts().a() < tp(45) && iv.te().b() > tp(20),
            "id {id}: {iv:?}"
        );
    }
}

/// Keeping the example from the paper honest across the refactor: the
/// md-granularity doctest scenario still round-trips through the store.
#[test]
fn md_scenario_roundtrip() {
    let db = Database::new();
    let mut bugs = OngoingRelation::new(Schema::builder().int("BID").interval("VT").build());
    bugs.insert(vec![
        Value::Int(500),
        Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
    ])
    .unwrap();
    db.create_table("B", bugs).unwrap();
    let n = db
        .modify_table("B", |rel| {
            Modifier::new(rel, "VT")?.terminate(&Expr::Col(0).eq(Expr::lit(500i64)), md(9, 1))
        })
        .unwrap();
    assert_eq!(n, 1);
    let data = db.table("B").unwrap().data().clone();
    assert_eq!(data.len(), 1);
    let iv = data.iter().next().unwrap().value(1).as_interval().unwrap();
    assert_eq!(iv.te(), OngoingPoint::limited(md(9, 1)));
}
