//! End-to-end tests for the grouped aggregation operator (Sec. X
//! extension): `∀rt: ∥γ(R)∥rt ≡ γF(∥R∥rt)` through the engine, plus
//! aggregate values in predicates and storage.

use ongoing_core::time::tp;
use ongoing_core::{IntervalSet, OngoingInt, OngoingInterval, TimePoint};
use ongoing_relation::aggregate::AggFn;
use ongoing_relation::{Expr, OngoingRelation, Schema, Value};
use ongoingdb::engine::plan::{compile, PlannerConfig};
use ongoingdb::engine::{Database, QueryBuilder};

fn sample_db() -> Database {
    let db = Database::new();
    let schema = Schema::builder().int("N").str("C").interval("VT").build();
    let mut r = OngoingRelation::new(schema);
    let rows: Vec<(i64, &str, OngoingInterval, IntervalSet)> = vec![
        (
            10,
            "a",
            OngoingInterval::from_until_now(tp(0)),
            IntervalSet::full(),
        ),
        (
            20,
            "a",
            OngoingInterval::fixed(tp(1), tp(2)),
            IntervalSet::range(tp(5), tp(15)),
        ),
        (
            30,
            "b",
            OngoingInterval::fixed(tp(1), tp(2)),
            IntervalSet::range(tp(10), tp(20)),
        ),
        // Duplicate payload of the row above, different reference time:
        // set semantics must count it once where both are alive.
        (
            30,
            "b",
            OngoingInterval::fixed(tp(1), tp(2)),
            IntervalSet::range(tp(15), tp(25)),
        ),
    ];
    for (n, c, vt, rt) in rows {
        r.insert_with_rt(vec![Value::Int(n), Value::str(c), Value::Interval(vt)], rt)
            .unwrap();
    }
    db.create_table("T", r).unwrap();
    db
}

fn agg_plan(db: &Database) -> ongoingdb::engine::LogicalPlan {
    QueryBuilder::scan(db, "T")
        .unwrap()
        .aggregate(
            &["C"],
            vec![AggFn::CountStar, AggFn::SumInt(0)],
            vec!["cnt".into(), "total".into()],
        )
        .unwrap()
        .build()
}

#[test]
fn aggregate_commutes_with_bind() {
    let db = sample_db();
    let plan = agg_plan(&db);
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
    let ongoing = phys.execute().unwrap();
    for rt in -3i64..30 {
        let rt = tp(rt);
        let lhs = ongoing.bind(rt);
        let rhs = phys.execute_at(rt).unwrap();
        assert_eq!(lhs, rhs, "∥γ(R)∥rt != γF(∥R∥rt) at rt={rt}");
    }
}

#[test]
fn aggregate_values_track_reference_time() {
    let db = sample_db();
    let plan = agg_plan(&db);
    let result = ongoingdb::engine::execute(&db, &plan).unwrap();
    assert_eq!(result.len(), 2);
    let group_a = result
        .tuples()
        .iter()
        .find(|t| t.value(0).as_str() == Some("a"))
        .unwrap();
    let cnt = group_a.value(1).as_ongoing_int().unwrap();
    assert_eq!(cnt.bind(tp(0)), 1);
    assert_eq!(cnt.bind(tp(7)), 2);
    assert_eq!(cnt.bind(tp(20)), 1);
    let total = group_a.value(2).as_ongoing_int().unwrap();
    assert_eq!(total.bind(tp(0)), 10);
    assert_eq!(total.bind(tp(7)), 30);

    // Duplicates in group b count once where both copies are alive.
    let group_b = result
        .tuples()
        .iter()
        .find(|t| t.value(0).as_str() == Some("b"))
        .unwrap();
    let cnt_b = group_b.value(1).as_ongoing_int().unwrap();
    assert_eq!(cnt_b.bind(tp(17)), 1, "set semantics over duplicates");
    assert_eq!(cnt_b.bind(tp(12)), 1);
    assert_eq!(cnt_b.bind(tp(30)), 0);
    // Group exists exactly while some member is alive.
    assert_eq!(group_b.rt(), &IntervalSet::range(tp(10), tp(25)));
}

#[test]
fn having_style_predicates_over_aggregates() {
    // Filter the aggregate relation on the ongoing count: groups while at
    // least 2 tuples are alive.
    let db = sample_db();
    let plan = QueryBuilder::scan(&db, "T")
        .unwrap()
        .aggregate(&["C"], vec![AggFn::CountStar], vec!["cnt".into()])
        .unwrap()
        .filter(|s| {
            Ok(Expr::col(s, "cnt")?
                .ne(Expr::lit(0i64))
                .and(Expr::lit(Value::Count(OngoingInt::constant(1))).lt(Expr::col(s, "cnt")?)))
        })
        .unwrap()
        .build();
    let result = ongoingdb::engine::execute(&db, &plan).unwrap();
    // Only group "a" ever reaches count 2 — during [5, 15).
    assert_eq!(result.len(), 1);
    assert_eq!(result.tuples()[0].value(0).as_str(), Some("a"));
    assert_eq!(result.tuples()[0].rt(), &IntervalSet::range(tp(5), tp(15)));
}

#[test]
fn aggregate_rejects_ongoing_group_keys_and_bad_sums() {
    let db = sample_db();
    assert!(QueryBuilder::scan(&db, "T")
        .unwrap()
        .aggregate(&["VT"], vec![AggFn::CountStar], vec!["c".into()])
        .is_err());
    assert!(QueryBuilder::scan(&db, "T")
        .unwrap()
        .aggregate(&["C"], vec![AggFn::SumInt(1)], vec!["s".into()])
        .is_err());
    assert!(QueryBuilder::scan(&db, "T")
        .unwrap()
        .aggregate(&["C"], vec![AggFn::CountStar], vec![])
        .is_err());
}

#[test]
fn ongoing_int_values_round_trip_through_storage() {
    use ongoingdb::engine::storage::codec::{decode_tuple, encode_tuple};
    let db = sample_db();
    let result = ongoingdb::engine::execute(&db, &agg_plan(&db)).unwrap();
    for t in result.tuples() {
        let bytes = encode_tuple(t);
        assert_eq!(&decode_tuple(&bytes).unwrap(), t);
    }
}

#[test]
fn aggregate_over_selection_pipeline() {
    // γ over σ: open bugs per component while they are open.
    let db = sample_db();
    let plan =
        QueryBuilder::scan(&db, "T")
            .unwrap()
            .filter(|s| {
                Ok(Expr::col(s, "VT")?.overlaps(Expr::lit(Value::Interval(
                    OngoingInterval::fixed(tp(0), tp(100)),
                ))))
            })
            .unwrap()
            .aggregate(&["C"], vec![AggFn::CountStar], vec!["cnt".into()])
            .unwrap()
            .build();
    let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
    let ongoing = phys.execute().unwrap();
    for rt in [tp(-5), tp(3), tp(12), tp(22), TimePoint::new(40)] {
        assert_eq!(ongoing.bind(rt), phys.execute_at(rt).unwrap(), "rt={rt}");
    }
}
