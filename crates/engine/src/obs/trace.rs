//! Per-query trace spans and the one-and-only plan-tree renderer.
//!
//! A [`SpanNode`] mirrors one physical operator: it carries the operator's
//! *actual* output rows, its deterministic self/total work units (the
//! [`ExecStats`] delta attributed to this operator vs. its children), and
//! informational wall-clock nanoseconds. Executors build the tree through
//! a [`TraceCollector`] threaded in via
//! [`ExecContext::trace`](crate::ExecContext) — morsel work lands in the
//! operator's own counters because partition merges already fold in
//! deterministic partition order, so span work units are bit-identical at
//! every thread count (wall time, of course, is not).
//!
//! This module is also the single source of truth for rendering plan
//! trees: `explain`, `explain_with_estimates`, `explain_with_stats` and
//! `EXPLAIN ANALYZE` all flow through [`render_tree`]/[`render_summary`],
//! so estimated and measured lines can never drift in layout or rounding.

use crate::exec::ExecStats;
use crate::plan::PhysicalPlan;
use crate::stats::cost::{NodeEstimate, WorkEstimate};
use parking_lot::Mutex;

/// One operator's slice of a query trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The operator's one-line rendering (same text as `explain`).
    pub label: String,
    /// Rows the operator produced.
    pub rows: u64,
    /// Work units attributed to this operator alone (children excluded);
    /// deterministic across thread counts.
    pub self_work: ExecStats,
    /// Work units of this operator plus its whole subtree.
    pub total_work: ExecStats,
    /// Wall-clock nanoseconds for this operator's subtree. Informational:
    /// varies run to run and with parallelism.
    pub wall_ns: u64,
    /// Child spans in `explain` order.
    pub children: Vec<SpanNode>,
}

/// Builds the span tree during execution.
///
/// The executor recursion is single-threaded over *operators* (only morsel
/// work inside an operator fans out, and workers never re-enter the
/// recursion), so a simple frame stack suffices: each operator opens a
/// frame, its children record themselves into it, and the operator folds
/// the closed frame into its own span.
#[derive(Debug, Default)]
pub struct TraceCollector {
    frames: Mutex<Vec<Vec<SpanNode>>>,
    roots: Mutex<Vec<SpanNode>>,
}

impl TraceCollector {
    /// A fresh collector.
    pub fn new() -> TraceCollector {
        TraceCollector::default()
    }

    /// Opens a frame for the children of the operator about to run.
    pub fn open_frame(&self) {
        self.frames.lock().push(Vec::new());
    }

    /// Closes the innermost frame, returning the spans recorded into it.
    pub fn close_frame(&self) -> Vec<SpanNode> {
        self.frames.lock().pop().unwrap_or_default()
    }

    /// Records a finished span into the enclosing frame (or as a root).
    pub fn record(&self, span: SpanNode) {
        let mut frames = self.frames.lock();
        match frames.last_mut() {
            Some(frame) => frame.push(span),
            None => self.roots.lock().push(span),
        }
    }

    /// Drains the finished root spans (normally exactly one per executed
    /// plan).
    pub fn finish(&self) -> Vec<SpanNode> {
        std::mem::take(&mut *self.roots.lock())
    }
}

/// The per-operator annotation, the one place estimated and measured
/// numbers are formatted. `(est rows≈… self work≈…)` when only estimates
/// exist, `(… | rows=… work=… wall=…ns)` once actuals do.
fn annotation(est: Option<&NodeEstimate>, actual: Option<&SpanNode>) -> String {
    match (est, actual) {
        (None, None) => String::new(),
        (Some(e), None) => format!(
            "  (est rows≈{:.0} self work≈{:.0})",
            e.rows,
            e.self_work.total()
        ),
        (Some(e), Some(a)) => format!(
            "  (est rows≈{:.0} self work≈{:.0} | rows={} work={} wall={}ns)",
            e.rows,
            e.self_work.total(),
            a.rows,
            a.self_work.total_work(),
            a.wall_ns
        ),
        (None, Some(a)) => format!(
            "  (rows={} work={} wall={}ns)",
            a.rows,
            a.self_work.total_work(),
            a.wall_ns
        ),
    }
}

fn render_into(
    plan: &PhysicalPlan,
    depth: usize,
    est: Option<&NodeEstimate>,
    actual: Option<&SpanNode>,
    out: &mut String,
) {
    let pad = "  ".repeat(depth);
    out.push_str(&format!(
        "{pad}{}{}\n",
        plan.node_line(),
        annotation(est, actual)
    ));
    for (i, child) in plan.inputs().into_iter().enumerate() {
        render_into(
            child,
            depth + 1,
            est.and_then(|e| e.children.get(i)),
            actual.and_then(|a| a.children.get(i)),
            out,
        );
    }
}

/// Renders `plan` one operator per line, annotating each with whatever is
/// available: cost-model estimates, measured spans, both, or neither.
pub fn render_tree(
    plan: &PhysicalPlan,
    est: Option<&NodeEstimate>,
    actual: Option<&SpanNode>,
) -> String {
    let mut out = String::new();
    render_into(plan, 0, est, actual, &mut out);
    out
}

/// The measured-vs-estimated trailer shared by `explain_with_stats` and
/// `EXPLAIN ANALYZE`.
pub fn render_summary(stats: &ExecStats, est: &WorkEstimate) -> String {
    format!("stats: {stats}\nest:   {est}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(label: &str, rows: u64, children: Vec<SpanNode>) -> SpanNode {
        SpanNode {
            label: label.into(),
            rows,
            self_work: ExecStats::default(),
            total_work: ExecStats::default(),
            wall_ns: 0,
            children,
        }
    }

    #[test]
    fn collector_nests_frames() {
        let t = TraceCollector::new();
        t.open_frame(); // root's children
        t.open_frame(); // leaf's children (none)
        let none = t.close_frame();
        assert!(none.is_empty());
        t.record(span("leaf", 1, none));
        let kids = t.close_frame();
        assert_eq!(kids.len(), 1);
        t.record(span("root", 1, kids));
        let roots = t.finish();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children[0].label, "leaf");
        assert!(t.finish().is_empty(), "finish drains");
    }

    #[test]
    fn annotation_shapes() {
        assert_eq!(annotation(None, None), "");
        let a = span("x", 3, Vec::new());
        assert_eq!(annotation(None, Some(&a)), "  (rows=3 work=0 wall=0ns)");
    }
}
