//! Unified observability: the metrics registry, per-query trace spans,
//! and the structured event log.
//!
//! Everything the engine already counted — [`ExecStats`](crate::ExecStats)
//! work units, [`DurableStats`](crate::DurableStats) WAL/chunk/cache
//! counters, the store's `write_work`/`qual_work`, CAS attempts — surfaces
//! here under stable metric names through one snapshot API
//! ([`Database::metrics_snapshot`](crate::Database::metrics_snapshot) /
//! [`Database::metrics_text`](crate::Database::metrics_text)). The typed
//! structs stay exactly as they were; the registry is a view over them
//! plus the engine-level counters recorded directly.
//!
//! * [`metrics`] — named atomic counters/gauges/log-bucketed histograms,
//!   [`MetricsSnapshot`] with delta computation, Prometheus-style text
//!   exposition.
//! * [`trace`] — the [`SpanNode`] tree behind `EXPLAIN ANALYZE`, plus the
//!   single renderer all `explain*` variants share.
//! * [`events`] — the bounded [`EventLog`] ring of typed [`EngineEvent`]s
//!   with an optional JSONL sink through the `Vfs` seam.

pub mod events;
pub mod metrics;
pub mod trace;

pub use events::{EngineEvent, EventLog, EventRecord, DEFAULT_EVENT_CAPACITY};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{SpanNode, TraceCollector};

use crate::exec::ExecStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Environment variable: slow-query threshold in milliseconds. Queries at
/// or above it land in the event log as [`EngineEvent::SlowQuery`]; `0`
/// logs every query. Unset defaults to
/// [`DEFAULT_SLOW_QUERY_MS`].
pub const SLOW_QUERY_ENV: &str = "ONGOINGDB_SLOW_QUERY_MS";

/// Environment variable: path of a JSONL event-log sink. When set, every
/// recorded event is appended to this file as one JSON object per line.
pub const EVENT_LOG_ENV: &str = "ONGOINGDB_EVENT_LOG";

/// Default slow-query threshold (milliseconds) when
/// [`SLOW_QUERY_ENV`] is unset.
pub const DEFAULT_SLOW_QUERY_MS: u64 = 250;

/// Stable names of the per-query executor work-unit counters, in
/// [`ExecStats`] field order. These are the deterministic metrics: their
/// values depend only on the data and the plan, never on thread count or
/// wall clock.
pub const EXEC_METRIC_NAMES: [&str; 5] = [
    "ongoingdb_exec_tuples_scanned",
    "ongoingdb_exec_tuples_filtered",
    "ongoingdb_exec_pairs_compared",
    "ongoingdb_exec_index_candidates",
    "ongoingdb_exec_intervals_merged",
];

/// Stable names of the tuple-store work gauges, in
/// [`StoreWork`](ongoing_relation::StoreWork) field order. Summed over
/// every resident table at snapshot time; deterministic like the executor
/// counters.
pub const STORE_METRIC_NAMES: [&str; 3] = [
    "ongoingdb_store_write_work",
    "ongoingdb_store_logical_writes",
    "ongoingdb_store_qual_work",
];

/// Stable names of the durability metrics, in
/// [`DurableStats`](crate::DurableStats) field order.
pub const DURABLE_METRIC_NAMES: [&str; 12] = [
    "ongoingdb_wal_records",
    "ongoingdb_wal_bytes",
    "ongoingdb_wal_tuples",
    "ongoingdb_chunk_files",
    "ongoingdb_chunk_tuples",
    "ongoingdb_tuples_loaded",
    "ongoingdb_checkpoints",
    "ongoingdb_cache_hits",
    "ongoingdb_cache_misses",
    "ongoingdb_cache_evictions",
    "ongoingdb_cache_resident_bytes",
    "ongoingdb_cache_peak_bytes",
];

/// One observability bundle per [`Database`](crate::Database): the
/// registry, the event ring, and the slow-query threshold.
#[derive(Debug)]
pub struct Obs {
    /// The metrics registry.
    pub metrics: MetricsRegistry,
    /// The event ring (shared with the storage layer's hooks).
    pub events: Arc<EventLog>,
    slow_query_ns: AtomicU64,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::from_env()
    }
}

impl Obs {
    /// A bundle configured from the environment: slow-query threshold from
    /// [`SLOW_QUERY_ENV`], JSONL sink from [`EVENT_LOG_ENV`] (through the
    /// real filesystem). Core metric names are registered eagerly so the
    /// exposition lists them even before first use.
    pub fn from_env() -> Obs {
        let slow_ms = std::env::var(SLOW_QUERY_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_SLOW_QUERY_MS);
        let obs = Obs {
            metrics: MetricsRegistry::new(),
            events: Arc::new(EventLog::default()),
            slow_query_ns: AtomicU64::new(slow_ms.saturating_mul(1_000_000)),
        };
        if let Ok(path) = std::env::var(EVENT_LOG_ENV) {
            if !path.trim().is_empty() {
                obs.events
                    .set_sink(Arc::new(crate::storage::vfs::RealFs), path.trim());
            }
        }
        for name in EXEC_METRIC_NAMES {
            obs.metrics.counter(name);
        }
        obs.metrics.counter("ongoingdb_queries");
        obs.metrics.counter("ongoingdb_publications");
        obs.metrics.counter("ongoingdb_cas_conflicts");
        obs.metrics.counter("ongoingdb_cas_queue_waits");
        obs.metrics.counter("ongoingdb_wal_fault_retries");
        obs.metrics.counter("ongoingdb_slow_queries");
        obs.metrics.counter("ongoingdb_prepared_hits");
        obs.metrics.counter("ongoingdb_prepared_misses");
        obs.metrics.counter(crate::exec::RESULT_CACHE_HITS_METRIC);
        obs.metrics.counter(crate::exec::RESULT_CACHE_MISSES_METRIC);
        obs.metrics
            .counter(crate::exec::RESULT_CACHE_EVICTIONS_METRIC);
        obs.metrics.gauge(crate::exec::RESULT_CACHE_BYTES_METRIC);
        obs.metrics.histogram("ongoingdb_cas_attempts");
        obs.metrics.histogram("ongoingdb_query_wall_us");
        obs
    }

    /// The slow-query threshold in nanoseconds.
    pub fn slow_query_ns(&self) -> u64 {
        self.slow_query_ns.load(Ordering::Relaxed)
    }

    /// Overrides the slow-query threshold (milliseconds; `0` logs every
    /// query). The environment variable sets the initial value; this
    /// changes it at runtime.
    pub fn set_slow_query_ms(&self, ms: u64) {
        self.slow_query_ns
            .store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
    }

    /// Folds one finished query into the registry and, when it crossed the
    /// slow-query threshold, into the event log. `label` is the query text
    /// (or a caller-chosen name for API-driven plans).
    pub fn observe_query(&self, label: &str, stats: &ExecStats, wall_ns: u64) {
        let exec = [
            stats.tuples_scanned,
            stats.tuples_filtered,
            stats.pairs_compared,
            stats.index_candidates,
            stats.intervals_merged,
        ];
        for (name, v) in EXEC_METRIC_NAMES.iter().zip(exec) {
            self.metrics.counter(name).add(v);
        }
        self.metrics.counter("ongoingdb_queries").inc();
        // Microseconds: the 2^0..2^16 log buckets then span 1 µs – 65 ms,
        // a useful spread for query latencies.
        self.metrics
            .histogram("ongoingdb_query_wall_us")
            .observe(wall_ns / 1_000);
        if wall_ns >= self.slow_query_ns() {
            self.metrics.counter("ongoingdb_slow_queries").inc();
            self.events.record(EngineEvent::SlowQuery {
                query: label.to_string(),
                wall_ns,
                work: stats.total_work(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_query_folds_exec_counters() {
        let obs = Obs {
            metrics: MetricsRegistry::new(),
            events: Arc::new(EventLog::default()),
            slow_query_ns: AtomicU64::new(0), // log everything
        };
        let stats = ExecStats {
            tuples_scanned: 10,
            tuples_filtered: 4,
            pairs_compared: 3,
            index_candidates: 2,
            intervals_merged: 1,
        };
        obs.observe_query("SELECT 1", &stats, 5);
        obs.observe_query("SELECT 1", &stats, 5);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.value("ongoingdb_exec_tuples_scanned"), 20);
        assert_eq!(snap.value("ongoingdb_exec_intervals_merged"), 2);
        assert_eq!(snap.value("ongoingdb_queries"), 2);
        assert_eq!(snap.value("ongoingdb_slow_queries"), 2);
        let events = obs.events.recent();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0].event,
            EngineEvent::SlowQuery { work, .. } if *work == stats.total_work()
        ));
    }
}
