//! The metrics registry: named, typed, atomic metrics behind one
//! snapshot/exposition API.
//!
//! Three metric kinds cover everything the engine counts today:
//!
//! * **Counters** — monotone `u64`s (tuples scanned, CAS conflicts, …).
//! * **Gauges** — instantaneous `u64`s set at observation time (cache
//!   resident bytes, store write-work totals).
//! * **Histograms** — fixed log2-scaled buckets (`≤1, ≤2, ≤4, … , +Inf`),
//!   so bucket boundaries are deterministic across runs and platforms and
//!   two histograms built from the same observations in *any* order are
//!   bit-identical.
//!
//! A [`MetricsSnapshot`] is a point-in-time copy of every registered
//! metric, ordered by name; [`MetricsSnapshot::delta`] subtracts an
//! earlier snapshot (counters and histograms subtract, gauges keep the
//! later value) and [`MetricsSnapshot::render_text`] emits the
//! Prometheus-style text exposition that `Database::metrics_text()`
//! serves.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of finite histogram bucket bounds (`2^0 … 2^(N-1)`); one more
/// bucket catches everything above, Prometheus' `+Inf`.
pub const HISTOGRAM_BOUNDS: usize = 17;

/// The upper bound of finite bucket `i`: `2^i`.
fn bound(i: usize) -> u64 {
    1u64 << i
}

#[derive(Debug, Default)]
struct HistogramCore {
    /// Per-bucket (not cumulative) observation counts; index
    /// [`HISTOGRAM_BOUNDS`] is the overflow (`+Inf`) bucket.
    buckets: [AtomicU64; HISTOGRAM_BOUNDS + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn observe(&self, v: u64) {
        let idx = (0..HISTOGRAM_BOUNDS)
            .find(|&i| v <= bound(i))
            .unwrap_or(HISTOGRAM_BOUNDS);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// Handle to a registered counter; cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `v` to the counter.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a registered gauge; cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a registered histogram; cloning shares the underlying cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation of `v`.
    pub fn observe(&self, v: u64) {
        self.0.observe(v);
    }
}

#[derive(Debug)]
enum MetricCell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

/// The registry: a name → typed-metric map. Handles are cheap to clone
/// and update lock-free; the registry lock is only taken to register or
/// snapshot.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    cells: Mutex<BTreeMap<String, MetricCell>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, registering it (at zero) on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut cells = self.cells.lock();
        let cell = cells
            .entry(name.to_string())
            .or_insert_with(|| MetricCell::Counter(Arc::new(AtomicU64::new(0))));
        match cell {
            MetricCell::Counter(c) => Counter(Arc::clone(c)),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// The gauge named `name`, registering it (at zero) on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut cells = self.cells.lock();
        let cell = cells
            .entry(name.to_string())
            .or_insert_with(|| MetricCell::Gauge(Arc::new(AtomicU64::new(0))));
        match cell {
            MetricCell::Gauge(g) => Gauge(Arc::clone(g)),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// The histogram named `name`, registering it (empty) on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut cells = self.cells.lock();
        let cell = cells
            .entry(name.to_string())
            .or_insert_with(|| MetricCell::Histogram(Arc::new(HistogramCore::default())));
        match cell {
            MetricCell::Histogram(h) => Histogram(Arc::clone(h)),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let cells = self.cells.lock();
        let values = cells
            .iter()
            .map(|(name, cell)| {
                let value = match cell {
                    MetricCell::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    MetricCell::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                    MetricCell::Histogram(h) => MetricValue::Histogram(HistogramSnapshot {
                        buckets: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        sum: h.sum.load(Ordering::Relaxed),
                        count: h.count.load(Ordering::Relaxed),
                    }),
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { values }
    }
}

/// Frozen per-bucket histogram counts plus sum/count totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; the last entry is the `+Inf` bucket.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// The inclusive upper bound of finite bucket `i` (`2^i`).
    pub fn bound(i: usize) -> u64 {
        bound(i)
    }
}

/// One frozen metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotone counter value.
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(u64),
    /// Frozen histogram.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a registry, ordered by metric name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    values: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Builds a snapshot directly from `(name, value)` pairs — how the
    /// database folds derived values (durable stats, store work) into the
    /// registry's own snapshot.
    pub fn from_values(values: impl IntoIterator<Item = (String, MetricValue)>) -> Self {
        MetricsSnapshot {
            values: values.into_iter().collect(),
        }
    }

    /// Merges `other` into this snapshot (later names win).
    pub fn merge(&mut self, other: MetricsSnapshot) {
        self.values.extend(other.values);
    }

    /// The value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.get(name)
    }

    /// The counter or gauge value of `name`; zero when absent.
    pub fn value(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) | Some(MetricValue::Gauge(v)) => *v,
            Some(MetricValue::Histogram(h)) => h.count,
            None => 0,
        }
    }

    /// The histogram snapshot of `name`, if present and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// The change since `earlier`: counters and histograms subtract
    /// (saturating, so a restarted source clamps at zero); gauges keep
    /// this snapshot's value. Names only in `earlier` are dropped.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let values = self
            .values
            .iter()
            .map(|(name, value)| {
                let out = match (value, earlier.values.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then)))
                        if now.buckets.len() == then.buckets.len() =>
                    {
                        MetricValue::Histogram(HistogramSnapshot {
                            buckets: now
                                .buckets
                                .iter()
                                .zip(&then.buckets)
                                .map(|(a, b)| a.saturating_sub(*b))
                                .collect(),
                            sum: now.sum.saturating_sub(then.sum),
                            count: now.count.saturating_sub(then.count),
                        })
                    }
                    _ => value.clone(),
                };
                (name.clone(), out)
            })
            .collect();
        MetricsSnapshot { values }
    }

    /// Prometheus-style text exposition: `# TYPE` line per metric, then
    /// the sample(s), in name order.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.values {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (i, n) in h.buckets.iter().enumerate() {
                        cumulative += n;
                        if i < HISTOGRAM_BOUNDS {
                            let _ =
                                writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", bound(i));
                        } else {
                            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                        }
                    }
                    let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total");
        c.add(3);
        reg.counter("c_total").inc(); // same cell via name
        reg.gauge("g_bytes").set(7);
        let h = reg.histogram("h_units");
        h.observe(1);
        h.observe(2);
        h.observe(1 << 20); // overflow bucket

        let snap = reg.snapshot();
        assert_eq!(snap.value("c_total"), 4);
        assert_eq!(snap.value("g_bytes"), 7);
        let hs = snap.histogram("h_units").unwrap();
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 3 + (1 << 20));
        assert_eq!(hs.buckets[0], 1); // v=1 ≤ 2^0
        assert_eq!(hs.buckets[1], 1); // v=2 ≤ 2^1
        assert_eq!(hs.buckets[HISTOGRAM_BOUNDS], 1); // +Inf
    }

    #[test]
    fn delta_subtracts_counters_keeps_gauges() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total");
        let g = reg.gauge("g_now");
        c.add(5);
        g.set(10);
        let before = reg.snapshot();
        c.add(2);
        g.set(4);
        let after = reg.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.value("c_total"), 2);
        assert_eq!(d.value("g_now"), 4);
    }

    #[test]
    fn exposition_is_greppable_and_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").add(1);
        reg.gauge("a_bytes").set(2);
        reg.histogram("c_hist").observe(3);
        let text = reg.snapshot().render_text();
        let a = text.find("a_bytes 2").unwrap();
        let b = text.find("b_total 1").unwrap();
        assert!(a < b, "name order:\n{text}");
        assert!(text.contains("# TYPE c_hist histogram"));
        assert!(text.contains("c_hist_bucket{le=\"4\"} 1"));
        assert!(text.contains("c_hist_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("c_hist_count 1"));
    }

    #[test]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reg.gauge("x")));
        assert!(err.is_err());
    }
}
