//! The structured event log: a bounded in-memory ring of typed engine
//! events with an optional JSONL sink through the [`Vfs`] seam.
//!
//! Events capture the *discrete* things the engine does — a publication
//! landed, a checkpoint folded the WAL, the cache evicted a chunk, a CAS
//! attempt lost its race, a transient I/O fault was absorbed, a query ran
//! slow or hit its deadline. Counters (the metrics registry) answer "how
//! much"; the event ring answers "what happened, in what order".
//!
//! The ring holds the most recent [`EventLog::capacity`] records; older
//! records fall off the front but their monotone sequence numbers keep
//! counting, so a reader can tell exactly how many it missed. When a sink
//! is attached every record is also appended as one JSON line through the
//! `Vfs`, with transient write faults absorbed by the same bounded-backoff
//! retry the WAL uses — an event is written exactly once or the sink error
//! counter advances; it is never silently duplicated.

use crate::storage::vfs::{with_retry, Vfs};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;

/// Default number of records the ring retains.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// One typed engine event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineEvent {
    /// A table modification committed (CAS publication succeeded).
    Publication {
        /// Table the commit landed on.
        table: String,
        /// CAS attempts the commit needed (1 = no contention).
        attempts: u32,
    },
    /// A CAS attempt lost its race and will retry.
    CasConflict {
        /// Table under contention.
        table: String,
        /// The attempt number that failed.
        attempt: u32,
    },
    /// A checkpoint folded the WAL into the manifest.
    Checkpoint {
        /// WAL bytes folded away.
        wal_bytes: u64,
        /// Tables materialized into the manifest.
        tables: u64,
    },
    /// The chunk cache evicted a resident chunk to stay under budget.
    Eviction {
        /// Evicted chunk id.
        chunk: u64,
        /// Bytes released.
        bytes: u64,
    },
    /// A transient WAL I/O fault was absorbed by retrying.
    WalFaultRetry {
        /// Extra attempts the append needed beyond the first.
        retries: u32,
    },
    /// A query ran at or above the slow-query threshold.
    SlowQuery {
        /// The query text (or a label for API-driven plans).
        query: String,
        /// Wall-clock nanoseconds the query took.
        wall_ns: u64,
        /// Deterministic work units the query cost.
        work: u64,
    },
    /// A query or modification hit its deadline.
    DeadlineExceeded {
        /// What timed out (query text or table name).
        context: String,
    },
    /// A query was cooperatively cancelled.
    Cancelled {
        /// What was cancelled.
        context: String,
    },
    /// A query registered a task queue with the shared worker pool.
    QueryQueued {
        /// Queries registered with the pool after this one joined.
        active: u64,
    },
    /// A query waited for a pool admission slot
    /// (`ONGOINGDB_POOL_MAX_QUERIES` reached).
    AdmissionWait {
        /// How long admission blocked, in microseconds.
        wait_us: u64,
    },
    /// The versioned result cache evicted an entry to stay under budget.
    ResultCacheEviction {
        /// Estimated bytes released.
        bytes: u64,
        /// Deterministic work units the cached result had cost to compute.
        cost: u64,
    },
}

impl EngineEvent {
    /// Stable kind tag used in the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineEvent::Publication { .. } => "publication",
            EngineEvent::CasConflict { .. } => "cas_conflict",
            EngineEvent::Checkpoint { .. } => "checkpoint",
            EngineEvent::Eviction { .. } => "eviction",
            EngineEvent::WalFaultRetry { .. } => "wal_fault_retry",
            EngineEvent::SlowQuery { .. } => "slow_query",
            EngineEvent::DeadlineExceeded { .. } => "deadline_exceeded",
            EngineEvent::Cancelled { .. } => "cancelled",
            EngineEvent::QueryQueued { .. } => "query_queued",
            EngineEvent::AdmissionWait { .. } => "admission_wait",
            EngineEvent::ResultCacheEviction { .. } => "result_cache_eviction",
        }
    }
}

/// An event plus its monotone sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Position in the log; strictly increasing, never reused.
    pub seq: u64,
    /// The event itself.
    pub event: EngineEvent,
}

impl EventRecord {
    /// The record as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let seq = self.seq;
        match &self.event {
            EngineEvent::Publication { table, attempts } => format!(
                "{{\"seq\":{seq},\"kind\":\"publication\",\"table\":{},\"attempts\":{attempts}}}",
                json_str(table)
            ),
            EngineEvent::CasConflict { table, attempt } => format!(
                "{{\"seq\":{seq},\"kind\":\"cas_conflict\",\"table\":{},\"attempt\":{attempt}}}",
                json_str(table)
            ),
            EngineEvent::Checkpoint { wal_bytes, tables } => format!(
                "{{\"seq\":{seq},\"kind\":\"checkpoint\",\"wal_bytes\":{wal_bytes},\"tables\":{tables}}}"
            ),
            EngineEvent::Eviction { chunk, bytes } => format!(
                "{{\"seq\":{seq},\"kind\":\"eviction\",\"chunk\":{chunk},\"bytes\":{bytes}}}"
            ),
            EngineEvent::WalFaultRetry { retries } => format!(
                "{{\"seq\":{seq},\"kind\":\"wal_fault_retry\",\"retries\":{retries}}}"
            ),
            EngineEvent::SlowQuery {
                query,
                wall_ns,
                work,
            } => format!(
                "{{\"seq\":{seq},\"kind\":\"slow_query\",\"query\":{},\"wall_ns\":{wall_ns},\"work\":{work}}}",
                json_str(query)
            ),
            EngineEvent::DeadlineExceeded { context } => format!(
                "{{\"seq\":{seq},\"kind\":\"deadline_exceeded\",\"context\":{}}}",
                json_str(context)
            ),
            EngineEvent::Cancelled { context } => format!(
                "{{\"seq\":{seq},\"kind\":\"cancelled\",\"context\":{}}}",
                json_str(context)
            ),
            EngineEvent::QueryQueued { active } => {
                format!("{{\"seq\":{seq},\"kind\":\"query_queued\",\"active\":{active}}}")
            }
            EngineEvent::AdmissionWait { wait_us } => {
                format!("{{\"seq\":{seq},\"kind\":\"admission_wait\",\"wait_us\":{wait_us}}}")
            }
            EngineEvent::ResultCacheEviction { bytes, cost } => format!(
                "{{\"seq\":{seq},\"kind\":\"result_cache_eviction\",\"bytes\":{bytes},\"cost\":{cost}}}"
            ),
        }
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Debug)]
struct Sink {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    /// Committed file length; torn transient appends are truncated back
    /// to it before the retry, so a line lands exactly once or not at all.
    len: u64,
}

#[derive(Debug)]
struct LogInner {
    ring: VecDeque<EventRecord>,
    next_seq: u64,
    capacity: usize,
    dropped: u64,
    sink: Option<Sink>,
    sink_errors: u64,
}

/// Bounded ring of [`EventRecord`]s with an optional JSONL sink.
///
/// One mutex guards ring *and* sink so concurrent recorders serialize:
/// sequence numbers, ring order and sink-file order always agree.
#[derive(Debug)]
pub struct EventLog {
    inner: Mutex<LogInner>,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// A ring retaining the latest `capacity` records (at least 1).
    pub fn with_capacity(capacity: usize) -> EventLog {
        EventLog {
            inner: Mutex::new(LogInner {
                ring: VecDeque::new(),
                next_seq: 0,
                capacity: capacity.max(1),
                dropped: 0,
                sink: None,
                sink_errors: 0,
            }),
        }
    }

    /// Records `event`, returning its sequence number. If a sink is
    /// attached the record is appended as one JSON line, retrying
    /// transient faults; a permanent sink failure only advances
    /// [`sink_errors`](Self::sink_errors) — observability never takes the
    /// engine down.
    pub fn record(&self, event: EngineEvent) -> u64 {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let rec = EventRecord { seq, event };
        if let Some(sink) = &mut inner.sink {
            let line = format!("{}\n", rec.to_json());
            let (vfs, path, len) = (Arc::clone(&sink.vfs), sink.path.clone(), sink.len);
            match with_retry(
                || vfs.append(&path, line.as_bytes()),
                // A failed first append may not have created the file:
                // nothing to roll back then.
                || match vfs.truncate(&path, len) {
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
                    r => r,
                },
            ) {
                Ok(()) => sink.len = len + line.len() as u64,
                Err(_) => inner.sink_errors += 1,
            }
        }
        inner.ring.push_back(rec);
        while inner.ring.len() > inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        seq
    }

    /// The retained records, oldest first.
    pub fn recent(&self) -> Vec<EventRecord> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Resizes the ring (at least 1), trimming the oldest records if the
    /// new capacity is smaller.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock();
        inner.capacity = capacity.max(1);
        while inner.ring.len() > inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
    }

    /// Records that fell off the front of the ring.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Sink appends that failed even after retries.
    pub fn sink_errors(&self) -> u64 {
        self.inner.lock().sink_errors
    }

    /// Attaches a JSONL sink: every future record is appended to `path`
    /// through `vfs` as one JSON object per line. An existing file is
    /// appended to, not truncated.
    pub fn set_sink(&self, vfs: Arc<dyn Vfs>, path: impl Into<PathBuf>) {
        let path = path.into();
        let len = vfs.read(&path).map(|b| b.len() as u64).unwrap_or(0);
        self.inner.lock().sink = Some(Sink { vfs, path, len });
    }

    /// Detaches the sink, if any.
    pub fn clear_sink(&self) {
        self.inner.lock().sink = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u32) -> EngineEvent {
        EngineEvent::CasConflict {
            table: "T".into(),
            attempt: i,
        }
    }

    #[test]
    fn ring_bounds_and_sequences() {
        let log = EventLog::with_capacity(3);
        for i in 0..5 {
            log.record(ev(i));
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    fn shrinking_capacity_trims_oldest() {
        let log = EventLog::with_capacity(8);
        for i in 0..4 {
            log.record(ev(i));
        }
        log.set_capacity(2);
        assert_eq!(
            log.recent().iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn json_encoding_escapes_strings() {
        let rec = EventRecord {
            seq: 7,
            event: EngineEvent::SlowQuery {
                query: "SELECT \"x\"\nFROM t".into(),
                wall_ns: 42,
                work: 9,
            },
        };
        let line = rec.to_json();
        assert!(line.starts_with("{\"seq\":7,\"kind\":\"slow_query\""));
        assert!(line.contains("\\\"x\\\""));
        assert!(line.contains("\\n"));
        assert!(!line.contains('\n'));
    }
}
