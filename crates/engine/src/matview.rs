//! Materialized ongoing views (Sec. IX-C).
//!
//! An ongoing query result does not get invalidated by time passing by, so
//! it can be materialized once and *instantiated* at any number of
//! reference times with a cheap bind pass — no query re-evaluation. This is
//! how applications that do not want to handle ongoing relations explicitly
//! still benefit: compute the ongoing result once, then serve instantiated
//! snapshots at whatever reference times are asked for.
//!
//! The Fig. 11/12 experiments measure the *amortization point*: after how
//! many instantiated snapshots the (more expensive) ongoing evaluation plus
//! cheap binds beats Clifford's re-evaluation per reference time.

use crate::catalog::Database;
use crate::error::Result;
use crate::plan::{compile, LogicalPlan, PlannerConfig};
use ongoing_core::TimePoint;
use ongoing_relation::{FixedRelation, OngoingRelation};

/// A materialized ongoing view: the defining plan plus its ongoing result.
#[derive(Debug)]
pub struct MaterializedView {
    name: String,
    plan: LogicalPlan,
    config: PlannerConfig,
    result: OngoingRelation,
}

impl MaterializedView {
    /// Creates the view by executing `plan` in ongoing mode under the
    /// configuration's execution context (its `parallelism` knob applies).
    pub fn create(
        db: &Database,
        name: &str,
        plan: LogicalPlan,
        config: PlannerConfig,
    ) -> Result<Self> {
        let result = compile(db, &plan, &config)?.execute_ctx(&config.exec_context())?;
        Ok(MaterializedView {
            name: name.to_string(),
            plan,
            config,
            result,
        })
    }

    /// The view name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The defining plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The materialized ongoing result. Remains valid as time passes by —
    /// it only needs a [`refresh`](Self::refresh) after explicit database
    /// modifications.
    pub fn result(&self) -> &OngoingRelation {
        &self.result
    }

    /// Re-computes the view after base-table modifications.
    pub fn refresh(&mut self, db: &Database) -> Result<()> {
        self.result =
            compile(db, &self.plan, &self.config)?.execute_ctx(&self.config.exec_context())?;
        Ok(())
    }

    /// Instantiates the materialized result at `rt` — a single bind pass
    /// over the stored tuples, no query evaluation.
    pub fn instantiate(&self, rt: TimePoint) -> FixedRelation {
        self.result.bind(rt)
    }

    /// Number of materialized (ongoing) tuples.
    pub fn len(&self) -> usize {
        self.result.len()
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.result.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::clifford;
    use crate::QueryBuilder;
    use ongoing_core::date::md;
    use ongoing_core::OngoingInterval;
    use ongoing_relation::{Expr, Schema, Value};

    fn setup() -> Database {
        let db = Database::new();
        let schema = Schema::builder().int("BID").str("C").interval("VT").build();
        let mut b = OngoingRelation::new(schema);
        b.insert(vec![
            Value::Int(500),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
        ])
        .unwrap();
        b.insert(vec![
            Value::Int(501),
            Value::str("Search"),
            Value::Interval(OngoingInterval::fixed(md(3, 30), md(8, 21))),
        ])
        .unwrap();
        db.create_table("B", b).unwrap();
        db
    }

    fn overlap_plan(db: &Database) -> LogicalPlan {
        QueryBuilder::scan(db, "B")
            .unwrap()
            .filter(|s| {
                Ok(Expr::col(s, "VT")?.overlaps(Expr::lit(Value::Interval(
                    OngoingInterval::fixed(md(8, 1), md(9, 1)),
                ))))
            })
            .unwrap()
            .build()
    }

    #[test]
    fn instantiation_matches_clifford_at_every_rt() {
        let db = setup();
        let view = MaterializedView::create(&db, "v", overlap_plan(&db), PlannerConfig::default())
            .unwrap();
        for rt in [md(1, 1), md(4, 1), md(8, 2), md(8, 15), md(12, 24)] {
            let via_view = view.instantiate(rt);
            let via_clifford = clifford::run_at(&db, view.plan(), rt).unwrap();
            assert_eq!(via_view, via_clifford, "rt={rt}");
        }
    }

    #[test]
    fn refresh_picks_up_modifications() {
        let db = setup();
        let mut view =
            MaterializedView::create(&db, "v", overlap_plan(&db), PlannerConfig::default())
                .unwrap();
        let before = view.len();
        // Add another overlapping bug and refresh.
        let t = db.table("B").unwrap();
        let mut data = t.data().clone();
        data.insert(vec![
            Value::Int(502),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::from_until_now(md(8, 5))),
        ])
        .unwrap();
        db.put_table("B", data).unwrap();
        view.refresh(&db).unwrap();
        assert_eq!(view.len(), before + 1);
    }

    #[test]
    fn view_metadata() {
        let db = setup();
        let view = MaterializedView::create(&db, "v", overlap_plan(&db), PlannerConfig::default())
            .unwrap();
        assert_eq!(view.name(), "v");
        assert!(!view.is_empty());
    }
}
