//! Materialized ongoing views (Sec. IX-C).
//!
//! An ongoing query result does not get invalidated by time passing by, so
//! it can be materialized once and *instantiated* at any number of
//! reference times with a cheap bind pass — no query re-evaluation. This is
//! how applications that do not want to handle ongoing relations explicitly
//! still benefit: compute the ongoing result once, then serve instantiated
//! snapshots at whatever reference times are asked for.
//!
//! The Fig. 11/12 experiments measure the *amortization point*: after how
//! many instantiated snapshots the (more expensive) ongoing evaluation plus
//! cheap binds beats Clifford's re-evaluation per reference time.

use crate::catalog::{Database, Table};
use crate::error::Result;
use crate::exec::rescache;
use crate::plan::{compile, LogicalPlan, PlannerConfig};
use ongoing_core::TimePoint;
use ongoing_relation::{FixedRelation, OngoingRelation};
use std::sync::Arc;

/// What a [`MaterializedView::refresh`] actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshOutcome {
    /// Every referenced table is still the exact version (`Arc` identity)
    /// the stored result was computed against — the view is already
    /// current, and no planning or executor work was performed.
    Unchanged,
    /// At least one referenced table was republished; the view re-executed
    /// its defining plan.
    Recomputed,
}

/// A materialized ongoing view: the defining plan plus its ongoing result.
#[derive(Debug)]
pub struct MaterializedView {
    name: String,
    plan: LogicalPlan,
    config: PlannerConfig,
    result: OngoingRelation,
    /// The exact table versions the stored result was computed against,
    /// by name. Version identity is the table `Arc` (a publication swaps
    /// it), so checking freshness is one pointer comparison per table.
    deps: Vec<(String, Arc<Table>)>,
}

impl MaterializedView {
    /// Creates the view by executing `plan` in ongoing mode under the
    /// configuration's execution context (its `parallelism` knob applies).
    /// Runs through the database's result cache, so re-creating a view
    /// over unchanged tables reuses a cached result.
    pub fn create(
        db: &Database,
        name: &str,
        plan: LogicalPlan,
        config: PlannerConfig,
    ) -> Result<Self> {
        let (result, deps) = compute(db, name, &plan, &config)?;
        Ok(MaterializedView {
            name: name.to_string(),
            plan,
            config,
            result,
            deps,
        })
    }

    /// The view name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The defining plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The materialized ongoing result. Remains valid as time passes by —
    /// it only needs a [`refresh`](Self::refresh) after explicit database
    /// modifications.
    pub fn result(&self) -> &OngoingRelation {
        &self.result
    }

    /// Brings the view up to date after base-table modifications.
    ///
    /// When every referenced table still carries the exact version the
    /// stored result was computed against (checked by `Arc` identity, the
    /// paper's O(1) version test), the stored result is *already* correct —
    /// ongoing results do not decay with time — and refresh returns
    /// [`RefreshOutcome::Unchanged`] in O(#tables) without planning or
    /// executing anything. Otherwise the plan re-executes (through the
    /// result cache, so repeated refreshes over the same new versions are
    /// also cheap).
    pub fn refresh(&mut self, db: &Database) -> Result<RefreshOutcome> {
        let fresh = !self.deps.is_empty()
            && self
                .deps
                .iter()
                .all(|(name, dep)| matches!(db.table(name), Ok(t) if Arc::ptr_eq(&t, dep)));
        if fresh {
            return Ok(RefreshOutcome::Unchanged);
        }
        let (result, deps) = compute(db, &self.name, &self.plan, &self.config)?;
        self.result = result;
        self.deps = deps;
        Ok(RefreshOutcome::Recomputed)
    }

    /// Instantiates the materialized result at `rt` — a single bind pass
    /// over the stored tuples, no query evaluation.
    pub fn instantiate(&self, rt: TimePoint) -> FixedRelation {
        self.result.bind(rt)
    }

    /// Number of materialized (ongoing) tuples.
    pub fn len(&self) -> usize {
        self.result.len()
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.result.is_empty()
    }
}

/// The table versions a view was computed against, by name.
type ViewDeps = Vec<(String, Arc<Table>)>;

/// Compiles and executes the defining plan through the shared SQL execution
/// seam — per-query metrics under the label `matview:<name>`, result cache
/// consulted — and captures the exact table versions the compiled plan
/// embeds as the view's dependency set.
fn compute(
    db: &Database,
    name: &str,
    plan: &LogicalPlan,
    config: &PlannerConfig,
) -> Result<(OngoingRelation, ViewDeps)> {
    let phys = compile(db, plan, config)?;
    let deps = rescache::plan_tables(&phys)
        .into_iter()
        .map(|t| (t.name().to_string(), t))
        .collect();
    let label = format!("matview:{name}");
    let (result, _stats) = crate::sql::execute_compiled(db, &phys, config, &label)?;
    Ok((result, deps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::clifford;
    use crate::QueryBuilder;
    use ongoing_core::date::md;
    use ongoing_core::OngoingInterval;
    use ongoing_relation::{Expr, Schema, Value};

    fn setup() -> Database {
        let db = Database::new();
        let schema = Schema::builder().int("BID").str("C").interval("VT").build();
        let mut b = OngoingRelation::new(schema);
        b.insert(vec![
            Value::Int(500),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
        ])
        .unwrap();
        b.insert(vec![
            Value::Int(501),
            Value::str("Search"),
            Value::Interval(OngoingInterval::fixed(md(3, 30), md(8, 21))),
        ])
        .unwrap();
        db.create_table("B", b).unwrap();
        db
    }

    fn overlap_plan(db: &Database) -> LogicalPlan {
        QueryBuilder::scan(db, "B")
            .unwrap()
            .filter(|s| {
                Ok(Expr::col(s, "VT")?.overlaps(Expr::lit(Value::Interval(
                    OngoingInterval::fixed(md(8, 1), md(9, 1)),
                ))))
            })
            .unwrap()
            .build()
    }

    #[test]
    fn instantiation_matches_clifford_at_every_rt() {
        let db = setup();
        let view = MaterializedView::create(&db, "v", overlap_plan(&db), PlannerConfig::default())
            .unwrap();
        for rt in [md(1, 1), md(4, 1), md(8, 2), md(8, 15), md(12, 24)] {
            let via_view = view.instantiate(rt);
            let via_clifford = clifford::run_at(&db, view.plan(), rt).unwrap();
            assert_eq!(via_view, via_clifford, "rt={rt}");
        }
    }

    #[test]
    fn refresh_picks_up_modifications() {
        let db = setup();
        let mut view =
            MaterializedView::create(&db, "v", overlap_plan(&db), PlannerConfig::default())
                .unwrap();
        let before = view.len();
        // Add another overlapping bug and refresh.
        let t = db.table("B").unwrap();
        let mut data = t.data().clone();
        data.insert(vec![
            Value::Int(502),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::from_until_now(md(8, 5))),
        ])
        .unwrap();
        db.put_table("B", data).unwrap();
        assert_eq!(view.refresh(&db).unwrap(), RefreshOutcome::Recomputed);
        assert_eq!(view.len(), before + 1);
    }

    #[test]
    fn refresh_over_unchanged_versions_does_no_work() {
        let db = setup();
        let mut view =
            MaterializedView::create(&db, "v", overlap_plan(&db), PlannerConfig::default())
                .unwrap();
        let queries = |db: &Database| db.metrics_snapshot().value("ongoingdb_queries");
        let before = queries(&db);
        // No publication happened: the stored result is already current.
        for _ in 0..3 {
            assert_eq!(view.refresh(&db).unwrap(), RefreshOutcome::Unchanged);
        }
        // The fast path recorded no query and ran no executor work at all.
        assert_eq!(queries(&db), before);
        assert!(!view.is_empty());
    }

    #[test]
    fn view_metadata() {
        let db = setup();
        let view = MaterializedView::create(&db, "v", overlap_plan(&db), PlannerConfig::default())
            .unwrap();
        assert_eq!(view.name(), "v");
        assert!(!view.is_empty());
    }
}
