//! Engine-wide error type.

use ongoing_relation::{EvalError, SchemaError};
use std::fmt;

/// Errors raised by the catalog, planner, executors and storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The named table does not exist.
    UnknownTable(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Schema resolution or compatibility failure.
    Schema(SchemaError),
    /// Expression evaluation failure.
    Eval(EvalError),
    /// Every `modify_table` attempt found its snapshot superseded by a
    /// concurrent writer before the compare-and-swap: the modification was
    /// *not* applied. Raised only once the retry budget
    /// ([`crate::catalog::RetryPolicy::max_attempts`]) is exhausted —
    /// individual conflicts are retried internally.
    ConcurrentModification {
        /// The contended table.
        table: String,
        /// Publication attempts made before giving up.
        attempts: u32,
    },
    /// Planner rejected the query.
    Plan(String),
    /// Storage-layer failure (encode/decode, page overflow).
    Storage(String),
    /// Durable storage is damaged: a checksum mismatch in a complete WAL
    /// record, chunk file or manifest, or a structurally impossible
    /// record sequence. Distinct from a *torn tail* (an incomplete final
    /// WAL record, the signature of a crash mid-append), which recovery
    /// truncates silently — corruption is never silently dropped.
    CorruptStorage(String),
    /// An operating-system I/O failure in the durable storage layer
    /// (stringified: `std::io::Error` is neither `Clone` nor `PartialEq`).
    Io(String),
    /// The named materialized view does not exist.
    UnknownView(String),
    /// The query (or modification) was cancelled through its
    /// [`QueryControl`](crate::exec::QueryControl) token. Cooperative:
    /// executors poll at morsel boundaries, so cancellation surfaces
    /// within one morsel of work. A cancelled modification whose
    /// publication had not happened yet is a no-op by CAS construction —
    /// the store is never left torn.
    Cancelled,
    /// The operation's deadline passed before it completed. Like
    /// [`Cancelled`](Self::Cancelled) this is checked cooperatively at
    /// morsel boundaries, in retry backoff sleeps and in ticket-gate
    /// queue waits, so no path can block past the deadline unboundedly.
    DeadlineExceeded,
    /// A resource budget was exhausted in a way the engine could not
    /// absorb (e.g. a single pinned working set larger than the chunk
    /// cache can ever hold).
    ResourceExhausted(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(n) => write!(f, "unknown table `{n}`"),
            EngineError::DuplicateTable(n) => write!(f, "table `{n}` already exists"),
            EngineError::ConcurrentModification { table, attempts } => {
                write!(
                    f,
                    "table `{table}` was modified concurrently; gave up after {attempts} attempt(s)"
                )
            }
            EngineError::Schema(e) => write!(f, "{e}"),
            EngineError::Eval(e) => write!(f, "{e}"),
            EngineError::Plan(m) => write!(f, "plan error: {m}"),
            EngineError::Storage(m) => write!(f, "storage error: {m}"),
            EngineError::CorruptStorage(m) => write!(f, "corrupt storage: {m}"),
            EngineError::Io(m) => write!(f, "i/o error: {m}"),
            EngineError::UnknownView(n) => write!(f, "unknown materialized view `{n}`"),
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::DeadlineExceeded => write!(f, "deadline exceeded"),
            EngineError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SchemaError> for EngineError {
    fn from(e: SchemaError) -> Self {
        EngineError::Schema(e)
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e.to_string())
    }
}

impl From<ongoing_relation::PagerError> for EngineError {
    fn from(e: ongoing_relation::PagerError) -> Self {
        // A pager failure is an I/O (or corruption) failure reaching a
        // scan; the original variant was rendered into the message by the
        // chunk cache.
        EngineError::Io(e.0)
    }
}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
