//! Engine-wide error type.

use ongoing_relation::{EvalError, SchemaError};
use std::fmt;

/// Errors raised by the catalog, planner, executors and storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The named table does not exist.
    UnknownTable(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Schema resolution or compatibility failure.
    Schema(SchemaError),
    /// Expression evaluation failure.
    Eval(EvalError),
    /// A `modify_table` snapshot was superseded by a concurrent writer
    /// before its compare-and-swap: the modification was *not* applied and
    /// can be retried against the new current version.
    ConcurrentModification(String),
    /// Planner rejected the query.
    Plan(String),
    /// Storage-layer failure (encode/decode, page overflow).
    Storage(String),
    /// The named materialized view does not exist.
    UnknownView(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(n) => write!(f, "unknown table `{n}`"),
            EngineError::DuplicateTable(n) => write!(f, "table `{n}` already exists"),
            EngineError::ConcurrentModification(n) => {
                write!(f, "table `{n}` was modified concurrently; retry")
            }
            EngineError::Schema(e) => write!(f, "{e}"),
            EngineError::Eval(e) => write!(f, "{e}"),
            EngineError::Plan(m) => write!(f, "plan error: {m}"),
            EngineError::Storage(m) => write!(f, "storage error: {m}"),
            EngineError::UnknownView(n) => write!(f, "unknown materialized view `{n}`"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SchemaError> for EngineError {
    fn from(e: SchemaError) -> Self {
        EngineError::Schema(e)
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
