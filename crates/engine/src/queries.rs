//! The evaluation queries of Sec. IX.
//!
//! * `Qσ_i = σ_{VT pred_i [ts, te)}(R)` — selection with a temporal
//!   predicate against a fixed window.
//! * `Q⋈_i = R ⋈_{θN ∧ R.VT pred_i S.VT} S` — self-join with equality on a
//!   non-temporal attribute plus a temporal predicate (`S` and `R` refer to
//!   the same relation).
//! * `QC⋈_i` — the complex MozillaBugs join: for a person, similar bugs
//!   open at any time while the person works on a bug of severity *major*;
//!   similar bugs share product, component and operating system (`θsim`).
//!
//! The builders only need a [`Database`] with the right table names; the
//! datasets crate produces matching relations.

use crate::catalog::Database;
use crate::error::Result;
use crate::plan::{LogicalPlan, QueryBuilder};
use ongoing_core::allen::TemporalPredicate;
use ongoing_core::{OngoingInterval, TimePoint};
use ongoing_relation::{Expr, Value};

/// `Qσ_pred`: selection of tuples whose `VT` satisfies `pred` against the
/// fixed window `[ts, te)`.
pub fn selection(
    db: &Database,
    table: &str,
    pred: TemporalPredicate,
    window: (TimePoint, TimePoint),
) -> Result<LogicalPlan> {
    let win = Value::Interval(OngoingInterval::fixed(window.0, window.1));
    Ok(QueryBuilder::scan(db, table)?
        .filter(|s| Ok(Expr::col(s, "VT")?.temporal(pred, Expr::lit(win))))?
        .build())
}

/// `Q⋈_pred`: self-join `R ⋈_{R.c = S.c ∧ R.VT pred S.VT} R` with equality
/// on the non-temporal attribute `eq_attr`.
pub fn self_join(
    db: &Database,
    table: &str,
    eq_attr: &str,
    pred: TemporalPredicate,
) -> Result<LogicalPlan> {
    let l = QueryBuilder::scan_as(db, table, "R")?;
    let r = QueryBuilder::scan_as(db, table, "S")?;
    let l_eq = format!("R.{eq_attr}");
    let r_eq = format!("S.{eq_attr}");
    Ok(l.join(r, |s| {
        Ok(Expr::col(s, &l_eq)?
            .eq(Expr::col(s, &r_eq)?)
            .and(Expr::col(s, "R.VT")?.temporal(pred, Expr::col(s, "S.VT")?)))
    })?
    .build())
}

/// `QC⋈_pred`: the complex MozillaBugs join of Sec. IX-A:
///
/// ```text
/// A ⋈_{A.ID = S.ID ∧ A.VT overlaps S.VT ∧ S.Severity = 'major'} S
///   ⋈_{A.ID = B.ID} B
///   ⋈_{θsim ∧ A.VT pred B'.VT} B'
/// ```
///
/// with `θsim`: same product, component and operating system. Expects
/// tables `BugAssignment(ID, Assignee, VT)`, `BugSeverity(ID, Severity,
/// VT)` and `BugInfo(ID, Product, Component, OS, Description, VT)`.
pub fn complex_join(db: &Database, pred: TemporalPredicate) -> Result<LogicalPlan> {
    let a = QueryBuilder::scan_as(db, "BugAssignment", "A")?;
    let s = QueryBuilder::scan_as(db, "BugSeverity", "S")?;
    let b = QueryBuilder::scan_as(db, "BugInfo", "B")?;
    let b2 = QueryBuilder::scan_as(db, "BugInfo", "B2")?;

    let a_s = a.join(s, |sc| {
        Ok(Expr::col(sc, "A.ID")?
            .eq(Expr::col(sc, "S.ID")?)
            .and(Expr::col(sc, "A.VT")?.overlaps(Expr::col(sc, "S.VT")?))
            .and(Expr::col(sc, "S.Severity")?.eq(Expr::lit("major"))))
    })?;

    let asb = a_s.join(
        b,
        |sc| Ok(Expr::col(sc, "A.ID")?.eq(Expr::col(sc, "B.ID")?)),
    )?;

    Ok(asb
        .join(b2, |sc| {
            Ok(Expr::col(sc, "B.Product")?
                .eq(Expr::col(sc, "B2.Product")?)
                .and(Expr::col(sc, "B.Component")?.eq(Expr::col(sc, "B2.Component")?))
                .and(Expr::col(sc, "B.OS")?.eq(Expr::col(sc, "B2.OS")?))
                .and(Expr::col(sc, "A.VT")?.temporal(pred, Expr::col(sc, "B2.VT")?)))
        })?
        .build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile, PlannerConfig};
    use ongoing_core::date::md;
    use ongoing_relation::{OngoingRelation, Schema};

    fn bugs_db() -> Database {
        let db = Database::new();
        let schema = Schema::builder().int("BID").str("C").interval("VT").build();
        let mut b = OngoingRelation::new(schema);
        b.insert(vec![
            Value::Int(500),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
        ])
        .unwrap();
        b.insert(vec![
            Value::Int(501),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::fixed(md(3, 30), md(8, 21))),
        ])
        .unwrap();
        db.create_table("B", b).unwrap();
        db
    }

    #[test]
    fn selection_query_shape() {
        let db = bugs_db();
        let plan = selection(&db, "B", TemporalPredicate::Overlaps, (md(8, 1), md(9, 1))).unwrap();
        let result = crate::execute(&db, &plan).unwrap();
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn self_join_uses_hash_join() {
        let db = bugs_db();
        let plan = self_join(&db, "B", "C", TemporalPredicate::Overlaps).unwrap();
        let phys = compile(&db, &plan, &PlannerConfig::default()).unwrap();
        assert!(
            phys.explain().contains("HashJoin"),
            "equality conjunct should drive a hash join:\n{}",
            phys.explain()
        );
        let result = phys.execute().unwrap();
        // Both bugs share the component and their VTs overlap at some rt
        // (plus self-pairs): at least the 2 self-pairs and 2 cross pairs.
        assert_eq!(result.len(), 4);
    }

    #[test]
    fn complex_join_builds_against_mozilla_schema() {
        let db = Database::new();
        db.create_table(
            "BugAssignment",
            OngoingRelation::new(
                Schema::builder()
                    .int("ID")
                    .str("Assignee")
                    .interval("VT")
                    .build(),
            ),
        )
        .unwrap();
        db.create_table(
            "BugSeverity",
            OngoingRelation::new(
                Schema::builder()
                    .int("ID")
                    .str("Severity")
                    .interval("VT")
                    .build(),
            ),
        )
        .unwrap();
        db.create_table(
            "BugInfo",
            OngoingRelation::new(
                Schema::builder()
                    .int("ID")
                    .str("Product")
                    .str("Component")
                    .str("OS")
                    .str("Description")
                    .interval("VT")
                    .build(),
            ),
        )
        .unwrap();
        let plan = complex_join(&db, TemporalPredicate::Overlaps).unwrap();
        // 3 + 3 + 6 + 6 attributes.
        assert_eq!(plan.schema().len(), 18);
        let result = crate::execute(&db, &plan).unwrap();
        assert!(result.is_empty());
    }
}
