//! The state-of-the-art approaches the paper's evaluation compares against
//! (Sec. III, Sec. IX).

pub mod clifford;
pub mod forever;
pub mod torp;
