//! The Torp et al. baseline: the time domain `Tf` (Sec. III, Table I).
//!
//! Torp et al.\[4\] handle now-relative *modifications* with the domain
//!
//! ```text
//! Tf = T ∪ { min(a, now) | a ∈ T } ∪ { max(a, now) | a ∈ T }
//! ```
//!
//! `Tf` supports intersection and difference without instantiating `now`,
//! which suffices for modification semantics — but it is **not closed**
//! under `min`/`max` (Table I): `min(max(a, now), b)` with `a < b` is the
//! general ongoing point `a+b`, which `Tf` cannot represent. Queries with
//! predicates on uninstantiated attributes therefore fall back to
//! Clifford's instantiation, and their results get invalidated as time
//! passes by.
//!
//! This module embeds `Tf` into `Ω` (every `Tf` point *is* an ongoing
//! point), implements `min`/`max`/intersection the way Torp et al. can —
//! returning `None` where the result leaves `Tf` — and exposes the
//! Clifford fallback for predicate queries.

use crate::catalog::Database;
use crate::error::Result;
use crate::plan::LogicalPlan;
use ongoing_core::{ops, OngoingInterval, OngoingPoint, PointKind, TimePoint};
use ongoing_relation::FixedRelation;
use std::fmt;

/// A time point of Torp's domain `Tf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TfPoint {
    /// A fixed time point `a ∈ T`.
    Fixed(TimePoint),
    /// `min(a, now)`: the reference time, capped at `a`.
    MinNow(TimePoint),
    /// `max(a, now)`: the reference time, but not earlier than `a`.
    MaxNow(TimePoint),
}

impl TfPoint {
    /// The ongoing time point `now = min(∞, now) = max(-∞, now)`.
    pub const NOW: TfPoint = TfPoint::MaxNow(TimePoint::NEG_INF);

    /// Embeds the `Tf` point into the ongoing domain `Ω`.
    pub fn to_omega(self) -> OngoingPoint {
        match self {
            TfPoint::Fixed(a) => OngoingPoint::fixed(a),
            // min(a, now) instantiates to min(a, rt): possibly earlier than
            // a but never later — the limited point +a.
            TfPoint::MinNow(a) => OngoingPoint::limited(a),
            // max(a, now): never earlier than a — the growing point a+.
            TfPoint::MaxNow(a) => OngoingPoint::growing(a),
        }
    }

    /// Tries to represent an ongoing point in `Tf`. General points `a+b`
    /// with `-∞ < a < b < ∞` are not representable — the non-closure of
    /// Table I.
    pub fn from_omega(p: OngoingPoint) -> Option<TfPoint> {
        match p.kind() {
            PointKind::Fixed => Some(TfPoint::Fixed(p.a())),
            PointKind::Now => Some(TfPoint::NOW),
            PointKind::Growing => Some(TfPoint::MaxNow(p.a())),
            PointKind::Limited => Some(TfPoint::MinNow(p.b())),
            PointKind::General => None,
        }
    }

    /// The bind operator (via the `Ω` embedding).
    pub fn bind(self, rt: TimePoint) -> TimePoint {
        self.to_omega().bind(rt)
    }

    /// `min` within `Tf`: `None` when the true (ongoing) result leaves the
    /// domain.
    pub fn min(self, other: TfPoint) -> Option<TfPoint> {
        TfPoint::from_omega(ops::min(self.to_omega(), other.to_omega()))
    }

    /// `max` within `Tf`: `None` when the result leaves the domain.
    pub fn max(self, other: TfPoint) -> Option<TfPoint> {
        TfPoint::from_omega(ops::max(self.to_omega(), other.to_omega()))
    }
}

impl fmt::Display for TfPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TfPoint::Fixed(a) => write!(f, "{a}"),
            TfPoint::MinNow(a) => write!(f, "min({a}, now)"),
            TfPoint::MaxNow(a) if a.is_neg_inf() => write!(f, "now"),
            TfPoint::MaxNow(a) => write!(f, "max({a}, now)"),
        }
    }
}

/// A `Tf` time interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TfInterval {
    /// Inclusive start.
    pub ts: TfPoint,
    /// Exclusive end.
    pub te: TfPoint,
}

impl TfInterval {
    /// Creates a `Tf` interval.
    pub fn new(ts: TfPoint, te: TfPoint) -> Self {
        TfInterval { ts, te }
    }

    /// Embeds into an ongoing interval.
    pub fn to_omega(self) -> OngoingInterval {
        OngoingInterval::new(self.ts.to_omega(), self.te.to_omega())
    }

    /// Intersection within `Tf` — the operation Torp et al. use to express
    /// now-relative modifications. `None` when the exact result needs a
    /// general ongoing endpoint (the caller would have to instantiate,
    /// invalidating the result as time passes by).
    pub fn intersect(self, other: TfInterval) -> Option<TfInterval> {
        let ts = self.ts.max(other.ts)?;
        let te = self.te.min(other.te)?;
        Some(TfInterval { ts, te })
    }
}

impl fmt::Display for TfInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.ts, self.te)
    }
}

/// Queries with predicates on ongoing attributes cannot be answered within
/// `Tf`; Torp et al. resort to Clifford's approach (Sec. III). The runtime
/// and invalidation behaviour are therefore identical to
/// [`clifford::run_at`](crate::baseline::clifford::run_at).
pub fn run_query_at(db: &Database, plan: &LogicalPlan, rt: TimePoint) -> Result<FixedRelation> {
    crate::baseline::clifford::run_at(db, plan, rt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::date::md;
    use ongoing_core::time::tp;

    #[test]
    fn embedding_round_trips() {
        for p in [
            TfPoint::Fixed(tp(5)),
            TfPoint::MinNow(tp(5)),
            TfPoint::MaxNow(tp(5)),
            TfPoint::NOW,
        ] {
            assert_eq!(TfPoint::from_omega(p.to_omega()), Some(p));
        }
    }

    #[test]
    fn bind_matches_min_max_semantics() {
        // min(5, now) at rt 3 is 3; at rt 9 is 5.
        assert_eq!(TfPoint::MinNow(tp(5)).bind(tp(3)), tp(3));
        assert_eq!(TfPoint::MinNow(tp(5)).bind(tp(9)), tp(5));
        // max(5, now) at rt 3 is 5; at rt 9 is 9.
        assert_eq!(TfPoint::MaxNow(tp(5)).bind(tp(3)), tp(5));
        assert_eq!(TfPoint::MaxNow(tp(5)).bind(tp(9)), tp(9));
        assert_eq!(TfPoint::NOW.bind(tp(7)), tp(7));
    }

    #[test]
    fn tf_is_not_closed_under_min_max() {
        // Table I: min(max(3, now), 7) = 3+7 ∉ Tf.
        let grown = TfPoint::MaxNow(tp(3));
        let fixed = TfPoint::Fixed(tp(7));
        assert_eq!(grown.min(fixed), None);
        // ... while Ω represents it exactly.
        let omega = ops::min(grown.to_omega(), fixed.to_omega());
        assert_eq!(omega, OngoingPoint::new(tp(3), tp(7)).unwrap());
    }

    #[test]
    fn simple_intersections_stay_in_tf() {
        // Anselma-style case that works: [10/14, now) ∩ [10/17, now) =
        // [10/17, now).
        let a = TfInterval::new(TfPoint::Fixed(md(10, 14)), TfPoint::NOW);
        let b = TfInterval::new(TfPoint::Fixed(md(10, 17)), TfPoint::NOW);
        let x = a.intersect(b).unwrap();
        assert_eq!(x.ts, TfPoint::Fixed(md(10, 17)));
        assert_eq!(x.te, TfPoint::NOW);
    }

    #[test]
    fn min_now_intersection_stays_in_tf() {
        // [10/17, 10/22) ∩ [10/17, now): end point min(10/22, now) ∈ Tf.
        let a = TfInterval::new(TfPoint::Fixed(md(10, 17)), TfPoint::Fixed(md(10, 22)));
        let b = TfInterval::new(TfPoint::Fixed(md(10, 17)), TfPoint::NOW);
        let x = a.intersect(b).unwrap();
        assert_eq!(x.te, TfPoint::MinNow(md(10, 22)));
    }

    #[test]
    fn nested_intersection_leaves_tf() {
        // Intersecting a growing start with a fixed end interval produces a
        // general end point: [max(3,now), 10) ∩ [0, 7) keeps end min(10,7)
        // = 7 fine, but [0, max(3, now)) ∩ [0, 7) needs min(max(3,now), 7)
        // = 3+7 ∉ Tf.
        let a = TfInterval::new(TfPoint::Fixed(tp(0)), TfPoint::MaxNow(tp(3)));
        let b = TfInterval::new(TfPoint::Fixed(tp(0)), TfPoint::Fixed(tp(7)));
        assert_eq!(a.intersect(b), None);
    }

    #[test]
    fn display_is_paperish() {
        assert_eq!(TfPoint::MinNow(tp(5)).to_string(), "min(5, now)");
        assert_eq!(TfPoint::NOW.to_string(), "now");
    }
}
