//! The Snodgrass `Forever` baseline (Sec. III).
//!
//! TQuel\[22\] avoids ongoing time points by storing `Forever` — the largest
//! time point of the domain — instead of `now`. Fixed query evaluation
//! applies unchanged, but the semantics are wrong: a bug "open until now"
//! is *not* open until the end of time, and queries over such data return
//! incorrect results (the paper's example: at reference time 05/14, "which
//! bugs might be resolved before patch 201 goes live?" must include bug
//! 500, yet with `Forever` end points it does not).

use ongoing_core::{OngoingInterval, OngoingPoint, PointKind, TimePoint};
use ongoing_relation::{OngoingRelation, Tuple, Value};

/// The `Forever` time point: the largest (finite) time point.
pub const FOREVER: TimePoint = TimePoint::MAX_FINITE;

/// Rewrites an ongoing point the way a `Forever`-based system stores it:
/// `now` becomes the fixed point `Forever`; growing points `a+` (the other
/// "open-ended" shape) also collapse to their ceiling.
pub fn rewrite_point(p: OngoingPoint) -> OngoingPoint {
    match p.kind() {
        PointKind::Now => OngoingPoint::fixed(FOREVER),
        PointKind::Growing => OngoingPoint::fixed(FOREVER),
        _ => p,
    }
}

/// Rewrites every ongoing value in a relation to its `Forever`
/// representation. The result contains only fixed values; any fixed-algebra
/// evaluator can process it — incorrectly.
pub fn rewrite_relation(rel: &OngoingRelation) -> OngoingRelation {
    let mut out = OngoingRelation::new(rel.schema().clone());
    for t in rel.iter() {
        let values: Vec<Value> = t
            .values()
            .iter()
            .map(|v| match v {
                Value::Point(p) => Value::Point(rewrite_point(*p)),
                Value::Interval(i) => Value::Interval(OngoingInterval::new(
                    rewrite_point(i.ts()),
                    rewrite_point(i.te()),
                )),
                other => other.clone(),
            })
            .collect();
        out.push(Tuple::with_rt(values, t.rt().clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::allen;
    use ongoing_core::date::md;
    use ongoing_relation::Schema;

    #[test]
    fn rewrite_replaces_now_with_forever() {
        let p = rewrite_point(OngoingPoint::now());
        assert_eq!(p, OngoingPoint::fixed(FOREVER));
        let q = rewrite_point(OngoingPoint::fixed(md(3, 1)));
        assert_eq!(q, OngoingPoint::fixed(md(3, 1)));
    }

    #[test]
    fn forever_gives_incorrect_before_results() {
        // Sec. III: at rt 05/14, bug 500 (open [01/25, now)) might be
        // resolved before patch 201 goes live [08/15, 08/24).
        let bug = OngoingInterval::from_until_now(md(1, 25));
        let patch = OngoingInterval::fixed(md(8, 15), md(8, 24));

        // Ground truth (ongoing evaluation): true at rt = 05/14.
        let correct = allen::before(bug, patch);
        assert!(correct.bind(md(5, 14)));

        // Forever rewrite: [01/25, Forever) is never before the patch.
        let forever_bug = OngoingInterval::new(rewrite_point(bug.ts()), rewrite_point(bug.te()));
        let wrong = allen::before(forever_bug, patch);
        assert!(!wrong.bind(md(5, 14)), "Forever drops bug 500 — incorrect");
    }

    #[test]
    fn rewrite_relation_touches_only_ongoing_values() {
        let schema = Schema::builder().int("BID").interval("VT").build();
        let mut r = OngoingRelation::new(schema);
        r.insert(vec![
            Value::Int(500),
            Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
        ])
        .unwrap();
        r.insert(vec![
            Value::Int(501),
            Value::Interval(OngoingInterval::fixed(md(3, 30), md(8, 21))),
        ])
        .unwrap();
        let f = rewrite_relation(&r);
        let iv0 = f.tuples()[0].value(1).as_interval().unwrap();
        assert_eq!(iv0.te(), OngoingPoint::fixed(FOREVER));
        let iv1 = f.tuples()[1].value(1).as_interval().unwrap();
        assert_eq!(iv1.te(), OngoingPoint::fixed(md(8, 21)));
        assert_eq!(f.tuples()[0].value(0), &Value::Int(500));
    }
}
