//! The Clifford et al. baseline: instantiate `now` when accessed.
//!
//! Clifford et al.\[3\] evaluate queries on *instantiated* relations: every
//! ongoing time point is replaced with the reference time the moment it is
//! accessed. Existing (fixed) query processing applies unchanged, but the
//! result is only valid at the chosen reference time and must be
//! re-computed after time passes.
//!
//! In this engine the baseline is the instantiated execution mode
//! ([`PhysicalPlan::rows_at`](crate::plan::PhysicalPlan::rows_at)): the
//! scan binds each tuple at `rt` (the paper implements the bind operator as
//! a C kernel function for the same effect), and all downstream predicates
//! run on fixed values via the fixed-interval fast path. This module adds
//! the evaluation conveniences: `Cliff_max`, the paper's "reference time
//! greater than the latest end point" (the typical use case of reference
//! times close to the current time), and whole-database instantiation.

use crate::catalog::Database;
use crate::error::Result;
use crate::plan::{compile, LogicalPlan, PlannerConfig};
use ongoing_core::{TimePoint, TimeRange};
use ongoing_relation::{FixedRelation, OngoingRelation, Value};

/// Runs the query with Clifford's approach at reference time `rt`.
pub fn run_at(db: &Database, plan: &LogicalPlan, rt: TimePoint) -> Result<FixedRelation> {
    compile(db, plan, &PlannerConfig::default())?.execute_at(rt)
}

/// The latest *finite* time point mentioned by any temporal attribute or
/// reference time of the relation.
pub fn latest_time_point(rel: &OngoingRelation) -> Option<TimePoint> {
    let mut latest: Option<TimePoint> = None;
    let mut bump = |t: TimePoint| {
        if t.is_finite() {
            latest = Some(latest.map_or(t, |l| l.max_f(t)));
        }
    };
    for t in rel.iter() {
        for v in t.values() {
            match v {
                Value::Time(x) => bump(*x),
                Value::Span(s, e) => {
                    bump(*s);
                    bump(*e);
                }
                Value::Point(p) => {
                    bump(p.a());
                    bump(p.b());
                }
                Value::Interval(i) => {
                    bump(i.ts().a());
                    bump(i.ts().b());
                    bump(i.te().a());
                    bump(i.te().b());
                }
                _ => {}
            }
        }
        for r in t.rt().ranges() {
            let TimeRange { .. } = r; // ranges are canonical
            bump(r.ts());
            bump(r.te());
        }
    }
    latest
}

/// `Cliff_max`: a reference time strictly greater than every end point in
/// the database — the paper's stand-in for "a reference time close to the
/// current time".
pub fn cliff_max_reference_time(db: &Database) -> TimePoint {
    let mut latest: Option<TimePoint> = None;
    for name in db.table_names() {
        if let Ok(t) = db.table(&name) {
            if let Some(l) = latest_time_point(t.data()) {
                latest = Some(latest.map_or(l, |x| x.max_f(l)));
            }
        }
    }
    latest.map_or(TimePoint::new(0), |l| l.succ())
}

/// Instantiates a whole relation at `rt` into a fixed relation with the
/// same schema shape (ongoing attributes become spans), dropping tuples
/// dead at `rt`. This is what a system following Clifford's approach would
/// materialize.
pub fn instantiate_relation(rel: &OngoingRelation, rt: TimePoint) -> FixedRelation {
    rel.bind(rt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::date::md;
    use ongoing_core::OngoingInterval;
    use ongoing_relation::{Expr, Schema};

    fn setup() -> Database {
        let db = Database::new();
        let schema = Schema::builder().int("BID").str("C").interval("VT").build();
        let mut b = OngoingRelation::new(schema);
        b.insert(vec![
            Value::Int(500),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
        ])
        .unwrap();
        b.insert(vec![
            Value::Int(501),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::fixed(md(3, 30), md(8, 21))),
        ])
        .unwrap();
        db.create_table("B", b).unwrap();
        db
    }

    #[test]
    fn cliff_max_is_after_every_endpoint() {
        let db = setup();
        let rt = cliff_max_reference_time(&db);
        assert!(rt > md(8, 21));
    }

    #[test]
    fn run_at_gives_instantiated_results() {
        let db = setup();
        let plan = crate::QueryBuilder::scan(&db, "B")
            .unwrap()
            .filter(|s| {
                Ok(Expr::col(s, "VT")?.overlaps(Expr::lit(Value::Interval(
                    OngoingInterval::fixed(md(8, 1), md(9, 1)),
                ))))
            })
            .unwrap()
            .build();
        // At rt 08/15 both bugs overlap the window.
        assert_eq!(run_at(&db, &plan, md(8, 15)).unwrap().len(), 2);
        // At rt 02/01, bug 500's instantiation [01/25, 02/01) ends before
        // the window; only the fixed-interval bug 501 qualifies.
        assert_eq!(run_at(&db, &plan, md(2, 1)).unwrap().len(), 1);
    }

    #[test]
    fn results_get_invalidated_by_time_passing() {
        // The defining drawback: the same query, two reference times, two
        // different results — Clifford results do not remain valid.
        let db = setup();
        let plan = crate::QueryBuilder::scan(&db, "B").unwrap().build();
        let r1 = run_at(&db, &plan, md(2, 1)).unwrap();
        let r2 = run_at(&db, &plan, md(8, 15)).unwrap();
        assert_ne!(r1, r2);
    }

    #[test]
    fn latest_time_point_scans_all_temporal_values() {
        let db = setup();
        let t = db.table("B").unwrap();
        assert_eq!(latest_time_point(t.data()), Some(md(8, 21)));
    }
}
