//! On-disk chunk files: one sealed, immutable `TupleStore` chunk each.
//!
//! A chunk file holds the *base* rows of one sealed chunk — exactly the
//! `Arc<[Tuple]>` allocation the store shares between versions — encoded
//! with the tuple codec and guarded by a trailing CRC-32. Chunk files are
//! written once (at checkpoint time, or when a full-state WAL record needs
//! them), never appended to, and deleted only by checkpoint garbage
//! collection once no manifest or WAL record references them. Overlay
//! deltas are *not* stored here; they live in the manifest / WAL, which is
//! what keeps publications O(delta).
//!
//! Layout (all little-endian):
//!
//! ```text
//! [magic u32][row count u32]([tuple len u32][tuple bytes])*[crc32 u32]
//! ```
//!
//! The CRC covers every byte before it. A mismatch — or any structural
//! damage — surfaces as [`EngineError::CorruptStorage`]; chunk files are
//! written in full and fsynced *before* any record referencing them, so a
//! crash can only ever orphan a complete file, never tear a referenced
//! one.

use crate::error::{EngineError, Result};
use crate::storage::checksum::crc32;
use crate::storage::codec::{decode_tuple, encode_tuple};
use crate::storage::vfs::{with_retry, DiskError, Vfs};
use bytes::{Buf, BufMut};
use ongoing_relation::Tuple;
use std::path::Path;

/// Chunk file magic: `"ODC1"`.
pub const CHUNK_MAGIC: u32 = 0x3143_444F;

/// Encodes `rows` into the chunk-file byte layout.
pub fn encode_chunk(rows: &[Tuple]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 * rows.len() + 12);
    buf.put_u32_le(CHUNK_MAGIC);
    buf.put_u32_le(rows.len() as u32);
    for t in rows {
        let bytes = encode_tuple(t);
        buf.put_u32_le(bytes.len() as u32);
        buf.put_slice(&bytes);
    }
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf
}

/// Decodes a chunk-file image, verifying magic and checksum.
pub fn decode_chunk(raw: &[u8]) -> Result<Vec<Tuple>> {
    if raw.len() < 12 {
        return Err(EngineError::CorruptStorage(format!(
            "chunk file too short ({} bytes)",
            raw.len()
        )));
    }
    let (body, tail) = raw.split_at(raw.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
    if crc32(body) != stored {
        return Err(EngineError::CorruptStorage(
            "chunk file checksum mismatch".into(),
        ));
    }
    let mut buf = body;
    let magic = buf.get_u32_le();
    if magic != CHUNK_MAGIC {
        return Err(EngineError::CorruptStorage(format!(
            "bad chunk magic {magic:#x}"
        )));
    }
    let n = buf.get_u32_le() as usize;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 4 {
            return Err(EngineError::CorruptStorage("truncated chunk row".into()));
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return Err(EngineError::CorruptStorage("truncated chunk row".into()));
        }
        let t = decode_tuple(&buf[..len])
            .map_err(|e| EngineError::CorruptStorage(format!("chunk row: {e}")))?;
        buf.advance(len);
        rows.push(t);
    }
    if buf.has_remaining() {
        return Err(EngineError::CorruptStorage(
            "trailing bytes after chunk rows".into(),
        ));
    }
    Ok(rows)
}

/// Writes `rows` as a chunk file at `path` (created fresh), optionally
/// fsyncing. Transient write failures are retried (a full rewrite is
/// idempotent); a failed fsync is surfaced as [`DiskError::SyncFailed`]
/// for the caller to fail stop on. Returns the bytes written.
pub fn write_chunk(
    vfs: &dyn Vfs,
    path: &Path,
    rows: &[Tuple],
    fsync: bool,
) -> std::result::Result<u64, DiskError> {
    let buf = encode_chunk(rows);
    with_retry(|| vfs.write(path, &buf), || Ok(())).map_err(DiskError::Io)?;
    if fsync {
        vfs.sync(path).map_err(DiskError::SyncFailed)?;
    }
    Ok(buf.len() as u64)
}

/// Reads and verifies the chunk file at `path`, retrying transient read
/// failures.
pub fn read_chunk(vfs: &dyn Vfs, path: &Path) -> Result<Vec<Tuple>> {
    let raw = with_retry(|| vfs.read(path), || Ok(()))?;
    decode_chunk(&raw).map_err(|e| match e {
        EngineError::CorruptStorage(m) => {
            EngineError::CorruptStorage(format!("{}: {m}", path.display()))
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::time::tp;
    use ongoing_core::{IntervalSet, OngoingInterval};
    use ongoing_relation::Value;

    fn rows() -> Vec<Tuple> {
        (0..50)
            .map(|i| {
                Tuple::with_rt(
                    vec![
                        Value::Int(i),
                        Value::str(&format!("row-{i}")),
                        Value::Interval(OngoingInterval::from_until_now(tp(i))),
                    ],
                    IntervalSet::range(tp(0), tp(100 + i)),
                )
            })
            .collect()
    }

    #[test]
    fn round_trips() {
        let rows = rows();
        let buf = encode_chunk(&rows);
        assert_eq!(decode_chunk(&buf).unwrap(), rows);
        assert_eq!(
            decode_chunk(&encode_chunk(&[])).unwrap(),
            Vec::<Tuple>::new()
        );
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let mut buf = encode_chunk(&rows()[..4]);
        for i in 0..buf.len() {
            buf[i] ^= 0x40;
            assert!(
                matches!(decode_chunk(&buf), Err(EngineError::CorruptStorage(_))),
                "flip at byte {i} went undetected"
            );
            buf[i] ^= 0x40;
        }
        decode_chunk(&buf).unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let buf = encode_chunk(&rows()[..4]);
        for cut in 0..buf.len() {
            assert!(
                matches!(
                    decode_chunk(&buf[..cut]),
                    Err(EngineError::CorruptStorage(_))
                ),
                "cut at {cut} went undetected"
            );
        }
    }
}
