//! Durable database state: WAL + chunk files + manifest, glued together.
//!
//! One [`DurableState`] lives inside a durable [`Database`] and owns the
//! on-disk layout
//!
//! ```text
//! <dir>/wal.log             append-only write-ahead log
//! <dir>/MANIFEST            atomically replaced checkpoint snapshot
//! <dir>/chunks/<id>.odc     immutable sealed-chunk files
//! ```
//!
//! The commit protocol keeps publications **O(delta)**: a `modify_table`
//! closure's journaled physical ops are appended (and fsynced) as one
//! [`WalRecord::Commit`] *before* the new version becomes visible. Chunk
//! files are written only at checkpoint time (or when a wholesale
//! replacement needs a full [`WalRecord::TableState`]), and only for chunk
//! allocations not yet persisted — identified by `Arc` pointer identity,
//! with the cache holding the `Arc` alive so an address can never be
//! recycled while it still names a file.
//!
//! Ordering invariant: chunk files and the manifest are written and
//! fsynced *before* any WAL record or manifest reference to them, so a
//! crash can orphan complete files but never dangle a reference; and the
//! manifest's LSN filter makes the checkpoint's manifest-publish →
//! WAL-reset window idempotent.
//!
//! [`Database`]: crate::catalog::Database

use crate::error::{EngineError, Result};
use crate::storage::chunkfile::{read_chunk, write_chunk};
use crate::storage::manifest::{read_manifest, write_manifest, Manifest};
use crate::storage::wal::{
    scan, truncate_file, ChunkEntry, TableState, WalRecord, WalTail, WalWriter,
};
use ongoing_relation::{JournalOp, OngoingRelation, Tuple};
use parking_lot::{Mutex, MutexGuard};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// WAL file name.
pub const WAL_FILE: &str = "wal.log";
/// Manifest file name.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Chunk-file subdirectory.
pub const CHUNKS_DIR: &str = "chunks";

/// Tuning knobs for a durable database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// Fsync the WAL on every commit and chunk files on write. Disable
    /// only for tests that simulate crashes by explicit truncation anyway.
    pub fsync: bool,
    /// Checkpoint (fold the WAL into chunk files + manifest, then truncate
    /// it) once the log exceeds this many bytes. `u64::MAX` disables
    /// automatic checkpoints; `0` checkpoints after every commit.
    pub checkpoint_bytes: u64,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions {
            fsync: true,
            checkpoint_bytes: 4 << 20,
        }
    }
}

/// Counters describing the durable layer's work — what the recovery bench
/// asserts O(delta) publication and lazy loading on. All counts are for
/// this process's lifetime (they restart at zero on open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// WAL records appended.
    pub wal_records: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
    /// Tuples serialized into WAL records (journal appends, edit
    /// replacement rows, inline overlay rows).
    pub wal_tuples: u64,
    /// Chunk files written.
    pub chunk_files: u64,
    /// Tuples written into chunk files.
    pub chunk_tuples: u64,
    /// Tuples materialized from chunk files (lazy recovery loads).
    pub tuples_loaded: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

/// One table as recovery found it: its last durable full state plus every
/// committed journal after that state, in order. Held by a cold catalog
/// slot until first access materializes it.
#[derive(Debug)]
pub struct RecoveredTable {
    /// The base physical state (from the manifest or a full-state record).
    pub state: TableState,
    /// Journals of the committed publications to replay on top, in order.
    pub commits: Vec<Vec<JournalOp>>,
}

#[derive(Debug)]
struct DurableInner {
    wal: WalWriter,
    /// Persisted-chunk identity: base-allocation address → (chunk file id,
    /// a clone of the `Arc` pinning that address). Entries are dropped
    /// only when checkpoint GC deletes the file, so an address in this map
    /// can never be recycled by a different allocation.
    chunk_cache: HashMap<usize, (u64, Arc<[Tuple]>)>,
    next_chunk: u64,
    stats: DurableStats,
}

/// The durable side of a database: directory, options, and the serialized
/// commit state. All WAL appends, chunk writes, checkpoints and recovery
/// loads happen under the single [`lock`](DurableState::lock) — the
/// catalog acquires it *before* touching its own table map (lock order:
/// durable guard, then tables), which is what serializes publication
/// against checkpoint GC.
#[derive(Debug)]
pub struct DurableState {
    dir: PathBuf,
    opts: DurableOptions,
    inner: Mutex<DurableInner>,
}

/// Exclusive access to the durable state (see [`DurableState::lock`]).
pub struct DurableGuard<'a> {
    dir: &'a Path,
    opts: &'a DurableOptions,
    inner: MutexGuard<'a, DurableInner>,
}

fn chunk_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(CHUNKS_DIR).join(format!("{id}.odc"))
}

fn record_tuples(rec: &WalRecord) -> u64 {
    match rec {
        WalRecord::TableState(state) => state
            .chunks
            .iter()
            .flat_map(|c| c.overlay.values())
            .map(|rows| rows.len() as u64)
            .sum(),
        WalRecord::Commit { ops, .. } => ops
            .iter()
            .map(|op| match op {
                JournalOp::Append(_) => 1,
                JournalOp::Edits(entries) => entries
                    .iter()
                    .map(|(_, _, rows, _)| rows.len() as u64)
                    .sum(),
                _ => 0,
            })
            .sum(),
        WalRecord::DropTable { .. } => 0,
    }
}

impl DurableState {
    /// Opens (creating or recovering) the durable state at `dir`.
    ///
    /// Recovery reads the manifest, scans the WAL, truncates a torn tail,
    /// and folds every surviving record with `seq > manifest.lsn` over the
    /// manifest's table states. The folded tables come back as
    /// [`RecoveredTable`] plans — chunk files are *not* read here; the
    /// catalog materializes each table on first access. Mid-log damage
    /// (a complete record failing its checksum) or a commit referencing a
    /// table the fold does not know surfaces as
    /// [`EngineError::CorruptStorage`].
    pub fn open(dir: &Path, opts: DurableOptions) -> Result<(DurableState, Vec<RecoveredTable>)> {
        fs::create_dir_all(dir.join(CHUNKS_DIR))?;
        let manifest = read_manifest(&dir.join(MANIFEST_FILE))?.unwrap_or_default();
        let wal_path = dir.join(WAL_FILE);
        let (records, tail) = scan(&wal_path)?;
        let wal_len = match tail {
            WalTail::Clean => records.last().map_or(0, |(_, end, _)| *end),
            WalTail::Torn { at } => {
                truncate_file(&wal_path, at)?;
                at
            }
        };

        let mut tables: BTreeMap<String, RecoveredTable> = manifest
            .tables
            .into_iter()
            .map(|state| {
                (
                    state.name.clone(),
                    RecoveredTable {
                        state,
                        commits: Vec::new(),
                    },
                )
            })
            .collect();
        let mut max_seq = manifest.lsn;
        let mut max_chunk = manifest.next_chunk;
        for t in tables.values() {
            for c in &t.state.chunks {
                max_chunk = max_chunk.max(c.file + 1);
            }
        }
        for (seq, _, rec) in records {
            if seq <= manifest.lsn {
                // Already folded into the manifest: a crash hit the window
                // between manifest publication and WAL truncation.
                continue;
            }
            max_seq = max_seq.max(seq);
            match rec {
                WalRecord::TableState(state) => {
                    for c in &state.chunks {
                        max_chunk = max_chunk.max(c.file + 1);
                    }
                    tables.insert(
                        state.name.clone(),
                        RecoveredTable {
                            state,
                            commits: Vec::new(),
                        },
                    );
                }
                WalRecord::Commit { table, ops } => match tables.get_mut(&table) {
                    Some(t) => t.commits.push(ops),
                    None => {
                        return Err(EngineError::CorruptStorage(format!(
                            "wal commit for unknown table `{table}`"
                        )))
                    }
                },
                WalRecord::DropTable { table } => {
                    tables.remove(&table);
                }
            }
        }
        // Orphaned chunk files (a crash between chunk write and record
        // append) must not be reused for new content.
        for entry in fs::read_dir(dir.join(CHUNKS_DIR))? {
            let entry = entry?;
            if let Some(id) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_suffix(".odc"))
                .and_then(|n| n.parse::<u64>().ok())
            {
                max_chunk = max_chunk.max(id + 1);
            }
        }

        let wal = WalWriter::open(&wal_path, wal_len, max_seq + 1)?;
        let state = DurableState {
            dir: dir.to_path_buf(),
            opts,
            inner: Mutex::new(DurableInner {
                wal,
                chunk_cache: HashMap::new(),
                next_chunk: max_chunk,
                stats: DurableStats::default(),
            }),
        };
        Ok((state, tables.into_values().collect()))
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options the state was opened with.
    pub fn options(&self) -> &DurableOptions {
        &self.opts
    }

    /// Acquires the commit lock.
    pub fn lock(&self) -> DurableGuard<'_> {
        DurableGuard {
            dir: &self.dir,
            opts: &self.opts,
            inner: self.inner.lock(),
        }
    }

    /// A snapshot of the work counters.
    pub fn stats(&self) -> DurableStats {
        self.inner.lock().stats
    }
}

impl DurableGuard<'_> {
    /// Bytes currently in the WAL.
    pub fn wal_len(&self) -> u64 {
        self.inner.wal.len()
    }

    /// Has the WAL outgrown the checkpoint threshold?
    pub fn needs_checkpoint(&self) -> bool {
        self.inner.wal.len() > self.opts.checkpoint_bytes
    }

    /// A snapshot of the work counters.
    pub fn stats(&self) -> DurableStats {
        self.inner.stats
    }

    fn append(&mut self, rec: &WalRecord) -> Result<()> {
        let tuples = record_tuples(rec);
        let (_seq, bytes) = self.inner.wal.append(rec, self.opts.fsync)?;
        let stats = &mut self.inner.stats;
        stats.wal_records += 1;
        stats.wal_bytes += bytes;
        stats.wal_tuples += tuples;
        Ok(())
    }

    /// Logs an O(delta) publication: the journal of physical ops the
    /// closure performed on its fork. Durable once this returns.
    pub fn append_commit(&mut self, table: &str, ops: Vec<JournalOp>) -> Result<()> {
        self.append(&WalRecord::Commit {
            table: table.to_string(),
            ops,
        })
    }

    /// Logs a table's full physical state (create / replace / wholesale
    /// rebuild), persisting any not-yet-persisted chunks *first* so the
    /// record never references a missing file. `rel` must be sealed (the
    /// catalog publishes only sealed versions).
    pub fn append_state(&mut self, name: &str, rel: &OngoingRelation) -> Result<()> {
        let state = self.table_state_of(name, rel)?;
        self.append(&WalRecord::TableState(state))
    }

    /// Logs a table drop.
    pub fn append_drop(&mut self, table: &str) -> Result<()> {
        self.append(&WalRecord::DropTable {
            table: table.to_string(),
        })
    }

    /// Ensures the chunk allocation behind `base` exists as a chunk file,
    /// returning its id. Pointer identity keys the lookup; the cache keeps
    /// the `Arc` alive so the address stays pinned to this file.
    fn ensure_chunk(&mut self, base: &Arc<[Tuple]>) -> Result<u64> {
        let key = base.as_ptr() as usize;
        if let Some((id, _)) = self.inner.chunk_cache.get(&key) {
            return Ok(*id);
        }
        let id = self.inner.next_chunk;
        write_chunk(&chunk_path(self.dir, id), base, self.opts.fsync)?;
        self.inner.next_chunk += 1;
        self.inner.stats.chunk_files += 1;
        self.inner.stats.chunk_tuples += base.len() as u64;
        self.inner.chunk_cache.insert(key, (id, Arc::clone(base)));
        Ok(id)
    }

    /// Builds the durable [`TableState`] of a sealed relation, persisting
    /// chunks as needed.
    fn table_state_of(&mut self, name: &str, rel: &OngoingRelation) -> Result<TableState> {
        let mut chunks = Vec::new();
        // `chunk_parts` borrows `rel`; collect the Arcs first so `self`
        // stays free for `ensure_chunk`.
        let parts: Vec<ongoing_relation::OwnedChunkPart> = rel
            .chunk_parts()
            .into_iter()
            .map(|p| (Arc::clone(p.base), p.edits.cloned().unwrap_or_default()))
            .collect();
        for (base, overlay) in parts {
            let file = self.ensure_chunk(&base)?;
            chunks.push(ChunkEntry {
                file,
                base_len: base.len(),
                overlay,
            });
        }
        Ok(TableState {
            name: name.to_string(),
            schema: rel.schema().clone(),
            indexed: rel.key_indexed_columns().to_vec(),
            chunks,
        })
    }

    /// Takes a checkpoint over the given (complete, current, sealed) table
    /// set: persists unpersisted chunks, publishes a new manifest
    /// atomically, truncates the WAL, and garbage-collects chunk files no
    /// longer referenced. The sequence counter keeps running across the
    /// truncation.
    pub fn checkpoint(&mut self, tables: &[(&str, &OngoingRelation)]) -> Result<()> {
        let mut states = Vec::with_capacity(tables.len());
        for (name, rel) in tables {
            states.push(self.table_state_of(name, rel)?);
        }
        let manifest = Manifest {
            lsn: self.inner.wal.next_seq() - 1,
            next_chunk: self.inner.next_chunk,
            tables: states,
        };
        write_manifest(&self.dir.join(MANIFEST_FILE), &manifest, self.opts.fsync)?;
        self.inner.wal.reset(&self.dir.join(WAL_FILE))?;

        // Everything the new manifest does not reference is garbage: the
        // WAL that could have referenced it has just been truncated, and
        // in-memory pins keep their allocations alive independently.
        let referenced: HashSet<u64> = manifest
            .tables
            .iter()
            .flat_map(|t| t.chunks.iter().map(|c| c.file))
            .collect();
        self.inner
            .chunk_cache
            .retain(|_, (id, _)| referenced.contains(id));
        for entry in fs::read_dir(self.dir.join(CHUNKS_DIR))? {
            let entry = entry?;
            let id = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_suffix(".odc"))
                .and_then(|n| n.parse::<u64>().ok());
            if let Some(id) = id {
                if !referenced.contains(&id) {
                    fs::remove_file(entry.path())?;
                }
            }
        }
        self.inner.stats.checkpoints += 1;
        Ok(())
    }

    /// Materializes a recovered table: reads and verifies its chunk files,
    /// rebuilds the exact physical layout, replays the committed journals.
    /// Loaded chunks enter the persisted-chunk cache under their existing
    /// file ids, so a later checkpoint reuses the files instead of
    /// rewriting unchanged data.
    pub fn load(&mut self, plan: &RecoveredTable) -> Result<OngoingRelation> {
        let mut parts = Vec::with_capacity(plan.state.chunks.len());
        let mut loaded = 0u64;
        for entry in &plan.state.chunks {
            let rows = read_chunk(&chunk_path(self.dir, entry.file))?;
            if rows.len() != entry.base_len {
                return Err(EngineError::CorruptStorage(format!(
                    "chunk file {} holds {} rows, manifest says {}",
                    entry.file,
                    rows.len(),
                    entry.base_len
                )));
            }
            loaded += rows.len() as u64;
            let base: Arc<[Tuple]> = rows.into();
            self.inner
                .chunk_cache
                .insert(base.as_ptr() as usize, (entry.file, Arc::clone(&base)));
            parts.push((base, entry.overlay.clone()));
        }
        let mut rel =
            OngoingRelation::from_parts(plan.state.schema.clone(), parts, &plan.state.indexed);
        for ops in &plan.commits {
            rel.apply_journal(ops.clone());
        }
        self.inner.stats.tuples_loaded += loaded;
        Ok(rel)
    }
}
