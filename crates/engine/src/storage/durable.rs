//! Durable database state: WAL + chunk files + manifest, glued together.
//!
//! One [`DurableState`] lives inside a durable [`Database`] and owns the
//! on-disk layout
//!
//! ```text
//! <dir>/wal.log             append-only write-ahead log
//! <dir>/MANIFEST            atomically replaced checkpoint snapshot
//! <dir>/chunks/<id>.odc     immutable sealed-chunk files
//! ```
//!
//! The commit protocol keeps publications **O(delta)**: a `modify_table`
//! closure's journaled physical ops are appended (and fsynced) as one
//! [`WalRecord::Commit`] *before* the new version becomes visible. Chunk
//! files are written only at checkpoint time (or when a wholesale
//! replacement needs a full [`WalRecord::TableState`]), and only for chunk
//! allocations not yet persisted — identified by `Arc` pointer identity,
//! with the cache holding the `Arc` alive so an address can never be
//! recycled while it still names a file.
//!
//! Ordering invariant: chunk files and the manifest are written and
//! fsynced *before* any WAL record or manifest reference to them, so a
//! crash can orphan complete files but never dangle a reference; and the
//! manifest's LSN filter makes the checkpoint's manifest-publish →
//! WAL-reset window idempotent.
//!
//! [`Database`]: crate::catalog::Database

use crate::error::{EngineError, Result};
use crate::obs::{EngineEvent, Obs};
use crate::storage::cache::ChunkCache;
use crate::storage::chunkfile::{decode_chunk, write_chunk};
use crate::storage::manifest::{read_manifest, write_manifest, Manifest};
use crate::storage::vfs::{with_retry, DiskError, RealFs, Vfs};
use crate::storage::wal::{
    scan, truncate_file, ChunkEntry, TableState, WalRecord, WalTail, WalWriter,
};
use ongoing_relation::{
    ChunkPager, ChunkSource, JournalOp, OngoingRelation, OwnedChunkSource, PagedChunkPart, Tuple,
};
use parking_lot::{Mutex, MutexGuard};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// WAL file name.
pub const WAL_FILE: &str = "wal.log";
/// Manifest file name.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Chunk-file subdirectory.
pub const CHUNKS_DIR: &str = "chunks";

/// Environment override for [`DurableOptions::memory_budget`] — how CI
/// reruns whole suites under a deliberately tiny budget so eviction is
/// exercised on every path.
pub const MEMORY_BUDGET_ENV: &str = "ONGOINGDB_MEMORY_BUDGET";

/// Tuning knobs for a durable database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// Fsync the WAL on every commit and chunk files on write. Disable
    /// only for tests that simulate crashes by explicit truncation anyway.
    pub fsync: bool,
    /// Checkpoint (fold the WAL into chunk files + manifest, then truncate
    /// it) once the log exceeds this many bytes. `u64::MAX` disables
    /// automatic checkpoints; `0` checkpoints after every commit.
    pub checkpoint_bytes: u64,
    /// Byte budget of the resident chunk cache. `u64::MAX` (the default)
    /// keeps every table fully resident, exactly as before the cache
    /// existed. A finite budget makes recovered tables page their sealed
    /// chunks in per access, and lets a checkpoint *demote* freshly
    /// persisted sealed chunks to cold (they are write-once on disk
    /// already) — so tables many times the budget scan with peak resident
    /// chunk bytes bounded by it. Overridable via
    /// [`MEMORY_BUDGET_ENV`](self::MEMORY_BUDGET_ENV).
    pub memory_budget: u64,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        let memory_budget = std::env::var(MEMORY_BUDGET_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(u64::MAX);
        DurableOptions {
            fsync: true,
            checkpoint_bytes: 4 << 20,
            memory_budget,
        }
    }
}

/// Counters describing the durable layer's work — what the recovery bench
/// asserts O(delta) publication and lazy loading on. All counts are for
/// this process's lifetime (they restart at zero on open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// WAL records appended.
    pub wal_records: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
    /// Tuples serialized into WAL records (journal appends, edit
    /// replacement rows, inline overlay rows).
    pub wal_tuples: u64,
    /// Chunk files written.
    pub chunk_files: u64,
    /// Tuples written into chunk files.
    pub chunk_tuples: u64,
    /// Tuples materialized from chunk files (lazy recovery loads).
    pub tuples_loaded: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Chunk-cache hits: a paged chunk access served from resident bytes.
    pub cache_hits: u64,
    /// Chunk-cache misses: a paged chunk access that had to read its file.
    pub cache_misses: u64,
    /// Chunks evicted from the cache under budget pressure.
    pub cache_evictions: u64,
    /// Bytes currently resident in the chunk cache.
    pub cache_resident_bytes: u64,
    /// High-water mark of resident chunk-cache bytes — what the
    /// out-of-core repro asserts stays at or below the budget.
    pub cache_peak_bytes: u64,
}

/// One table as recovery found it: its last durable full state plus every
/// committed journal after that state, in order. Held by a cold catalog
/// slot until first access materializes it.
#[derive(Debug)]
pub struct RecoveredTable {
    /// The base physical state (from the manifest or a full-state record).
    pub state: TableState,
    /// Journals of the committed publications to replay on top, in order.
    pub commits: Vec<Vec<JournalOp>>,
}

#[derive(Debug)]
struct DurableInner {
    wal: WalWriter,
    /// Persisted-chunk identity: base-allocation address → (chunk file id,
    /// file bytes, a clone of the `Arc` pinning that address). Entries are
    /// dropped when checkpoint GC deletes the file, or when the chunk is
    /// *demoted* to cold — in both cases the address can no longer be
    /// presented as that id (re-encountering the data merely rewrites it
    /// under a fresh id, which costs a duplicate file, never correctness).
    chunk_cache: HashMap<usize, (u64, u64, Arc<[Tuple]>)>,
    next_chunk: u64,
    stats: DurableStats,
}

/// The durable side of a database: directory, options, and the serialized
/// commit state. All WAL appends, chunk writes, checkpoints and recovery
/// loads happen under the single [`lock`](DurableState::lock) — the
/// catalog acquires it *before* touching its own table map (lock order:
/// durable guard, then tables), which is what serializes publication
/// against checkpoint GC.
#[derive(Debug)]
pub struct DurableState {
    dir: PathBuf,
    opts: DurableOptions,
    vfs: Arc<dyn Vfs>,
    /// The byte-budgeted pager cold chunks load through.
    cache: Arc<ChunkCache>,
    /// Set on any failed fsync; every subsequent durable operation fails
    /// fast. Fail-stop by design (fsyncgate): after a failed fsync the
    /// page cache can no longer be trusted, so the only safe recovery is
    /// a fresh open that re-reads the actual on-disk state.
    poisoned: AtomicBool,
    /// The owning database's observability bundle, attached after open —
    /// absorbed WAL faults surface as events and registry counters.
    obs: OnceLock<Arc<Obs>>,
    inner: Mutex<DurableInner>,
}

/// Exclusive access to the durable state (see [`DurableState::lock`]).
pub struct DurableGuard<'a> {
    state: &'a DurableState,
    inner: MutexGuard<'a, DurableInner>,
}

fn chunk_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(CHUNKS_DIR).join(format!("{id}.odc"))
}

fn record_tuples(rec: &WalRecord) -> u64 {
    match rec {
        WalRecord::TableState(state) => state
            .chunks
            .iter()
            .flat_map(|c| c.overlay.values())
            .map(|rows| rows.len() as u64)
            .sum(),
        WalRecord::Commit { ops, .. } => ops
            .iter()
            .map(|op| match op {
                JournalOp::Append(_) => 1,
                JournalOp::Edits(entries) => entries
                    .iter()
                    .map(|(_, _, rows, _)| rows.len() as u64)
                    .sum(),
                _ => 0,
            })
            .sum(),
        WalRecord::DropTable { .. } => 0,
    }
}

impl DurableState {
    /// Opens (creating or recovering) the durable state at `dir`.
    ///
    /// Recovery reads the manifest, scans the WAL, truncates a torn tail,
    /// and folds every surviving record with `seq > manifest.lsn` over the
    /// manifest's table states. The folded tables come back as
    /// [`RecoveredTable`] plans — chunk files are *not* read here; the
    /// catalog materializes each table on first access. Mid-log damage
    /// (a complete record failing its checksum) or a commit referencing a
    /// table the fold does not know surfaces as
    /// [`EngineError::CorruptStorage`].
    pub fn open(dir: &Path, opts: DurableOptions) -> Result<(DurableState, Vec<RecoveredTable>)> {
        DurableState::open_with_vfs(dir, opts, Arc::new(RealFs))
    }

    /// [`open`](Self::open) over an explicit [`Vfs`] — how fault-injection
    /// tests run the full durability stack against a flaky disk.
    pub fn open_with_vfs(
        dir: &Path,
        opts: DurableOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(DurableState, Vec<RecoveredTable>)> {
        with_retry(|| vfs.create_dir_all(&dir.join(CHUNKS_DIR)), || Ok(()))?;
        let manifest = read_manifest(vfs.as_ref(), &dir.join(MANIFEST_FILE))?.unwrap_or_default();
        let wal_path = dir.join(WAL_FILE);
        let (records, tail) = scan(vfs.as_ref(), &wal_path)?;
        let wal_len = match tail {
            WalTail::Clean => records.last().map_or(0, |(_, end, _)| *end),
            WalTail::Torn { at } => {
                truncate_file(vfs.as_ref(), &wal_path, at)?;
                at
            }
        };

        let mut tables: BTreeMap<String, RecoveredTable> = manifest
            .tables
            .into_iter()
            .map(|state| {
                (
                    state.name.clone(),
                    RecoveredTable {
                        state,
                        commits: Vec::new(),
                    },
                )
            })
            .collect();
        let mut max_seq = manifest.lsn;
        let mut max_chunk = manifest.next_chunk;
        for t in tables.values() {
            for c in &t.state.chunks {
                max_chunk = max_chunk.max(c.file + 1);
            }
        }
        for (seq, _, rec) in records {
            if seq <= manifest.lsn {
                // Already folded into the manifest: a crash hit the window
                // between manifest publication and WAL truncation.
                continue;
            }
            max_seq = max_seq.max(seq);
            match rec {
                WalRecord::TableState(state) => {
                    for c in &state.chunks {
                        max_chunk = max_chunk.max(c.file + 1);
                    }
                    tables.insert(
                        state.name.clone(),
                        RecoveredTable {
                            state,
                            commits: Vec::new(),
                        },
                    );
                }
                WalRecord::Commit { table, ops } => match tables.get_mut(&table) {
                    Some(t) => t.commits.push(ops),
                    None => {
                        return Err(EngineError::CorruptStorage(format!(
                            "wal commit for unknown table `{table}`"
                        )))
                    }
                },
                WalRecord::DropTable { table } => {
                    tables.remove(&table);
                }
            }
        }
        // Orphaned chunk files (a crash between chunk write and record
        // append) must not be reused for new content.
        for name in with_retry(|| vfs.list(&dir.join(CHUNKS_DIR)), || Ok(()))? {
            if let Some(id) = name
                .strip_suffix(".odc")
                .and_then(|n| n.parse::<u64>().ok())
            {
                max_chunk = max_chunk.max(id + 1);
            }
        }

        let wal = WalWriter::open(Arc::clone(&vfs), &wal_path, wal_len, max_seq + 1)?;
        let cache = Arc::new(ChunkCache::new(
            Arc::clone(&vfs),
            dir.join(CHUNKS_DIR),
            opts.memory_budget,
        ));
        let state = DurableState {
            dir: dir.to_path_buf(),
            opts,
            vfs,
            cache,
            poisoned: AtomicBool::new(false),
            obs: OnceLock::new(),
            inner: Mutex::new(DurableInner {
                wal,
                chunk_cache: HashMap::new(),
                next_chunk: max_chunk,
                stats: DurableStats::default(),
            }),
        };
        Ok((state, tables.into_values().collect()))
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options the state was opened with.
    pub fn options(&self) -> &DurableOptions {
        &self.opts
    }

    /// The byte-budgeted chunk cache backing cold chunks.
    pub fn cache(&self) -> &Arc<ChunkCache> {
        &self.cache
    }

    /// Has a failed fsync poisoned this handle (fail-stop)?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Attaches the owning database's observability bundle (first call
    /// wins): absorbed WAL faults surface as `wal_fault_retry` events and
    /// the `ongoingdb_wal_fault_retries` counter, and chunk-cache
    /// evictions as `eviction` events.
    pub fn attach_obs(&self, obs: Arc<Obs>) {
        self.cache.set_events(Arc::clone(&obs.events));
        let _ = self.obs.set(obs);
    }

    /// Acquires the commit lock.
    pub fn lock(&self) -> DurableGuard<'_> {
        DurableGuard {
            state: self,
            inner: self.inner.lock(),
        }
    }

    /// A snapshot of the work counters, with the chunk cache's counters
    /// folded in.
    pub fn stats(&self) -> DurableStats {
        let mut s = self.inner.lock().stats;
        let c = self.cache.stats();
        s.cache_hits = c.hits;
        s.cache_misses = c.misses;
        s.cache_evictions = c.evictions;
        s.cache_resident_bytes = c.resident_bytes;
        s.cache_peak_bytes = c.peak_bytes;
        s.tuples_loaded += c.rows_loaded;
        s
    }
}

impl DurableGuard<'_> {
    /// Bytes currently in the WAL.
    pub fn wal_len(&self) -> u64 {
        self.inner.wal.len()
    }

    /// Has the WAL outgrown the checkpoint threshold?
    pub fn needs_checkpoint(&self) -> bool {
        self.inner.wal.len() > self.state.opts.checkpoint_bytes
    }

    /// The configured memory budget (`u64::MAX` = unbounded).
    pub fn memory_budget(&self) -> u64 {
        self.state.opts.memory_budget
    }

    /// A snapshot of the work counters (without cache counters; use
    /// [`DurableState::stats`] for the merged view).
    pub fn stats(&self) -> DurableStats {
        self.inner.stats
    }

    /// Fails fast once a failed fsync has poisoned the handle: no further
    /// appends, checkpoints or loads — reopen to recover from disk truth.
    fn check_poisoned(&self) -> Result<()> {
        if self.state.poisoned.load(Ordering::SeqCst) {
            return Err(EngineError::Io(
                "durable state poisoned: an earlier fsync failed; reopen the database to recover"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Maps a disk error up, poisoning the handle on a failed fsync.
    fn disk(&self, e: DiskError) -> EngineError {
        if matches!(e, DiskError::SyncFailed(_)) {
            self.state.poisoned.store(true, Ordering::SeqCst);
        }
        e.into()
    }

    fn append(&mut self, rec: &WalRecord) -> Result<()> {
        self.check_poisoned()?;
        let tuples = record_tuples(rec);
        let fsync = self.state.opts.fsync;
        let retries_before = self.inner.wal.absorbed_retries();
        let appended = self.inner.wal.append(rec, fsync);
        let (_seq, bytes) = appended.map_err(|e| self.disk(e))?;
        let absorbed = self.inner.wal.absorbed_retries() - retries_before;
        let stats = &mut self.inner.stats;
        stats.wal_records += 1;
        stats.wal_bytes += bytes;
        stats.wal_tuples += tuples;
        if absorbed > 0 {
            if let Some(obs) = self.state.obs.get() {
                obs.metrics
                    .counter("ongoingdb_wal_fault_retries")
                    .add(absorbed);
                obs.events.record(EngineEvent::WalFaultRetry {
                    retries: absorbed as u32,
                });
            }
        }
        Ok(())
    }

    /// Logs an O(delta) publication: the journal of physical ops the
    /// closure performed on its fork. Durable once this returns.
    pub fn append_commit(&mut self, table: &str, ops: Vec<JournalOp>) -> Result<()> {
        self.append(&WalRecord::Commit {
            table: table.to_string(),
            ops,
        })
    }

    /// Logs a table's full physical state (create / replace / wholesale
    /// rebuild), persisting any not-yet-persisted chunks *first* so the
    /// record never references a missing file. `rel` must be sealed (the
    /// catalog publishes only sealed versions).
    pub fn append_state(&mut self, name: &str, rel: &OngoingRelation) -> Result<()> {
        let state = self.table_state_of(name, rel)?;
        self.append(&WalRecord::TableState(state))
    }

    /// Logs a table drop.
    pub fn append_drop(&mut self, table: &str) -> Result<()> {
        self.append(&WalRecord::DropTable {
            table: table.to_string(),
        })
    }

    /// Ensures the chunk allocation behind `base` exists as a chunk file,
    /// returning its id. Pointer identity keys the lookup; the cache keeps
    /// the `Arc` alive so the address stays pinned to this file.
    fn ensure_chunk(&mut self, base: &Arc<[Tuple]>) -> Result<u64> {
        let key = base.as_ptr() as usize;
        if let Some((id, _, _)) = self.inner.chunk_cache.get(&key) {
            return Ok(*id);
        }
        let id = self.inner.next_chunk;
        let written = write_chunk(
            self.state.vfs.as_ref(),
            &chunk_path(&self.state.dir, id),
            base,
            self.state.opts.fsync,
        );
        let bytes = written.map_err(|e| self.disk(e))?;
        self.inner.next_chunk += 1;
        self.inner.stats.chunk_files += 1;
        self.inner.stats.chunk_tuples += base.len() as u64;
        self.inner
            .chunk_cache
            .insert(key, (id, bytes, Arc::clone(base)));
        Ok(id)
    }

    /// Builds the durable [`TableState`] of a sealed relation, persisting
    /// chunks as needed. Cold chunks already persist under their id — they
    /// contribute a reference without any I/O (or page-in).
    fn table_state_of(&mut self, name: &str, rel: &OngoingRelation) -> Result<TableState> {
        let mut chunks = Vec::new();
        // `chunk_parts` borrows `rel`; collect owned sources first so
        // `self` stays free for `ensure_chunk`.
        let parts: Vec<PagedChunkPart> = rel
            .chunk_parts()
            .into_iter()
            .map(|p| {
                let src = match p.source {
                    ChunkSource::Resident(a) => OwnedChunkSource::Resident(Arc::clone(a)),
                    ChunkSource::Cold { id, len } => OwnedChunkSource::Cold {
                        pager: Arc::clone(self.state.cache()) as Arc<dyn ChunkPager>,
                        id,
                        len,
                    },
                };
                (src, p.edits.cloned().unwrap_or_default())
            })
            .collect();
        for (src, overlay) in parts {
            let (file, base_len) = match src {
                OwnedChunkSource::Resident(base) => (self.ensure_chunk(&base)?, base.len()),
                OwnedChunkSource::Cold { id, len, .. } => (id, len),
            };
            chunks.push(ChunkEntry {
                file,
                base_len,
                overlay,
            });
        }
        Ok(TableState {
            name: name.to_string(),
            schema: rel.schema().clone(),
            indexed: rel.key_indexed_columns().to_vec(),
            chunks,
        })
    }

    /// Takes a checkpoint over the given (complete, current, sealed) table
    /// set: persists unpersisted chunks, publishes a new manifest
    /// atomically, truncates the WAL, and garbage-collects chunk files no
    /// longer referenced. The sequence counter keeps running across the
    /// truncation.
    pub fn checkpoint(&mut self, tables: &[(&str, &OngoingRelation)]) -> Result<()> {
        self.check_poisoned()?;
        let mut states = Vec::with_capacity(tables.len());
        for (name, rel) in tables {
            states.push(self.table_state_of(name, rel)?);
        }
        let manifest = Manifest {
            lsn: self.inner.wal.next_seq() - 1,
            next_chunk: self.inner.next_chunk,
            tables: states,
        };
        let vfs = self.state.vfs.as_ref();
        write_manifest(
            vfs,
            &self.state.dir.join(MANIFEST_FILE),
            &manifest,
            self.state.opts.fsync,
        )
        .map_err(|e| self.disk(e))?;
        let reset = self.inner.wal.reset();
        reset.map_err(|e| self.disk(e))?;

        // Everything the new manifest does not reference is garbage: the
        // WAL that could have referenced it has just been truncated, and
        // in-memory pins keep their allocations alive independently.
        let referenced: HashSet<u64> = manifest
            .tables
            .iter()
            .flat_map(|t| t.chunks.iter().map(|c| c.file))
            .collect();
        self.inner
            .chunk_cache
            .retain(|_, (id, _, _)| referenced.contains(id));
        let vfs = self.state.vfs.as_ref();
        let chunks_dir = self.state.dir.join(CHUNKS_DIR);
        for name in with_retry(|| vfs.list(&chunks_dir), || Ok(()))? {
            let id = name
                .strip_suffix(".odc")
                .and_then(|n| n.parse::<u64>().ok());
            if let Some(id) = id {
                if !referenced.contains(&id) {
                    let path = chunks_dir.join(&name);
                    with_retry(|| vfs.remove(&path), || Ok(()))?;
                    self.state.cache.forget(id);
                }
            }
        }
        self.inner.stats.checkpoints += 1;
        Ok(())
    }

    /// Demotes every already-persisted resident sealed chunk of `rel` to a
    /// cold reference through the chunk cache, dropping the identity pins
    /// so the memory is governed by the cache budget instead of held
    /// forever. The dropped rows are seeded into the cache (warm, but
    /// evictable). Logically a no-op; the caller republishes the demoted
    /// version. Only meaningful under a finite memory budget. Returns the
    /// number of chunks demoted.
    pub fn demote(&mut self, rel: &mut OngoingRelation) -> usize {
        let pager: Arc<dyn ChunkPager> = Arc::clone(self.state.cache()) as Arc<dyn ChunkPager>;
        let map = &self.inner.chunk_cache;
        let cache = self.state.cache();
        let mut demoted_ids: Vec<u64> = Vec::new();
        let n = rel.demote_where(&pager, |base| {
            let key = base.as_ptr() as usize;
            map.get(&key).map(|(id, bytes, _)| {
                cache.seed(*id, Arc::clone(base), *bytes);
                demoted_ids.push(*id);
                *id
            })
        });
        // Drop the identity pins: the rows now live on disk plus (budget
        // permitting) in the page cache. Keeping the pin would hold every
        // demoted chunk resident forever, defeating the budget.
        self.inner
            .chunk_cache
            .retain(|_, (id, _, _)| !demoted_ids.contains(id));
        // With the pins gone, trim the warm seeds back under budget right
        // away rather than waiting for the next access to shed them.
        cache.trim();
        n
    }

    /// Materializes a recovered table, replaying the committed journals
    /// over its durable state.
    ///
    /// With an unbounded memory budget the chunk files are read, verified
    /// and pinned eagerly (their allocations enter the persisted-chunk
    /// identity map, so a later checkpoint reuses the files). Under a
    /// finite budget the table is built over *cold* chunks instead — zero
    /// rows read here; scans page chunks in through the budgeted cache.
    pub fn load(&mut self, plan: &RecoveredTable) -> Result<OngoingRelation> {
        self.check_poisoned()?;
        if self.state.opts.memory_budget != u64::MAX {
            let parts: Vec<PagedChunkPart> = plan
                .state
                .chunks
                .iter()
                .map(|entry| {
                    (
                        OwnedChunkSource::Cold {
                            pager: Arc::clone(self.state.cache()) as Arc<dyn ChunkPager>,
                            id: entry.file,
                            len: entry.base_len,
                        },
                        entry.overlay.clone(),
                    )
                })
                .collect();
            let mut rel = OngoingRelation::from_paged_parts(
                plan.state.schema.clone(),
                parts,
                &plan.state.indexed,
            );
            for ops in &plan.commits {
                rel.apply_journal(ops.clone());
            }
            return Ok(rel);
        }
        let mut parts = Vec::with_capacity(plan.state.chunks.len());
        let mut loaded = 0u64;
        for entry in &plan.state.chunks {
            let path = chunk_path(&self.state.dir, entry.file);
            let vfs = self.state.vfs.as_ref();
            let raw = with_retry(|| vfs.read(&path), || Ok(()))?;
            let rows = decode_chunk(&raw).map_err(|e| match e {
                EngineError::CorruptStorage(m) => {
                    EngineError::CorruptStorage(format!("{}: {m}", path.display()))
                }
                other => other,
            })?;
            if rows.len() != entry.base_len {
                return Err(EngineError::CorruptStorage(format!(
                    "chunk file {} holds {} rows, manifest says {}",
                    entry.file,
                    rows.len(),
                    entry.base_len
                )));
            }
            loaded += rows.len() as u64;
            let base: Arc<[Tuple]> = rows.into();
            self.inner.chunk_cache.insert(
                base.as_ptr() as usize,
                (entry.file, raw.len() as u64, Arc::clone(&base)),
            );
            parts.push((base, entry.overlay.clone()));
        }
        let mut rel =
            OngoingRelation::from_parts(plan.state.schema.clone(), parts, &plan.state.indexed);
        for ops in &plan.commits {
            rel.apply_journal(ops.clone());
        }
        self.inner.stats.tuples_loaded += loaded;
        Ok(rel)
    }
}
