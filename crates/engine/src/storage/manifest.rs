//! The checkpoint manifest: a single atomically replaced file describing
//! every table's durable state at one log sequence number.
//!
//! A checkpoint folds the WAL into the manifest: each table's full
//! physical state ([`TableState`] — schema, indexed columns, chunk-file
//! references, overlay deltas) is written here, the file is published by
//! `rename` (atomic on POSIX), and only then is the WAL truncated. The
//! stored [`Manifest::lsn`] is the sequence number of the last record the
//! manifest covers; recovery skips WAL records at or below it, which makes
//! the checkpoint crash-safe — a crash in the manifest-publish → WAL-reset
//! window merely leaves already-folded records in the log, and the LSN
//! filter renders replaying them a no-op.
//!
//! Layout (little-endian):
//!
//! ```text
//! [magic u32][version u32][lsn u64][next chunk id u64]
//! [table count u32][TableState]*[crc32 u32]
//! ```

use crate::error::{EngineError, Result};
use crate::storage::checksum::crc32;
use crate::storage::vfs::{with_retry, DiskError, Vfs};
use crate::storage::wal::{get_table_state, put_table_state, TableState};
use bytes::{Buf, BufMut};
use std::path::Path;

/// Manifest magic: `"ODM1"`.
pub const MANIFEST_MAGIC: u32 = 0x314D_444F;
/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// The durable snapshot a checkpoint publishes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// Sequence number of the last WAL record folded into this manifest;
    /// recovery skips records with `seq <= lsn`.
    pub lsn: u64,
    /// The next chunk file id to allocate.
    pub next_chunk: u64,
    /// Every table's physical state.
    pub tables: Vec<TableState>,
}

/// Encodes a manifest image.
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    buf.put_u32_le(MANIFEST_MAGIC);
    buf.put_u32_le(MANIFEST_VERSION);
    buf.put_u64_le(m.lsn);
    buf.put_u64_le(m.next_chunk);
    buf.put_u32_le(m.tables.len() as u32);
    for t in &m.tables {
        put_table_state(&mut buf, t);
    }
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf
}

/// Decodes and verifies a manifest image.
pub fn decode_manifest(raw: &[u8]) -> Result<Manifest> {
    let corrupt = |m: String| EngineError::CorruptStorage(m);
    if raw.len() < 28 {
        return Err(corrupt(format!("manifest too short ({} bytes)", raw.len())));
    }
    let (body, tail) = raw.split_at(raw.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
    if crc32(body) != stored {
        return Err(corrupt("manifest checksum mismatch".into()));
    }
    let mut buf = body;
    let magic = buf.get_u32_le();
    if magic != MANIFEST_MAGIC {
        return Err(corrupt(format!("bad manifest magic {magic:#x}")));
    }
    let version = buf.get_u32_le();
    if version != MANIFEST_VERSION {
        return Err(corrupt(format!("unsupported manifest version {version}")));
    }
    let lsn = buf.get_u64_le();
    let next_chunk = buf.get_u64_le();
    let ntables = buf.get_u32_le() as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        tables.push(get_table_state(&mut buf).map_err(|e| corrupt(format!("manifest: {e}")))?);
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after manifest tables".into()));
    }
    Ok(Manifest {
        lsn,
        next_chunk,
        tables,
    })
}

/// Writes the manifest atomically: temp file, fsync, rename over `path`.
/// Transient write/rename failures are retried (rewriting the temp file
/// is idempotent); a failed fsync — of the temp file or of the directory
/// making the rename durable — is [`DiskError::SyncFailed`], which the
/// durable layer treats as fatal.
pub fn write_manifest(
    vfs: &dyn Vfs,
    path: &Path,
    m: &Manifest,
    fsync: bool,
) -> std::result::Result<(), DiskError> {
    let tmp = path.with_extension("tmp");
    let raw = encode_manifest(m);
    with_retry(|| vfs.write(&tmp, &raw), || Ok(())).map_err(DiskError::Io)?;
    if fsync {
        vfs.sync(&tmp).map_err(DiskError::SyncFailed)?;
    }
    with_retry(|| vfs.rename(&tmp, path), || Ok(())).map_err(DiskError::Io)?;
    if fsync {
        // Make the rename itself durable.
        if let Some(dir) = path.parent() {
            vfs.sync_dir(dir).map_err(DiskError::SyncFailed)?;
        }
    }
    Ok(())
}

/// Reads the manifest at `path`, retrying transient read failures; `None`
/// if no checkpoint has happened yet.
pub fn read_manifest(vfs: &dyn Vfs, path: &Path) -> Result<Option<Manifest>> {
    match with_retry(|| vfs.read(path), || Ok(())) {
        Ok(raw) => decode_manifest(&raw).map(Some).map_err(|e| match e {
            EngineError::CorruptStorage(m) => {
                EngineError::CorruptStorage(format!("{}: {m}", path.display()))
            }
            other => other,
        }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::fault::TempDir;
    use crate::storage::wal::ChunkEntry;
    use ongoing_relation::{Schema, Tuple, Value};
    use std::collections::BTreeMap;

    fn sample() -> Manifest {
        Manifest {
            lsn: 42,
            next_chunk: 7,
            tables: vec![TableState {
                name: "bugs".into(),
                schema: Schema::builder().int("K").int("G").interval("VT").build(),
                indexed: vec![0],
                chunks: vec![ChunkEntry {
                    file: 3,
                    base_len: 2,
                    overlay: BTreeMap::from([(0usize, vec![Tuple::base(vec![Value::Int(9)])])]),
                }],
            }],
        }
    }

    #[test]
    fn round_trips_via_file() {
        let vfs = crate::storage::vfs::RealFs;
        let dir = TempDir::new("manifest");
        let path = dir.path().join("MANIFEST");
        assert_eq!(read_manifest(&vfs, &path).unwrap(), None);
        write_manifest(&vfs, &path, &sample(), true).unwrap();
        assert_eq!(read_manifest(&vfs, &path).unwrap(), Some(sample()));
        // Re-publishing replaces atomically.
        let mut next = sample();
        next.lsn = 99;
        write_manifest(&vfs, &path, &next, false).unwrap();
        assert_eq!(read_manifest(&vfs, &path).unwrap().unwrap().lsn, 99);
    }

    #[test]
    fn damage_is_detected() {
        let mut raw = encode_manifest(&sample());
        for i in 0..raw.len() {
            raw[i] ^= 0x10;
            assert!(
                matches!(decode_manifest(&raw), Err(EngineError::CorruptStorage(_))),
                "flip at byte {i} went undetected"
            );
            raw[i] ^= 0x10;
        }
        for cut in 0..raw.len() {
            assert!(decode_manifest(&raw[..cut]).is_err(), "cut at {cut}");
        }
    }
}
