//! A minimal virtual file system over the operations the durability stack
//! performs — the seam where transient-I/O fault tolerance lives.
//!
//! Every file touch in [`wal`](crate::storage::wal),
//! [`chunkfile`](crate::storage::chunkfile),
//! [`manifest`](crate::storage::manifest) and
//! [`durable`](crate::storage::durable) goes through a shared
//! `Arc<dyn Vfs>`: the real implementation ([`RealFs`]) maps straight onto
//! `std::fs`, while the fault-injecting implementation
//! ([`FaultVfs`](crate::storage::fault::FaultVfs)) fails chosen calls with
//! transient errors, short writes or failed fsyncs.
//!
//! The retry policy is deliberately asymmetric, per the fsyncgate lesson:
//!
//! * **Reads and writes** may fail transiently (`EINTR`-class errors) and
//!   are retried with bounded backoff ([`with_retry`]). A retried WAL
//!   append first truncates back to the pre-append length so a short
//!   write never leaves garbage mid-log.
//! * **A failed fsync is never retried.** Once `fsync` reports an error,
//!   the kernel may have *dropped* the dirty pages while the page cache
//!   still shows the new data — retrying would report success for bytes
//!   that never reached the platter. [`DiskError::SyncFailed`] carries
//!   that distinction up to the durable layer, which poisons the handle
//!   fail-stop.

use std::fmt;
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::time::Duration;

/// The file operations the durability stack needs. Implementations must
/// be usable from several threads at once (the chunk cache reads outside
/// the durable commit lock).
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (or truncates) the file and writes `data` in full.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Appends `data` in full to the file, creating it if absent.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Fsyncs the file's data (`fdatasync`).
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs the directory itself — what makes a `rename` durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Truncates the file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Atomically renames `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) in `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Creates `path` and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: straight `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl Vfs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(data)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        OpenOptions::new().write(true).open(path)?.sync_data()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        OpenOptions::new().write(true).open(path)?.set_len(len)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }
}

/// A durability-stack I/O failure, keeping failed fsyncs distinguishable:
/// they must poison the durable handle instead of being retried.
#[derive(Debug)]
pub enum DiskError {
    /// An ordinary I/O failure (already past its retry budget if the
    /// operation was retriable).
    Io(io::Error),
    /// An fsync (file or directory) reported failure. The durable layer
    /// must fail stop: after a failed fsync the page cache can no longer
    /// be trusted to reflect what is on disk.
    SyncFailed(io::Error),
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "{e}"),
            DiskError::SyncFailed(e) => write!(f, "fsync failed: {e}"),
        }
    }
}

impl From<DiskError> for crate::error::EngineError {
    fn from(e: DiskError) -> Self {
        crate::error::EngineError::Io(e.to_string())
    }
}

/// Is this the kind of error a retry can plausibly clear? `EINTR`-class
/// conditions only — anything else is treated as a hard fault.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Attempts a retriable operation gets before giving up on transient
/// failures.
pub const IO_RETRY_ATTEMPTS: u32 = 4;
/// Backoff between transient-failure retries (doubled each attempt).
pub const IO_RETRY_BACKOFF: Duration = Duration::from_micros(100);

/// Runs `op`, retrying transient failures with bounded exponential
/// backoff. `undo` runs before every retry — the hook a WAL append uses to
/// truncate a short write away before writing the frame again. A
/// non-transient error, an error from `undo` itself, or exhaustion of the
/// retry budget surfaces the last error.
pub fn with_retry<T>(
    op: impl FnMut() -> io::Result<T>,
    undo: impl FnMut() -> io::Result<()>,
) -> io::Result<T> {
    with_retry_counted(op, undo).map(|(v, _)| v)
}

/// [`with_retry`], but also reporting how many attempts the operation
/// took (`1` = no fault absorbed) — the hook the observability layer uses
/// to surface absorbed transient faults as events.
pub fn with_retry_counted<T>(
    mut op: impl FnMut() -> io::Result<T>,
    mut undo: impl FnMut() -> io::Result<()>,
) -> io::Result<(T, u32)> {
    let mut backoff = IO_RETRY_BACKOFF;
    let mut attempt = 1;
    loop {
        match op() {
            Ok(v) => return Ok((v, attempt)),
            Err(e) if is_transient(&e) && attempt < IO_RETRY_ATTEMPTS => {
                undo()?;
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::fault::TempDir;

    #[test]
    fn realfs_round_trips() {
        let dir = TempDir::new("vfs");
        let fs = RealFs;
        let f = dir.path().join("f");
        fs.write(&f, b"hello").unwrap();
        fs.append(&f, b" world").unwrap();
        assert_eq!(fs.read(&f).unwrap(), b"hello world");
        fs.sync(&f).unwrap();
        fs.sync_dir(dir.path()).unwrap();
        fs.truncate(&f, 5).unwrap();
        assert_eq!(fs.read(&f).unwrap(), b"hello");
        let g = dir.path().join("g");
        fs.rename(&f, &g).unwrap();
        assert_eq!(fs.list(dir.path()).unwrap(), vec!["g".to_string()]);
        fs.remove(&g).unwrap();
        assert!(fs.list(dir.path()).unwrap().is_empty());
        fs.create_dir_all(&dir.path().join("a/b")).unwrap();
    }

    #[test]
    fn retry_clears_transient_failures() {
        let mut fails = 2;
        let mut undone = 0;
        let out = with_retry(
            || {
                if fails > 0 {
                    fails -= 1;
                    Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
                } else {
                    Ok(7)
                }
            },
            || {
                undone += 1;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(undone, 2);
    }

    #[test]
    fn retry_gives_up_on_hard_faults() {
        let mut calls = 0;
        let err = with_retry::<()>(
            || {
                calls += 1;
                Err(io::Error::other("dead disk"))
            },
            || Ok(()),
        )
        .unwrap_err();
        assert_eq!(calls, 1, "hard faults are not retried");
        assert_eq!(err.kind(), io::ErrorKind::Other);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let mut calls = 0;
        let err = with_retry::<()>(
            || {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
            },
            || Ok(()),
        )
        .unwrap_err();
        assert_eq!(calls, IO_RETRY_ATTEMPTS);
        assert!(is_transient(&err));
    }
}
