//! The per-tuple storage layout model (Sec. VIII "Reference Time RT" and
//! Sec. IX-D, Table V).
//!
//! The paper stores a tuple's reference time as a PostgreSQL variable-length
//! `array` of fixed ranges, and extends the 4-byte `date` into an 8-byte
//! pair for ongoing time points. We model the equivalent layout explicitly
//! so the Table V experiment (per-tuple storage overhead) can be measured
//! byte-for-byte:
//!
//! | piece | bytes |
//! |-------|-------|
//! | tuple header | 24 |
//! | `Int` | 8 |
//! | `Str` | 4 + len (varlena-style) |
//! | `Bool` | 1 |
//! | fixed time point (`Time`) | 4 (a day-granularity date, as in PostgreSQL) |
//! | ongoing time point | 8 (two dates — the paper's "doubling") |
//! | fixed interval (`Span`) | 8 |
//! | ongoing interval | 16 (the paper's "+8 Bytes" over a fixed `VT`) |
//! | `RT` array | 13 + 16 × #ranges (29 B in the typical 1-range case, matching Table V) |
//!
//! The absolute constants differ slightly from PostgreSQL varlena internals;
//! what the experiment depends on — a constant typical `RT` overhead that is
//! large relative to small tuples and negligible for 1 kB tuples — is
//! preserved. See `DESIGN.md` §2 for the substitution note.

use ongoing_relation::{OngoingRelation, Tuple, Value};

/// Byte size of the fixed per-tuple header.
pub const TUPLE_HEADER_BYTES: usize = 24;
/// Base byte cost of the `RT` array (varlena-style header).
pub const RT_HEADER_BYTES: usize = 13;
/// Byte cost per fixed range in the `RT` array.
pub const RT_RANGE_BYTES: usize = 16;

/// Byte-size breakdown of one stored tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TupleFootprint {
    /// Fixed header bytes.
    pub header: usize,
    /// Attribute payload bytes.
    pub attrs: usize,
    /// Reference-time attribute bytes.
    pub rt: usize,
}

impl TupleFootprint {
    /// Total stored bytes.
    pub fn total(&self) -> usize {
        self.header + self.attrs + self.rt
    }

    /// Fraction of the total contributed by `RT`.
    pub fn rt_share(&self) -> f64 {
        self.rt as f64 / self.total() as f64
    }
}

/// Bytes needed to store one attribute value.
pub fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Int(_) => 8,
        Value::Str(s) => 4 + s.len(),
        Value::Bool(_) => 1,
        Value::Time(_) => 4,
        Value::Span(..) => 8,
        Value::Point(_) => 8,
        Value::Interval(_) => 16,
        // Ongoing integers store a varlena-style piece list.
        Value::Count(c) => 4 + 24 * c.piece_count(),
    }
}

/// Bytes needed to store a reference time with `ranges` fixed ranges.
pub fn rt_bytes(ranges: usize) -> usize {
    RT_HEADER_BYTES + RT_RANGE_BYTES * ranges
}

/// Measures one tuple.
pub fn measure_tuple(t: &Tuple) -> TupleFootprint {
    TupleFootprint {
        header: TUPLE_HEADER_BYTES,
        attrs: t.values().iter().map(value_bytes).sum(),
        rt: rt_bytes(t.rt().cardinality()),
    }
}

/// Measures the same tuple as the instantiating baselines would store it:
/// no `RT` attribute, ongoing values replaced by their fixed counterparts
/// (halving interval storage) — the "fixed tuple size" row of Table V.
pub fn measure_tuple_fixed(t: &Tuple) -> TupleFootprint {
    let attrs = t
        .values()
        .iter()
        .map(|v| match v {
            Value::Point(_) => 4,
            Value::Interval(_) => 8,
            Value::Count(_) => 8, // instantiated to a fixed integer
            other => value_bytes(other),
        })
        .sum();
    TupleFootprint {
        header: TUPLE_HEADER_BYTES,
        attrs,
        rt: 0,
    }
}

/// Aggregate storage statistics of a relation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RelationFootprint {
    /// Number of tuples measured.
    pub tuples: usize,
    /// Total ongoing-format bytes.
    pub total_bytes: usize,
    /// Total bytes of the `RT` attributes.
    pub rt_bytes: usize,
    /// Total bytes in the fixed (baseline) format.
    pub fixed_bytes: usize,
    /// Maximum `RT` cardinality observed.
    pub max_rt_cardinality: usize,
}

impl RelationFootprint {
    /// Average ongoing tuple size in bytes.
    pub fn avg_tuple_bytes(&self) -> f64 {
        if self.tuples == 0 {
            return 0.0;
        }
        self.total_bytes as f64 / self.tuples as f64
    }

    /// Average `RT` bytes per tuple.
    pub fn avg_rt_bytes(&self) -> f64 {
        if self.tuples == 0 {
            return 0.0;
        }
        self.rt_bytes as f64 / self.tuples as f64
    }

    /// Ongoing-over-fixed size ratio (Table V's "ongoing / fixed tuple
    /// size" row).
    pub fn ongoing_over_fixed(&self) -> f64 {
        if self.fixed_bytes == 0 {
            return 0.0;
        }
        self.total_bytes as f64 / self.fixed_bytes as f64
    }
}

/// Measures every tuple of a relation.
pub fn measure_relation(rel: &OngoingRelation) -> RelationFootprint {
    let mut out = RelationFootprint::default();
    for t in rel.iter() {
        let f = measure_tuple(t);
        let g = measure_tuple_fixed(t);
        out.tuples += 1;
        out.total_bytes += f.total();
        out.rt_bytes += f.rt;
        out.fixed_bytes += g.total();
        out.max_rt_cardinality = out.max_rt_cardinality.max(t.rt().cardinality());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::time::tp;
    use ongoing_core::{IntervalSet, OngoingInterval};
    use ongoing_relation::Schema;

    #[test]
    fn typical_rt_is_29_bytes() {
        // Table V: a 1-range reference time costs 29 bytes.
        assert_eq!(rt_bytes(1), 29);
        assert_eq!(rt_bytes(2), 45);
    }

    #[test]
    fn ongoing_interval_doubles_fixed_interval() {
        let ongoing = Value::Interval(OngoingInterval::from_until_now(tp(0)));
        let fixed = Value::Span(tp(0), tp(1));
        assert_eq!(value_bytes(&ongoing), 2 * value_bytes(&fixed));
    }

    #[test]
    fn tuple_footprint_breaks_down() {
        let t = Tuple::with_rt(
            vec![
                Value::Int(500),
                Value::str("Spam filter"), // 11 chars
                Value::Interval(OngoingInterval::from_until_now(tp(0))),
            ],
            IntervalSet::range(tp(0), tp(5)),
        );
        let f = measure_tuple(&t);
        assert_eq!(f.header, 24);
        assert_eq!(f.attrs, 8 + (4 + 11) + 16);
        assert_eq!(f.rt, 29);
        assert_eq!(f.total(), 24 + 39 + 29);
        assert!(f.rt_share() > 0.0 && f.rt_share() < 1.0);
    }

    #[test]
    fn fixed_variant_halves_intervals_and_drops_rt() {
        let t = Tuple::with_rt(
            vec![Value::Interval(OngoingInterval::from_until_now(tp(0)))],
            IntervalSet::full(),
        );
        let f = measure_tuple_fixed(&t);
        assert_eq!(f.rt, 0);
        assert_eq!(f.attrs, 8);
    }

    #[test]
    fn relation_footprint_aggregates() {
        let mut r = OngoingRelation::new(Schema::builder().int("X").interval("VT").build());
        r.insert(vec![
            Value::Int(1),
            Value::Interval(OngoingInterval::from_until_now(tp(0))),
        ])
        .unwrap();
        r.insert_with_rt(
            vec![
                Value::Int(2),
                Value::Interval(OngoingInterval::fixed(tp(0), tp(1))),
            ],
            IntervalSet::from_ranges([(tp(0), tp(1)), (tp(5), tp(9))]),
        )
        .unwrap();
        let f = measure_relation(&r);
        assert_eq!(f.tuples, 2);
        assert_eq!(f.max_rt_cardinality, 2);
        assert!(f.ongoing_over_fixed() > 1.0);
        assert!(f.avg_rt_bytes() >= 29.0);
    }
}
