//! The write-ahead log: every catalog state change is one checksummed,
//! fsynced record appended here *before* it becomes visible.
//!
//! Record kinds:
//!
//! * [`WalRecord::Commit`] — an O(delta) publication: the journal of
//!   physical store mutations ([`JournalOp`]) a `modify_table` closure
//!   performed on its fork. Replay applies the ops to the table's
//!   recovered store; layout-changing folds are O(1) markers re-derived
//!   deterministically, so commit records are sized by rows *touched*,
//!   never by table size.
//! * [`WalRecord::TableState`] — a full physical description of one table
//!   (schema, indexed columns, chunk-file references, overlay deltas).
//!   Written for `create_table`/`put_table` and for publications whose
//!   closure replaced the relation wholesale (severing the journal). The
//!   chunk files it references are written and fsynced *first*, so a
//!   surviving record only ever points at complete files.
//! * [`WalRecord::DropTable`] — the table was dropped.
//!
//! Framing (little-endian):
//!
//! ```text
//! [body len u32][crc32(body) u32][body: seq u64 ++ payload]
//! ```
//!
//! Sequence numbers increase monotonically across the database's life and
//! survive checkpoints; recovery skips records at or below the manifest's
//! LSN (they are already folded into it — a crash between manifest
//! publication and WAL truncation must not double-apply).
//!
//! [`scan`] distinguishes the two failure modes the recovery contract
//! cares about: an *incomplete* final record (frame or body cut short —
//! the signature of a crash mid-append) ends the scan cleanly as a
//! [`WalTail::Torn`] tail the caller truncates away, while a *complete*
//! record whose checksum or structure is wrong surfaces as
//! [`EngineError::CorruptStorage`] — damage is never silently dropped.

use crate::error::{EngineError, Result};
use crate::storage::checksum::crc32;
use crate::storage::codec::{decode_tuple, encode_tuple};
use crate::storage::vfs::{with_retry, with_retry_counted, DiskError, Vfs};
use bytes::{Buf, BufMut};
use ongoing_relation::{Attribute, JournalOp, Schema, Tuple, ValueType};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One sealed chunk in a [`TableState`]: the id of the chunk file holding
/// its base rows, the base row count, and the overlay delta inline.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkEntry {
    /// Chunk file id (`chunks/<id>.odc`).
    pub file: u64,
    /// Base rows in the chunk file — validated against it on load.
    pub base_len: usize,
    /// Overlay delta: base offset → replacement rows (empty = tombstone).
    pub overlay: BTreeMap<usize, Vec<Tuple>>,
}

/// A full physical description of one table — the payload of
/// [`WalRecord::TableState`] and of every manifest entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TableState {
    /// Table name.
    pub name: String,
    /// The schema.
    pub schema: Schema,
    /// Columns carrying a keyed qualification index.
    pub indexed: Vec<usize>,
    /// The sealed chunks, in storage order.
    pub chunks: Vec<ChunkEntry>,
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Full physical state of a table (create/replace/wholesale rebuild).
    TableState(TableState),
    /// An O(delta) publication: replay `ops` against the table's store.
    Commit {
        /// The published table.
        table: String,
        /// The journaled physical mutations, in order.
        ops: Vec<JournalOp>,
    },
    /// The table was dropped.
    DropTable {
        /// The dropped table.
        table: String,
    },
}

const TAG_TABLE_STATE: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_DROP: u8 = 3;

const OP_APPEND: u8 = 0;
const OP_EDITS: u8 = 1;
const OP_SEAL: u8 = 2;
const OP_COMPACT: u8 = 3;
const OP_COMPACT_RUNS: u8 = 4;
const OP_CREATE_KEY_INDEX: u8 = 5;

fn type_tag(ty: ValueType) -> u8 {
    match ty {
        ValueType::Int => 0,
        ValueType::Str => 1,
        ValueType::Bool => 2,
        ValueType::Time => 3,
        ValueType::Span => 4,
        ValueType::OngoingPoint => 5,
        ValueType::OngoingInterval => 6,
        ValueType::OngoingInt => 7,
    }
}

fn tag_type(tag: u8) -> Result<ValueType> {
    Ok(match tag {
        0 => ValueType::Int,
        1 => ValueType::Str,
        2 => ValueType::Bool,
        3 => ValueType::Time,
        4 => ValueType::Span,
        5 => ValueType::OngoingPoint,
        6 => ValueType::OngoingInterval,
        7 => ValueType::OngoingInt,
        t => return Err(corrupt(format!("unknown attribute type tag {t}"))),
    })
}

fn corrupt(msg: impl Into<String>) -> EngineError {
    EngineError::CorruptStorage(msg.into())
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(corrupt(format!("truncated {what}")))
    } else {
        Ok(())
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    need(buf, 4, "string length")?;
    let len = buf.get_u32_le() as usize;
    need(buf, len, "string")?;
    let raw = buf[..len].to_vec();
    buf.advance(len);
    String::from_utf8(raw).map_err(|_| corrupt("invalid utf-8 string"))
}

fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    let bytes = encode_tuple(t);
    buf.put_u32_le(bytes.len() as u32);
    buf.put_slice(&bytes);
}

fn get_tuple(buf: &mut &[u8]) -> Result<Tuple> {
    need(buf, 4, "tuple length")?;
    let len = buf.get_u32_le() as usize;
    need(buf, len, "tuple")?;
    let t = decode_tuple(&buf[..len]).map_err(|e| corrupt(format!("tuple: {e}")))?;
    buf.advance(len);
    Ok(t)
}

fn put_overlay(buf: &mut Vec<u8>, overlay: &BTreeMap<usize, Vec<Tuple>>) {
    buf.put_u32_le(overlay.len() as u32);
    for (&off, rows) in overlay {
        buf.put_u32_le(off as u32);
        buf.put_u32_le(rows.len() as u32);
        for t in rows {
            put_tuple(buf, t);
        }
    }
}

fn get_overlay(buf: &mut &[u8]) -> Result<BTreeMap<usize, Vec<Tuple>>> {
    need(buf, 4, "overlay")?;
    let n = buf.get_u32_le() as usize;
    let mut overlay = BTreeMap::new();
    for _ in 0..n {
        need(buf, 8, "overlay entry")?;
        let off = buf.get_u32_le() as usize;
        let rows = buf.get_u32_le() as usize;
        let mut reps = Vec::with_capacity(rows);
        for _ in 0..rows {
            reps.push(get_tuple(buf)?);
        }
        overlay.insert(off, reps);
    }
    Ok(overlay)
}

/// Encodes a [`TableState`] payload (shared by WAL records and the
/// manifest).
pub fn put_table_state(buf: &mut Vec<u8>, state: &TableState) {
    put_str(buf, &state.name);
    buf.put_u16_le(state.schema.len() as u16);
    for attr in state.schema.attrs() {
        put_str(buf, &attr.name);
        buf.put_u8(type_tag(attr.ty));
    }
    buf.put_u16_le(state.indexed.len() as u16);
    for &col in &state.indexed {
        buf.put_u32_le(col as u32);
    }
    buf.put_u32_le(state.chunks.len() as u32);
    for c in &state.chunks {
        buf.put_u64_le(c.file);
        buf.put_u32_le(c.base_len as u32);
        put_overlay(buf, &c.overlay);
    }
}

/// Decodes a [`TableState`] payload.
pub fn get_table_state(buf: &mut &[u8]) -> Result<TableState> {
    let name = get_str(buf)?;
    need(buf, 2, "schema")?;
    let nattrs = buf.get_u16_le() as usize;
    let mut attrs = Vec::with_capacity(nattrs);
    for _ in 0..nattrs {
        let attr_name = get_str(buf)?;
        need(buf, 1, "attribute type")?;
        attrs.push(Attribute::new(attr_name, tag_type(buf.get_u8())?));
    }
    need(buf, 2, "indexed columns")?;
    let nidx = buf.get_u16_le() as usize;
    let mut indexed = Vec::with_capacity(nidx);
    for _ in 0..nidx {
        need(buf, 4, "indexed column")?;
        indexed.push(buf.get_u32_le() as usize);
    }
    need(buf, 4, "chunk list")?;
    let nchunks = buf.get_u32_le() as usize;
    let mut chunks = Vec::with_capacity(nchunks);
    for _ in 0..nchunks {
        need(buf, 12, "chunk entry")?;
        let file = buf.get_u64_le();
        let base_len = buf.get_u32_le() as usize;
        let overlay = get_overlay(buf)?;
        chunks.push(ChunkEntry {
            file,
            base_len,
            overlay,
        });
    }
    Ok(TableState {
        name,
        schema: Schema::new(attrs),
        indexed,
        chunks,
    })
}

fn put_op(buf: &mut Vec<u8>, op: &JournalOp) {
    match op {
        JournalOp::Append(t) => {
            buf.put_u8(OP_APPEND);
            put_tuple(buf, t);
        }
        JournalOp::Edits(entries) => {
            buf.put_u8(OP_EDITS);
            buf.put_u32_le(entries.len() as u32);
            for (ci, off, rows, touched) in entries {
                buf.put_u32_le(*ci as u32);
                buf.put_u32_le(*off as u32);
                buf.put_u64_le(*touched);
                buf.put_u32_le(rows.len() as u32);
                for t in rows {
                    put_tuple(buf, t);
                }
            }
        }
        JournalOp::Seal => buf.put_u8(OP_SEAL),
        JournalOp::Compact => buf.put_u8(OP_COMPACT),
        JournalOp::CompactRuns => buf.put_u8(OP_COMPACT_RUNS),
        JournalOp::CreateKeyIndex(col) => {
            buf.put_u8(OP_CREATE_KEY_INDEX);
            buf.put_u32_le(*col as u32);
        }
    }
}

fn get_op(buf: &mut &[u8]) -> Result<JournalOp> {
    need(buf, 1, "journal op")?;
    Ok(match buf.get_u8() {
        OP_APPEND => JournalOp::Append(get_tuple(buf)?),
        OP_EDITS => {
            need(buf, 4, "edit plan")?;
            let n = buf.get_u32_le() as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                need(buf, 20, "edit entry")?;
                let ci = buf.get_u32_le() as usize;
                let off = buf.get_u32_le() as usize;
                let touched = buf.get_u64_le();
                let nrows = buf.get_u32_le() as usize;
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    rows.push(get_tuple(buf)?);
                }
                entries.push((ci, off, rows, touched));
            }
            JournalOp::Edits(entries)
        }
        OP_SEAL => JournalOp::Seal,
        OP_COMPACT => JournalOp::Compact,
        OP_COMPACT_RUNS => JournalOp::CompactRuns,
        OP_CREATE_KEY_INDEX => {
            need(buf, 4, "index column")?;
            JournalOp::CreateKeyIndex(buf.get_u32_le() as usize)
        }
        t => return Err(corrupt(format!("unknown journal op tag {t}"))),
    })
}

/// Encodes a record payload (without frame or sequence number).
pub fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match rec {
        WalRecord::TableState(state) => {
            buf.put_u8(TAG_TABLE_STATE);
            put_table_state(&mut buf, state);
        }
        WalRecord::Commit { table, ops } => {
            buf.put_u8(TAG_COMMIT);
            put_str(&mut buf, table);
            buf.put_u32_le(ops.len() as u32);
            for op in ops {
                put_op(&mut buf, op);
            }
        }
        WalRecord::DropTable { table } => {
            buf.put_u8(TAG_DROP);
            put_str(&mut buf, table);
        }
    }
    buf
}

/// Decodes a record payload.
pub fn decode_payload(mut buf: &[u8]) -> Result<WalRecord> {
    need(&buf, 1, "record tag")?;
    let tag = buf.get_u8();
    let rec = match tag {
        TAG_TABLE_STATE => WalRecord::TableState(get_table_state(&mut buf)?),
        TAG_COMMIT => {
            let table = get_str(&mut buf)?;
            need(&buf, 4, "op count")?;
            let n = buf.get_u32_le() as usize;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(get_op(&mut buf)?);
            }
            WalRecord::Commit { table, ops }
        }
        TAG_DROP => WalRecord::DropTable {
            table: get_str(&mut buf)?,
        },
        t => return Err(corrupt(format!("unknown record tag {t}"))),
    };
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after record payload"));
    }
    Ok(rec)
}

/// How the log ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The last record is complete.
    Clean,
    /// The log ends in an incomplete record starting at this offset — a
    /// crash cut an append short. Recovery truncates to the offset.
    Torn {
        /// Byte offset of the first incomplete record.
        at: u64,
    },
}

/// One scanned record: `(sequence number, end offset, record)`. The end
/// offset is the byte position just past the record's frame — the durable
/// prefix containing it.
pub type ScannedRecord = (u64, u64, WalRecord);

/// Scans a WAL image: every complete record in order, plus how the log
/// ends. A complete record that fails its checksum or does not decode is
/// [`EngineError::CorruptStorage`] — only an *incomplete* trailing record
/// is reported (and tolerated) as a torn tail.
pub fn scan_bytes(raw: &[u8]) -> Result<(Vec<ScannedRecord>, WalTail)> {
    let mut records = Vec::new();
    let mut off = 0usize;
    while off < raw.len() {
        let rest = &raw[off..];
        if rest.len() < 8 {
            return Ok((records, WalTail::Torn { at: off as u64 }));
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let stored = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > rest.len() - 8 {
            // The frame promises more bytes than the file holds: an
            // append the crash cut short (or a length field clobbered so
            // badly the distinction is unknowable). Torn either way.
            return Ok((records, WalTail::Torn { at: off as u64 }));
        }
        let body = &rest[8..8 + len];
        if crc32(body) != stored {
            return Err(corrupt(format!(
                "wal record at offset {off} failed its checksum"
            )));
        }
        if len < 8 {
            return Err(corrupt(format!("wal record at offset {off} too short")));
        }
        let seq = u64::from_le_bytes(body[..4 + 4].try_into().expect("8 bytes"));
        let rec = decode_payload(&body[8..])
            .map_err(|e| corrupt(format!("wal record at offset {off}: {e}")))?;
        off += 8 + len;
        records.push((seq, off as u64, rec));
    }
    Ok((records, WalTail::Clean))
}

/// Reads and scans the WAL at `path`, retrying transient read failures; a
/// missing file is an empty log.
pub fn scan(vfs: &dyn Vfs, path: &Path) -> Result<(Vec<ScannedRecord>, WalTail)> {
    let raw = match with_retry(|| vfs.read(path), || Ok(())) {
        Ok(raw) => raw,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    scan_bytes(&raw)
}

/// Append handle for the WAL file.
#[derive(Debug)]
pub struct WalWriter {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    len: u64,
    next_seq: u64,
    /// Transient append faults absorbed by retrying since open —
    /// monotone, read by the observability layer to emit
    /// `wal_fault_retry` events.
    absorbed_retries: u64,
}

impl WalWriter {
    /// Opens (creating if absent) the WAL at `path` for appending. `len`
    /// must be the verified length of the intact prefix (the caller
    /// truncates a torn tail first); `next_seq` the next sequence number
    /// to issue.
    pub fn open(vfs: Arc<dyn Vfs>, path: &Path, len: u64, next_seq: u64) -> Result<WalWriter> {
        // Materialize the file so later appends and syncs find it (an
        // empty append is idempotent, so transient failures just retry).
        with_retry(|| vfs.append(path, &[]), || Ok(())).map_err(DiskError::Io)?;
        Ok(WalWriter {
            vfs,
            path: path.to_path_buf(),
            len,
            next_seq,
            absorbed_retries: 0,
        })
    }

    /// Transient append faults absorbed by retrying since open.
    pub fn absorbed_retries(&self) -> u64 {
        self.absorbed_retries
    }

    /// Bytes in the log (the intact prefix plus everything appended since).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one record, optionally fsyncing — the durability point of
    /// every commit. A transient write failure is retried after
    /// truncating the log back to its pre-append length, so a short write
    /// can never leave garbage mid-log; a failed fsync comes back as
    /// [`DiskError::SyncFailed`], which the durable layer fails stop on.
    /// Returns `(sequence number, frame bytes)`.
    pub fn append(
        &mut self,
        rec: &WalRecord,
        fsync: bool,
    ) -> std::result::Result<(u64, u64), DiskError> {
        let seq = self.next_seq;
        let payload = encode_payload(rec);
        let mut body = Vec::with_capacity(8 + payload.len());
        body.put_u64_le(seq);
        body.put_slice(&payload);
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.put_u32_le(body.len() as u32);
        frame.put_u32_le(crc32(&body));
        frame.put_slice(&body);
        let (vfs, path, len) = (&self.vfs, &self.path, self.len);
        let (_, attempts) = with_retry_counted(
            || vfs.append(path, &frame),
            // A failed attempt may have appended a partial frame; cut the
            // log back to the last durable record before trying again.
            || vfs.truncate(path, len),
        )
        .map_err(DiskError::Io)?;
        self.absorbed_retries += u64::from(attempts - 1);
        if fsync {
            self.vfs.sync(&self.path).map_err(DiskError::SyncFailed)?;
        }
        self.next_seq += 1;
        self.len += frame.len() as u64;
        Ok((seq, frame.len() as u64))
    }

    /// Truncates the log to zero bytes — the post-checkpoint reset. The
    /// sequence counter keeps running: records folded into the manifest
    /// stay strictly below every future record's number.
    pub fn reset(&mut self) -> std::result::Result<(), DiskError> {
        let (vfs, path) = (&self.vfs, &self.path);
        with_retry(|| vfs.truncate(path, 0), || Ok(())).map_err(DiskError::Io)?;
        self.vfs.sync(&self.path).map_err(DiskError::SyncFailed)?;
        self.len = 0;
        Ok(())
    }
}

/// Truncates the file at `path` to `len` bytes — how recovery removes a
/// torn tail.
pub fn truncate_file(vfs: &dyn Vfs, path: &Path, len: u64) -> Result<()> {
    with_retry(|| vfs.truncate(path, len), || Ok(()))?;
    vfs.sync(path)
        .map_err(|e| EngineError::Io(format!("fsync failed: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_relation::Value;

    fn t(x: i64) -> Tuple {
        Tuple::base(vec![Value::Int(x)])
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::TableState(TableState {
                name: "T".into(),
                schema: Schema::builder().int("K").str("S").interval("VT").build(),
                indexed: vec![0],
                chunks: vec![ChunkEntry {
                    file: 7,
                    base_len: 3,
                    overlay: BTreeMap::from([(1usize, vec![t(10), t(11)]), (2, vec![])]),
                }],
            }),
            WalRecord::Commit {
                table: "T".into(),
                ops: vec![
                    JournalOp::Append(t(1)),
                    JournalOp::Edits(vec![(0, 2, vec![t(5)], 1), (1, 0, vec![], 2)]),
                    JournalOp::Seal,
                    JournalOp::Compact,
                    JournalOp::CompactRuns,
                    JournalOp::CreateKeyIndex(2),
                ],
            },
            WalRecord::DropTable { table: "T".into() },
        ]
    }

    #[test]
    fn payloads_round_trip() {
        for rec in sample_records() {
            let buf = encode_payload(&rec);
            assert_eq!(decode_payload(&buf).unwrap(), rec);
        }
    }

    fn vfs() -> Arc<dyn Vfs> {
        Arc::new(crate::storage::vfs::RealFs)
    }

    #[test]
    fn writer_and_scan_round_trip() {
        let dir = crate::storage::fault::TempDir::new("wal-roundtrip");
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::open(vfs(), &path, 0, 1).unwrap();
        let mut ends = Vec::new();
        for rec in sample_records() {
            let (_, bytes) = w.append(&rec, true).unwrap();
            assert!(bytes > 0);
            ends.push(w.len());
        }
        let (records, tail) = scan(&crate::storage::vfs::RealFs, &path).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records.len(), 3);
        assert_eq!(
            records.iter().map(|(s, _, _)| *s).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(records.iter().map(|(_, e, _)| *e).collect::<Vec<_>>(), ends);
        assert_eq!(
            records.into_iter().map(|(_, _, r)| r).collect::<Vec<_>>(),
            sample_records()
        );
    }

    #[test]
    fn every_truncation_is_a_clean_torn_tail() {
        let dir = crate::storage::fault::TempDir::new("wal-torn");
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::open(vfs(), &path, 0, 1).unwrap();
        let mut ends = vec![0u64];
        for rec in sample_records() {
            w.append(&rec, false).unwrap();
            ends.push(w.len());
        }
        let raw = std::fs::read(&path).unwrap();
        for cut in 0..raw.len() {
            let (records, tail) = scan_bytes(&raw[..cut]).unwrap();
            // The surviving records are exactly the complete prefix.
            let complete = ends.iter().filter(|&&e| e <= cut as u64).count() - 1;
            assert_eq!(records.len(), complete, "cut at {cut}");
            if (cut as u64) == ends[complete] {
                assert_eq!(tail, WalTail::Clean, "cut at {cut}");
            } else {
                assert_eq!(tail, WalTail::Torn { at: ends[complete] }, "cut at {cut}");
            }
        }
    }

    #[test]
    fn complete_record_damage_is_corruption() {
        let dir = crate::storage::fault::TempDir::new("wal-corrupt");
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::open(vfs(), &path, 0, 1).unwrap();
        for rec in sample_records() {
            w.append(&rec, false).unwrap();
        }
        let raw = std::fs::read(&path).unwrap();
        // Flip a payload byte inside the *first* record: mid-log damage.
        let mut bad = raw.clone();
        bad[20] ^= 0x01;
        assert!(matches!(
            scan_bytes(&bad),
            Err(EngineError::CorruptStorage(_))
        ));
        // Flip a payload byte of the *last* record: still a complete
        // record, still corruption (torn means incomplete, not wrong).
        let mut bad = raw.clone();
        let last = bad.len() - 3;
        bad[last] ^= 0x01;
        assert!(matches!(
            scan_bytes(&bad),
            Err(EngineError::CorruptStorage(_))
        ));
    }
}
