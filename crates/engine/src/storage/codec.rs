//! Binary tuple codec.
//!
//! Serializes tuples into the byte layout described in
//! [`super::layout`] so relations can be stored in heap pages
//! ([`super::page`]). The codec is self-describing per value (a 1-byte tag
//! precedes each payload) and round-trips exactly.
//!
//! Time points are stored as full 8-byte ticks (the 4-byte date figure in
//! the *layout model* mirrors PostgreSQL's `date`; the wire codec keeps the
//! full i64 so both granularities — dates and microsecond timestamps —
//! round-trip losslessly).

use crate::error::{EngineError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ongoing_core::{IntervalSet, OngoingInt, OngoingInterval, OngoingPoint, TimePoint};
use ongoing_relation::{Tuple, Value};

const TAG_INT: u8 = 0;
const TAG_STR: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_TIME: u8 = 3;
const TAG_SPAN: u8 = 4;
const TAG_POINT: u8 = 5;
const TAG_INTERVAL: u8 = 6;
const TAG_ONGOING_INT: u8 = 7;

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Int(x) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*x);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(u8::from(*b));
        }
        Value::Time(t) => {
            buf.put_u8(TAG_TIME);
            buf.put_i64_le(t.ticks());
        }
        Value::Span(s, e) => {
            buf.put_u8(TAG_SPAN);
            buf.put_i64_le(s.ticks());
            buf.put_i64_le(e.ticks());
        }
        Value::Point(p) => {
            buf.put_u8(TAG_POINT);
            buf.put_i64_le(p.a().ticks());
            buf.put_i64_le(p.b().ticks());
        }
        Value::Interval(i) => {
            buf.put_u8(TAG_INTERVAL);
            buf.put_i64_le(i.ts().a().ticks());
            buf.put_i64_le(i.ts().b().ticks());
            buf.put_i64_le(i.te().a().ticks());
            buf.put_i64_le(i.te().b().ticks());
        }
        Value::Count(c) => {
            buf.put_u8(TAG_ONGOING_INT);
            let pieces: Vec<_> = c.pieces().collect();
            buf.put_u32_le(pieces.len() as u32);
            for (start, coef, offset) in pieces {
                buf.put_i64_le(start.ticks());
                buf.put_i64_le(coef);
                buf.put_i64_le(offset);
            }
        }
    }
}

fn get_value(buf: &mut impl Buf) -> Result<Value> {
    if buf.remaining() < 1 {
        return Err(EngineError::Storage("truncated value".into()));
    }
    let tag = buf.get_u8();
    let need = |buf: &mut dyn Buf, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(EngineError::Storage("truncated value payload".into()))
        } else {
            Ok(())
        }
    };
    match tag {
        TAG_INT => {
            need(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        TAG_STR => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let mut raw = vec![0u8; len];
            buf.copy_to_slice(&mut raw);
            let s = String::from_utf8(raw)
                .map_err(|_| EngineError::Storage("invalid utf-8 string".into()))?;
            Ok(Value::str(&s))
        }
        TAG_BOOL => {
            need(buf, 1)?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        TAG_TIME => {
            need(buf, 8)?;
            Ok(Value::Time(TimePoint::new(buf.get_i64_le())))
        }
        TAG_SPAN => {
            need(buf, 16)?;
            let s = TimePoint::new(buf.get_i64_le());
            let e = TimePoint::new(buf.get_i64_le());
            Ok(Value::Span(s, e))
        }
        TAG_POINT => {
            need(buf, 16)?;
            let a = TimePoint::new(buf.get_i64_le());
            let b = TimePoint::new(buf.get_i64_le());
            let p = OngoingPoint::new(a, b).map_err(|e| EngineError::Storage(e.to_string()))?;
            Ok(Value::Point(p))
        }
        TAG_INTERVAL => {
            need(buf, 32)?;
            let tsa = TimePoint::new(buf.get_i64_le());
            let tsb = TimePoint::new(buf.get_i64_le());
            let tea = TimePoint::new(buf.get_i64_le());
            let teb = TimePoint::new(buf.get_i64_le());
            let ts =
                OngoingPoint::new(tsa, tsb).map_err(|e| EngineError::Storage(e.to_string()))?;
            let te =
                OngoingPoint::new(tea, teb).map_err(|e| EngineError::Storage(e.to_string()))?;
            Ok(Value::Interval(OngoingInterval::new(ts, te)))
        }
        TAG_ONGOING_INT => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut pieces = Vec::with_capacity(n);
            for _ in 0..n {
                need(buf, 24)?;
                let start = TimePoint::new(buf.get_i64_le());
                let coef = buf.get_i64_le();
                let offset = buf.get_i64_le();
                pieces.push((start, coef, offset));
            }
            let c = OngoingInt::from_pieces(pieces)
                .ok_or_else(|| EngineError::Storage("malformed ongoing integer".into()))?;
            Ok(Value::Count(c))
        }
        t => Err(EngineError::Storage(format!("unknown value tag {t}"))),
    }
}

/// Encodes a tuple (values + `RT`) into bytes.
pub fn encode_tuple(t: &Tuple) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u16_le(t.arity() as u16);
    for v in t.values() {
        put_value(&mut buf, v);
    }
    let rt = t.rt();
    buf.put_u32_le(rt.cardinality() as u32);
    for r in rt.ranges() {
        buf.put_i64_le(r.ts().ticks());
        buf.put_i64_le(r.te().ticks());
    }
    buf.freeze()
}

/// Decodes a tuple encoded by [`encode_tuple`].
pub fn decode_tuple(mut buf: &[u8]) -> Result<Tuple> {
    if buf.remaining() < 2 {
        return Err(EngineError::Storage("truncated tuple".into()));
    }
    let arity = buf.get_u16_le() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(get_value(&mut buf)?);
    }
    if buf.remaining() < 4 {
        return Err(EngineError::Storage("truncated RT".into()));
    }
    let n = buf.get_u32_le() as usize;
    let mut ranges = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 16 {
            return Err(EngineError::Storage("truncated RT range".into()));
        }
        let ts = TimePoint::new(buf.get_i64_le());
        let te = TimePoint::new(buf.get_i64_le());
        ranges.push((ts, te));
    }
    Ok(Tuple::with_rt(values, IntervalSet::from_ranges(ranges)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::time::tp;

    fn roundtrip(t: &Tuple) {
        let bytes = encode_tuple(t);
        let back = decode_tuple(&bytes).unwrap();
        assert_eq!(&back, t);
    }

    #[test]
    fn all_value_kinds_round_trip() {
        let t = Tuple::with_rt(
            vec![
                Value::Int(-42),
                Value::str("héllo wörld"),
                Value::Bool(true),
                Value::Time(tp(123)),
                Value::Span(tp(1), tp(9)),
                Value::Point(OngoingPoint::now()),
                Value::Interval(OngoingInterval::from_until_now(tp(7))),
            ],
            IntervalSet::from_ranges([(tp(0), tp(5)), (tp(10), TimePoint::POS_INF)]),
        );
        roundtrip(&t);
    }

    #[test]
    fn empty_string_and_full_rt() {
        let t = Tuple::base(vec![Value::str("")]);
        roundtrip(&t);
    }

    #[test]
    fn limits_round_trip() {
        let t = Tuple::base(vec![
            Value::Time(TimePoint::NEG_INF),
            Value::Time(TimePoint::POS_INF),
            Value::Point(OngoingPoint::growing(tp(3))),
            Value::Point(OngoingPoint::limited(tp(3))),
        ]);
        roundtrip(&t);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let t = Tuple::base(vec![Value::Int(7)]);
        let bytes = encode_tuple(&t);
        for cut in 0..bytes.len() {
            assert!(
                decode_tuple(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn garbage_tag_is_an_error() {
        let mut raw = encode_tuple(&Tuple::base(vec![Value::Int(7)])).to_vec();
        raw[2] = 99; // clobber the value tag
        assert!(decode_tuple(&raw).is_err());
    }

    #[test]
    fn invalid_point_is_an_error() {
        // Hand-craft a point with a > b.
        let mut buf = BytesMut::new();
        buf.put_u16_le(1);
        buf.put_u8(5); // TAG_POINT
        buf.put_i64_le(9);
        buf.put_i64_le(3);
        buf.put_u32_le(0);
        assert!(decode_tuple(&buf).is_err());
    }
}
