//! Fault-injection helpers for crash-recovery and transient-I/O testing.
//!
//! A crash in this engine's durability model is fully characterised by the
//! byte length of the WAL that survives: chunk files and the manifest are
//! written and fsynced *before* the record referencing them, and the WAL
//! is pure append, so killing the process at an arbitrary instant leaves
//! (a) a WAL prefix of arbitrary byte length and (b) possibly some
//! orphaned-but-complete chunk files. [`FaultFs`] simulates exactly that:
//! snapshot a database directory, truncate its WAL to any byte offset, or
//! flip bytes to model media corruption.
//!
//! [`FaultVfs`] models the *other* production failure mode — disks that
//! fail while the process lives: a chosen [`Vfs`] call errors transiently
//! (retriable), permanently (every call from there on fails), writes
//! short, or fails its fsync. The transient-fault sweep in
//! `tests/recovery.rs` drives a full workload with every single call site
//! failed each way.
//!
//! [`TempDir`] gives every test its own scratch directory and removes it
//! on drop. Cleanup is panic-safe across *processes*: each directory name
//! carries the creating pid, and every `TempDir::new` sweeps directories
//! whose process is gone — so even an aborting test run leaves litter only
//! until the next run (and the CI hygiene step would catch a sweep
//! regression).

use crate::storage::vfs::{RealFs, Vfs};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

/// Removes scratch directories left by `ongoingdb` test processes that no
/// longer exist — the panic/abort safety net behind [`TempDir`]'s
/// drop-based cleanup. Returns how many stale directories were removed.
pub fn sweep_stale_temp_dirs() -> usize {
    let tmp = std::env::temp_dir();
    let Ok(entries) = fs::read_dir(&tmp) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        // Layout: ongoingdb-<label>-<pid>-<n>.
        let Some(rest) = name.strip_prefix("ongoingdb-") else {
            continue;
        };
        let mut parts = rest.rsplitn(3, '-');
        let _n = parts.next();
        let Some(pid) = parts.next().and_then(|p| p.parse::<u32>().ok()) else {
            continue;
        };
        if pid == std::process::id() || process_alive(pid) {
            continue;
        }
        if fs::remove_dir_all(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(target_os = "linux")]
fn process_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(not(target_os = "linux"))]
fn process_alive(_pid: u32) -> bool {
    // Without a portable liveness probe, never reclaim another process's
    // directories — drop-based cleanup still covers the common case.
    true
}

impl TempDir {
    /// Creates a fresh, uniquely named directory tagged with `label`,
    /// first sweeping away directories leaked by dead test processes.
    pub fn new(label: &str) -> TempDir {
        sweep_stale_temp_dirs();
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("ongoingdb-{label}-{}-{n}", std::process::id()));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Directory-level fault injection: crash simulation by copy + mutilate.
pub struct FaultFs;

impl FaultFs {
    /// Recursively copies `src` into `dst` (created fresh) — the
    /// "snapshot at the instant of the crash" a recovery test reopens.
    pub fn clone_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dst)?;
        for entry in fs::read_dir(src)? {
            let entry = entry?;
            let to = dst.join(entry.file_name());
            if entry.file_type()?.is_dir() {
                Self::clone_dir(&entry.path(), &to)?;
            } else {
                fs::copy(entry.path(), &to)?;
            }
        }
        Ok(())
    }

    /// Truncates the file at `path` to `len` bytes — the canonical crash:
    /// an append cut short at an arbitrary byte boundary.
    pub fn truncate(path: &Path, len: u64) -> std::io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)
    }

    /// XOR-flips one byte of the file at `path` — media corruption, which
    /// recovery must *detect*, never silently absorb.
    pub fn flip_byte(path: &Path, offset: u64) -> std::io::Result<()> {
        let mut raw = fs::read(path)?;
        let i = offset as usize % raw.len().max(1);
        if !raw.is_empty() {
            raw[i] ^= 0x01;
        }
        fs::write(path, raw)
    }

    /// Byte length of the file at `path`.
    pub fn file_len(path: &Path) -> std::io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }
}

/// How an injected fault behaves once its call index comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail exactly that call; the retry (a fresh call) succeeds.
    Transient,
    /// Fail that call and every later one — the disk went bad for good.
    Permanent,
}

/// What the injected failure looks like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The call returns an error having done nothing.
    Error,
    /// A write/append persists only a prefix of the data, then errors —
    /// the torn state a power-cut mid-`write(2)` leaves. Non-write calls
    /// degrade to [`FaultMode::Error`].
    ShortWrite,
    /// `sync`/`sync_dir` report failure (the data may or may not be on
    /// disk — the fsyncgate scenario). Non-sync calls degrade to
    /// [`FaultMode::Error`].
    FailSync,
}

/// The kind of [`Vfs`] call, for fault-site classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `read` / `list`.
    Read,
    /// `write` / `append` / `truncate` / `rename` / `remove` /
    /// `create_dir_all`.
    Write,
    /// `sync` / `sync_dir`.
    Sync,
}

/// One armed fault.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Zero-based index (over all [`Vfs`] calls on this instance) of the
    /// first call to fail.
    pub at: u64,
    /// Transient (fails once) or permanent (fails from there on).
    pub kind: FaultKind,
    /// The failure's shape.
    pub mode: FaultMode,
}

/// A [`Vfs`] that counts every call and fails chosen ones — the
/// transient-I/O analogue of [`FaultFs`]'s crash snapshots.
///
/// Transient failures use `ErrorKind::Interrupted` (which the storage
/// layer's bounded-backoff retry clears); permanent ones use
/// `ErrorKind::Other` (never retried).
#[derive(Debug)]
pub struct FaultVfs {
    inner: RealFs,
    ops: AtomicU64,
    injected: AtomicU64,
    plan: Mutex<Option<FaultPlan>>,
    trace: Mutex<Vec<OpKind>>,
    tracing: bool,
}

impl FaultVfs {
    /// A pass-through instance that records the kind of every call —
    /// how a sweep enumerates the injection sites of a workload.
    pub fn tracing() -> FaultVfs {
        FaultVfs {
            inner: RealFs,
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            plan: Mutex::new(None),
            trace: Mutex::new(Vec::new()),
            tracing: true,
        }
    }

    /// An instance armed with one fault.
    pub fn with_fault(plan: FaultPlan) -> FaultVfs {
        FaultVfs {
            inner: RealFs,
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            plan: Mutex::new(Some(plan)),
            trace: Mutex::new(Vec::new()),
            tracing: false,
        }
    }

    /// Calls made so far.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// The recorded call kinds (tracing instances).
    pub fn trace(&self) -> Vec<OpKind> {
        self.trace.lock().expect("trace lock").clone()
    }

    /// Decides whether the current call (index allocated here) fails.
    /// Returns the mode to apply, if any.
    fn tick(&self, kind: OpKind) -> Option<FaultMode> {
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        if self.tracing {
            self.trace.lock().expect("trace lock").push(kind);
        }
        let plan = *self.plan.lock().expect("plan lock");
        let plan = plan?;
        let fire = match plan.kind {
            FaultKind::Transient => n == plan.at,
            FaultKind::Permanent => n >= plan.at,
        };
        if !fire {
            return None;
        }
        self.injected.fetch_add(1, Ordering::SeqCst);
        Some(plan.mode)
    }

    fn error(&self, what: &str) -> io::Error {
        let kind = match self.plan.lock().expect("plan lock").expect("armed").kind {
            FaultKind::Transient => io::ErrorKind::Interrupted,
            FaultKind::Permanent => io::ErrorKind::Other,
        };
        io::Error::new(kind, format!("injected fault: {what}"))
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.tick(OpKind::Read) {
            Some(_) => Err(self.error("read")),
            None => self.inner.read(path),
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.tick(OpKind::Write) {
            Some(FaultMode::ShortWrite) => {
                let _ = self.inner.write(path, &data[..data.len() / 2]);
                Err(self.error("short write"))
            }
            Some(_) => Err(self.error("write")),
            None => self.inner.write(path, data),
        }
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.tick(OpKind::Write) {
            Some(FaultMode::ShortWrite) => {
                let _ = self.inner.append(path, &data[..data.len() / 2]);
                Err(self.error("short append"))
            }
            Some(_) => Err(self.error("append")),
            None => self.inner.append(path, data),
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        match self.tick(OpKind::Sync) {
            Some(_) => Err(self.error("fsync")),
            None => self.inner.sync(path),
        }
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        match self.tick(OpKind::Sync) {
            Some(_) => Err(self.error("dir fsync")),
            None => self.inner.sync_dir(path),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.tick(OpKind::Write) {
            Some(_) => Err(self.error("truncate")),
            None => self.inner.truncate(path, len),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.tick(OpKind::Write) {
            Some(_) => Err(self.error("rename")),
            None => self.inner.rename(from, to),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.tick(OpKind::Write) {
            Some(_) => Err(self.error("remove")),
            None => self.inner.remove(path),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        match self.tick(OpKind::Read) {
            Some(_) => Err(self.error("list")),
            None => self.inner.list(dir),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.tick(OpKind::Write) {
            Some(_) => Err(self.error("create dir")),
            None => self.inner.create_dir_all(path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_is_removed_on_drop() {
        let path;
        {
            let dir = TempDir::new("selftest");
            path = dir.path().to_path_buf();
            fs::write(path.join("f"), b"x").unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn stale_dirs_of_dead_processes_are_swept() {
        // A directory naming a pid that cannot exist is reclaimed by the
        // next TempDir::new (pid_max keeps real pids far below u32::MAX).
        let stale = std::env::temp_dir().join("ongoingdb-stale-4294967295-0");
        fs::create_dir_all(&stale).unwrap();
        fs::write(stale.join("leak"), b"x").unwrap();
        let dir = TempDir::new("sweeper");
        if cfg!(target_os = "linux") {
            assert!(!stale.exists(), "stale dir of a dead pid must be swept");
        } else {
            let _ = fs::remove_dir_all(&stale);
        }
        drop(dir);
    }

    #[test]
    fn clone_truncate_flip() {
        let a = TempDir::new("fault-a");
        let b = TempDir::new("fault-b");
        fs::create_dir_all(a.path().join("sub")).unwrap();
        fs::write(a.path().join("f"), b"hello world").unwrap();
        fs::write(a.path().join("sub/g"), b"nested").unwrap();
        let dst = b.path().join("copy");
        FaultFs::clone_dir(a.path(), &dst).unwrap();
        assert_eq!(fs::read(dst.join("f")).unwrap(), b"hello world");
        assert_eq!(fs::read(dst.join("sub/g")).unwrap(), b"nested");

        FaultFs::truncate(&dst.join("f"), 5).unwrap();
        assert_eq!(fs::read(dst.join("f")).unwrap(), b"hello");
        assert_eq!(FaultFs::file_len(&dst.join("f")).unwrap(), 5);
        // The source is untouched.
        assert_eq!(fs::read(a.path().join("f")).unwrap(), b"hello world");

        FaultFs::flip_byte(&dst.join("f"), 1).unwrap();
        assert_eq!(fs::read(dst.join("f")).unwrap(), b"hdllo");
    }

    #[test]
    fn faultvfs_injects_at_the_chosen_call() {
        let dir = TempDir::new("faultvfs");
        let f = dir.path().join("f");
        let vfs = FaultVfs::with_fault(FaultPlan {
            at: 1,
            kind: FaultKind::Transient,
            mode: FaultMode::Error,
        });
        vfs.write(&f, b"ok").unwrap(); // call 0
        let e = vfs.read(&f).unwrap_err(); // call 1: injected
        assert_eq!(e.kind(), io::ErrorKind::Interrupted);
        assert_eq!(vfs.read(&f).unwrap(), b"ok"); // call 2: transient cleared
        assert_eq!(vfs.injected(), 1);
    }

    #[test]
    fn faultvfs_permanent_faults_stick() {
        let dir = TempDir::new("faultvfs-perm");
        let f = dir.path().join("f");
        let vfs = FaultVfs::with_fault(FaultPlan {
            at: 1,
            kind: FaultKind::Permanent,
            mode: FaultMode::Error,
        });
        vfs.write(&f, b"ok").unwrap();
        assert!(vfs.read(&f).is_err());
        assert!(vfs.read(&f).is_err(), "permanent faults persist");
        assert_eq!(
            vfs.read(&f).unwrap_err().kind(),
            io::ErrorKind::Other,
            "permanent faults are not retriable"
        );
    }

    #[test]
    fn faultvfs_short_write_persists_a_prefix() {
        let dir = TempDir::new("faultvfs-short");
        let f = dir.path().join("f");
        let vfs = FaultVfs::with_fault(FaultPlan {
            at: 0,
            kind: FaultKind::Transient,
            mode: FaultMode::ShortWrite,
        });
        assert!(vfs.append(&f, b"abcdef").is_err());
        assert_eq!(fs::read(&f).unwrap(), b"abc", "half the data landed");
    }

    #[test]
    fn faultvfs_traces_call_kinds() {
        let dir = TempDir::new("faultvfs-trace");
        let f = dir.path().join("f");
        let vfs = FaultVfs::tracing();
        vfs.write(&f, b"x").unwrap();
        vfs.sync(&f).unwrap();
        let _ = vfs.read(&f).unwrap();
        assert_eq!(vfs.trace(), vec![OpKind::Write, OpKind::Sync, OpKind::Read]);
    }
}
