//! Fault-injection helpers for crash-recovery testing.
//!
//! A crash in this engine's durability model is fully characterised by the
//! byte length of the WAL that survives: chunk files and the manifest are
//! written and fsynced *before* the record referencing them, and the WAL
//! is pure append, so killing the process at an arbitrary instant leaves
//! (a) a WAL prefix of arbitrary byte length and (b) possibly some
//! orphaned-but-complete chunk files. [`FaultFs`] simulates exactly that:
//! snapshot a database directory, truncate its WAL to any byte offset, or
//! flip bytes to model media corruption. [`TempDir`] gives every test its
//! own scratch directory and removes it on drop, so test runs leave no
//! litter behind.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh, uniquely named directory tagged with `label`.
    pub fn new(label: &str) -> TempDir {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("ongoingdb-{label}-{}-{n}", std::process::id()));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Directory-level fault injection: crash simulation by copy + mutilate.
pub struct FaultFs;

impl FaultFs {
    /// Recursively copies `src` into `dst` (created fresh) — the
    /// "snapshot at the instant of the crash" a recovery test reopens.
    pub fn clone_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dst)?;
        for entry in fs::read_dir(src)? {
            let entry = entry?;
            let to = dst.join(entry.file_name());
            if entry.file_type()?.is_dir() {
                Self::clone_dir(&entry.path(), &to)?;
            } else {
                fs::copy(entry.path(), &to)?;
            }
        }
        Ok(())
    }

    /// Truncates the file at `path` to `len` bytes — the canonical crash:
    /// an append cut short at an arbitrary byte boundary.
    pub fn truncate(path: &Path, len: u64) -> std::io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)
    }

    /// XOR-flips one byte of the file at `path` — media corruption, which
    /// recovery must *detect*, never silently absorb.
    pub fn flip_byte(path: &Path, offset: u64) -> std::io::Result<()> {
        let mut raw = fs::read(path)?;
        let i = offset as usize % raw.len().max(1);
        if !raw.is_empty() {
            raw[i] ^= 0x01;
        }
        fs::write(path, raw)
    }

    /// Byte length of the file at `path`.
    pub fn file_len(path: &Path) -> std::io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_is_removed_on_drop() {
        let path;
        {
            let dir = TempDir::new("selftest");
            path = dir.path().to_path_buf();
            fs::write(path.join("f"), b"x").unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn clone_truncate_flip() {
        let a = TempDir::new("fault-a");
        let b = TempDir::new("fault-b");
        fs::create_dir_all(a.path().join("sub")).unwrap();
        fs::write(a.path().join("f"), b"hello world").unwrap();
        fs::write(a.path().join("sub/g"), b"nested").unwrap();
        let dst = b.path().join("copy");
        FaultFs::clone_dir(a.path(), &dst).unwrap();
        assert_eq!(fs::read(dst.join("f")).unwrap(), b"hello world");
        assert_eq!(fs::read(dst.join("sub/g")).unwrap(), b"nested");

        FaultFs::truncate(&dst.join("f"), 5).unwrap();
        assert_eq!(fs::read(dst.join("f")).unwrap(), b"hello");
        assert_eq!(FaultFs::file_len(&dst.join("f")).unwrap(), 5);
        // The source is untouched.
        assert_eq!(fs::read(a.path().join("f")).unwrap(), b"hello world");

        FaultFs::flip_byte(&dst.join("f"), 1).unwrap();
        assert_eq!(fs::read(dst.join("f")).unwrap(), b"hdllo");
    }
}
