//! Slotted heap pages.
//!
//! A minimal PostgreSQL-style heap: fixed-size pages with a slot directory
//! growing from the front and tuple payloads growing from the back. A
//! [`HeapFile`] is an append-only sequence of pages with full-scan
//! iteration — exactly what the sequential scans of the evaluation queries
//! need from the storage substrate.

use crate::error::{EngineError, Result};
use crate::storage::codec::{decode_tuple, encode_tuple};
use ongoing_relation::Tuple;

/// Page size in bytes (PostgreSQL's default).
pub const PAGE_SIZE: usize = 8192;
const SLOT_BYTES: usize = 4; // u16 offset + u16 length
const PAGE_HEADER: usize = 4; // u16 slot count + u16 free-space pointer

/// A slotted page holding encoded tuples.
pub struct HeapPage {
    data: Box<[u8; PAGE_SIZE]>,
}

impl HeapPage {
    /// A fresh, empty page.
    pub fn new() -> Self {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        // Free-space pointer starts at the end of the page.
        data[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        HeapPage { data }
    }

    fn slot_count(&self) -> usize {
        u16::from_le_bytes([self.data[0], self.data[1]]) as usize
    }

    fn free_ptr(&self) -> usize {
        u16::from_le_bytes([self.data[2], self.data[3]]) as usize
    }

    fn set_slot_count(&mut self, n: usize) {
        self.data[0..2].copy_from_slice(&(n as u16).to_le_bytes());
    }

    fn set_free_ptr(&mut self, p: usize) {
        self.data[2..4].copy_from_slice(&(p as u16).to_le_bytes());
    }

    /// Free bytes remaining (accounting for the slot entry).
    pub fn free_space(&self) -> usize {
        let used_front = PAGE_HEADER + self.slot_count() * SLOT_BYTES;
        self.free_ptr().saturating_sub(used_front)
    }

    /// Tries to insert an encoded tuple; returns its slot number or `None`
    /// if the page is full.
    pub fn insert(&mut self, payload: &[u8]) -> Option<usize> {
        let need = payload.len() + SLOT_BYTES;
        if self.free_space() < need || payload.len() > u16::MAX as usize {
            return None;
        }
        let slot = self.slot_count();
        let start = self.free_ptr() - payload.len();
        self.data[start..start + payload.len()].copy_from_slice(payload);
        let slot_off = PAGE_HEADER + slot * SLOT_BYTES;
        self.data[slot_off..slot_off + 2].copy_from_slice(&(start as u16).to_le_bytes());
        self.data[slot_off + 2..slot_off + 4]
            .copy_from_slice(&(payload.len() as u16).to_le_bytes());
        self.set_slot_count(slot + 1);
        self.set_free_ptr(start);
        Some(slot)
    }

    /// Reads the payload of a slot.
    pub fn read(&self, slot: usize) -> Result<&[u8]> {
        if slot >= self.slot_count() {
            return Err(EngineError::Storage(format!("no slot {slot}")));
        }
        let slot_off = PAGE_HEADER + slot * SLOT_BYTES;
        let start = u16::from_le_bytes([self.data[slot_off], self.data[slot_off + 1]]) as usize;
        let len = u16::from_le_bytes([self.data[slot_off + 2], self.data[slot_off + 3]]) as usize;
        Ok(&self.data[start..start + len])
    }

    /// Number of tuples stored in this page.
    pub fn len(&self) -> usize {
        self.slot_count()
    }

    /// Is the page empty?
    pub fn is_empty(&self) -> bool {
        self.slot_count() == 0
    }
}

impl Default for HeapPage {
    fn default() -> Self {
        HeapPage::new()
    }
}

/// Location of a tuple in a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TupleId {
    /// Page number.
    pub page: usize,
    /// Slot within the page.
    pub slot: usize,
}

/// An append-only heap of pages.
#[derive(Default)]
pub struct HeapFile {
    pages: Vec<HeapPage>,
    tuples: usize,
}

impl HeapFile {
    /// An empty heap file.
    pub fn new() -> Self {
        HeapFile::default()
    }

    /// Appends a tuple, returning its location.
    pub fn insert(&mut self, t: &Tuple) -> Result<TupleId> {
        let payload = encode_tuple(t);
        if payload.len() + SLOT_BYTES > PAGE_SIZE - PAGE_HEADER {
            return Err(EngineError::Storage(format!(
                "tuple of {} bytes exceeds page capacity",
                payload.len()
            )));
        }
        if self
            .pages
            .last()
            .is_none_or(|p| p.free_space() < payload.len() + SLOT_BYTES)
        {
            self.pages.push(HeapPage::new());
        }
        let page = self.pages.len() - 1;
        let slot = self.pages[page]
            .insert(&payload)
            .expect("page checked for space");
        self.tuples += 1;
        Ok(TupleId { page, slot })
    }

    /// Fetches a tuple by location.
    pub fn fetch(&self, id: TupleId) -> Result<Tuple> {
        let page = self
            .pages
            .get(id.page)
            .ok_or_else(|| EngineError::Storage(format!("no page {}", id.page)))?;
        decode_tuple(page.read(id.slot)?)
    }

    /// Full sequential scan.
    pub fn scan(&self) -> impl Iterator<Item = Result<Tuple>> + '_ {
        self.pages
            .iter()
            .flat_map(|p| (0..p.len()).map(move |s| p.read(s).and_then(decode_tuple)))
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples
    }

    /// Is the heap empty?
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::time::tp;
    use ongoing_core::{IntervalSet, OngoingInterval};
    use ongoing_relation::Value;

    fn tuple(i: i64) -> Tuple {
        Tuple::with_rt(
            vec![
                Value::Int(i),
                Value::str(&format!("payload-{i}")),
                Value::Interval(OngoingInterval::from_until_now(tp(i))),
            ],
            IntervalSet::range(tp(i), tp(i + 100)),
        )
    }

    #[test]
    fn insert_fetch_round_trip() {
        let mut heap = HeapFile::new();
        let id = heap.insert(&tuple(7)).unwrap();
        assert_eq!(heap.fetch(id).unwrap(), tuple(7));
    }

    #[test]
    fn scan_returns_all_in_order() {
        let mut heap = HeapFile::new();
        for i in 0..500 {
            heap.insert(&tuple(i)).unwrap();
        }
        assert!(heap.page_count() > 1, "should spill to multiple pages");
        let all: Vec<Tuple> = heap.scan().map(|r| r.unwrap()).collect();
        assert_eq!(all.len(), 500);
        for (i, t) in all.iter().enumerate() {
            assert_eq!(t.value(0), &Value::Int(i as i64));
        }
    }

    #[test]
    fn oversized_tuple_is_rejected() {
        let mut heap = HeapFile::new();
        let big = Tuple::base(vec![Value::str(&"x".repeat(PAGE_SIZE))]);
        assert!(heap.insert(&big).is_err());
    }

    #[test]
    fn bad_fetch_is_an_error() {
        let heap = HeapFile::new();
        assert!(heap.fetch(TupleId { page: 0, slot: 0 }).is_err());
        let mut heap = HeapFile::new();
        heap.insert(&tuple(1)).unwrap();
        assert!(heap.fetch(TupleId { page: 0, slot: 5 }).is_err());
        assert!(heap.fetch(TupleId { page: 9, slot: 0 }).is_err());
    }

    #[test]
    fn page_free_space_decreases() {
        let mut page = HeapPage::new();
        let before = page.free_space();
        page.insert(b"hello").unwrap();
        assert!(page.free_space() < before);
        assert_eq!(page.read(0).unwrap(), b"hello");
    }

    #[test]
    fn page_rejects_when_full() {
        let mut page = HeapPage::new();
        let blob = vec![0u8; 1000];
        let mut n = 0;
        while page.insert(&blob).is_some() {
            n += 1;
        }
        assert!((7..=8).contains(&n), "8K page fits ~8 1K tuples, got {n}");
    }
}
