//! Storage substrate: byte layout model, tuple codec, and slotted heap
//! pages.

pub mod codec;
pub mod layout;
pub mod page;

pub use layout::{measure_relation, measure_tuple, RelationFootprint, TupleFootprint};
pub use page::{HeapFile, HeapPage, TupleId, PAGE_SIZE};
