//! Storage substrate: tuple codec, byte layout model, and the durability
//! stack (checksums, chunk files, write-ahead log, manifest, fault
//! injection, durable state).
//!
//! The durable layout and its crash-recovery contract are documented on
//! [`durable`]; the individual formats on [`wal`], [`chunkfile`] and
//! [`manifest`].

pub mod cache;
pub mod checksum;
pub mod chunkfile;
pub mod codec;
pub mod durable;
pub mod fault;
pub mod layout;
pub mod manifest;
pub mod vfs;
pub mod wal;

pub use cache::{CacheStats, ChunkCache};
pub use durable::{DurableOptions, DurableStats};
pub use fault::{FaultFs, FaultKind, FaultMode, FaultPlan, FaultVfs, OpKind, TempDir};
pub use layout::{measure_relation, measure_tuple, RelationFootprint, TupleFootprint};
pub use vfs::{DiskError, RealFs, Vfs};
