//! Memory-budgeted chunk cache: the [`ChunkPager`] behind out-of-core
//! tables.
//!
//! The cache pages sealed chunk files (`chunks/<id>.odc`) in on demand and
//! holds them under a byte budget, so a table several times larger than
//! the budget scans with bounded resident chunk bytes. Entries are charged
//! at their *file* size (deterministic — it depends only on the rows, not
//! on allocator layout) and evicted least-recently-used with a frequency
//! bias: entries that have proven themselves (more uses) outrank one-touch
//! scan traffic of the same age.
//!
//! **Pinning.** An entry whose `Arc` is held outside the cache — a scan's
//! transient pin, or a store version that parked the chunk — is never
//! evicted: dropping it from the map would not free the memory, and
//! keeping it at least lets other readers share the load. A working set of
//! pins larger than the budget is therefore allowed to overshoot; the
//! budget bounds what the *cache* retains beyond the pins, and scans that
//! pin one morsel at a time keep the overshoot to one chunk per worker.
//!
//! All counters (hits, misses, evictions, peak bytes) are deterministic
//! for a serial access sequence — they depend only on the order of loads,
//! never on timing.

use crate::error::{EngineError, Result};
use crate::obs::{EngineEvent, EventLog};
use crate::storage::chunkfile::decode_chunk;
use crate::storage::vfs::{with_retry, Vfs};
use ongoing_relation::{ChunkPager, PagerError, Tuple};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Counter snapshot of a [`ChunkCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Loads served from memory.
    pub hits: u64,
    /// Loads that had to read the chunk file.
    pub misses: u64,
    /// Entries dropped under budget pressure.
    pub evictions: u64,
    /// Bytes currently charged against the budget.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes`.
    pub peak_bytes: u64,
    /// Rows decoded from chunk files (cache misses only).
    pub rows_loaded: u64,
}

#[derive(Debug)]
struct Entry {
    data: Arc<[Tuple]>,
    /// Charge against the budget: the chunk's file size.
    bytes: u64,
    /// Logical clock value of the last load that touched this entry.
    last_used: u64,
    /// Loads served by this entry since admission.
    uses: u32,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<u64, Entry>,
    /// Logical access clock (one tick per load).
    tick: u64,
    stats: CacheStats,
    /// Optional event sink: evictions are recorded as
    /// [`EngineEvent::Eviction`] when the owning database attached its
    /// observability bundle.
    events: Option<Arc<EventLog>>,
}

/// Byte-budgeted, pin-aware cache over sealed chunk files. Shared by every
/// cold chunk of a durable database as its [`ChunkPager`].
#[derive(Debug)]
pub struct ChunkCache {
    vfs: Arc<dyn Vfs>,
    /// The `chunks/` directory the ids resolve under.
    dir: PathBuf,
    budget: u64,
    inner: Mutex<CacheInner>,
}

impl ChunkCache {
    /// A cache over `dir` (the `chunks/` directory) with a byte `budget`.
    pub fn new(vfs: Arc<dyn Vfs>, dir: PathBuf, budget: u64) -> ChunkCache {
        ChunkCache {
            vfs,
            dir,
            budget,
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock").stats
    }

    /// Attaches an event log: future evictions are recorded as
    /// [`EngineEvent::Eviction`].
    pub fn set_events(&self, events: Arc<EventLog>) {
        self.inner.lock().expect("cache lock").events = Some(events);
    }

    fn path_of(&self, id: u64) -> PathBuf {
        self.dir.join(format!("{id}.odc"))
    }

    /// Loads chunk `id` (expected to hold `len` rows), serving from memory
    /// when cached. The returned `Arc` is the caller's pin: the entry
    /// stays unevictable until every outside holder drops it.
    pub fn load_chunk(&self, id: u64, len: usize) -> Result<Arc<[Tuple]>> {
        {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.entries.get_mut(&id) {
                e.last_used = tick;
                e.uses = e.uses.saturating_add(1);
                let data = Arc::clone(&e.data);
                inner.stats.hits += 1;
                // Budget enforcement rides on every touch: entries that
                // were unevictable when admitted (all pins held) get
                // trimmed here once their holders have let go.
                Self::evict_to_budget(&mut inner, self.budget);
                return Ok(data);
            }
            inner.stats.misses += 1;
        }
        // Read outside the lock; concurrent misses on the same id may race
        // the read, the first insert wins and later ones are dropped.
        let (rows, bytes) = self.read_file(&self.path_of(id))?;
        if rows.len() != len {
            return Err(EngineError::CorruptStorage(format!(
                "chunk {id} holds {} rows, manifest says {len}",
                rows.len()
            )));
        }
        let data: Arc<[Tuple]> = rows.into();
        self.admit(id, Arc::clone(&data), bytes, true);
        Ok(data)
    }

    /// Reads and verifies one chunk file, returning rows + file size.
    fn read_file(&self, path: &Path) -> Result<(Vec<Tuple>, u64)> {
        let raw = with_retry(|| self.vfs.read(path), || Ok(()))?;
        let rows = decode_chunk(&raw).map_err(|e| match e {
            EngineError::CorruptStorage(m) => {
                EngineError::CorruptStorage(format!("{}: {m}", path.display()))
            }
            other => other,
        })?;
        Ok((rows, raw.len() as u64))
    }

    /// Admits (or refreshes) an entry and trims to budget. `count_rows`
    /// meters `rows_loaded` (true for disk loads, false for warm seeds).
    fn admit(&self, id: u64, data: Arc<[Tuple]>, bytes: u64, count_rows: bool) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if count_rows {
            inner.stats.rows_loaded += data.len() as u64;
        }
        if inner.entries.contains_key(&id) {
            return; // lost a concurrent-miss race; keep the incumbent
        }
        // Make room *before* admitting, so resident bytes — and the peak
        // the out-of-core contract bounds — never transiently exceed the
        // budget on the way in. Only pins can push past it.
        Self::evict_to_budget(&mut inner, self.budget.saturating_sub(bytes));
        inner.entries.insert(
            id,
            Entry {
                data,
                bytes,
                last_used: tick,
                uses: 1,
            },
        );
        inner.stats.resident_bytes += bytes;
        inner.stats.peak_bytes = inner.stats.peak_bytes.max(inner.stats.resident_bytes);
    }

    /// Seeds the cache with rows already in memory (e.g. a chunk just
    /// persisted and demoted) so the next scan hits warm.
    pub fn seed(&self, id: u64, data: Arc<[Tuple]>, bytes: u64) {
        self.admit(id, data, bytes, false);
    }

    /// Evicts whatever became evictable since the last touch — called
    /// after a demotion drops its pins, so a freshly demoted table does
    /// not linger warm over budget until the next access.
    pub fn trim(&self) {
        let mut inner = self.inner.lock().expect("cache lock");
        Self::evict_to_budget(&mut inner, self.budget);
    }

    /// Drops an entry outright (checkpoint GC removed its file).
    pub fn forget(&self, id: u64) {
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(e) = inner.entries.remove(&id) {
            inner.stats.resident_bytes -= e.bytes;
        }
    }

    /// Evicts unpinned entries until resident bytes fit the budget.
    /// Victims are picked by `(uses bucket, last_used)` — one-touch
    /// entries go before proven ones, oldest first — which is fully
    /// deterministic for a serial access sequence. When every entry is
    /// pinned the cache stays over budget: the memory is held by the pins
    /// regardless, and dropping map entries would only lose sharing.
    fn evict_to_budget(inner: &mut CacheInner, budget: u64) {
        while inner.stats.resident_bytes > budget {
            let victim = inner
                .entries
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.data) == 1)
                .min_by_key(|(_, e)| (e.uses.min(4), e.last_used))
                .map(|(&id, _)| id);
            let Some(id) = victim else { break };
            let e = inner.entries.remove(&id).expect("victim exists");
            inner.stats.resident_bytes -= e.bytes;
            inner.stats.evictions += 1;
            if let Some(events) = &inner.events {
                events.record(EngineEvent::Eviction {
                    chunk: id,
                    bytes: e.bytes,
                });
            }
        }
    }
}

impl ChunkPager for ChunkCache {
    fn load(&self, id: u64, len: usize) -> std::result::Result<Arc<[Tuple]>, PagerError> {
        self.load_chunk(id, len)
            .map_err(|e| PagerError(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::chunkfile::write_chunk;
    use crate::storage::fault::TempDir;
    use crate::storage::vfs::RealFs;
    use ongoing_relation::Value;

    fn rows(tag: i64, n: usize) -> Vec<Tuple> {
        (0..n as i64)
            .map(|i| Tuple::base(vec![Value::Int(tag * 1000 + i)]))
            .collect()
    }

    /// Writes `n`-row chunks 0..count under `dir`, returning their sizes.
    fn write_chunks(dir: &Path, count: u64, n: usize) -> Vec<u64> {
        (0..count)
            .map(|id| {
                write_chunk(
                    &RealFs,
                    &dir.join(format!("{id}.odc")),
                    &rows(id as i64, n),
                    false,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let dir = TempDir::new("cache-hits");
        write_chunks(dir.path(), 2, 8);
        let cache = ChunkCache::new(Arc::new(RealFs), dir.path().to_path_buf(), u64::MAX);
        let a = cache.load_chunk(0, 8).unwrap();
        assert_eq!(a.len(), 8);
        let b = cache.load_chunk(0, 8).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        cache.load_chunk(1, 8).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 2, 0));
        assert_eq!(s.rows_loaded, 16);
        assert!(s.resident_bytes > 0);
        assert_eq!(s.peak_bytes, s.resident_bytes);
    }

    #[test]
    fn evicts_lru_beyond_budget() {
        let dir = TempDir::new("cache-evict");
        let sizes = write_chunks(dir.path(), 3, 8);
        // Budget fits exactly two chunks.
        let budget = sizes[0] + sizes[1];
        let cache = ChunkCache::new(Arc::new(RealFs), dir.path().to_path_buf(), budget);
        cache.load_chunk(0, 8).unwrap();
        cache.load_chunk(1, 8).unwrap();
        // Loading a third evicts the least recently used (chunk 0).
        cache.load_chunk(2, 8).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= budget);
        // Room is made before admitting, so even the eviction-triggering
        // load never pushed the resident bytes past the budget.
        assert_eq!(s.peak_bytes, sizes[0] + sizes[1]);
        assert!(s.peak_bytes <= budget);
        // Chunk 0 is gone (miss), chunk 2 is warm (hit).
        cache.load_chunk(2, 8).unwrap();
        cache.load_chunk(0, 8).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 4));
    }

    #[test]
    fn frequency_bias_protects_hot_entries() {
        let dir = TempDir::new("cache-freq");
        let sizes = write_chunks(dir.path(), 3, 8);
        let budget = sizes[0] + sizes[1];
        let cache = ChunkCache::new(Arc::new(RealFs), dir.path().to_path_buf(), budget);
        // Chunk 0 is hot (3 uses); chunk 1 is one-touch but more recent.
        cache.load_chunk(0, 8).unwrap();
        cache.load_chunk(0, 8).unwrap();
        cache.load_chunk(0, 8).unwrap();
        cache.load_chunk(1, 8).unwrap();
        cache.load_chunk(2, 8).unwrap();
        // The one-touch entry went, despite being fresher than chunk 0.
        cache.load_chunk(0, 8).unwrap();
        assert_eq!(cache.stats().hits, 3);
        cache.load_chunk(1, 8).unwrap();
        assert_eq!(cache.stats().misses, 3 + 1);
    }

    #[test]
    fn pinned_entries_survive_pressure() {
        let dir = TempDir::new("cache-pin");
        let sizes = write_chunks(dir.path(), 3, 8);
        let budget = sizes[0];
        let cache = ChunkCache::new(Arc::new(RealFs), dir.path().to_path_buf(), budget);
        let pin0 = cache.load_chunk(0, 8).unwrap();
        let pin1 = cache.load_chunk(1, 8).unwrap();
        // Both entries are pinned: over budget, but nothing evictable.
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.stats().resident_bytes > budget);
        drop(pin1);
        // Pressure from the next load can now evict chunk 1 (and itself).
        let pin2 = cache.load_chunk(2, 8).unwrap();
        let s = cache.stats();
        assert!(s.evictions >= 1);
        assert!(cache.load_chunk(0, 8).unwrap().len() == 8);
        assert_eq!(pin0.len(), 8);
        drop(pin2);
    }

    #[test]
    fn length_mismatch_is_corruption() {
        let dir = TempDir::new("cache-len");
        write_chunks(dir.path(), 1, 8);
        let cache = ChunkCache::new(Arc::new(RealFs), dir.path().to_path_buf(), u64::MAX);
        assert!(matches!(
            cache.load_chunk(0, 9),
            Err(EngineError::CorruptStorage(_))
        ));
    }

    #[test]
    fn seed_makes_scans_warm_without_row_metering() {
        let dir = TempDir::new("cache-seed");
        let sizes = write_chunks(dir.path(), 1, 8);
        let cache = ChunkCache::new(Arc::new(RealFs), dir.path().to_path_buf(), u64::MAX);
        cache.seed(0, rows(0, 8).into(), sizes[0]);
        cache.load_chunk(0, 8).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.rows_loaded), (1, 0, 0));
        cache.forget(0);
        assert_eq!(cache.stats().resident_bytes, 0);
    }
}
