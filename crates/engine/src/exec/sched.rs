//! Fair scheduling of morsel tasks across concurrent queries.
//!
//! Each active query owns one [`QueryQueue`] — a FIFO of type-erased morsel
//! tasks — and the [`Scheduler`] hands tasks to pool workers **round-robin
//! across queues, one task per turn**. A query that fans a large operator
//! into thousands of morsels therefore cannot monopolize the workers: every
//! other active query gets a morsel in between, so a short query finishes
//! while a long one is still in flight (morsel-granularity fairness).
//!
//! Admission is a simple bound on the number of *registered* queues: when
//! [`Scheduler::register`] would exceed the limit, the registering thread
//! waits (polling its [`QueryControl`] so cancellation and deadlines still
//! win) until a running query unregisters. The wait duration is returned so
//! the pool can record it in the `ongoingdb_pool_admission_wait_us`
//! histogram and the event ring.
//!
//! Cancellation integrates at the dequeue edge: the worker checks the
//! queue's control token *before* running a popped task and, when the token
//! has tripped, completes the task with the control error instead of
//! executing it — a cancelled query's queued morsels are dropped, not run.

use crate::error::Result;
use crate::exec::context::QueryControl;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A type-erased morsel task. Invoked with `Ok(())` to execute, or with the
/// control error when the owning query was cancelled before dispatch — the
/// task must then record that error as its result (so waiters still
/// complete) without doing any work.
pub(crate) type Task = Box<dyn FnOnce(Result<()>) + Send>;

/// One query's task queue: a FIFO of pending morsels plus the query's
/// governance token (checked at dequeue so queued morsels of a cancelled
/// query are dropped, not executed).
pub(crate) struct QueryQueue {
    id: u64,
    control: QueryControl,
    tasks: Mutex<VecDeque<Task>>,
}

impl QueryQueue {
    /// Registration id (unique per scheduler).
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// The governance token the queue was registered with.
    pub(crate) fn control(&self) -> &QueryControl {
        &self.control
    }

    fn pop(&self) -> Option<Task> {
        self.tasks.lock().expect("queue lock").pop_front()
    }
}

impl std::fmt::Debug for QueryQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryQueue")
            .field("id", &self.id)
            .field("pending", &self.tasks.lock().expect("queue lock").len())
            .finish()
    }
}

#[derive(Default)]
struct SchedState {
    /// Active queues in registration order; the round-robin cursor indexes
    /// into this list.
    queues: Vec<Arc<QueryQueue>>,
    cursor: usize,
    shutdown: bool,
}

/// Round-robin morsel scheduler over per-query task queues.
pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    /// Workers sleep here when every queue is empty.
    work_ready: Condvar,
    /// Admission waiters sleep here when the active-query limit is reached.
    admit_ready: Condvar,
    /// Maximum registered queues (admission bound).
    limit: usize,
    next_id: AtomicU64,
    /// Total queued-but-undelivered tasks across all queues.
    depth: AtomicUsize,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("limit", &self.limit)
            .field("depth", &self.depth.load(Ordering::Relaxed))
            .finish()
    }
}

impl Scheduler {
    /// A scheduler admitting at most `limit` concurrent queries (clamped to
    /// at least 1).
    pub(crate) fn new(limit: usize) -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState::default()),
            work_ready: Condvar::new(),
            admit_ready: Condvar::new(),
            limit: limit.max(1),
            next_id: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
        }
    }

    /// The admission bound.
    pub(crate) fn limit(&self) -> usize {
        self.limit
    }

    /// Registers a new query queue, waiting for an admission slot when the
    /// bound is reached. Returns the queue and how long admission blocked
    /// (zero when a slot was free). The wait polls `control`, so a
    /// cancelled or past-deadline query errors out instead of queueing
    /// forever.
    pub(crate) fn register(&self, control: QueryControl) -> Result<(Arc<QueryQueue>, Duration)> {
        let start = Instant::now();
        let mut blocked = false;
        let mut state = self.state.lock().expect("scheduler lock");
        while state.queues.len() >= self.limit {
            control.check()?;
            blocked = true;
            let (next, _) = self
                .admit_ready
                .wait_timeout(state, Duration::from_millis(5))
                .expect("scheduler lock");
            state = next;
        }
        let queue = Arc::new(QueryQueue {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            control,
            tasks: Mutex::new(VecDeque::new()),
        });
        state.queues.push(Arc::clone(&queue));
        let waited = if blocked {
            start.elapsed()
        } else {
            Duration::ZERO
        };
        Ok((queue, waited))
    }

    /// Removes a query queue (on session drop). Any tasks still pending are
    /// dropped unrun — by construction the pool only unregisters after
    /// every submitted task set completed, so the queue is empty then.
    pub(crate) fn unregister(&self, id: u64) {
        let mut state = self.state.lock().expect("scheduler lock");
        if let Some(pos) = state.queues.iter().position(|q| q.id == id) {
            let removed = state.queues.remove(pos);
            let orphaned = removed.tasks.lock().expect("queue lock").len();
            if orphaned > 0 {
                self.depth.fetch_sub(orphaned, Ordering::Relaxed);
            }
            if pos < state.cursor {
                state.cursor -= 1;
            }
            if !state.queues.is_empty() {
                state.cursor %= state.queues.len();
            } else {
                state.cursor = 0;
            }
        }
        drop(state);
        self.admit_ready.notify_all();
    }

    /// Enqueues a batch of tasks on `queue` and wakes sleeping workers.
    pub(crate) fn submit(&self, queue: &QueryQueue, tasks: Vec<Task>) {
        let n = tasks.len();
        queue.tasks.lock().expect("queue lock").extend(tasks);
        self.depth.fetch_add(n, Ordering::Relaxed);
        // Taking the scheduler lock before notifying closes the lost-wakeup
        // window: a worker is either still scanning (and will see the new
        // tasks) or already parked on the condvar (and gets the notify).
        drop(self.state.lock().expect("scheduler lock"));
        self.work_ready.notify_all();
    }

    /// The next task for a pool worker: round-robin across active queues,
    /// one task per turn. Blocks while all queues are empty; returns `None`
    /// after [`shutdown`](Self::shutdown).
    pub(crate) fn next_task(&self) -> Option<(Task, Arc<QueryQueue>)> {
        let mut state = self.state.lock().expect("scheduler lock");
        loop {
            if state.shutdown {
                return None;
            }
            let n = state.queues.len();
            for step in 0..n {
                let pos = (state.cursor + step) % n;
                if let Some(task) = state.queues[pos].pop() {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    state.cursor = (pos + 1) % n;
                    let queue = Arc::clone(&state.queues[pos]);
                    return Some((task, queue));
                }
            }
            let (next, _) = self
                .work_ready
                .wait_timeout(state, Duration::from_millis(100))
                .expect("scheduler lock");
            state = next;
        }
    }

    /// Pops a task from `queue` only — how a submitting thread helps drain
    /// its *own* query while waiting, without touching other queries' work.
    pub(crate) fn steal_own(&self, queue: &QueryQueue) -> Option<Task> {
        let task = queue.pop()?;
        self.depth.fetch_sub(1, Ordering::Relaxed);
        Some(task)
    }

    /// Total queued (undelivered) tasks across every queue.
    pub(crate) fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Number of registered (active) queries.
    pub(crate) fn active_queries(&self) -> usize {
        self.state.lock().expect("scheduler lock").queues.len()
    }

    /// Stops all workers: `next_task` returns `None` from now on.
    pub(crate) fn shutdown(&self) {
        self.state.lock().expect("scheduler lock").shutdown = true;
        self.work_ready.notify_all();
        self.admit_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn noop_task(counter: &Arc<AtomicUsize>) -> Task {
        let counter = Arc::clone(counter);
        Box::new(move |gate| {
            if gate.is_ok() {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        })
    }

    #[test]
    fn round_robin_alternates_between_queues() {
        let sched = Scheduler::new(8);
        let (qa, _) = sched.register(QueryControl::unbounded()).unwrap();
        let (qb, _) = sched.register(QueryControl::unbounded()).unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        sched.submit(&qa, (0..4).map(|_| noop_task(&ran)).collect());
        sched.submit(&qb, vec![noop_task(&ran)]);
        // Dispatch order must interleave: A, B, A, A, A — queue B's single
        // task goes second even though A was submitted first and has more.
        let mut order = Vec::new();
        for _ in 0..5 {
            let (task, q) = sched.next_task().unwrap();
            order.push(q.id());
            task(Ok(()));
        }
        assert_eq!(order, vec![qa.id(), qb.id(), qa.id(), qa.id(), qa.id()]);
        assert_eq!(ran.load(Ordering::Relaxed), 5);
        assert_eq!(sched.depth(), 0);
    }

    #[test]
    fn admission_limit_blocks_until_unregister() {
        let sched = Arc::new(Scheduler::new(1));
        let (first, wait) = sched.register(QueryControl::unbounded()).unwrap();
        assert_eq!(wait, Duration::ZERO.max(wait)); // first admit should not block meaningfully
        let sched2 = Arc::clone(&sched);
        let waiter = std::thread::spawn(move || {
            let (_q, waited) = sched2.register(QueryControl::unbounded()).unwrap();
            waited
        });
        std::thread::sleep(Duration::from_millis(30));
        sched.unregister(first.id());
        let waited = waiter.join().unwrap();
        assert!(
            waited >= Duration::from_millis(10),
            "second register should have waited for the slot, waited {waited:?}"
        );
    }

    #[test]
    fn admission_wait_honors_cancellation() {
        let sched = Scheduler::new(1);
        let (_held, _) = sched.register(QueryControl::unbounded()).unwrap();
        let control = QueryControl::unbounded();
        control.cancel();
        assert!(sched.register(control).is_err());
    }
}
