//! A static interval index over ongoing time intervals.
//!
//! The paper's conclusions (Sec. X) name index access methods for ongoing
//! time points, "based on the approaches for indexing fixed time intervals",
//! as future work. This module provides one: every ongoing interval
//! `[ts, te)` is indexed by its **instantiation envelope**
//! `[ts.a, te.b)` — the union of all its instantiations. For the temporal
//! predicates whose truth implies that the two instantiations share a time
//! point (`overlaps`, `starts`, `finishes`), envelope overlap is a necessary
//! condition, so an envelope query yields a sound candidate set and the
//! exact ongoing predicate is evaluated per candidate.
//!
//! (`during` and `equals` have vacuous-emptiness branches and `before`/
//! `meets` do not imply a shared time point, so the envelope filter is *not*
//! sound for them — the planner never uses the index there.)
//!
//! The structure is an implicit augmented interval tree: entries sorted by
//! envelope start, organized as a balanced midpoint BST with each node
//! carrying the maximum envelope end of its subtree for pruning.

use ongoing_core::{OngoingInterval, TimePoint};

/// One indexed entry: an envelope plus the caller's payload id.
#[derive(Debug, Clone, Copy)]
struct Entry {
    start: TimePoint,
    end: TimePoint,
    id: usize,
}

/// Static envelope index over ongoing intervals.
#[derive(Debug)]
pub struct IntervalIndex {
    entries: Vec<Entry>,
    /// `max_end[i]`: maximum envelope end within the midpoint-BST subtree
    /// spanning the slice rooted at `i`.
    max_end: Vec<TimePoint>,
}

impl IntervalIndex {
    /// Builds an index over `(envelope, id)` pairs from ongoing intervals.
    /// Intervals with an empty envelope (always-empty instantiations) are
    /// skipped — no sound predicate can match them through the index.
    pub fn build<I>(intervals: I) -> Self
    where
        I: IntoIterator<Item = (OngoingInterval, usize)>,
    {
        let mut entries: Vec<Entry> = intervals
            .into_iter()
            .filter_map(|(iv, id)| {
                let start = iv.ts().a();
                let end = iv.te().b();
                (start < end).then_some(Entry { start, end, id })
            })
            .collect();
        entries.sort_unstable_by_key(|e| (e.start, e.end));
        let mut max_end = vec![TimePoint::NEG_INF; entries.len()];
        build_max_end(&entries, &mut max_end, 0, entries.len());
        IntervalIndex { entries, max_end }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Collects the ids of all entries whose envelope overlaps `[qs, qe)`.
    pub fn query(&self, qs: TimePoint, qe: TimePoint) -> Vec<usize> {
        let mut out = Vec::new();
        if qs < qe {
            self.query_rec(0, self.entries.len(), qs, qe, &mut out);
        }
        out
    }

    fn query_rec(&self, lo: usize, hi: usize, qs: TimePoint, qe: TimePoint, out: &mut Vec<usize>) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        // Prune: nothing in this subtree ends after qs.
        if self.max_end[mid] <= qs {
            return;
        }
        self.query_rec(lo, mid, qs, qe, out);
        let e = self.entries[mid];
        if e.start < qe {
            if e.end > qs {
                out.push(e.id);
            }
            self.query_rec(mid + 1, hi, qs, qe, out);
        }
        // If e.start >= qe, every entry to the right starts even later —
        // the right subtree cannot match.
    }
}

fn build_max_end(entries: &[Entry], max_end: &mut [TimePoint], lo: usize, hi: usize) {
    if lo >= hi {
        return;
    }
    let mid = lo + (hi - lo) / 2;
    build_max_end(entries, max_end, lo, mid);
    build_max_end(entries, max_end, mid + 1, hi);
    let mut m = entries[mid].end;
    if lo < mid {
        m = m.max_f(max_end[lo + (mid - lo) / 2]);
    }
    if mid + 1 < hi {
        m = m.max_f(max_end[mid + 1 + (hi - mid - 1) / 2]);
    }
    max_end[mid] = m;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::time::tp;

    fn naive(entries: &[(i64, i64)], qs: i64, qe: i64) -> Vec<usize> {
        if qs >= qe {
            return Vec::new();
        }
        entries
            .iter()
            .enumerate()
            .filter(|(_, &(s, e))| s < e && tp(s) < tp(qe) && tp(e) > tp(qs))
            .map(|(i, _)| i)
            .collect()
    }

    fn build(entries: &[(i64, i64)]) -> IntervalIndex {
        IntervalIndex::build(
            entries
                .iter()
                .enumerate()
                .map(|(i, &(s, e))| (OngoingInterval::fixed(tp(s), tp(e)), i)),
        )
    }

    #[test]
    fn matches_naive_on_dense_case() {
        let entries: Vec<(i64, i64)> = (0..50)
            .map(|i| (i % 13, i % 13 + 1 + (i * 7) % 11))
            .collect();
        let idx = build(&entries);
        for qs in -2i64..16 {
            for qe in qs..18 {
                let mut got = idx.query(tp(qs), tp(qe));
                got.sort_unstable();
                assert_eq!(got, naive(&entries, qs, qe), "q=[{qs},{qe})");
            }
        }
    }

    #[test]
    fn empty_query_and_empty_index() {
        let idx = build(&[]);
        assert!(idx.is_empty());
        assert!(idx.query(tp(0), tp(10)).is_empty());
        let idx = build(&[(0, 5)]);
        assert!(idx.query(tp(3), tp(3)).is_empty(), "empty query range");
    }

    #[test]
    fn ongoing_envelopes_are_used() {
        // [3, now): envelope [3, +inf) — overlaps any query ending after 3.
        let idx = IntervalIndex::build([(OngoingInterval::from_until_now(tp(3)), 7usize)]);
        assert_eq!(idx.query(tp(100), tp(200)), vec![7]);
        assert!(idx.query(tp(0), tp(3)).is_empty());
        assert_eq!(idx.query(tp(0), tp(4)), vec![7]);
    }

    #[test]
    fn always_empty_intervals_are_skipped() {
        let idx = IntervalIndex::build([(OngoingInterval::fixed(tp(9), tp(3)), 0usize)]);
        assert!(idx.is_empty());
    }
}
