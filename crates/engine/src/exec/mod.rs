//! Execution helpers: interval index.

pub mod index;

pub use index::IntervalIndex;
