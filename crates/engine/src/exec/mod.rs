//! Execution helpers: interval index, execution context, work-unit stats.

pub mod context;
pub mod index;
pub mod stats;

pub use context::{ExecContext, QueryControl, THREADS_ENV};
pub use index::IntervalIndex;
pub use stats::ExecStats;
