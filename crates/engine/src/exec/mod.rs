//! Execution support: context/governance tokens, the shared worker pool
//! and its fair morsel scheduler, interval indexes, and work-unit stats.

pub mod context;
pub mod index;
pub mod pool;
pub mod rescache;
pub(crate) mod sched;
pub mod stats;

pub use context::{ExecContext, QueryControl, THREADS_ENV};
pub use index::IntervalIndex;
pub use pool::{PoolSession, WorkerPool, POOL_MAX_QUERIES_ENV};
pub use rescache::{
    ResultCache, DEFAULT_RESULT_CACHE_BUDGET, RESULT_CACHE_BUDGET_ENV, RESULT_CACHE_BYTES_METRIC,
    RESULT_CACHE_EVICTIONS_METRIC, RESULT_CACHE_HITS_METRIC, RESULT_CACHE_MISSES_METRIC,
};
pub use stats::ExecStats;
