//! Deterministic work-unit accounting for the physical executors.
//!
//! Wall-clock measurements of the paper's evaluation (Sec. IX) are noisy on
//! shared machines; the *work units* an operator performs are not. Every
//! executor threads an [`ExecStats`] accumulator through its operators —
//! per-worker local counters under partition-parallel execution, folded at
//! join points — so benches and the `repro_*` binaries can assert on
//! deterministic counts (tuples scanned, pairs compared, interval-set
//! merges) instead of durations. The counters are identical for every
//! `parallelism` setting: partitioning only changes *who* counts a work
//! unit, never *whether* it is counted.

use std::fmt;
use std::ops::AddAssign;

/// Work-unit counters accumulated during one plan execution.
///
/// The instantiated (Clifford) mode performs no interval-set arithmetic, so
/// `intervals_merged` stays 0 there — exactly the cost asymmetry the
/// paper's runtime comparisons measure.
///
/// **Counted operators:** scans, filters, and joins — the operators the
/// paper's evaluation queries (Sec. IX) consist of and the `repro_*`
/// assertions depend on. `Project`, `Union`, `Difference` and `Aggregate`
/// delegate to the relational-algebra layer and contribute no work units
/// of their own (their children's scans/filters/joins still count), so
/// [`total_work`](ExecStats::total_work) is a wall-clock stand-in only for
/// plans dominated by the counted operators.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Tuples produced by base-table access paths (`SeqScan` counts the
    /// whole table, `IndexScan` only the candidates it examines).
    pub tuples_scanned: u64,
    /// Tuples evaluated by a `Filter` (or the residual predicate of an
    /// `IndexScan`).
    pub tuples_filtered: u64,
    /// Join candidate pairs evaluated (all pairs for nested loops, probe
    /// hits for the hash join, envelope-overlapping pairs for the sweep
    /// join).
    pub pairs_compared: u64,
    /// Candidate ids returned by interval-index envelope queries.
    pub index_candidates: u64,
    /// Interval-set merge operations (predicate true-set construction and
    /// reference-time restrictions) in the ongoing executors.
    pub intervals_merged: u64,
}

impl ExecStats {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        ExecStats::default()
    }

    /// Folds a worker-local accumulator into this one. Addition is
    /// commutative and associative, so the fold order (and therefore the
    /// partitioning) cannot change the totals.
    pub fn merge(&mut self, other: &ExecStats) {
        self.tuples_scanned += other.tuples_scanned;
        self.tuples_filtered += other.tuples_filtered;
        self.pairs_compared += other.pairs_compared;
        self.index_candidates += other.index_candidates;
        self.intervals_merged += other.intervals_merged;
    }

    /// The counter-wise change since `earlier` (saturating, so callers
    /// comparing snapshots of the same accumulator can never underflow).
    /// This is how the tracer attributes work to a single operator: the
    /// accumulator delta across the operator minus its children's deltas.
    pub fn diff(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            tuples_scanned: self.tuples_scanned.saturating_sub(earlier.tuples_scanned),
            tuples_filtered: self.tuples_filtered.saturating_sub(earlier.tuples_filtered),
            pairs_compared: self.pairs_compared.saturating_sub(earlier.pairs_compared),
            index_candidates: self
                .index_candidates
                .saturating_sub(earlier.index_candidates),
            intervals_merged: self
                .intervals_merged
                .saturating_sub(earlier.intervals_merged),
        }
    }

    /// Total work units: the unweighted sum of all counters. The scalar
    /// that replaces wall-clock time in break-even and amortization
    /// arithmetic.
    pub fn total_work(&self) -> u64 {
        self.tuples_scanned
            + self.tuples_filtered
            + self.pairs_compared
            + self.index_candidates
            + self.intervals_merged
    }
}

impl AddAssign<&ExecStats> for ExecStats {
    fn add_assign(&mut self, other: &ExecStats) {
        self.merge(other);
    }
}

impl fmt::Display for ExecStats {
    /// One-line `explain`-style rendering, e.g.
    /// `scanned=100 filtered=100 pairs=0 idx=0 merges=57 (work=257)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned={} filtered={} pairs={} idx={} merges={} (work={})",
            self.tuples_scanned,
            self.tuples_filtered,
            self.pairs_compared,
            self.index_candidates,
            self.intervals_merged,
            self.total_work()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_counter() {
        let mut a = ExecStats {
            tuples_scanned: 1,
            tuples_filtered: 2,
            pairs_compared: 3,
            index_candidates: 4,
            intervals_merged: 5,
        };
        let b = ExecStats {
            tuples_scanned: 10,
            tuples_filtered: 20,
            pairs_compared: 30,
            index_candidates: 40,
            intervals_merged: 50,
        };
        a += &b;
        assert_eq!(a.tuples_scanned, 11);
        assert_eq!(a.tuples_filtered, 22);
        assert_eq!(a.pairs_compared, 33);
        assert_eq!(a.index_candidates, 44);
        assert_eq!(a.intervals_merged, 55);
        assert_eq!(a.total_work(), 11 + 22 + 33 + 44 + 55);
    }

    #[test]
    fn display_is_compact() {
        let s = ExecStats {
            tuples_scanned: 7,
            ..ExecStats::default()
        };
        assert_eq!(
            s.to_string(),
            "scanned=7 filtered=0 pairs=0 idx=0 merges=0 (work=7)"
        );
    }
}
