//! The versioned result cache: executed plan results keyed by plan
//! fingerprint, table *version* set, and planner configuration.
//!
//! The paper's central property — an ongoing query result stays valid as
//! time passes by — means a result computed against a given set of table
//! versions serves **every** later request at any reference time, until a
//! table is modified. Versions compare in O(1): a publication swaps the
//! table's `Arc`, so an entry is valid exactly when every `Weak<Table>` it
//! pinned still upgrades to the `Arc` the incoming plan embeds.
//! Invalidation is therefore free *by construction* — stale entries simply
//! stop being hit and age out under the budget.
//!
//! Eviction is GreedyDual-Size with Frequency (GDSF, the TRexRewrite
//! `gdfs_cache` style): each entry carries `H = L + freq × cost / size`
//! where `cost` is the deterministic work units the result took to compute
//! and `L` is an inflation floor raised to each victim's `H` — cheap,
//! large, rarely-hit entries go first, and long-idle entries eventually
//! fall below fresh ones no matter how expensive they were. Ties break on
//! the smallest key, so eviction order is deterministic.
//!
//! A hit returns a shallow copy-on-write fork of the cached relation
//! *plus the stored [`ExecStats`]* — callers fold the same per-query
//! metrics whether the cache answered or the executor did, so every
//! deterministic work-unit assertion in the test suite holds with the
//! cache on or off. The budget comes from
//! [`RESULT_CACHE_BUDGET_ENV`] (bytes; `0` disables caching entirely).

use crate::catalog::Table;
use crate::exec::ExecStats;
use crate::obs::{EngineEvent, Obs};
use crate::plan::{PhysicalPlan, PlannerConfig};
use ongoing_relation::{OngoingRelation, Tuple, Value};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, Weak};

/// Environment variable setting the per-database result-cache budget in
/// bytes (estimated). `0` disables the cache; unset uses
/// [`DEFAULT_RESULT_CACHE_BUDGET`].
pub const RESULT_CACHE_BUDGET_ENV: &str = "ONGOINGDB_RESULT_CACHE_BUDGET";

/// Default result-cache budget: 64 MiB of estimated result bytes.
pub const DEFAULT_RESULT_CACHE_BUDGET: u64 = 64 * 1024 * 1024;

/// Metric counting result-cache hits.
pub const RESULT_CACHE_HITS_METRIC: &str = "ongoingdb_result_cache_hits";
/// Metric counting result-cache misses (absent or stale-version entries).
pub const RESULT_CACHE_MISSES_METRIC: &str = "ongoingdb_result_cache_misses";
/// Metric counting GDSF evictions.
pub const RESULT_CACHE_EVICTIONS_METRIC: &str = "ongoingdb_result_cache_evictions";
/// Gauge tracking the estimated resident bytes of cached results.
pub const RESULT_CACHE_BYTES_METRIC: &str = "ongoingdb_result_cache_bytes";

/// One cached result plus everything needed to validate and rank it.
#[derive(Debug)]
struct Entry {
    /// The exact table versions the result was computed against, held
    /// weakly so the cache never keeps a superseded version alive.
    deps: Vec<Weak<Table>>,
    rel: OngoingRelation,
    stats: ExecStats,
    bytes: u64,
    /// Deterministic work units the result cost to compute.
    cost: f64,
    freq: u64,
    /// GDSF rank `L + freq × cost / bytes`.
    h: f64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<String, Entry>,
    bytes: u64,
    /// The GDSF inflation floor: raised to each victim's `H`.
    l: f64,
}

/// A per-database versioned result cache — see the [module docs](self).
#[derive(Debug)]
pub struct ResultCache {
    budget: u64,
    inner: Mutex<Inner>,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::from_env()
    }
}

impl ResultCache {
    /// A cache budgeted by [`RESULT_CACHE_BUDGET_ENV`] (default
    /// [`DEFAULT_RESULT_CACHE_BUDGET`]; `0` disables).
    pub fn from_env() -> Self {
        let budget = std::env::var(RESULT_CACHE_BUDGET_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_RESULT_CACHE_BUDGET);
        ResultCache::with_budget(budget)
    }

    /// A cache with an explicit byte budget (`0` disables).
    pub fn with_budget(budget: u64) -> Self {
        ResultCache {
            budget,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured byte budget (`0` = disabled).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Estimated bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.lock().bytes
    }

    /// Cached entries currently resident.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.lock().entries.is_empty()
    }

    /// Drops every entry (the budget is kept).
    pub fn clear(&self) {
        let mut g = self.lock();
        g.entries.clear();
        g.bytes = 0;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic mid-insert leaves at worst a consistent-but-partial
        // cache; recover rather than brick every future lookup.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks `key` up and validates the entry against the table versions
    /// the incoming plan embeds (`deps`, in [`plan_tables`] order). A
    /// valid entry bumps its frequency and returns a shallow fork of the
    /// result plus the stored stats; a stale entry is dropped and counts
    /// as a miss.
    pub(crate) fn lookup(
        &self,
        key: &str,
        deps: &[Arc<Table>],
        obs: &Obs,
    ) -> Option<(OngoingRelation, ExecStats)> {
        if self.budget == 0 {
            return None;
        }
        let mut g = self.lock();
        let l = g.l;
        let stale = match g.entries.get_mut(key) {
            Some(e) if deps_valid(&e.deps, deps) => {
                e.freq += 1;
                e.h = l + (e.freq as f64) * e.cost / e.bytes.max(1) as f64;
                obs.metrics.counter(RESULT_CACHE_HITS_METRIC).inc();
                return Some((e.rel.clone(), e.stats));
            }
            Some(_) => true,
            None => false,
        };
        if stale {
            let e = g.entries.remove(key).expect("stale entry is present");
            g.bytes -= e.bytes;
            obs.metrics.gauge(RESULT_CACHE_BYTES_METRIC).set(g.bytes);
        }
        obs.metrics.counter(RESULT_CACHE_MISSES_METRIC).inc();
        None
    }

    /// Inserts a freshly computed result, evicting by GDSF rank until the
    /// budget holds. Oversized results (estimated bytes above the whole
    /// budget) are not cached.
    pub(crate) fn insert(
        &self,
        key: String,
        deps: Vec<Weak<Table>>,
        rel: &OngoingRelation,
        stats: ExecStats,
        obs: &Obs,
    ) {
        if self.budget == 0 {
            return;
        }
        let bytes = estimate_relation_bytes(rel);
        if bytes > self.budget {
            return;
        }
        let cost = stats.total_work() as f64;
        let mut g = self.lock();
        if let Some(old) = g.entries.remove(&key) {
            g.bytes -= old.bytes;
        }
        while g.bytes + bytes > self.budget {
            // Deterministic victim: minimum H, ties on the smallest key.
            let victim = g
                .entries
                .iter()
                .min_by(|a, b| {
                    a.1.h
                        .partial_cmp(&b.1.h)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.0.cmp(b.0))
                })
                .map(|(k, _)| k.clone());
            let Some(k) = victim else { break };
            let e = g.entries.remove(&k).expect("victim is present");
            g.bytes -= e.bytes;
            g.l = g.l.max(e.h);
            obs.metrics.counter(RESULT_CACHE_EVICTIONS_METRIC).inc();
            obs.events.record(EngineEvent::ResultCacheEviction {
                bytes: e.bytes,
                cost: e.cost as u64,
            });
        }
        let h = g.l + cost / bytes.max(1) as f64;
        g.bytes += bytes;
        g.entries.insert(
            key,
            Entry {
                deps,
                rel: rel.clone(),
                stats,
                bytes,
                cost,
                freq: 1,
                h,
            },
        );
        obs.metrics.gauge(RESULT_CACHE_BYTES_METRIC).set(g.bytes);
    }
}

/// Each stored weak dep must upgrade to the **same** `Arc<Table>` the
/// incoming plan embeds — `Arc::ptr_eq`, so a publication (which swaps the
/// `Arc`) invalidates in O(#tables) with no registration anywhere.
fn deps_valid(stored: &[Weak<Table>], current: &[Arc<Table>]) -> bool {
    stored.len() == current.len()
        && stored
            .iter()
            .zip(current)
            .all(|(w, c)| w.upgrade().is_some_and(|t| Arc::ptr_eq(&t, c)))
}

/// The table versions a compiled plan reads, in deterministic pre-order —
/// the dependency set a cached result is validated against.
pub(crate) fn plan_tables(plan: &PhysicalPlan) -> Vec<Arc<Table>> {
    fn walk(p: &PhysicalPlan, out: &mut Vec<Arc<Table>>) {
        match p {
            PhysicalPlan::SeqScan { table, .. }
            | PhysicalPlan::IndexScan { table, .. }
            | PhysicalPlan::KeyScan { table, .. } => out.push(Arc::clone(table)),
            _ => {}
        }
        for c in p.inputs() {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

/// A structural fingerprint of `(plan, cfg)` — the cache key. Renders the
/// full content of every operator (predicates, projection items, keys,
/// aggregates, schemas) so distinct plans cannot collide; table *names*
/// identify which tables are read, while the *versions* live in the entry's
/// dependency set, so a republished table reuses its key and the refreshed
/// result simply replaces the stale entry.
pub(crate) fn plan_fingerprint(plan: &PhysicalPlan, cfg: &PlannerConfig) -> String {
    let mut out = String::with_capacity(128);
    let _ = write!(out, "cfg={cfg:?};");
    node_fingerprint(plan, &mut out);
    out
}

fn node_fingerprint(p: &PhysicalPlan, out: &mut String) {
    // `node_line` renders every operator's own content except projections
    // and aggregates, which it abbreviates for EXPLAIN readability — spell
    // those out, and add the leaf schemas (scan-level renames change the
    // result schema without changing any operator line).
    match p {
        PhysicalPlan::SeqScan { schema, .. }
        | PhysicalPlan::IndexScan { schema, .. }
        | PhysicalPlan::KeyScan { schema, .. } => {
            let _ = write!(out, "{} [{schema:?}]", p.node_line());
        }
        PhysicalPlan::Project { items, schema, .. } => {
            let _ = write!(out, "Project {items:?} [{schema:?}]");
        }
        PhysicalPlan::Aggregate {
            group_cols,
            aggs,
            schema,
            ..
        } => {
            let _ = write!(out, "Aggregate by {group_cols:?} {aggs:?} [{schema:?}]");
        }
        _ => out.push_str(&p.node_line()),
    }
    let children = p.inputs();
    if !children.is_empty() {
        out.push('(');
        for (i, c) in children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            node_fingerprint(c, out);
        }
        out.push(')');
    }
}

/// Deterministic estimate of a relation's resident bytes — tuple and
/// payload overheads plus per-value sizes. An estimate (interval-set
/// payloads are charged flat), but stable across runs, which is what the
/// budget accounting needs.
pub(crate) fn estimate_relation_bytes(rel: &OngoingRelation) -> u64 {
    let mut total = 256u64; // relation + store + schema overhead
    for t in rel.iter() {
        total += estimate_tuple_bytes(t);
    }
    total
}

fn estimate_tuple_bytes(t: &Tuple) -> u64 {
    // Tuple struct + values Arc header + reference-time interval set.
    let mut total = 64u64;
    for v in t.values() {
        total += match v {
            Value::Int(_) | Value::Bool(_) | Value::Time(_) => 16,
            Value::Span(_, _) => 24,
            Value::Str(s) => 24 + s.len() as u64,
            Value::Point(_) => 32,
            Value::Interval(_) => 48,
            Value::Count(_) => 64,
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use ongoing_relation::{Schema, Value};

    fn db_with_table(rows: i64) -> Database {
        let db = Database::new();
        let mut r = OngoingRelation::new(Schema::builder().int("A").str("B").build());
        for i in 0..rows {
            r.insert(vec![Value::Int(i), Value::str("x")]).unwrap();
        }
        db.create_table("T", r).unwrap();
        db
    }

    fn plan_for(db: &Database) -> PhysicalPlan {
        PhysicalPlan::SeqScan {
            table: db.table("T").unwrap(),
            schema: db.table("T").unwrap().data().schema().clone(),
        }
    }

    #[test]
    fn hit_returns_the_cached_result_and_stats() {
        let db = db_with_table(10);
        let cache = ResultCache::with_budget(1 << 20);
        let obs = Obs::default();
        let plan = plan_for(&db);
        let key = plan_fingerprint(&plan, &PlannerConfig::default());
        let deps = plan_tables(&plan);
        assert!(cache.lookup(&key, &deps, &obs).is_none());
        let rel = plan.execute().unwrap();
        let stats = ExecStats {
            tuples_scanned: 10,
            ..ExecStats::default()
        };
        cache.insert(
            key.clone(),
            deps.iter().map(Arc::downgrade).collect(),
            &rel,
            stats,
            &obs,
        );
        let (cached, cached_stats) = cache.lookup(&key, &deps, &obs).unwrap();
        assert_eq!(cached.len(), rel.len());
        assert_eq!(cached_stats, stats);
        assert_eq!(obs.metrics.counter(RESULT_CACHE_HITS_METRIC).get(), 1);
        assert_eq!(obs.metrics.counter(RESULT_CACHE_MISSES_METRIC).get(), 1);
    }

    #[test]
    fn publication_invalidates_by_version_identity() {
        let db = db_with_table(10);
        let cache = ResultCache::with_budget(1 << 20);
        let obs = Obs::default();
        let plan = plan_for(&db);
        let key = plan_fingerprint(&plan, &PlannerConfig::default());
        let deps = plan_tables(&plan);
        let rel = plan.execute().unwrap();
        cache.insert(
            key.clone(),
            deps.iter().map(Arc::downgrade).collect(),
            &rel,
            ExecStats::default(),
            &obs,
        );
        // Publish a new version: the table Arc swaps, the entry goes stale.
        db.modify_table("T", |r| {
            r.insert(vec![Value::Int(99), Value::str("y")])?;
            Ok(())
        })
        .unwrap();
        let new_plan = plan_for(&db);
        let new_deps = plan_tables(&new_plan);
        assert!(cache.lookup(&key, &new_deps, &obs).is_none());
        // The stale entry was dropped, not just skipped.
        assert!(cache.is_empty());
    }

    #[test]
    fn gdsf_evicts_cheap_low_frequency_entries_first() {
        let db = db_with_table(100);
        let obs = Obs::default();
        let plan = plan_for(&db);
        let deps = plan_tables(&plan);
        let weak = || deps.iter().map(Arc::downgrade).collect::<Vec<_>>();
        let rel = plan.execute().unwrap();
        let one = estimate_relation_bytes(&rel);
        // Room for two entries, not three.
        let cache = ResultCache::with_budget(one * 2 + 256);
        let stats = |work: u64| ExecStats {
            tuples_scanned: work,
            ..ExecStats::default()
        };
        cache.insert("a".into(), weak(), &rel, stats(10), &obs);
        cache.insert("b".into(), weak(), &rel, stats(10_000), &obs);
        // Hit "a" twice so frequency outranks cost-per-byte for it...
        // (freq 3 × 10 / size still < 1 × 10_000 / size, so "a" is the
        // cheaper victim despite its hits).
        cache.lookup("a", &deps, &obs);
        cache.lookup("a", &deps, &obs);
        cache.insert("c".into(), weak(), &rel, stats(5_000), &obs);
        assert_eq!(cache.len(), 2);
        assert!(
            cache.lookup("a", &deps, &obs).is_none(),
            "cheap entry evicted"
        );
        assert!(cache.lookup("b", &deps, &obs).is_some());
        assert!(cache.lookup("c", &deps, &obs).is_some());
        assert_eq!(obs.metrics.counter(RESULT_CACHE_EVICTIONS_METRIC).get(), 1);
        assert!(cache.resident_bytes() <= cache.budget());
    }

    #[test]
    fn zero_budget_disables_caching() {
        let db = db_with_table(5);
        let cache = ResultCache::with_budget(0);
        let obs = Obs::default();
        let plan = plan_for(&db);
        let key = plan_fingerprint(&plan, &PlannerConfig::default());
        let deps = plan_tables(&plan);
        let rel = plan.execute().unwrap();
        cache.insert(
            key.clone(),
            deps.iter().map(Arc::downgrade).collect(),
            &rel,
            ExecStats::default(),
            &obs,
        );
        assert!(cache.lookup(&key, &deps, &obs).is_none());
        assert_eq!(cache.len(), 0);
        // Disabled means *no* cache traffic is counted either.
        assert_eq!(obs.metrics.counter(RESULT_CACHE_MISSES_METRIC).get(), 0);
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let db = db_with_table(5);
        let plan = plan_for(&db);
        let a = plan_fingerprint(&plan, &PlannerConfig::default());
        let b = plan_fingerprint(
            &plan,
            &PlannerConfig {
                parallelism: 2,
                ..PlannerConfig::default()
            },
        );
        assert_ne!(a, b);
    }
}
