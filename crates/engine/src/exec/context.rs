//! Execution context: the parallelism knob for the physical executors.
//!
//! Every executor entry point takes an [`ExecContext`] describing *how* to
//! run (number of worker threads); the operator tree describes *what* to
//! run. Results and [`ExecStats`](crate::exec::ExecStats) work-unit counts
//! are identical for every parallelism setting — partitioning is purely a
//! wall-clock optimization.

/// How many worker threads the executors may use.
///
/// Resolution order: an explicit knob (e.g.
/// [`PlannerConfig::parallelism`](crate::PlannerConfig)) beats the
/// `ONGOINGDB_THREADS` environment variable, which beats the machine's
/// available parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecContext {
    /// Number of worker threads partition-parallel operators may fan out
    /// to. `1` executes every operator inline on the calling thread.
    pub parallelism: usize,
}

/// Environment variable overriding the default executor parallelism.
pub const THREADS_ENV: &str = "ONGOINGDB_THREADS";

impl ExecContext {
    /// A context with exactly `parallelism` workers (clamped to at least 1).
    pub fn new(parallelism: usize) -> Self {
        ExecContext {
            parallelism: parallelism.max(1),
        }
    }

    /// Single-threaded execution.
    pub fn serial() -> Self {
        ExecContext::new(1)
    }

    /// Resolves a knob value: `0` means "auto" (`ONGOINGDB_THREADS` if set
    /// and positive, else the machine's available parallelism), anything
    /// else is taken literally.
    pub fn resolve(knob: usize) -> Self {
        if knob > 0 {
            return ExecContext::new(knob);
        }
        let from_env = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&p| p > 0);
        let parallelism = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        ExecContext::new(parallelism)
    }

    /// The auto-resolved context ([`resolve`](Self::resolve) with knob 0).
    pub fn from_env() -> Self {
        ExecContext::resolve(0)
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_knob_wins_and_is_clamped() {
        assert_eq!(ExecContext::resolve(3).parallelism, 3);
        assert_eq!(ExecContext::new(0).parallelism, 1);
        assert_eq!(ExecContext::serial().parallelism, 1);
    }

    #[test]
    fn auto_resolution_is_positive() {
        // Whatever the environment says, the result is a usable worker
        // count (≥ 1).
        assert!(ExecContext::from_env().parallelism >= 1);
    }
}
