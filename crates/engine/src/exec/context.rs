//! Execution context: the parallelism knob and the cancellation/deadline
//! token for the physical executors.
//!
//! Every executor entry point takes an [`ExecContext`] describing *how* to
//! run (number of worker threads, governance token); the operator tree
//! describes *what* to run. Results and [`ExecStats`](crate::exec::ExecStats)
//! work-unit counts are identical for every parallelism setting —
//! partitioning is purely a wall-clock optimization.

use crate::error::{EngineError, Result};
use crate::exec::pool::{PoolSession, WorkerPool};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct ControlState {
    cancelled: AtomicBool,
    /// Absolute deadline, fixed at construction.
    deadline: Option<Instant>,
}

/// Shared cancellation + deadline token for one query (or modification).
///
/// Cloning shares the token: the caller keeps one handle and may
/// [`cancel`](Self::cancel) from any thread while executors poll
/// [`check`](Self::check) cooperatively at morsel boundaries — so a
/// cancellation (or an expired deadline) surfaces within one morsel of
/// work as [`EngineError::Cancelled`] / [`EngineError::DeadlineExceeded`],
/// never mid-tuple and never by unwinding.
#[derive(Debug, Clone, Default)]
pub struct QueryControl {
    inner: Arc<ControlState>,
}

impl QueryControl {
    /// A token with no deadline that nobody cancels — the default for
    /// contexts that never set one.
    pub fn unbounded() -> QueryControl {
        QueryControl::default()
    }

    /// A token that expires at the absolute instant `deadline`.
    pub fn with_deadline(deadline: Instant) -> QueryControl {
        QueryControl {
            inner: Arc::new(ControlState {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that expires `timeout` from now. A zero timeout is legal:
    /// the very first morsel-boundary check fails, making it the
    /// "already expired" probe the governance tests use.
    pub fn with_timeout(timeout: Duration) -> QueryControl {
        QueryControl::with_deadline(Instant::now() + timeout)
    }

    /// Requests cancellation. Idempotent; takes effect at the next
    /// cooperative check on any thread sharing the token.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has [`cancel`](Self::cancel) been called?
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// The cooperative poll: `Err(Cancelled)` once cancelled,
    /// `Err(DeadlineExceeded)` once past the deadline, else `Ok(())`.
    /// Cancellation wins over an expired deadline (it is the explicit
    /// signal). Unbounded uncancelled tokens cost two relaxed loads.
    pub fn check(&self) -> Result<()> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(EngineError::Cancelled);
        }
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                return Err(EngineError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// How many worker threads the executors may use, plus the query's
/// governance token.
///
/// Resolution order for the worker count: an explicit knob (e.g.
/// [`PlannerConfig::parallelism`](crate::PlannerConfig)) beats the
/// `ONGOINGDB_THREADS` environment variable, which beats the machine's
/// available parallelism.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// Number of worker threads partition-parallel operators may fan out
    /// to. `1` executes every operator inline on the calling thread.
    pub parallelism: usize,
    /// Cancellation + deadline token, polled at morsel boundaries.
    pub control: QueryControl,
    /// Optional span collector: when set, every operator records a
    /// [`SpanNode`](crate::obs::SpanNode) (actual rows, per-operator work
    /// units, wall ns) — the machinery behind `EXPLAIN ANALYZE`. `None`
    /// costs nothing on the hot path.
    pub trace: Option<Arc<crate::obs::TraceCollector>>,
    /// This query's attachment to the shared worker pool: lazily registers
    /// a task queue on first fan-out, unregisters when the context drops.
    /// Cloning the context shares the session (and therefore the queue) —
    /// one context is one query as far as scheduling fairness goes.
    pub(crate) session: Arc<PoolSession>,
}

/// Environment variable overriding the default executor parallelism.
pub const THREADS_ENV: &str = "ONGOINGDB_THREADS";

/// `ONGOINGDB_THREADS`, read from the environment exactly once per
/// process. Resolving per construction meant a mid-run env change could
/// make two halves of one query disagree on parallelism; caching makes the
/// setting a process property, matching the shared pool it now sizes.
fn cached_env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&p| p > 0)
    })
}

impl ExecContext {
    /// A context with exactly `parallelism` workers (clamped to at least 1)
    /// and an unbounded [`QueryControl`].
    pub fn new(parallelism: usize) -> Self {
        let parallelism = parallelism.max(1);
        ExecContext {
            parallelism,
            control: QueryControl::unbounded(),
            trace: None,
            session: PoolSession::auto(parallelism),
        }
    }

    /// This context with `control` as its governance token (builder style).
    pub fn with_control(mut self, control: QueryControl) -> Self {
        self.control = control;
        self
    }

    /// This context with `trace` collecting per-operator spans.
    pub fn with_trace(mut self, trace: Arc<crate::obs::TraceCollector>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// This context with a fresh token expiring `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_control(QueryControl::with_timeout(timeout))
    }

    /// This context pinned to a specific [`WorkerPool`] instead of the
    /// lazily-created process-wide one. Tests use this to run the same
    /// query against exactly-sized pools.
    pub fn with_pool(self, pool: Arc<WorkerPool>) -> Self {
        self.session.set_pool(pool);
        self
    }

    /// This context with an event log attached, so pool registration
    /// records `QueryQueued`/`AdmissionWait` events.
    pub(crate) fn with_events(self, events: Arc<crate::obs::EventLog>) -> Self {
        self.session.set_events(events);
        self
    }

    /// Single-threaded execution.
    pub fn serial() -> Self {
        ExecContext::new(1)
    }

    /// Resolves a knob value: `0` means "auto" (`ONGOINGDB_THREADS` — read
    /// once per process — if set and positive, else the machine's
    /// available parallelism), anything else is taken literally.
    pub fn resolve(knob: usize) -> Self {
        if knob > 0 {
            return ExecContext::new(knob);
        }
        let parallelism = cached_env_threads().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        ExecContext::new(parallelism)
    }

    /// The auto-resolved context ([`resolve`](Self::resolve) with knob 0).
    pub fn from_env() -> Self {
        ExecContext::resolve(0)
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_knob_wins_and_is_clamped() {
        assert_eq!(ExecContext::resolve(3).parallelism, 3);
        assert_eq!(ExecContext::new(0).parallelism, 1);
        assert_eq!(ExecContext::serial().parallelism, 1);
    }

    #[test]
    fn auto_resolution_is_positive() {
        // Whatever the environment says, the result is a usable worker
        // count (≥ 1).
        assert!(ExecContext::from_env().parallelism >= 1);
    }
}
