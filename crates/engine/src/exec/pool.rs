//! The shared worker pool: persistent threads executing morsel tasks for
//! every concurrent query in the process.
//!
//! Before this pool existed, each partition-parallel operator spawned its
//! own `std::thread::scope` workers, so N in-flight queries oversubscribed
//! the machine N-fold. Now one process-wide [`WorkerPool`] (lazily sized
//! from the first query's resolved parallelism: explicit knob >
//! `ONGOINGDB_THREADS` > available cores) owns all execution threads, and
//! operators hand it batches of *morsels* — boxed `'static` closures over
//! `Arc`-shared operator state — via their query's [`PoolSession`].
//!
//! Scheduling is fair by construction: the [`Scheduler`](super::sched)
//! keeps one FIFO per active query and serves them round-robin, one morsel
//! per turn, so a short query completes while a long one is still in
//! flight. The submitting thread also *helps*: after enqueueing a batch it
//! drains its own queue (counted as `ongoingdb_pool_tasks_stolen`) before
//! parking on the batch's completion latch — this guarantees progress even
//! when every pool worker is busy on other queries, and means a pool of
//! size 1 still executes correctly. Morsels never submit sub-morsels, so
//! the pool cannot deadlock on itself.
//!
//! Determinism is preserved end to end: a batch's results are collected in
//! submission (partition) order and the first error wins in that same
//! order — exactly the semantics the old scoped-thread driver had — so
//! results and `ExecStats` work units are bit-identical at every pool size.
//!
//! Governance and observability integrate at the natural seams: the
//! query's [`QueryControl`] is checked when a morsel is *dequeued* (a
//! cancelled query's queued morsels are dropped, not executed, counted in
//! `ongoingdb_pool_tasks_dropped`), admission waits land in the
//! `ongoingdb_pool_admission_wait_us` histogram plus an
//! [`AdmissionWait`](crate::obs::EngineEvent) event, and every
//! registration records a [`QueryQueued`](crate::obs::EngineEvent) event.

use crate::error::Result;
use crate::exec::context::QueryControl;
use crate::exec::sched::{QueryQueue, Scheduler, Task};
use crate::obs::events::{EngineEvent, EventLog};
use crate::obs::metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable bounding how many queries may be *registered* with
/// the pool at once; further queries wait for admission. Unset or `0`
/// means unbounded.
pub const POOL_MAX_QUERIES_ENV: &str = "ONGOINGDB_POOL_MAX_QUERIES";

/// Handles into the pool's private metrics registry, cached so the hot
/// path never touches the registry's name map.
struct PoolMetrics {
    registry: MetricsRegistry,
    /// `ongoingdb_pool_threads` — configured worker count (gauge).
    threads: Gauge,
    /// `ongoingdb_pool_queue_depth` — queued, undelivered morsels (gauge).
    queue_depth: Gauge,
    /// `ongoingdb_pool_tasks_executed` — morsels run to completion,
    /// including those run by submitting threads.
    tasks_executed: Counter,
    /// `ongoingdb_pool_tasks_stolen` — morsels run by the submitting
    /// thread itself while helping drain its own queue.
    tasks_stolen: Counter,
    /// `ongoingdb_pool_tasks_dropped` — morsels dropped at dequeue because
    /// their query was cancelled or past its deadline.
    tasks_dropped: Counter,
    /// `ongoingdb_pool_queries` — queries ever registered.
    queries: Counter,
    /// `ongoingdb_pool_admission_waits` — registrations that had to wait
    /// for an admission slot.
    admission_waits: Counter,
    /// `ongoingdb_pool_admission_wait_us` — admission wait durations (µs).
    admission_wait_us: Histogram,
}

impl PoolMetrics {
    fn new() -> PoolMetrics {
        let registry = MetricsRegistry::new();
        PoolMetrics {
            threads: registry.gauge("ongoingdb_pool_threads"),
            queue_depth: registry.gauge("ongoingdb_pool_queue_depth"),
            tasks_executed: registry.counter("ongoingdb_pool_tasks_executed"),
            tasks_stolen: registry.counter("ongoingdb_pool_tasks_stolen"),
            tasks_dropped: registry.counter("ongoingdb_pool_tasks_dropped"),
            queries: registry.counter("ongoingdb_pool_queries"),
            admission_waits: registry.counter("ongoingdb_pool_admission_waits"),
            admission_wait_us: registry.histogram("ongoingdb_pool_admission_wait_us"),
            registry,
        }
    }
}

struct PoolCore {
    sched: Scheduler,
    metrics: PoolMetrics,
    threads: usize,
}

impl PoolCore {
    /// Runs one dequeued morsel: gate on the owning query's control token
    /// (dropped, not executed, when it has tripped), then execute and
    /// account.
    fn run(&self, task: Task, queue: &QueryQueue, stolen: bool) {
        self.metrics.queue_depth.set(self.sched.depth() as u64);
        match queue.control().check() {
            Ok(()) => {
                task(Ok(()));
                self.metrics.tasks_executed.inc();
                if stolen {
                    self.metrics.tasks_stolen.inc();
                }
            }
            Err(e) => {
                task(Err(e));
                self.metrics.tasks_dropped.inc();
            }
        }
    }
}

/// A fixed-size pool of named worker threads draining the shared
/// [`Scheduler`]. One process-wide instance is created lazily by
/// [`WorkerPool::global`]; tests build private pools with
/// [`WorkerPool::new`] and attach them via
/// [`ExecContext::with_pool`](crate::ExecContext::with_pool).
pub struct WorkerPool {
    core: Arc<PoolCore>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.core.threads)
            .field("active_queries", &self.core.sched.active_queries())
            .field("depth", &self.core.sched.depth())
            .finish()
    }
}

impl WorkerPool {
    /// A pool with `threads` workers (clamped to at least 1) and the
    /// admission limit from `ONGOINGDB_POOL_MAX_QUERIES` (unbounded when
    /// unset).
    pub fn new(threads: usize) -> Arc<WorkerPool> {
        WorkerPool::with_limits(threads, env_max_queries())
    }

    /// A pool with `threads` workers admitting at most `max_queries`
    /// concurrent queries (`None` = unbounded).
    pub fn with_limits(threads: usize, max_queries: Option<usize>) -> Arc<WorkerPool> {
        let threads = threads.max(1);
        let core = Arc::new(PoolCore {
            sched: Scheduler::new(max_queries.unwrap_or(usize::MAX)),
            metrics: PoolMetrics::new(),
            threads,
        });
        core.metrics.threads.set(threads as u64);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let core = Arc::clone(&core);
            let handle = std::thread::Builder::new()
                .name(format!("ongoingdb-worker-{i}"))
                .spawn(move || {
                    while let Some((task, queue)) = core.sched.next_task() {
                        core.run(task, &queue, false);
                    }
                })
                .expect("spawn pool worker");
            handles.push(handle);
        }
        Arc::new(WorkerPool {
            core,
            handles: Mutex::new(handles),
        })
    }

    /// The process-wide pool, created on first use. `size_hint` (the first
    /// caller's resolved parallelism: knob > `ONGOINGDB_THREADS` > cores)
    /// sizes the pool once; later hints are ignored — the pool is shared,
    /// so its size is a process property, not a query property.
    pub fn global(size_hint: usize) -> Arc<WorkerPool> {
        Arc::clone(GLOBAL.get_or_init(|| WorkerPool::new(size_hint.max(1))))
    }

    /// The process-wide pool if it has been created, without creating it.
    /// Lets a database's metrics exposition merge pool metrics only once
    /// queries have actually run.
    pub fn global_peek() -> Option<Arc<WorkerPool>> {
        GLOBAL.get().map(Arc::clone)
    }

    /// Number of worker threads this pool owns.
    pub fn threads(&self) -> usize {
        self.core.threads
    }

    /// Queries currently registered with the pool.
    pub fn active_queries(&self) -> usize {
        self.core.sched.active_queries()
    }

    /// Queued, undelivered morsels across all queries.
    pub fn queue_depth(&self) -> usize {
        self.core.sched.depth()
    }

    /// The admission limit: how many queries may be registered at once
    /// (`usize::MAX` when unbounded).
    pub fn max_queries(&self) -> usize {
        self.core.sched.limit()
    }

    /// A snapshot of the pool's `ongoingdb_pool_*` metrics, for merging
    /// into a database-wide exposition.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.core
            .metrics
            .queue_depth
            .set(self.core.sched.depth() as u64);
        self.core.metrics.registry.snapshot()
    }

    /// Registers a query with the scheduler, recording admission metrics
    /// and events.
    fn register_query(
        &self,
        control: QueryControl,
        events: Option<&Arc<EventLog>>,
    ) -> Result<Arc<QueryQueue>> {
        let (queue, waited) = self.core.sched.register(control)?;
        self.core.metrics.queries.inc();
        if let Some(log) = events {
            log.record(EngineEvent::QueryQueued {
                active: self.core.sched.active_queries() as u64,
            });
        }
        if waited > Duration::ZERO {
            let wait_us = waited.as_micros().min(u64::MAX as u128) as u64;
            self.core.metrics.admission_waits.inc();
            self.core.metrics.admission_wait_us.observe(wait_us);
            if let Some(log) = events {
                log.record(EngineEvent::AdmissionWait { wait_us });
            }
        }
        Ok(queue)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.core.sched.shutdown();
        for handle in self.handles.lock().expect("pool handles").drain(..) {
            let _ = handle.join();
        }
    }
}

static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();

fn env_max_queries() -> Option<usize> {
    std::env::var(POOL_MAX_QUERIES_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Completion latch for one submitted batch: slot-indexed results plus a
/// countdown, so the submitter can wait for exactly its own morsels.
struct TaskSet<T> {
    state: Mutex<SetState<T>>,
    done: Condvar,
}

struct SetState<T> {
    results: Vec<Option<Result<T>>>,
    remaining: usize,
}

impl<T> TaskSet<T> {
    fn new(n: usize) -> Arc<TaskSet<T>> {
        Arc::new(TaskSet {
            state: Mutex::new(SetState {
                results: (0..n).map(|_| None).collect(),
                remaining: n,
            }),
            done: Condvar::new(),
        })
    }

    fn complete(&self, index: usize, result: Result<T>) {
        let mut state = self.state.lock().expect("task set lock");
        debug_assert!(state.results[index].is_none(), "morsel completed twice");
        state.results[index] = Some(result);
        state.remaining -= 1;
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every slot is filled, then returns the results in
    /// submission (partition) order.
    fn wait(&self) -> Vec<Result<T>> {
        let mut state = self.state.lock().expect("task set lock");
        while state.remaining > 0 {
            state = self.done.wait(state).expect("task set lock");
        }
        state
            .results
            .drain(..)
            .map(|slot| slot.expect("all morsels completed"))
            .collect()
    }
}

/// A typed morsel: one partition's work, returning that partition's result.
pub(crate) type Morsel<T> = Box<dyn FnOnce() -> Result<T> + Send>;

enum PoolRef {
    /// Not yet resolved; the hint is the context's resolved parallelism
    /// and sizes the global pool if this session is the one to create it.
    Auto(usize),
    Ready(Arc<WorkerPool>),
}

struct SessionState {
    pool: PoolRef,
    queue: Option<Arc<QueryQueue>>,
    events: Option<Arc<EventLog>>,
}

/// One query's attachment to the worker pool, owned by its
/// [`ExecContext`](crate::ExecContext). Lazily resolves the pool (the
/// process-wide one unless a private pool was attached) and registers the
/// query's task queue on first fan-out; unregisters on drop.
pub struct PoolSession {
    state: Mutex<SessionState>,
}

impl std::fmt::Debug for PoolSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("session lock");
        f.debug_struct("PoolSession")
            .field("registered", &state.queue.is_some())
            .finish()
    }
}

impl PoolSession {
    /// A session that will attach to the process-wide pool, sizing it with
    /// `hint` workers if it does not exist yet.
    pub(crate) fn auto(hint: usize) -> Arc<PoolSession> {
        Arc::new(PoolSession {
            state: Mutex::new(SessionState {
                pool: PoolRef::Auto(hint.max(1)),
                queue: None,
                events: None,
            }),
        })
    }

    /// Pins this session to `pool` instead of the process-wide one. Used
    /// by tests that need an exactly-sized private pool. No-op after the
    /// session has already registered with a pool.
    pub(crate) fn set_pool(&self, pool: Arc<WorkerPool>) {
        let mut state = self.state.lock().expect("session lock");
        if state.queue.is_none() {
            state.pool = PoolRef::Ready(pool);
        }
    }

    /// Attaches an event log so registration records `QueryQueued` /
    /// `AdmissionWait` events.
    pub(crate) fn set_events(&self, events: Arc<EventLog>) {
        self.state.lock().expect("session lock").events = Some(events);
    }

    /// Resolves the pool and this query's queue, registering on first use.
    fn attach(&self, control: &QueryControl) -> Result<(Arc<WorkerPool>, Arc<QueryQueue>)> {
        let mut state = self.state.lock().expect("session lock");
        let pool = match &state.pool {
            PoolRef::Ready(pool) => Arc::clone(pool),
            PoolRef::Auto(hint) => {
                let pool = WorkerPool::global(*hint);
                state.pool = PoolRef::Ready(Arc::clone(&pool));
                pool
            }
        };
        let queue = match &state.queue {
            Some(queue) => Arc::clone(queue),
            None => {
                let queue = pool.register_query(control.clone(), state.events.as_ref())?;
                state.queue = Some(Arc::clone(&queue));
                queue
            }
        };
        Ok((pool, queue))
    }

    /// Runs a batch of morsels on the pool and returns their results in
    /// submission (partition) order; on failure, the first error in that
    /// order wins — the same semantics as the old scoped-thread driver.
    ///
    /// The calling thread helps drain its own queue while waiting, so a
    /// batch always makes progress even when every pool worker is busy on
    /// other queries.
    pub(crate) fn run_morsels<T: Send + 'static>(
        &self,
        control: &QueryControl,
        morsels: Vec<Morsel<T>>,
    ) -> Result<Vec<T>> {
        let (pool, queue) = self.attach(control)?;
        let set = TaskSet::new(morsels.len());
        let tasks: Vec<Task> = morsels
            .into_iter()
            .enumerate()
            .map(|(i, morsel)| {
                let set = Arc::clone(&set);
                let task: Task = Box::new(move |gate: Result<()>| {
                    let result = match gate {
                        Ok(()) => morsel(),
                        Err(e) => Err(e),
                    };
                    set.complete(i, result);
                });
                task
            })
            .collect();
        pool.core.sched.submit(&queue, tasks);
        while let Some(task) = pool.core.sched.steal_own(&queue) {
            pool.core.run(task, &queue, true);
        }
        set.wait().into_iter().collect()
    }
}

impl Drop for PoolSession {
    fn drop(&mut self) {
        let state = self.state.lock().expect("session lock");
        if let (PoolRef::Ready(pool), Some(queue)) = (&state.pool, &state.queue) {
            pool.core.sched.unregister(queue.id());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EngineError;
    use std::sync::atomic::Ordering;

    fn session_on(pool: &Arc<WorkerPool>) -> Arc<PoolSession> {
        let session = PoolSession::auto(1);
        session.set_pool(Arc::clone(pool));
        session
    }

    #[test]
    fn batch_results_come_back_in_partition_order() {
        let pool = WorkerPool::new(4);
        let session = session_on(&pool);
        let control = QueryControl::unbounded();
        let morsels: Vec<Morsel<usize>> = (0..32)
            .map(|i| {
                let m: Morsel<usize> = Box::new(move || Ok(i));
                m
            })
            .collect();
        let out = session.run_morsels(&control, morsels).unwrap();
        assert_eq!(out, (0..32).collect::<Vec<_>>());
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn first_error_in_partition_order_wins() {
        let pool = WorkerPool::new(2);
        let session = session_on(&pool);
        let control = QueryControl::unbounded();
        let morsels: Vec<Morsel<usize>> = (0..8)
            .map(|i| {
                let m: Morsel<usize> = Box::new(move || {
                    if i >= 3 {
                        Err(EngineError::Plan(format!("boom {i}")))
                    } else {
                        Ok(i)
                    }
                });
                m
            })
            .collect();
        let err = session.run_morsels(&control, morsels).unwrap_err();
        assert_eq!(
            err.to_string(),
            EngineError::Plan("boom 3".into()).to_string()
        );
    }

    #[test]
    fn cancelled_query_drops_queued_morsels() {
        let pool = WorkerPool::new(2);
        let session = session_on(&pool);
        let control = QueryControl::unbounded();
        control.cancel();
        let ran = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let morsels: Vec<Morsel<()>> = (0..16)
            .map(|_| {
                let ran = Arc::clone(&ran);
                let m: Morsel<()> = Box::new(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                });
                m
            })
            .collect();
        let err = session.run_morsels(&control, morsels).unwrap_err();
        assert!(matches!(err, EngineError::Cancelled));
        assert_eq!(
            ran.load(Ordering::Relaxed),
            0,
            "dropped morsels must not run"
        );
        let snap = pool.metrics_snapshot();
        assert_eq!(snap.value("ongoingdb_pool_tasks_dropped"), 16);
        assert_eq!(snap.value("ongoingdb_pool_tasks_executed"), 0);
    }

    #[test]
    fn single_worker_pool_interleaves_two_queries() {
        // With one worker busy on a long morsel, a second query's single
        // morsel must still complete before the first query's large
        // backlog drains — round-robin at the scheduler plus submitter
        // self-help make that deterministic.
        let pool = WorkerPool::new(1);
        let heavy_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let pool2 = Arc::clone(&pool);
        let heavy_flag = Arc::clone(&heavy_done);
        let heavy = std::thread::spawn(move || {
            let session = session_on(&pool2);
            let control = QueryControl::unbounded();
            let morsels: Vec<Morsel<()>> = (0..200)
                .map(|_| {
                    let m: Morsel<()> = Box::new(|| {
                        std::thread::sleep(Duration::from_millis(1));
                        Ok(())
                    });
                    m
                })
                .collect();
            session.run_morsels(&control, morsels).unwrap();
            heavy_flag.store(true, Ordering::Relaxed);
        });
        // Give the heavy query a head start so its backlog is queued.
        std::thread::sleep(Duration::from_millis(20));
        let session = session_on(&pool);
        let control = QueryControl::unbounded();
        let light: Vec<Morsel<u32>> = vec![Box::new(|| Ok(7))];
        let out = session.run_morsels(&control, light).unwrap();
        assert_eq!(out, vec![7]);
        assert!(
            !heavy_done.load(Ordering::Relaxed),
            "light query must finish while the heavy query is still in flight"
        );
        heavy.join().unwrap();
    }

    #[test]
    fn pool_reports_configured_thread_count() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let snap = pool.metrics_snapshot();
        assert_eq!(snap.value("ongoingdb_pool_threads"), 3);
    }
}
