//! The database catalog: named base ongoing relations.
//!
//! This is the substrate role PostgreSQL plays in the paper's prototype:
//! somewhere to register base relations, look them up during planning, and
//! scan them during execution. Tables are shared behind a lock so plans can
//! be executed concurrently (e.g. a bench harness instantiating a
//! materialized view from several threads).

use crate::error::{EngineError, Result};
use crate::exec::index::IntervalIndex;
use crate::stats::{analyze_relation, TableStatistics};
use ongoing_relation::{OngoingRelation, Schema};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Minimum number of modified rows before an analyzed table is considered
/// stale (PostgreSQL's autovacuum-style floor).
const AUTO_ANALYZE_MIN: u64 = 50;
/// Additional stale fraction of the analyzed row count.
const AUTO_ANALYZE_FRAC: f64 = 0.1;

/// Statistics bookkeeping per table: the collected statistics (if any) plus
/// the modification volume since they were collected.
#[derive(Debug, Default, Clone)]
struct StatsState {
    stats: Option<Arc<TableStatistics>>,
    mods_since_analyze: u64,
}

impl StatsState {
    /// Are the collected statistics stale relative to the modifications
    /// that happened since?
    fn stale(&self) -> bool {
        match &self.stats {
            Some(s) => {
                self.mods_since_analyze
                    > AUTO_ANALYZE_MIN + (AUTO_ANALYZE_FRAC * s.rows as f64) as u64
            }
            None => false,
        }
    }
}

/// A registered table.
#[derive(Debug)]
pub struct Table {
    name: String,
    data: OngoingRelation,
    /// Lazily built interval indexes, keyed by interval column.
    indexes: Mutex<HashMap<usize, Arc<IntervalIndex>>>,
    /// `ANALYZE` statistics and staleness accounting.
    stats: Mutex<StatsState>,
}

impl Table {
    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stored relation.
    pub fn data(&self) -> &OngoingRelation {
        &self.data
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.data.schema()
    }

    /// The collected `ANALYZE` statistics, if any.
    pub fn statistics(&self) -> Option<Arc<TableStatistics>> {
        self.stats.lock().stats.clone()
    }

    /// Collects (or refreshes) statistics over the stored relation and
    /// resets the staleness counter — the `ANALYZE` primitive.
    pub fn analyze(&self) -> Arc<TableStatistics> {
        let stats = Arc::new(analyze_relation(&self.data));
        *self.stats.lock() = StatsState {
            stats: Some(Arc::clone(&stats)),
            mods_since_analyze: 0,
        };
        stats
    }

    /// Returns (building and caching on first use) the envelope interval
    /// index over the interval attribute at `col`. Tuple positions in the
    /// relation serve as index payload ids.
    ///
    /// The cache lock is held across the build: with partition-parallel
    /// executors several workers can request the same index at once, and a
    /// check-then-build race would make each of them build it.
    pub fn interval_index(&self, col: usize) -> Result<Arc<IntervalIndex>> {
        let mut indexes = self.indexes.lock();
        if let Some(idx) = indexes.get(&col) {
            return Ok(Arc::clone(idx));
        }
        let attr = self.data.schema().attr(col)?;
        if !matches!(
            attr.ty,
            ongoing_relation::ValueType::OngoingInterval | ongoing_relation::ValueType::Span
        ) {
            return Err(EngineError::Plan(format!(
                "attribute `{}` is not an interval column",
                attr.name
            )));
        }
        let entries = self
            .data
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.value(col).as_interval().map(|iv| (iv, i)));
        let built = Arc::new(IntervalIndex::build(entries));
        indexes.insert(col, Arc::clone(&built));
        Ok(built)
    }

    /// Publishes a relation version as a table: the pending insert tail is
    /// sealed so readers' forks are pure reference bumps.
    fn with_state(name: &str, mut data: OngoingRelation, stats: StatsState) -> Arc<Table> {
        data.seal_pending();
        Arc::new(Table {
            name: name.to_string(),
            data,
            indexes: Mutex::new(HashMap::new()),
            stats: Mutex::new(stats),
        })
    }
}

/// Positional tuple diff between two relation versions — the staleness
/// fallback when a `modify_table` closure replaced the relation wholesale
/// instead of editing the fork (in-place rewrites count every rewritten
/// row, not just the length delta).
fn positional_diff(old: &OngoingRelation, new: &OngoingRelation) -> u64 {
    let mut a = old.iter();
    let mut b = new.iter();
    let mut changed = 0u64;
    loop {
        match (a.next(), b.next()) {
            (None, None) => break,
            (Some(x), Some(y)) => changed += u64::from(x != y),
            _ => changed += 1,
        }
    }
    changed
}

/// An in-memory database of ongoing relations.
#[derive(Debug, Default)]
pub struct Database {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Registers a base relation under `name`.
    pub fn create_table(&self, name: &str, data: OngoingRelation) -> Result<()> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(EngineError::DuplicateTable(name.to_string()));
        }
        tables.insert(
            name.to_string(),
            Table::with_state(name, data, StatsState::default()),
        );
        Ok(())
    }

    /// Replaces (or creates) a table. Any previously collected statistics
    /// are discarded (the new data is unknown to the subsystem).
    pub fn put_table(&self, name: &str, data: OngoingRelation) {
        let mut tables = self.tables.write();
        tables.insert(
            name.to_string(),
            Table::with_state(name, data, StatsState::default()),
        );
    }

    /// Applies a modification to a catalog-resident table. Callers run
    /// [`Modifier`](crate::modify::Modifier) operations (or any other
    /// rewrite) inside the closure; the catalog swaps in the modified
    /// version, invalidates the interval indexes, and advances the
    /// statistics staleness counter by the *logical row-write delta* the
    /// closure produced — exact, straight from the copy-on-write store, so
    /// a one-row edit counts one row no matter where in the table it sits
    /// (and no matter how much copy-on-write bookkeeping it triggered).
    /// Once an *analyzed* table crosses the staleness threshold (50 rows +
    /// 10 % of the analyzed row count) its statistics are refreshed
    /// automatically; never-analyzed tables stay that way until an
    /// explicit `ANALYZE`. Statistics collected concurrently against the
    /// pre-modification snapshot are superseded by the swap (they
    /// described the old data).
    ///
    /// **Locking**: the heavy work — the closure, any statistics refresh,
    /// any compaction — runs entirely *off-lock* against a pinned fork of
    /// the current version; readers are never blocked by a writer. The
    /// write lock is taken only for a final pointer-equality
    /// compare-and-swap. If another writer replaced the table in between,
    /// nothing is applied and
    /// [`EngineError::ConcurrentModification`] is returned (retry against
    /// the new version). The fork shares all untouched chunks with the
    /// published version, so a modification costs O(rows touched), not
    /// O(table); when the accumulated delta outgrows the storage policy
    /// ([`ongoing_relation::store`]) the new version is compacted before
    /// publication.
    ///
    /// ```
    /// use ongoing_engine::{modify::Modifier, Database};
    /// use ongoing_core::{date::md, OngoingInterval};
    /// use ongoing_relation::{Expr, OngoingRelation, Schema, Value};
    ///
    /// let db = Database::new();
    /// let mut bugs = OngoingRelation::new(
    ///     Schema::builder().int("BID").interval("VT").build(),
    /// );
    /// bugs.insert(vec![
    ///     Value::Int(500),
    ///     Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
    /// ])
    /// .unwrap();
    /// db.create_table("B", bugs).unwrap();
    ///
    /// // Terminate bug 500 effective 09/01, through the catalog.
    /// let n = db
    ///     .modify_table("B", |rel| {
    ///         Modifier::new(rel, "VT")?.terminate(&Expr::Col(0).eq(Expr::lit(500i64)), md(9, 1))
    ///     })
    ///     .unwrap();
    /// assert_eq!(n, 1);
    /// ```
    pub fn modify_table<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut OngoingRelation) -> Result<T>,
    ) -> Result<T> {
        // Pin the current version (short read lock) and fork it: the fork
        // shares every sealed chunk, so this is O(#chunks), not O(rows).
        let table = self.table(name)?;
        let mut data = table.data.clone();
        let base_writes = data.logical_writes();
        // The user closure runs off-lock against the private fork.
        let out = f(&mut data)?;
        // Touched rows, exactly: the logical rows the closure wrote on
        // the fork (inserts, replacements, tombstones — not physical
        // bookkeeping like overlay copy-on-write). A closure that
        // *replaced* the relation wholesale (`*rel = built`) severs the
        // storage lineage (O(1) first-chunk probe) and resets the
        // counter; it already paid O(table) to rebuild, so falling back
        // to a positional diff stays within its own cost. The probe can
        // be fooled by swapping in an *older* pinned version (it shares
        // the first chunk but its counter ran backwards), so a counter
        // regression also falls back to the diff.
        let touched = if data.derives_from(&table.data) && data.logical_writes() >= base_writes {
            (data.logical_writes() - base_writes).max(1)
        } else {
            positional_diff(&table.data, &data).max(1)
        };
        let mut state = table.stats.lock().clone();
        state.mods_since_analyze += touched;
        if state.stale() {
            // Statistics refresh also runs off-lock, on the fork.
            state = StatsState {
                stats: Some(Arc::new(analyze_relation(&data))),
                mods_since_analyze: 0,
            };
        }
        if data.should_compact() {
            // Fold the accumulated delta before publication (off-lock;
            // amortized O(1) per written row under the storage policy).
            data.compact();
        }
        let new_table = Table::with_state(name, data, state);
        // Publication: short write lock, pointer-equality compare-and-swap.
        let mut tables = self.tables.write();
        match tables.get(name) {
            Some(current) if Arc::ptr_eq(current, &table) => {
                tables.insert(name.to_string(), new_table);
                Ok(out)
            }
            Some(_) => Err(EngineError::ConcurrentModification(name.to_string())),
            None => Err(EngineError::UnknownTable(name.to_string())),
        }
    }

    /// Collects statistics for one table (`ANALYZE <table>`).
    pub fn analyze(&self, name: &str) -> Result<Arc<TableStatistics>> {
        Ok(self.table(name)?.analyze())
    }

    /// Collects statistics for every table (bare `ANALYZE`), returning the
    /// per-table results in name order.
    pub fn analyze_all(&self) -> Vec<(String, Arc<TableStatistics>)> {
        let tables: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
        tables
            .into_iter()
            .map(|t| {
                let s = t.analyze();
                (t.name.clone(), s)
            })
            .collect()
    }

    /// Drops a table; errors if it does not exist.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let mut tables = self.tables.write();
        tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// The registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_relation::{Schema, Value};

    fn rel() -> OngoingRelation {
        let mut r = OngoingRelation::new(Schema::builder().int("X").build());
        r.insert(vec![Value::Int(1)]).unwrap();
        r
    }

    #[test]
    fn create_lookup_drop() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        assert_eq!(db.table("t").unwrap().data().len(), 1);
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        db.drop_table("t").unwrap();
        assert!(matches!(db.table("t"), Err(EngineError::UnknownTable(_))));
    }

    #[test]
    fn duplicate_create_fails() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        assert!(matches!(
            db.create_table("t", rel()),
            Err(EngineError::DuplicateTable(_))
        ));
    }

    #[test]
    fn put_table_replaces() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        let mut bigger = rel();
        bigger.insert(vec![Value::Int(2)]).unwrap();
        db.put_table("t", bigger);
        assert_eq!(db.table("t").unwrap().data().len(), 2);
    }

    #[test]
    fn drop_missing_fails() {
        let db = Database::new();
        assert!(db.drop_table("nope").is_err());
    }

    #[test]
    fn analyze_attaches_statistics_and_put_table_clears_them() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        assert!(db.table("t").unwrap().statistics().is_none());
        let stats = db.analyze("t").unwrap();
        assert_eq!(stats.rows, 1);
        assert!(db.table("t").unwrap().statistics().is_some());
        // Replacing the data discards the now-unrelated statistics.
        db.put_table("t", rel());
        assert!(db.table("t").unwrap().statistics().is_none());
    }

    #[test]
    fn modify_table_applies_and_counts() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        let n = db
            .modify_table("t", |r| {
                r.insert(vec![Value::Int(2)]).unwrap();
                Ok(r.len())
            })
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.table("t").unwrap().data().len(), 2);
        assert!(db.modify_table("nope", |_| Ok(())).is_err());
    }
}
