//! The database catalog: named base ongoing relations.
//!
//! This is the substrate role PostgreSQL plays in the paper's prototype:
//! somewhere to register base relations, look them up during planning, and
//! scan them during execution. Tables are shared behind a lock so plans can
//! be executed concurrently (e.g. a bench harness instantiating a
//! materialized view from several threads).
//!
//! A database is either in-memory ([`Database::new`]) or **durable**
//! ([`Database::open`]): backed by a write-ahead log, checksummed chunk
//! files and a checkpoint manifest (see [`crate::storage::durable`]).
//! In a durable database every publication is logged — and fsynced —
//! *before* it becomes visible, as an O(delta) journal of the physical
//! store mutations the closure performed; reopening after a crash
//! recovers exactly the committed prefix, lazily per table.

use crate::error::{EngineError, Result};
use crate::exec::index::IntervalIndex;
use crate::exec::ExecStats;
use crate::obs::{
    EngineEvent, EventRecord, MetricValue, MetricsSnapshot, Obs, DURABLE_METRIC_NAMES,
    STORE_METRIC_NAMES,
};
use crate::stats::{analyze_relation, TableStatistics};
use crate::storage::durable::{
    DurableGuard, DurableOptions, DurableState, DurableStats, RecoveredTable,
};
use ongoing_relation::{OngoingRelation, Schema};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Minimum number of modified rows before an analyzed table is considered
/// stale (PostgreSQL's autovacuum-style floor).
const AUTO_ANALYZE_MIN: u64 = 50;
/// Additional stale fraction of the analyzed row count.
const AUTO_ANALYZE_FRAC: f64 = 0.1;

/// Statistics bookkeeping per table: the collected statistics (if any) plus
/// the modification volume since they were collected.
#[derive(Debug, Default, Clone)]
struct StatsState {
    stats: Option<Arc<TableStatistics>>,
    mods_since_analyze: u64,
}

impl StatsState {
    /// Are the collected statistics stale relative to the modifications
    /// that happened since?
    fn stale(&self) -> bool {
        match &self.stats {
            Some(s) => {
                self.mods_since_analyze
                    > AUTO_ANALYZE_MIN + (AUTO_ANALYZE_FRAC * s.rows as f64) as u64
            }
            None => false,
        }
    }
}

/// A registered table.
#[derive(Debug)]
pub struct Table {
    name: String,
    data: OngoingRelation,
    /// Lazily built interval indexes, keyed by interval column.
    indexes: Mutex<HashMap<usize, Arc<IntervalIndex>>>,
    /// `ANALYZE` statistics and staleness accounting.
    stats: Mutex<StatsState>,
}

impl Table {
    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stored relation.
    pub fn data(&self) -> &OngoingRelation {
        &self.data
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.data.schema()
    }

    /// The collected `ANALYZE` statistics, if any.
    pub fn statistics(&self) -> Option<Arc<TableStatistics>> {
        self.stats.lock().stats.clone()
    }

    /// Collects (or refreshes) statistics over the stored relation and
    /// resets the staleness counter — the `ANALYZE` primitive.
    pub fn analyze(&self) -> Arc<TableStatistics> {
        let stats = Arc::new(analyze_relation(&self.data));
        *self.stats.lock() = StatsState {
            stats: Some(Arc::clone(&stats)),
            mods_since_analyze: 0,
        };
        stats
    }

    /// Returns (building and caching on first use) the envelope interval
    /// index over the interval attribute at `col`. Tuple positions in the
    /// relation serve as index payload ids.
    ///
    /// The cache lock is held across the build: with partition-parallel
    /// executors several workers can request the same index at once, and a
    /// check-then-build race would make each of them build it.
    pub fn interval_index(&self, col: usize) -> Result<Arc<IntervalIndex>> {
        let mut indexes = self.indexes.lock();
        if let Some(idx) = indexes.get(&col) {
            return Ok(Arc::clone(idx));
        }
        let attr = self.data.schema().attr(col)?;
        if !matches!(
            attr.ty,
            ongoing_relation::ValueType::OngoingInterval | ongoing_relation::ValueType::Span
        ) {
            return Err(EngineError::Plan(format!(
                "attribute `{}` is not an interval column",
                attr.name
            )));
        }
        let entries = self
            .data
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.value(col).as_interval().map(|iv| (iv, i)));
        let built = Arc::new(IntervalIndex::build(entries));
        indexes.insert(col, Arc::clone(&built));
        Ok(built)
    }

    /// Publishes a relation version as a table: the pending insert tail is
    /// sealed so readers' forks are pure reference bumps.
    fn with_state(name: &str, mut data: OngoingRelation, stats: StatsState) -> Arc<Table> {
        data.seal_pending();
        Arc::new(Table {
            name: name.to_string(),
            data,
            indexes: Mutex::new(HashMap::new()),
            stats: Mutex::new(stats),
        })
    }
}

/// Positional tuple diff between two relation versions — the staleness
/// fallback when a `modify_table` closure replaced the relation wholesale
/// instead of editing the fork (in-place rewrites count every rewritten
/// row, not just the length delta).
fn positional_diff(old: &OngoingRelation, new: &OngoingRelation) -> u64 {
    let mut a = old.iter();
    let mut b = new.iter();
    let mut changed = 0u64;
    loop {
        match (a.next(), b.next()) {
            (None, None) => break,
            (Some(x), Some(y)) => changed += u64::from(x != y),
            _ => changed += 1,
        }
    }
    changed
}

/// How [`Database::modify_table`] responds to publication conflicts.
///
/// A conflict means another writer published between this writer's version
/// pin and its compare-and-swap — the modification was not applied and is
/// simply re-run against the new current version. The policy bounds how
/// hard to try: a few optimistic free-running attempts with exponential
/// backoff, then entry into the table's *ordered writer queue* (a FIFO
/// ticket lock) so contended writers stop trampling each other and commit
/// in arrival order instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total publication attempts before surfacing
    /// [`EngineError::ConcurrentModification`]. At least 1.
    pub max_attempts: u32,
    /// Base backoff slept after the first conflict, doubled per further
    /// conflict up to [`max_backoff`](Self::max_backoff). Zero means
    /// yield-only.
    pub backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
    /// Free-running attempts before joining the ordered writer queue.
    /// `0` queues from the first attempt (strict FIFO writers).
    pub queue_after: u32,
    /// Total wall-clock budget for the whole `modify_table` call — every
    /// closure run, backoff sleep and writer-queue wait counts against it.
    /// Once it expires the call returns [`EngineError::DeadlineExceeded`]
    /// (abandoning a held queue ticket rather than blocking on it), with
    /// the modification **not** applied: the deadline is always checked
    /// before the publication point, never between logging and
    /// visibility, so the store is never torn. `None` (the default)
    /// means unbounded.
    pub timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 16,
            backoff: Duration::from_micros(20),
            max_backoff: Duration::from_millis(2),
            queue_after: 2,
            timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — the pre-retry behaviour: the first
    /// conflict surfaces as [`EngineError::ConcurrentModification`].
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    fn backoff_for(&self, failed_attempts: u32) -> Duration {
        let exp = failed_attempts.saturating_sub(1).min(16);
        self.backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff)
    }
}

/// A FIFO ticket lock: writers draw a ticket and are served strictly in
/// draw order — the "ordered retry queue" contended `modify_table` calls
/// enter. Unlike a plain mutex there is no barging: a writer that has
/// waited longest publishes next, so no writer starves however heavy the
/// contention.
#[derive(Debug, Default)]
struct TicketGate {
    next: AtomicU64,
    serving: AtomicU64,
    /// Tickets whose waiters gave up (deadline expiry) before being
    /// served. Service skips them; the lock serializes a waiter's
    /// take-the-pass-or-abandon decision against the holder's advance, so
    /// a ticket is either served or skipped — never both, never neither.
    abandoned: Mutex<HashSet<u64>>,
}

thread_local! {
    /// Gates this thread currently holds. A pass is released only after
    /// the closure returns, so re-entering a held gate (a closure nesting
    /// a gated `modify_table` on the same table) would self-deadlock —
    /// [`TicketGate::enter`] detects that and lets the nested call run
    /// ungated instead.
    static HELD_GATES: std::cell::RefCell<Vec<usize>> = const { std::cell::RefCell::new(Vec::new()) };
}

struct TicketPass<'a> {
    gate: &'a TicketGate,
    id: usize,
}

impl TicketGate {
    /// Draws a ticket and blocks until it is served or `deadline` passes.
    /// Returns `Ok(None)` when this thread already holds the gate (nested
    /// modification) — the caller proceeds ungated rather than
    /// deadlocking on itself — and [`EngineError::DeadlineExceeded`] when
    /// the wait outlived the deadline (the ticket is abandoned, so the
    /// queue flows on without it).
    fn enter(&self, deadline: Option<Instant>) -> Result<Option<TicketPass<'_>>> {
        let id = self as *const TicketGate as usize;
        let reentrant = HELD_GATES.with(|held| {
            let mut held = held.borrow_mut();
            if held.contains(&id) {
                return true;
            }
            held.push(id);
            false
        });
        if reentrant {
            return Ok(None);
        }
        let ticket = self.next.fetch_add(1, Ordering::SeqCst);
        let mut spins = 0u32;
        while self.serving.load(Ordering::SeqCst) != ticket {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                // Too late. Under the abandoned-set lock either take the
                // service that arrived in the meantime — passing it on as
                // an immediately-dropped pass would — or mark the ticket
                // abandoned so the current holder's drop skips it.
                let mut abandoned = self.abandoned.lock();
                if self.serving.load(Ordering::SeqCst) == ticket {
                    self.advance_locked(&mut abandoned);
                } else {
                    abandoned.insert(ticket);
                }
                drop(abandoned);
                HELD_GATES.with(|held| held.borrow_mut().retain(|&g| g != id));
                return Err(EngineError::DeadlineExceeded);
            }
            spins += 1;
            if spins < 32 {
                std::hint::spin_loop();
            } else if spins < 256 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        Ok(Some(TicketPass { gate: self, id }))
    }

    /// Advances service by one ticket, then past any consecutively
    /// abandoned ones. Caller holds the abandoned-set lock.
    fn advance_locked(&self, abandoned: &mut HashSet<u64>) {
        let mut now = self.serving.fetch_add(1, Ordering::SeqCst) + 1;
        while abandoned.remove(&now) {
            now = self.serving.fetch_add(1, Ordering::SeqCst) + 1;
        }
    }
}

impl Drop for TicketPass<'_> {
    fn drop(&mut self) {
        HELD_GATES.with(|held| held.borrow_mut().retain(|&g| g != self.id));
        let mut abandoned = self.gate.abandoned.lock();
        self.gate.advance_locked(&mut abandoned);
    }
}

/// One catalog slot: a materialized table, or a recovered-but-unloaded
/// plan a durable database holds until the table is first touched (cold
/// opens don't pay for tables nobody reads). Slots only ever go cold →
/// ready; a published table never reverts.
#[derive(Debug, Clone)]
enum TableSlot {
    Ready(Arc<Table>),
    Cold(Arc<RecoveredTable>),
}

/// A database of ongoing relations — in-memory by default, durable when
/// opened with [`Database::open`].
#[derive(Debug, Default)]
pub struct Database {
    tables: RwLock<BTreeMap<String, TableSlot>>,
    /// Per-table ordered writer queues (see [`RetryPolicy::queue_after`]).
    /// Keyed by name, not by table version — the gate must survive
    /// publications, which replace the `Arc<Table>`.
    gates: Mutex<HashMap<String, Arc<TicketGate>>>,
    /// The durable backing (WAL, chunk files, manifest), if any.
    ///
    /// **Lock order**: the durable commit guard is always acquired
    /// *before* `tables` — holding it is what keeps a compare-and-swap
    /// precondition valid across the WAL append and serializes
    /// publications against checkpoint garbage collection.
    durable: Option<DurableState>,
    /// The observability bundle: metrics registry, event ring, slow-query
    /// threshold. Shared (`Arc`) with the storage layer's hooks.
    obs: Arc<Obs>,
    /// The versioned result cache (see [`crate::exec::rescache`]): executed
    /// plan results keyed by plan fingerprint and table-version set,
    /// invalidated for free because publications swap the table `Arc`.
    results: crate::exec::ResultCache,
}

impl Database {
    /// An empty in-memory database (nothing is persisted).
    pub fn new() -> Self {
        Database::default()
    }

    /// Opens (creating or recovering) a durable database at `path` with
    /// default [`DurableOptions`].
    ///
    /// Recovery reads the checkpoint manifest, scans the write-ahead log
    /// — truncating a torn tail (an append the crash cut short), erroring
    /// with [`EngineError::CorruptStorage`] on mid-log damage — and folds
    /// the committed records into per-table plans. Tables materialize
    /// lazily on first access; opening a large database reads no chunk
    /// files.
    pub fn open(path: impl AsRef<Path>) -> Result<Database> {
        Database::open_with(path, DurableOptions::default())
    }

    /// [`open`](Database::open) with explicit [`DurableOptions`].
    pub fn open_with(path: impl AsRef<Path>, opts: DurableOptions) -> Result<Database> {
        Database::open_with_vfs(path, opts, Arc::new(crate::storage::vfs::RealFs))
    }

    /// [`open_with`](Database::open_with) over an explicit [`Vfs`] — how
    /// fault-injection tests run the whole engine against a flaky disk.
    pub fn open_with_vfs(
        path: impl AsRef<Path>,
        opts: DurableOptions,
        vfs: Arc<dyn crate::storage::vfs::Vfs>,
    ) -> Result<Database> {
        let (durable, recovered) = DurableState::open_with_vfs(path.as_ref(), opts, vfs)?;
        let tables = recovered
            .into_iter()
            .map(|plan| (plan.state.name.clone(), TableSlot::Cold(Arc::new(plan))))
            .collect();
        let obs: Arc<Obs> = Arc::default();
        durable.attach_obs(Arc::clone(&obs));
        Ok(Database {
            tables: RwLock::new(tables),
            gates: Mutex::new(HashMap::new()),
            durable: Some(durable),
            obs,
            results: crate::exec::ResultCache::default(),
        })
    }

    /// Is this database durable?
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The durable database directory, if durable.
    pub fn path(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir())
    }

    /// A snapshot of the durable layer's work counters, if durable.
    pub fn durable_stats(&self) -> Option<DurableStats> {
        self.durable.as_ref().map(|d| d.stats())
    }

    /// The observability bundle: the metrics registry, the event ring and
    /// the slow-query threshold. Shared with the storage layer's hooks.
    pub fn observability(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The versioned result cache consulted by the SQL execution path.
    /// Budgeted by [`RESULT_CACHE_BUDGET_ENV`](crate::exec::RESULT_CACHE_BUDGET_ENV)
    /// at construction (`0` disables).
    pub fn result_cache(&self) -> &crate::exec::ResultCache {
        &self.results
    }

    /// Replaces the result cache with one budgeted at `bytes` (`0`
    /// disables caching). The environment variable sets the initial
    /// budget; this is for embedders and tests that size it
    /// programmatically. Any cached entries are discarded.
    pub fn configure_result_cache(&mut self, bytes: u64) {
        self.results = crate::exec::ResultCache::with_budget(bytes);
    }

    /// A point-in-time snapshot of every metric the database exposes: the
    /// registry's own counters/histograms (exec work units, CAS attempts,
    /// publications, queries) plus derived views — every
    /// [`DurableStats`] field under its stable `ongoingdb_*` name and the
    /// store's write-path counters summed over the materialized tables.
    /// The typed structs stay authoritative; this is a read-only join of
    /// them under one namespace.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.obs.metrics.snapshot();
        if let Some(d) = self.durable_stats() {
            let fields = [
                d.wal_records,
                d.wal_bytes,
                d.wal_tuples,
                d.chunk_files,
                d.chunk_tuples,
                d.tuples_loaded,
                d.checkpoints,
                d.cache_hits,
                d.cache_misses,
                d.cache_evictions,
                d.cache_resident_bytes,
                d.cache_peak_bytes,
            ];
            snap.merge(MetricsSnapshot::from_values(
                DURABLE_METRIC_NAMES.iter().zip(fields).map(|(name, v)| {
                    // Resident bytes can fall (evictions), so those two are
                    // gauges; everything else is monotone per open.
                    let value = if name.ends_with("_bytes") && name.contains("cache") {
                        MetricValue::Gauge(v)
                    } else {
                        MetricValue::Counter(v)
                    };
                    (name.to_string(), value)
                }),
            ));
        }
        let mut work = ongoing_relation::StoreWork::default();
        for slot in self.tables.read().values() {
            // Cold tables have performed no write work since open; metrics
            // must never force a materialization.
            if let TableSlot::Ready(t) = slot {
                work.add(&t.data().work_counters());
            }
        }
        let store = [work.write_work, work.logical_writes, work.qual_work];
        snap.merge(MetricsSnapshot::from_values(
            STORE_METRIC_NAMES
                .iter()
                .zip(store)
                .map(|(name, v)| (name.to_string(), MetricValue::Gauge(v))),
        ));
        // The worker pool is process-wide, not per-database, but its
        // `ongoingdb_pool_*` series belong in the same exposition. Peek
        // only — a metrics scrape must never be the thing that spins up
        // the pool.
        if let Some(pool) = crate::exec::WorkerPool::global_peek() {
            snap.merge(pool.metrics_snapshot());
        }
        snap
    }

    /// The Prometheus-style text exposition of
    /// [`metrics_snapshot`](Self::metrics_snapshot).
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().render_text()
    }

    /// The retained engine events, oldest first (see
    /// [`EventLog`](crate::obs::EventLog)).
    pub fn recent_events(&self) -> Vec<EventRecord> {
        self.obs.events.recent()
    }

    /// Folds one finished query into the metrics registry and — past the
    /// slow-query threshold — the event ring. The `sql`/API entry points
    /// call this automatically; callers driving compiled plans by hand can
    /// report through it too.
    pub fn record_query(&self, label: &str, stats: &ExecStats, wall: Duration) {
        self.obs.observe_query(label, stats, wall.as_nanos() as u64);
    }

    /// Forces a checkpoint: folds the WAL into chunk files and a fresh
    /// manifest, truncates the log, and garbage-collects unreferenced
    /// chunk files. Errors on an in-memory database.
    pub fn persist(&self) -> Result<()> {
        let durable = self
            .durable
            .as_ref()
            .ok_or_else(|| EngineError::Storage("database is not durable".into()))?;
        let mut guard = durable.lock();
        self.checkpoint_locked(&mut guard)
    }

    /// Registers a base relation under `name`.
    pub fn create_table(&self, name: &str, data: OngoingRelation) -> Result<()> {
        let table = Table::with_state(name, data, StatsState::default());
        match &self.durable {
            Some(durable) => {
                let mut guard = durable.lock();
                if self.tables.read().contains_key(name) {
                    return Err(EngineError::DuplicateTable(name.to_string()));
                }
                guard.append_state(name, table.data())?;
                self.tables
                    .write()
                    .insert(name.to_string(), TableSlot::Ready(table));
                if guard.needs_checkpoint() {
                    self.checkpoint_locked(&mut guard)?;
                }
            }
            None => {
                let mut tables = self.tables.write();
                if tables.contains_key(name) {
                    return Err(EngineError::DuplicateTable(name.to_string()));
                }
                tables.insert(name.to_string(), TableSlot::Ready(table));
            }
        }
        Ok(())
    }

    /// Replaces (or creates) a table. Any previously collected statistics
    /// are discarded (the new data is unknown to the subsystem). On a
    /// durable database the replacement is logged as a full-state record
    /// before it becomes visible.
    pub fn put_table(&self, name: &str, data: OngoingRelation) -> Result<()> {
        let table = Table::with_state(name, data, StatsState::default());
        match &self.durable {
            Some(durable) => {
                let mut guard = durable.lock();
                guard.append_state(name, table.data())?;
                self.tables
                    .write()
                    .insert(name.to_string(), TableSlot::Ready(table));
                if guard.needs_checkpoint() {
                    self.checkpoint_locked(&mut guard)?;
                }
            }
            None => {
                self.tables
                    .write()
                    .insert(name.to_string(), TableSlot::Ready(table));
            }
        }
        Ok(())
    }

    /// Applies a modification to a catalog-resident table. Callers run
    /// [`Modifier`](crate::modify::Modifier) operations (or any other
    /// rewrite) inside the closure; the catalog swaps in the modified
    /// version, invalidates the interval indexes, and advances the
    /// statistics staleness counter by the *logical row-write delta* the
    /// closure produced — exact, straight from the copy-on-write store, so
    /// a one-row edit counts one row no matter where in the table it sits
    /// (and no matter how much copy-on-write bookkeeping it triggered).
    /// Once an *analyzed* table crosses the staleness threshold (50 rows +
    /// 10 % of the analyzed row count) its statistics are refreshed
    /// automatically; never-analyzed tables stay that way until an
    /// explicit `ANALYZE`. Statistics collected concurrently against the
    /// pre-modification snapshot are superseded by the swap (they
    /// described the old data).
    ///
    /// **Locking**: the heavy work — the closure, any statistics refresh,
    /// any compaction — runs entirely *off-lock* against a pinned fork of
    /// the current version; readers are never blocked by a writer. The
    /// write lock is taken only for a final pointer-equality
    /// compare-and-swap. If another writer replaced the table in between,
    /// nothing is applied and the modification is **retried** against the
    /// new current version under the default [`RetryPolicy`]: a few
    /// free-running attempts with exponential backoff, then the table's
    /// ordered (FIFO) writer queue. Only once the whole budget is
    /// exhausted does [`EngineError::ConcurrentModification`] surface,
    /// carrying the table name and the attempts made. Because conflicts
    /// re-run it, the closure must be safe to execute multiple times —
    /// only its *last* run is published (don't accumulate into captured
    /// state across calls, and don't modify other catalog tables from
    /// inside). The fork shares all untouched chunks with the published
    /// version, so a modification costs O(rows touched), not O(table);
    /// when the accumulated delta outgrows the storage policy
    /// ([`ongoing_relation::store`]) fragmented chunk *runs* are folded
    /// before publication (O(fragmented run), with the whole-table fold
    /// kept only as a policy backstop).
    ///
    /// ```
    /// use ongoing_engine::{modify::Modifier, Database};
    /// use ongoing_core::{date::md, OngoingInterval};
    /// use ongoing_relation::{Expr, OngoingRelation, Schema, Value};
    ///
    /// let db = Database::new();
    /// let mut bugs = OngoingRelation::new(
    ///     Schema::builder().int("BID").interval("VT").build(),
    /// );
    /// bugs.insert(vec![
    ///     Value::Int(500),
    ///     Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
    /// ])
    /// .unwrap();
    /// db.create_table("B", bugs).unwrap();
    ///
    /// // Terminate bug 500 effective 09/01, through the catalog.
    /// let n = db
    ///     .modify_table("B", |rel| {
    ///         Modifier::new(rel, "VT")?.terminate(&Expr::Col(0).eq(Expr::lit(500i64)), md(9, 1))
    ///     })
    ///     .unwrap();
    /// assert_eq!(n, 1);
    /// ```
    pub fn modify_table<T>(
        &self,
        name: &str,
        f: impl FnMut(&mut OngoingRelation) -> Result<T>,
    ) -> Result<T> {
        self.modify_table_with(name, RetryPolicy::default(), f)
            .map(|(out, _attempts)| out)
    }

    /// [`modify_table`](Self::modify_table) under an explicit
    /// [`RetryPolicy`], additionally reporting how many publication
    /// attempts were made (1 = no conflict) — the counter the concurrency
    /// tests assert on.
    pub fn modify_table_with<T>(
        &self,
        name: &str,
        policy: RetryPolicy,
        mut f: impl FnMut(&mut OngoingRelation) -> Result<T>,
    ) -> Result<(T, u32)> {
        let max_attempts = policy.max_attempts.max(1);
        let deadline = policy.timeout.map(|t| Instant::now() + t);
        let mut attempt = 0u32;
        loop {
            // The total deadline is polled before every attempt, before
            // every backoff sleep (which is additionally capped to the
            // remaining budget) and inside the ticket-gate wait — so no
            // path blocks past it unboundedly. It is never polled between
            // the WAL append and the publication, so an expired deadline
            // can only mean "not applied", never a torn store.
            if deadline.is_some_and(|d| Instant::now() >= d) {
                self.obs.events.record(EngineEvent::DeadlineExceeded {
                    context: name.to_string(),
                });
                return Err(EngineError::DeadlineExceeded);
            }
            attempt += 1;
            // Contended writers past the free-running budget commit in
            // strict arrival order through the table's ticket gate; the
            // pass is held across fork → closure → publish and released
            // on drop either way.
            // The pass is scoped to the publication attempt: a conflicting
            // gated attempt releases the gate *before* backing off, so the
            // queue never stalls behind a sleeping writer.
            let outcome = {
                let gate = (attempt > policy.queue_after).then(|| self.writer_gate(name));
                if gate.is_some() {
                    self.obs.metrics.counter("ongoingdb_cas_queue_waits").inc();
                }
                let _pass = match &gate {
                    Some(g) => g.enter(deadline)?,
                    None => None,
                };
                self.attempt_modify(name, &mut f)?
            };
            match outcome {
                Some(out) => {
                    self.obs.metrics.counter("ongoingdb_publications").inc();
                    self.obs
                        .metrics
                        .histogram("ongoingdb_cas_attempts")
                        .observe(u64::from(attempt));
                    self.obs.events.record(EngineEvent::Publication {
                        table: name.to_string(),
                        attempts: attempt,
                    });
                    return Ok((out, attempt));
                }
                None if attempt < max_attempts => {
                    self.obs.metrics.counter("ongoingdb_cas_conflicts").inc();
                    self.obs.events.record(EngineEvent::CasConflict {
                        table: name.to_string(),
                        attempt,
                    });
                    let mut pause = policy.backoff_for(attempt);
                    if let Some(d) = deadline {
                        let remaining = d.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            return Err(EngineError::DeadlineExceeded);
                        }
                        pause = pause.min(remaining);
                    }
                    if pause.is_zero() {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(pause);
                    }
                }
                None => {
                    return Err(EngineError::ConcurrentModification {
                        table: name.to_string(),
                        attempts: attempt,
                    })
                }
            }
        }
    }

    /// The per-table FIFO writer gate, created on first contention.
    fn writer_gate(&self, name: &str) -> Arc<TicketGate> {
        Arc::clone(self.gates.lock().entry(name.to_string()).or_default())
    }

    /// One optimistic publication attempt: fork, run the closure, account
    /// staleness, compact, compare-and-swap. `Ok(None)` signals a
    /// publication conflict (retryable); closure errors and a vanished
    /// table are terminal.
    fn attempt_modify<T>(
        &self,
        name: &str,
        f: &mut impl FnMut(&mut OngoingRelation) -> Result<T>,
    ) -> Result<Option<T>> {
        // Pin the current version (short read lock) and fork it: the fork
        // shares every sealed chunk, so this is O(#chunks), not O(rows).
        let table = self.table(name)?;
        let mut data = table.data.clone();
        if self.durable.is_some() {
            // Record every physical mutation the closure performs so the
            // publication can be logged as an O(delta) journal. A closure
            // that replaces the relation wholesale severs the journal
            // (cloning never carries one), which downgrades the commit to
            // a full-state record — journal present ⟺ journal complete.
            data.begin_journal();
        }
        let base_writes = data.logical_writes();
        // The user closure runs off-lock against the private fork.
        let out = f(&mut data)?;
        // Touched rows, exactly: the logical rows the closure wrote on
        // the fork (inserts, replacements, tombstones — not physical
        // bookkeeping like overlay copy-on-write). A closure that
        // *replaced* the relation wholesale (`*rel = built`) severs the
        // storage lineage (O(1) first-chunk probe) and resets the
        // counter; it already paid O(table) to rebuild, so falling back
        // to a positional diff stays within its own cost. The probe can
        // be fooled by swapping in an *older* pinned version (it shares
        // the first chunk but its counter ran backwards), so a counter
        // regression also falls back to the diff.
        let touched = if data.derives_from(&table.data) && data.logical_writes() >= base_writes {
            (data.logical_writes() - base_writes).max(1)
        } else {
            positional_diff(&table.data, &data).max(1)
        };
        let mut state = table.stats.lock().clone();
        state.mods_since_analyze += touched;
        if state.stale() {
            // Statistics refresh also runs off-lock, on the fork.
            state = StatsState {
                stats: Some(Arc::new(analyze_relation(&data))),
                mods_since_analyze: 0,
            };
        }
        // Fold the accumulated delta before publication (off-lock).
        // Partial first: only fragmented chunk runs, O(fragmented run) —
        // sustained churn on a large table never pays a whole-table fold
        // (a no-op when nothing is fragmented). The global policy stays
        // as a backstop for layouts run folding cannot fix (and for
        // wholesale rebuilds).
        data.compact_runs();
        if data.should_compact() {
            data.compact();
        }
        // Seal (journaled) and detach the journal *before* the version is
        // wrapped; both folds above journal as O(1) markers replay
        // re-derives deterministically.
        data.seal_pending();
        let journal = data.take_journal();
        let new_table = Table::with_state(name, data, state);
        match &self.durable {
            Some(durable) => {
                let guard = &mut durable.lock();
                // The compare-and-swap precondition only needs a read
                // lock: every publication path holds the commit guard, so
                // no competing publication can slip in before our insert.
                match self.tables.read().get(name) {
                    Some(TableSlot::Ready(current)) if Arc::ptr_eq(current, &table) => {}
                    Some(_) => return Ok(None),
                    None => return Err(EngineError::UnknownTable(name.to_string())),
                }
                // Durability point: log (and sync) before becoming
                // visible. An armed journal is an O(delta) commit record;
                // a severed one means the closure rebuilt the relation, so
                // its full state is logged (persisting chunks first).
                match journal {
                    Some(ops) => guard.append_commit(name, ops)?,
                    None => guard.append_state(name, new_table.data())?,
                }
                self.tables
                    .write()
                    .insert(name.to_string(), TableSlot::Ready(new_table));
                if guard.needs_checkpoint() {
                    self.checkpoint_locked(guard)?;
                }
                Ok(Some(out))
            }
            None => {
                // Publication: short write lock, pointer-equality
                // compare-and-swap.
                let mut tables = self.tables.write();
                match tables.get(name) {
                    Some(TableSlot::Ready(current)) if Arc::ptr_eq(current, &table) => {
                        tables.insert(name.to_string(), TableSlot::Ready(new_table));
                        Ok(Some(out))
                    }
                    Some(_) => Ok(None),
                    None => Err(EngineError::UnknownTable(name.to_string())),
                }
            }
        }
    }

    /// Materializes every cold slot and checkpoints the full catalog.
    /// Caller holds the commit guard.
    fn checkpoint_locked(&self, guard: &mut DurableGuard<'_>) -> Result<()> {
        let names: Vec<String> = self.tables.read().keys().cloned().collect();
        let mut ready: Vec<(String, Arc<Table>)> = Vec::with_capacity(names.len());
        for name in names {
            ready.push((name.clone(), self.materialize(&name, guard)?));
        }
        let list: Vec<(&str, &OngoingRelation)> = ready
            .iter()
            .map(|(name, table)| (name.as_str(), table.data()))
            .collect();
        let wal_bytes = guard.wal_len();
        guard.checkpoint(&list)?;
        self.obs.events.record(EngineEvent::Checkpoint {
            wal_bytes,
            tables: list.len() as u64,
        });
        // Under a finite memory budget, resident sealed chunks that the
        // checkpoint just persisted are demoted to cold references through
        // the budgeted chunk cache: the table's memory is governed by the
        // budget from here on, with the dropped rows seeded warm (and
        // evictable) in the cache. The republish is safe without a
        // compare-and-swap: every publication path holds the commit guard
        // we hold, so no competing version can appear mid-swap. Readers
        // holding the pre-demotion `Arc<Table>` keep their fully resident
        // version until they drop it.
        if guard.memory_budget() != u64::MAX {
            for (name, table) in &ready {
                let mut data = table.data.clone();
                if guard.demote(&mut data) > 0 {
                    let state = table.stats.lock().clone();
                    let demoted = Table::with_state(name, data, state);
                    self.tables
                        .write()
                        .insert(name.clone(), TableSlot::Ready(demoted));
                }
            }
        }
        Ok(())
    }

    /// Returns the ready table at `name`, loading a cold slot under the
    /// held commit guard (which also fences checkpoint GC away from the
    /// chunk files being read).
    fn materialize(&self, name: &str, guard: &mut DurableGuard<'_>) -> Result<Arc<Table>> {
        let plan = match self.tables.read().get(name).cloned() {
            Some(TableSlot::Ready(table)) => return Ok(table),
            Some(TableSlot::Cold(plan)) => plan,
            None => return Err(EngineError::UnknownTable(name.to_string())),
        };
        let data = guard.load(&plan)?;
        // Statistics are rebuilt, not persisted: the table comes back
        // never-analyzed and the first ANALYZE (or auto-analyze) refreshes
        // them from the recovered data.
        let table = Table::with_state(name, data, StatsState::default());
        self.tables
            .write()
            .insert(name.to_string(), TableSlot::Ready(Arc::clone(&table)));
        Ok(table)
    }

    /// Declares a keyed qualification index on `table.column` (which must
    /// hold a fixed scalar type): [`crate::modify::Modifier`] predicates
    /// on the column qualify through the index in O(rows matching) instead
    /// of an O(table) scan. The index is a property of the stored relation
    /// — it survives version forks, publications and compaction.
    pub fn create_key_index(&self, table: &str, column: &str) -> Result<()> {
        let col = self.table(table)?.schema().index_of(column)?;
        self.modify_table(table, |rel| {
            rel.create_key_index(col).map_err(EngineError::Schema)
        })
    }

    /// Collects statistics for one table (`ANALYZE <table>`).
    pub fn analyze(&self, name: &str) -> Result<Arc<TableStatistics>> {
        Ok(self.table(name)?.analyze())
    }

    /// Collects statistics for every table (bare `ANALYZE`), returning the
    /// per-table results in name order. Cold tables materialize first —
    /// a full `ANALYZE` touches everything by definition.
    pub fn analyze_all(&self) -> Vec<(String, Arc<TableStatistics>)> {
        self.table_names()
            .into_iter()
            .filter_map(|name| {
                let stats = self.table(&name).ok()?.analyze();
                Some((name, stats))
            })
            .collect()
    }

    /// Drops a table; errors if it does not exist. On a durable database
    /// the drop is logged before it takes effect.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        match &self.durable {
            Some(durable) => {
                let mut guard = durable.lock();
                if !self.tables.read().contains_key(name) {
                    return Err(EngineError::UnknownTable(name.to_string()));
                }
                guard.append_drop(name)?;
                self.tables.write().remove(name);
                self.gates.lock().remove(name);
                Ok(())
            }
            None => {
                let mut tables = self.tables.write();
                let removed = tables
                    .remove(name)
                    .map(|_| ())
                    .ok_or_else(|| EngineError::UnknownTable(name.to_string()));
                if removed.is_ok() {
                    // Release the writer gate with the table (in-flight
                    // passes keep theirs via `Arc`); a re-created table
                    // starts fresh.
                    self.gates.lock().remove(name);
                }
                removed
            }
        }
    }

    /// Looks a table up, materializing a recovered-but-cold table on first
    /// access (this is where a damaged chunk file surfaces as
    /// [`EngineError::CorruptStorage`]).
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        match self.tables.read().get(name).cloned() {
            Some(TableSlot::Ready(table)) => return Ok(table),
            Some(TableSlot::Cold(_)) => {}
            None => return Err(EngineError::UnknownTable(name.to_string())),
        }
        let durable = self
            .durable
            .as_ref()
            .expect("cold slots exist only in durable databases");
        self.materialize(name, &mut durable.lock())
    }

    /// The registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_relation::{Schema, Value};

    fn rel() -> OngoingRelation {
        let mut r = OngoingRelation::new(Schema::builder().int("X").build());
        r.insert(vec![Value::Int(1)]).unwrap();
        r
    }

    #[test]
    fn create_lookup_drop() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        assert_eq!(db.table("t").unwrap().data().len(), 1);
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        db.drop_table("t").unwrap();
        assert!(matches!(db.table("t"), Err(EngineError::UnknownTable(_))));
    }

    #[test]
    fn duplicate_create_fails() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        assert!(matches!(
            db.create_table("t", rel()),
            Err(EngineError::DuplicateTable(_))
        ));
    }

    #[test]
    fn put_table_replaces() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        let mut bigger = rel();
        bigger.insert(vec![Value::Int(2)]).unwrap();
        db.put_table("t", bigger).unwrap();
        assert_eq!(db.table("t").unwrap().data().len(), 2);
    }

    #[test]
    fn drop_missing_fails() {
        let db = Database::new();
        assert!(db.drop_table("nope").is_err());
    }

    #[test]
    fn analyze_attaches_statistics_and_put_table_clears_them() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        assert!(db.table("t").unwrap().statistics().is_none());
        let stats = db.analyze("t").unwrap();
        assert_eq!(stats.rows, 1);
        assert!(db.table("t").unwrap().statistics().is_some());
        // Replacing the data discards the now-unrelated statistics.
        db.put_table("t", rel()).unwrap();
        assert!(db.table("t").unwrap().statistics().is_none());
    }

    #[test]
    fn modify_table_applies_and_counts() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        let n = db
            .modify_table("t", |r| {
                r.insert(vec![Value::Int(2)]).unwrap();
                Ok(r.len())
            })
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.table("t").unwrap().data().len(), 2);
        assert!(db.modify_table("nope", |_| Ok(())).is_err());
    }
}
