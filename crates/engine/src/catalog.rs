//! The database catalog: named base ongoing relations.
//!
//! This is the substrate role PostgreSQL plays in the paper's prototype:
//! somewhere to register base relations, look them up during planning, and
//! scan them during execution. Tables are shared behind a lock so plans can
//! be executed concurrently (e.g. a bench harness instantiating a
//! materialized view from several threads).

use crate::error::{EngineError, Result};
use crate::exec::index::IntervalIndex;
use ongoing_relation::{OngoingRelation, Schema};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A registered table.
#[derive(Debug)]
pub struct Table {
    name: String,
    data: OngoingRelation,
    /// Lazily built interval indexes, keyed by interval column.
    indexes: Mutex<HashMap<usize, Arc<IntervalIndex>>>,
}

impl Table {
    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stored relation.
    pub fn data(&self) -> &OngoingRelation {
        &self.data
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.data.schema()
    }

    /// Returns (building and caching on first use) the envelope interval
    /// index over the interval attribute at `col`. Tuple positions in the
    /// relation serve as index payload ids.
    ///
    /// The cache lock is held across the build: with partition-parallel
    /// executors several workers can request the same index at once, and a
    /// check-then-build race would make each of them build it.
    pub fn interval_index(&self, col: usize) -> Result<Arc<IntervalIndex>> {
        let mut indexes = self.indexes.lock();
        if let Some(idx) = indexes.get(&col) {
            return Ok(Arc::clone(idx));
        }
        let attr = self.data.schema().attr(col)?;
        if !matches!(
            attr.ty,
            ongoing_relation::ValueType::OngoingInterval | ongoing_relation::ValueType::Span
        ) {
            return Err(EngineError::Plan(format!(
                "attribute `{}` is not an interval column",
                attr.name
            )));
        }
        let entries = self
            .data
            .tuples()
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.value(col).as_interval().map(|iv| (iv, i)));
        let built = Arc::new(IntervalIndex::build(entries));
        indexes.insert(col, Arc::clone(&built));
        Ok(built)
    }
}

/// An in-memory database of ongoing relations.
#[derive(Debug, Default)]
pub struct Database {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Registers a base relation under `name`.
    pub fn create_table(&self, name: &str, data: OngoingRelation) -> Result<()> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(EngineError::DuplicateTable(name.to_string()));
        }
        tables.insert(
            name.to_string(),
            Arc::new(Table {
                name: name.to_string(),
                data,
                indexes: Mutex::new(HashMap::new()),
            }),
        );
        Ok(())
    }

    /// Replaces (or creates) a table.
    pub fn put_table(&self, name: &str, data: OngoingRelation) {
        let mut tables = self.tables.write();
        tables.insert(
            name.to_string(),
            Arc::new(Table {
                name: name.to_string(),
                data,
                indexes: Mutex::new(HashMap::new()),
            }),
        );
    }

    /// Drops a table; errors if it does not exist.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let mut tables = self.tables.write();
        tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// The registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_relation::{Schema, Value};

    fn rel() -> OngoingRelation {
        let mut r = OngoingRelation::new(Schema::builder().int("X").build());
        r.insert(vec![Value::Int(1)]).unwrap();
        r
    }

    #[test]
    fn create_lookup_drop() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        assert_eq!(db.table("t").unwrap().data().len(), 1);
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        db.drop_table("t").unwrap();
        assert!(matches!(db.table("t"), Err(EngineError::UnknownTable(_))));
    }

    #[test]
    fn duplicate_create_fails() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        assert!(matches!(
            db.create_table("t", rel()),
            Err(EngineError::DuplicateTable(_))
        ));
    }

    #[test]
    fn put_table_replaces() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        let mut bigger = rel();
        bigger.insert(vec![Value::Int(2)]).unwrap();
        db.put_table("t", bigger);
        assert_eq!(db.table("t").unwrap().data().len(), 2);
    }

    #[test]
    fn drop_missing_fails() {
        let db = Database::new();
        assert!(db.drop_table("nope").is_err());
    }
}
