//! The database catalog: named base ongoing relations.
//!
//! This is the substrate role PostgreSQL plays in the paper's prototype:
//! somewhere to register base relations, look them up during planning, and
//! scan them during execution. Tables are shared behind a lock so plans can
//! be executed concurrently (e.g. a bench harness instantiating a
//! materialized view from several threads).

use crate::error::{EngineError, Result};
use crate::exec::index::IntervalIndex;
use crate::stats::{analyze_relation, TableStatistics};
use ongoing_relation::{OngoingRelation, Schema};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Minimum number of modified rows before an analyzed table is considered
/// stale (PostgreSQL's autovacuum-style floor).
const AUTO_ANALYZE_MIN: u64 = 50;
/// Additional stale fraction of the analyzed row count.
const AUTO_ANALYZE_FRAC: f64 = 0.1;

/// Statistics bookkeeping per table: the collected statistics (if any) plus
/// the modification volume since they were collected.
#[derive(Debug, Default, Clone)]
struct StatsState {
    stats: Option<Arc<TableStatistics>>,
    mods_since_analyze: u64,
}

impl StatsState {
    /// Are the collected statistics stale relative to the modifications
    /// that happened since?
    fn stale(&self) -> bool {
        match &self.stats {
            Some(s) => {
                self.mods_since_analyze
                    > AUTO_ANALYZE_MIN + (AUTO_ANALYZE_FRAC * s.rows as f64) as u64
            }
            None => false,
        }
    }
}

/// A registered table.
#[derive(Debug)]
pub struct Table {
    name: String,
    data: OngoingRelation,
    /// Lazily built interval indexes, keyed by interval column.
    indexes: Mutex<HashMap<usize, Arc<IntervalIndex>>>,
    /// `ANALYZE` statistics and staleness accounting.
    stats: Mutex<StatsState>,
}

impl Table {
    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stored relation.
    pub fn data(&self) -> &OngoingRelation {
        &self.data
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.data.schema()
    }

    /// The collected `ANALYZE` statistics, if any.
    pub fn statistics(&self) -> Option<Arc<TableStatistics>> {
        self.stats.lock().stats.clone()
    }

    /// Collects (or refreshes) statistics over the stored relation and
    /// resets the staleness counter — the `ANALYZE` primitive.
    pub fn analyze(&self) -> Arc<TableStatistics> {
        let stats = Arc::new(analyze_relation(&self.data));
        *self.stats.lock() = StatsState {
            stats: Some(Arc::clone(&stats)),
            mods_since_analyze: 0,
        };
        stats
    }

    /// Returns (building and caching on first use) the envelope interval
    /// index over the interval attribute at `col`. Tuple positions in the
    /// relation serve as index payload ids.
    ///
    /// The cache lock is held across the build: with partition-parallel
    /// executors several workers can request the same index at once, and a
    /// check-then-build race would make each of them build it.
    pub fn interval_index(&self, col: usize) -> Result<Arc<IntervalIndex>> {
        let mut indexes = self.indexes.lock();
        if let Some(idx) = indexes.get(&col) {
            return Ok(Arc::clone(idx));
        }
        let attr = self.data.schema().attr(col)?;
        if !matches!(
            attr.ty,
            ongoing_relation::ValueType::OngoingInterval | ongoing_relation::ValueType::Span
        ) {
            return Err(EngineError::Plan(format!(
                "attribute `{}` is not an interval column",
                attr.name
            )));
        }
        let entries = self
            .data
            .tuples()
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.value(col).as_interval().map(|iv| (iv, i)));
        let built = Arc::new(IntervalIndex::build(entries));
        indexes.insert(col, Arc::clone(&built));
        Ok(built)
    }

    fn with_state(name: &str, data: OngoingRelation, stats: StatsState) -> Arc<Table> {
        Arc::new(Table {
            name: name.to_string(),
            data,
            indexes: Mutex::new(HashMap::new()),
            stats: Mutex::new(stats),
        })
    }
}

/// An in-memory database of ongoing relations.
#[derive(Debug, Default)]
pub struct Database {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Registers a base relation under `name`.
    pub fn create_table(&self, name: &str, data: OngoingRelation) -> Result<()> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(EngineError::DuplicateTable(name.to_string()));
        }
        tables.insert(
            name.to_string(),
            Table::with_state(name, data, StatsState::default()),
        );
        Ok(())
    }

    /// Replaces (or creates) a table. Any previously collected statistics
    /// are discarded (the new data is unknown to the subsystem).
    pub fn put_table(&self, name: &str, data: OngoingRelation) {
        let mut tables = self.tables.write();
        tables.insert(
            name.to_string(),
            Table::with_state(name, data, StatsState::default()),
        );
    }

    /// Applies a modification to a catalog-resident table. Callers run
    /// [`Modifier`](crate::modify::Modifier) operations (or any other
    /// rewrite) inside the closure; the catalog swaps in the modified
    /// snapshot, invalidates the interval indexes, and advances the
    /// statistics staleness counter by the number of rows that changed (a
    /// positional diff of the tuple lists, so in-place updates count every
    /// rewritten row, not just the length delta). Once an *analyzed* table
    /// crosses the staleness threshold (50 rows + 10 % of the analyzed row
    /// count) its statistics are refreshed automatically; never-analyzed
    /// tables stay that way until an explicit `ANALYZE`. Statistics
    /// collected concurrently against the pre-modification snapshot are
    /// superseded by the swap (they described the old data).
    ///
    /// The modification runs on a clone of the relation so concurrent
    /// readers keep their immutable snapshot — O(table) per call; batch
    /// row-level edits into one closure.
    ///
    /// ```
    /// use ongoing_engine::{modify::Modifier, Database};
    /// use ongoing_core::{date::md, OngoingInterval};
    /// use ongoing_relation::{Expr, OngoingRelation, Schema, Value};
    ///
    /// let db = Database::new();
    /// let mut bugs = OngoingRelation::new(
    ///     Schema::builder().int("BID").interval("VT").build(),
    /// );
    /// bugs.insert(vec![
    ///     Value::Int(500),
    ///     Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
    /// ])
    /// .unwrap();
    /// db.create_table("B", bugs).unwrap();
    ///
    /// // Terminate bug 500 effective 09/01, through the catalog.
    /// let n = db
    ///     .modify_table("B", |rel| {
    ///         Modifier::new(rel, "VT")?.terminate(&Expr::Col(0).eq(Expr::lit(500i64)), md(9, 1))
    ///     })
    ///     .unwrap();
    /// assert_eq!(n, 1);
    /// ```
    pub fn modify_table<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut OngoingRelation) -> Result<T>,
    ) -> Result<T> {
        let mut tables = self.tables.write();
        let table = tables
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
        let mut data = table.data.clone();
        let out = f(&mut data)?;
        let (old, new) = (table.data.tuples(), data.tuples());
        let shared = old.len().min(new.len());
        let touched = (old.len().abs_diff(new.len())
            + old[..shared]
                .iter()
                .zip(&new[..shared])
                .filter(|(a, b)| a != b)
                .count()) as u64;
        let touched = touched.max(1);
        let mut state = table.stats.lock().clone();
        state.mods_since_analyze += touched;
        if state.stale() {
            state = StatsState {
                stats: Some(Arc::new(analyze_relation(&data))),
                mods_since_analyze: 0,
            };
        }
        tables.insert(name.to_string(), Table::with_state(name, data, state));
        Ok(out)
    }

    /// Collects statistics for one table (`ANALYZE <table>`).
    pub fn analyze(&self, name: &str) -> Result<Arc<TableStatistics>> {
        Ok(self.table(name)?.analyze())
    }

    /// Collects statistics for every table (bare `ANALYZE`), returning the
    /// per-table results in name order.
    pub fn analyze_all(&self) -> Vec<(String, Arc<TableStatistics>)> {
        let tables: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
        tables
            .into_iter()
            .map(|t| {
                let s = t.analyze();
                (t.name.clone(), s)
            })
            .collect()
    }

    /// Drops a table; errors if it does not exist.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let mut tables = self.tables.write();
        tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// The registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_relation::{Schema, Value};

    fn rel() -> OngoingRelation {
        let mut r = OngoingRelation::new(Schema::builder().int("X").build());
        r.insert(vec![Value::Int(1)]).unwrap();
        r
    }

    #[test]
    fn create_lookup_drop() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        assert_eq!(db.table("t").unwrap().data().len(), 1);
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        db.drop_table("t").unwrap();
        assert!(matches!(db.table("t"), Err(EngineError::UnknownTable(_))));
    }

    #[test]
    fn duplicate_create_fails() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        assert!(matches!(
            db.create_table("t", rel()),
            Err(EngineError::DuplicateTable(_))
        ));
    }

    #[test]
    fn put_table_replaces() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        let mut bigger = rel();
        bigger.insert(vec![Value::Int(2)]).unwrap();
        db.put_table("t", bigger);
        assert_eq!(db.table("t").unwrap().data().len(), 2);
    }

    #[test]
    fn drop_missing_fails() {
        let db = Database::new();
        assert!(db.drop_table("nope").is_err());
    }

    #[test]
    fn analyze_attaches_statistics_and_put_table_clears_them() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        assert!(db.table("t").unwrap().statistics().is_none());
        let stats = db.analyze("t").unwrap();
        assert_eq!(stats.rows, 1);
        assert!(db.table("t").unwrap().statistics().is_some());
        // Replacing the data discards the now-unrelated statistics.
        db.put_table("t", rel());
        assert!(db.table("t").unwrap().statistics().is_none());
    }

    #[test]
    fn modify_table_applies_and_counts() {
        let db = Database::new();
        db.create_table("t", rel()).unwrap();
        let n = db
            .modify_table("t", |r| {
                r.insert(vec![Value::Int(2)]).unwrap();
                Ok(r.len())
            })
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.table("t").unwrap().data().len(), 2);
        assert!(db.modify_table("nope", |_| Ok(())).is_err());
    }
}
