//! Now-relative database modifications (the Torp et al.\[4\] setting,
//! Sec. III).
//!
//! Torp et al. showed that *instantiating* ongoing time points while
//! modifying a temporal database corrupts it: binding `now` at modification
//! time freezes a value that was supposed to keep changing. Their fix —
//! and what this module implements on top of `Ω` — is to express
//! modifications through uninstantiated `min`/`max` (interval
//! intersection), so the stored data remains correct as time passes by.
//!
//! Supported operations on a valid-time attribute:
//!
//! * [`Modifier::insert_open`] — insert a tuple valid `[start, now)`;
//! * [`Modifier::terminate`] — logical deletion: cap the valid time of the
//!   qualifying tuples at a point `at`, i.e. `te := min(te, at)` — for an
//!   open tuple this yields the *limited* point `+at`, still ongoing;
//! * [`Modifier::update`] — sequenced update: the old version keeps
//!   `[ts, min(te, at))`, the new version gets `[max(ts, at), te)`;
//! * [`Modifier::delete`] — physical deletion of qualifying tuples.
//!
//! Qualification predicates must reference only fixed attributes
//! (modifications address tuples by key); predicates over ongoing
//! attributes would make *which tuple is modified* depend on the reference
//! time, which the paper leaves to query processing.
//!
//! All operations write through the relation's copy-on-write store
//! ([`OngoingRelation::edit_tuples`]): the qualification scan reads every
//! row, but the *write* cost — and therefore the physical delta a new
//! version carries — is O(rows modified), not O(table).

use crate::error::{EngineError, Result};
use ongoing_core::{ops, OngoingInterval, OngoingPoint, TimePoint};
use ongoing_relation::{Expr, OngoingRelation, RowEdit, Tuple, Value};

/// Edits an ongoing relation's valid-time attribute with now-relative
/// semantics.
pub struct Modifier<'a> {
    rel: &'a mut OngoingRelation,
    vt_col: usize,
}

impl<'a> Modifier<'a> {
    /// Creates a modifier over the valid-time attribute named `vt`.
    pub fn new(rel: &'a mut OngoingRelation, vt: &str) -> Result<Self> {
        let vt_col = rel.schema().index_of(vt)?;
        let ty = rel.schema().attr(vt_col)?.ty;
        if ty != ongoing_relation::ValueType::OngoingInterval {
            return Err(EngineError::Plan(format!(
                "valid-time attribute must be an ongoing interval, `{vt}` is {ty:?}"
            )));
        }
        Ok(Modifier { rel, vt_col })
    }

    fn check_fixed_pred(&self, pred: &Expr) -> Result<()> {
        if pred.references_ongoing(self.rel.schema()) {
            return Err(EngineError::Plan(
                "modification predicates must reference fixed attributes only".into(),
            ));
        }
        Ok(())
    }

    /// Inserts a tuple whose validity starts at `start` and is open-ended:
    /// `VT = [start, now)`. `values` must contain a placeholder at the
    /// valid-time position (it is overwritten).
    pub fn insert_open(&mut self, mut values: Vec<Value>, start: TimePoint) -> Result<()> {
        if values.len() != self.rel.schema().len() {
            return Err(EngineError::Schema(
                ongoing_relation::SchemaError::Mismatch(format!(
                    "tuple arity {} does not match schema arity {}",
                    values.len(),
                    self.rel.schema().len()
                )),
            ));
        }
        values[self.vt_col] = Value::Interval(OngoingInterval::from_until_now(start));
        self.rel.insert(values).map_err(EngineError::Schema)
    }

    /// Logical deletion: for every tuple satisfying `pred`, the valid time
    /// end becomes `min(te, at)` — uninstantiated, per Torp et al. Returns
    /// the number of modified tuples. Tuples whose valid time becomes
    /// always-empty are removed.
    pub fn terminate(&mut self, pred: &Expr, at: TimePoint) -> Result<usize> {
        self.check_fixed_pred(pred)?;
        let vt_col = self.vt_col;
        let cap = OngoingPoint::fixed(at);
        let mut modified = 0usize;
        self.rel.edit_tuples(|t| -> Result<RowEdit> {
            if !pred.eval_bool(t.values())? {
                return Ok(RowEdit::Keep);
            }
            modified += 1;
            let iv = t
                .value(vt_col)
                .as_interval()
                .ok_or_else(|| EngineError::Plan("valid-time value is not an interval".into()))?;
            let capped = OngoingInterval::new(iv.ts(), ops::min(iv.te(), cap));
            if capped.nonempty_set().is_empty() {
                return Ok(RowEdit::Remove); // never valid anywhere: physically gone
            }
            let mut values = t.values().to_vec();
            values[vt_col] = Value::Interval(capped);
            Ok(RowEdit::Replace(vec![Tuple::with_rt(
                values,
                t.rt().clone(),
            )]))
        })?;
        Ok(modified)
    }

    /// Sequenced update: tuples satisfying `pred` are split at `at` — the
    /// old version keeps `[ts, min(te, at))`, a new version with
    /// `assignments` applied gets `[max(ts, at), te)`. Returns the number
    /// of updated tuples.
    pub fn update(
        &mut self,
        pred: &Expr,
        assignments: &[(usize, Value)],
        at: TimePoint,
    ) -> Result<usize> {
        self.check_fixed_pred(pred)?;
        for (col, _) in assignments {
            if *col == self.vt_col {
                return Err(EngineError::Plan(
                    "cannot assign the valid-time attribute directly; use terminate/insert".into(),
                ));
            }
            self.rel.schema().attr(*col)?;
        }
        let vt_col = self.vt_col;
        let split = OngoingPoint::fixed(at);
        let mut modified = 0usize;
        self.rel.edit_tuples(|t| -> Result<RowEdit> {
            if !pred.eval_bool(t.values())? {
                return Ok(RowEdit::Keep);
            }
            modified += 1;
            let iv = t
                .value(vt_col)
                .as_interval()
                .ok_or_else(|| EngineError::Plan("valid-time value is not an interval".into()))?;
            // The split replaces the row in place: old version first, new
            // version right behind it, exactly where the tuple stood.
            let mut versions = Vec::with_capacity(2);
            // Old version: [ts, min(te, at)).
            let old_iv = OngoingInterval::new(iv.ts(), ops::min(iv.te(), split));
            if !old_iv.nonempty_set().is_empty() {
                let mut values = t.values().to_vec();
                values[vt_col] = Value::Interval(old_iv);
                versions.push(Tuple::with_rt(values, t.rt().clone()));
            }
            // New version: [max(ts, at), te) with assignments applied.
            let new_iv = OngoingInterval::new(ops::max(iv.ts(), split), iv.te());
            if !new_iv.nonempty_set().is_empty() {
                let mut values = t.values().to_vec();
                for (col, v) in assignments {
                    values[*col] = v.clone();
                }
                values[vt_col] = Value::Interval(new_iv);
                versions.push(Tuple::with_rt(values, t.rt().clone()));
            }
            Ok(if versions.is_empty() {
                RowEdit::Remove
            } else {
                RowEdit::Replace(versions)
            })
        })?;
        Ok(modified)
    }

    /// Physical deletion of qualifying tuples. Returns the number removed.
    pub fn delete(&mut self, pred: &Expr) -> Result<usize> {
        self.check_fixed_pred(pred)?;
        let mut removed = 0usize;
        self.rel.edit_tuples(|t| -> Result<RowEdit> {
            Ok(if pred.eval_bool(t.values())? {
                removed += 1;
                RowEdit::Remove
            } else {
                RowEdit::Keep
            })
        })?;
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::date::md;
    use ongoing_relation::Schema;

    fn bugs() -> OngoingRelation {
        let schema = Schema::builder().int("BID").str("C").interval("VT").build();
        let mut r = OngoingRelation::new(schema);
        r.insert(vec![
            Value::Int(500),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
        ])
        .unwrap();
        r.insert(vec![
            Value::Int(501),
            Value::str("Search"),
            Value::Interval(OngoingInterval::fixed(md(3, 30), md(8, 21))),
        ])
        .unwrap();
        r
    }

    fn by_bid(bid: i64) -> Expr {
        Expr::Col(0).eq(Expr::lit(bid))
    }

    #[test]
    fn terminate_open_tuple_stays_ongoing() {
        // Resolve bug 500 effective 09/01 — scheduled in advance. The end
        // point becomes min(now, 09/01) = +09/01, *not* a frozen date.
        let mut r = bugs();
        let n = Modifier::new(&mut r, "VT")
            .unwrap()
            .terminate(&by_bid(500), md(9, 1))
            .unwrap();
        assert_eq!(n, 1);
        let iv = r.tuples()[0].value(2).as_interval().unwrap();
        assert_eq!(iv.te(), OngoingPoint::limited(md(9, 1)));
        // Before 09/01 the bug still tracks now; afterwards it is capped.
        assert_eq!(iv.bind(md(5, 1)), (md(1, 25), md(5, 1)));
        assert_eq!(iv.bind(md(12, 1)), (md(1, 25), md(9, 1)));
    }

    #[test]
    fn instantiate_then_modify_is_wrong_torp_motivation() {
        // The broken alternative: bind now at modification time (say
        // 05/14), store the fixed end, then cap. At any later reference
        // time the stored interval is too short — the bug was still open.
        let modification_time = md(5, 14);
        let open = OngoingInterval::from_until_now(md(1, 25));
        let frozen_end = open.te().bind(modification_time); // = 05/14
        let broken = OngoingInterval::fixed(md(1, 25), frozen_end.min_f(md(9, 1)));

        let mut r = bugs();
        Modifier::new(&mut r, "VT")
            .unwrap()
            .terminate(&by_bid(500), md(9, 1))
            .unwrap();
        let correct = r.tuples()[0].value(2).as_interval().unwrap();

        // At rt 07/01 the correct interval still grows; the broken one is
        // frozen at the modification time.
        let rt = md(7, 1);
        assert_eq!(correct.bind(rt), (md(1, 25), md(7, 1)));
        assert_eq!(broken.bind(rt), (md(1, 25), md(5, 14)));
        assert_ne!(correct.bind(rt), broken.bind(rt));
    }

    #[test]
    fn terminate_fixed_tuple_caps_end() {
        let mut r = bugs();
        Modifier::new(&mut r, "VT")
            .unwrap()
            .terminate(&by_bid(501), md(6, 1))
            .unwrap();
        let iv = r.tuples()[1].value(2).as_interval().unwrap();
        assert_eq!(iv, OngoingInterval::fixed(md(3, 30), md(6, 1)));
    }

    #[test]
    fn terminate_before_start_removes_tuple() {
        let mut r = bugs();
        Modifier::new(&mut r, "VT")
            .unwrap()
            .terminate(&by_bid(501), md(1, 1))
            .unwrap();
        assert_eq!(r.len(), 1, "always-empty validity is removed");
    }

    #[test]
    fn update_splits_at_the_effective_date() {
        // Reassign bug 500 to component 'Search' effective 06/01.
        let mut r = bugs();
        let n = Modifier::new(&mut r, "VT")
            .unwrap()
            .update(&by_bid(500), &[(1, Value::str("Search"))], md(6, 1))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(r.len(), 3);
        let old = &r.tuples()[0];
        let new = &r.tuples()[1];
        assert_eq!(old.value(1).as_str(), Some("Spam filter"));
        assert_eq!(
            old.value(2).as_interval().unwrap().te(),
            OngoingPoint::limited(md(6, 1))
        );
        assert_eq!(new.value(1).as_str(), Some("Search"));
        let niv = new.value(2).as_interval().unwrap();
        assert_eq!(niv.ts(), OngoingPoint::fixed(md(6, 1)));
        assert_eq!(niv.te(), OngoingPoint::now());
        // At every rt, exactly one version is valid at any instant the bug
        // is open: the versions meet at 06/01 without overlap.
        for rt in [md(5, 1), md(8, 1), md(12, 1)] {
            let (os, oe) = old.value(2).as_interval().unwrap().bind(rt);
            let (ns, ne) = niv.bind(rt);
            if os < oe && ns < ne {
                assert!(oe <= ns, "versions must not overlap at rt={rt}");
            }
        }
    }

    #[test]
    fn update_cannot_touch_vt_directly() {
        let mut r = bugs();
        let e = Modifier::new(&mut r, "VT").unwrap().update(
            &by_bid(500),
            &[(2, Value::Int(1))],
            md(6, 1),
        );
        assert!(e.is_err());
    }

    #[test]
    fn insert_open_and_delete() {
        let mut r = bugs();
        {
            let mut m = Modifier::new(&mut r, "VT").unwrap();
            m.insert_open(
                vec![Value::Int(502), Value::str("Compose"), Value::Bool(false)],
                md(7, 4),
            )
            .unwrap();
        }
        assert_eq!(r.len(), 3);
        let iv = r.tuples()[2].value(2).as_interval().unwrap();
        assert_eq!(iv, OngoingInterval::from_until_now(md(7, 4)));
        let n = Modifier::new(&mut r, "VT")
            .unwrap()
            .delete(&by_bid(502))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn ongoing_predicates_are_rejected() {
        let mut r = bugs();
        let pred = Expr::Col(2).overlaps(Expr::lit(Value::Interval(OngoingInterval::fixed(
            md(1, 1),
            md(2, 1),
        ))));
        assert!(Modifier::new(&mut r, "VT")
            .unwrap()
            .terminate(&pred, md(6, 1))
            .is_err());
    }

    #[test]
    fn modifier_requires_interval_column() {
        let mut r = bugs();
        assert!(Modifier::new(&mut r, "BID").is_err());
        assert!(Modifier::new(&mut r, "missing").is_err());
    }
}
