//! Now-relative database modifications (the Torp et al.\[4\] setting,
//! Sec. III).
//!
//! Torp et al. showed that *instantiating* ongoing time points while
//! modifying a temporal database corrupts it: binding `now` at modification
//! time freezes a value that was supposed to keep changing. Their fix —
//! and what this module implements on top of `Ω` — is to express
//! modifications through uninstantiated `min`/`max` (interval
//! intersection), so the stored data remains correct as time passes by.
//!
//! Supported operations on a valid-time attribute:
//!
//! * [`Modifier::insert_open`] — insert a tuple valid `[start, now)`;
//! * [`Modifier::terminate`] — logical deletion: cap the valid time of the
//!   qualifying tuples at a point `at`, i.e. `te := min(te, at)` — for an
//!   open tuple this yields the *limited* point `+at`, still ongoing;
//! * [`Modifier::update`] — sequenced update: the old version keeps
//!   `[ts, min(te, at))`, the new version gets `[max(ts, at), te)`;
//! * [`Modifier::delete`] — physical deletion of qualifying tuples.
//!
//! Qualification predicates must reference only fixed attributes
//! (modifications address tuples by key); predicates over ongoing
//! attributes would make *which tuple is modified* depend on the reference
//! time, which the paper leaves to query processing.
//!
//! All operations write through the relation's copy-on-write store
//! ([`OngoingRelation::edit_tuples`]): the *write* cost — and therefore
//! the physical delta a new version carries — is O(rows modified), not
//! O(table). The *read* side of a modification (deciding which rows
//! qualify) matches: when the predicate carries an equality or range
//! conjunct on a column with a keyed index
//! ([`OngoingRelation::create_key_index`]), the modifier derives a
//! [`KeyProbe`] and qualifies through the index in O(rows matching)
//! instead of scanning the table — choosing index vs scan with the cost
//! model's [`qualification_path`] over the storage layer's exact per-path
//! work figures.

use crate::error::{EngineError, Result};
use crate::stats::cost::{qualification_path, QualPath};
use ongoing_core::{ops, OngoingInterval, OngoingPoint, TimePoint};
use ongoing_relation::value::cmp_values;
use ongoing_relation::{CmpOp, Expr, KeyProbe, OngoingRelation, RowEdit, Tuple, Value};
use std::ops::Bound;

/// Edits an ongoing relation's valid-time attribute with now-relative
/// semantics.
pub struct Modifier<'a> {
    rel: &'a mut OngoingRelation,
    vt_col: usize,
}

impl<'a> Modifier<'a> {
    /// Creates a modifier over the valid-time attribute named `vt`.
    pub fn new(rel: &'a mut OngoingRelation, vt: &str) -> Result<Self> {
        let vt_col = rel.schema().index_of(vt)?;
        let ty = rel.schema().attr(vt_col)?.ty;
        if ty != ongoing_relation::ValueType::OngoingInterval {
            return Err(EngineError::Plan(format!(
                "valid-time attribute must be an ongoing interval, `{vt}` is {ty:?}"
            )));
        }
        Ok(Modifier { rel, vt_col })
    }

    fn check_fixed_pred(&self, pred: &Expr) -> Result<()> {
        if pred.references_ongoing(self.rel.schema()) {
            return Err(EngineError::Plan(
                "modification predicates must reference fixed attributes only".into(),
            ));
        }
        Ok(())
    }

    /// Derives the indexable component of `pred`: the tightest equality or
    /// range condition any conjunct places on a key-indexed column.
    /// Conjuncts are necessary conditions, so the probe is a sound pruning
    /// condition for the whole predicate; the probe constant is typed
    /// against the schema, so the *key* conjunct itself can never
    /// type-error on a row the keyed pass skips. Errors raised by *other*
    /// conjuncts surface lazily — only for rows the qualification actually
    /// visits (as with any database access path, a predicate error on a
    /// row the index prunes is never observed).
    fn key_probe(&self, pred: &Expr) -> Option<KeyProbe> {
        let schema = self.rel.schema();
        let conjuncts = pred.conjuncts_ref();
        for &col in self.rel.key_indexed_columns() {
            let Ok(attr) = schema.attr(col) else { continue };
            let mut eq: Option<Value> = None;
            let mut lo: Bound<Value> = Bound::Unbounded;
            let mut hi: Bound<Value> = Bound::Unbounded;
            for c in &conjuncts {
                let Expr::Cmp(op, l, r) = c else { continue };
                let (i, v, op) = match (l.as_ref(), r.as_ref()) {
                    (Expr::Col(i), Expr::Const(v)) => (*i, v, *op),
                    // `const op col` reads as `col flipped-op const`.
                    (Expr::Const(v), Expr::Col(i)) => (
                        *i,
                        v,
                        match *op {
                            CmpOp::Lt => CmpOp::Gt,
                            CmpOp::Le => CmpOp::Ge,
                            CmpOp::Gt => CmpOp::Lt,
                            CmpOp::Ge => CmpOp::Le,
                            eq_ne => eq_ne,
                        },
                    ),
                    _ => continue,
                };
                if i != col || v.value_type() != attr.ty {
                    continue;
                }
                match op {
                    CmpOp::Eq => eq = Some(v.clone()),
                    CmpOp::Le => tighten_upper(&mut hi, v, true),
                    CmpOp::Lt => tighten_upper(&mut hi, v, false),
                    CmpOp::Ge => tighten_lower(&mut lo, v, true),
                    CmpOp::Gt => tighten_lower(&mut lo, v, false),
                    CmpOp::Ne => {}
                }
            }
            if let Some(key) = eq {
                return Some(KeyProbe::Eq { col, key });
            }
            if !matches!((&lo, &hi), (Bound::Unbounded, Bound::Unbounded)) {
                return Some(KeyProbe::Range { col, lo, hi });
            }
        }
        None
    }

    /// The access path qualification of `pred` will take, with the
    /// work-unit figures that drive the choice — for `EXPLAIN`-style
    /// inspection and the cost-flip tests.
    pub fn qualification(&self, pred: &Expr) -> QualPath {
        if let Some(probe) = self.key_probe(pred) {
            if let Some(est) = self.rel.qualification_estimate(&probe) {
                return qualification_path(probe.col(), &est);
            }
        }
        QualPath::Scan {
            rows: self.rel.len() as u64,
        }
    }

    /// Runs a row-edit pass qualified by `pred`: through the keyed index
    /// when a probe exists and the cost model favors it, by full scan
    /// otherwise. `f` sees exactly the rows it would see under a full
    /// scan restricted to possibly-matching rows.
    fn edit_qualified(
        &mut self,
        pred: &Expr,
        mut f: impl FnMut(&Tuple) -> Result<RowEdit>,
    ) -> Result<()> {
        if let Some(probe) = self.key_probe(pred) {
            if let Some(est) = self.rel.qualification_estimate(&probe) {
                if qualification_path(probe.col(), &est).is_keyed()
                    && self.rel.edit_tuples_where(&probe, &mut f)?.is_some()
                {
                    return Ok(());
                }
            }
        }
        self.rel.edit_tuples(f)?;
        Ok(())
    }

    /// Inserts a tuple whose validity starts at `start` and is open-ended:
    /// `VT = [start, now)`. `values` must contain a placeholder at the
    /// valid-time position (it is overwritten).
    pub fn insert_open(&mut self, mut values: Vec<Value>, start: TimePoint) -> Result<()> {
        if values.len() != self.rel.schema().len() {
            return Err(EngineError::Schema(
                ongoing_relation::SchemaError::Mismatch(format!(
                    "tuple arity {} does not match schema arity {}",
                    values.len(),
                    self.rel.schema().len()
                )),
            ));
        }
        values[self.vt_col] = Value::Interval(OngoingInterval::from_until_now(start));
        self.rel.insert(values).map_err(EngineError::Schema)
    }

    /// Logical deletion: for every tuple satisfying `pred`, the valid time
    /// end becomes `min(te, at)` — uninstantiated, per Torp et al. Returns
    /// the number of modified tuples. Tuples whose valid time becomes
    /// always-empty are removed.
    pub fn terminate(&mut self, pred: &Expr, at: TimePoint) -> Result<usize> {
        self.check_fixed_pred(pred)?;
        let vt_col = self.vt_col;
        let cap = OngoingPoint::fixed(at);
        let mut modified = 0usize;
        self.edit_qualified(pred, |t| -> Result<RowEdit> {
            if !pred.eval_bool(t.values())? {
                return Ok(RowEdit::Keep);
            }
            modified += 1;
            let iv = t
                .value(vt_col)
                .as_interval()
                .ok_or_else(|| EngineError::Plan("valid-time value is not an interval".into()))?;
            let capped = OngoingInterval::new(iv.ts(), ops::min(iv.te(), cap));
            if capped.nonempty_set().is_empty() {
                return Ok(RowEdit::Remove); // never valid anywhere: physically gone
            }
            let mut values = t.values().to_vec();
            values[vt_col] = Value::Interval(capped);
            Ok(RowEdit::Replace(vec![Tuple::with_rt(
                values,
                t.rt().clone(),
            )]))
        })?;
        Ok(modified)
    }

    /// Sequenced update: tuples satisfying `pred` are split at `at` — the
    /// old version keeps `[ts, min(te, at))`, a new version with
    /// `assignments` applied gets `[max(ts, at), te)`. Returns the number
    /// of updated tuples.
    pub fn update(
        &mut self,
        pred: &Expr,
        assignments: &[(usize, Value)],
        at: TimePoint,
    ) -> Result<usize> {
        self.check_fixed_pred(pred)?;
        for (col, _) in assignments {
            if *col == self.vt_col {
                return Err(EngineError::Plan(
                    "cannot assign the valid-time attribute directly; use terminate/insert".into(),
                ));
            }
            self.rel.schema().attr(*col)?;
        }
        let vt_col = self.vt_col;
        let split = OngoingPoint::fixed(at);
        let mut modified = 0usize;
        self.edit_qualified(pred, |t| -> Result<RowEdit> {
            if !pred.eval_bool(t.values())? {
                return Ok(RowEdit::Keep);
            }
            modified += 1;
            let iv = t
                .value(vt_col)
                .as_interval()
                .ok_or_else(|| EngineError::Plan("valid-time value is not an interval".into()))?;
            // The split replaces the row in place: old version first, new
            // version right behind it, exactly where the tuple stood.
            let mut versions = Vec::with_capacity(2);
            // Old version: [ts, min(te, at)).
            let old_iv = OngoingInterval::new(iv.ts(), ops::min(iv.te(), split));
            if !old_iv.nonempty_set().is_empty() {
                let mut values = t.values().to_vec();
                values[vt_col] = Value::Interval(old_iv);
                versions.push(Tuple::with_rt(values, t.rt().clone()));
            }
            // New version: [max(ts, at), te) with assignments applied.
            let new_iv = OngoingInterval::new(ops::max(iv.ts(), split), iv.te());
            if !new_iv.nonempty_set().is_empty() {
                let mut values = t.values().to_vec();
                for (col, v) in assignments {
                    values[*col] = v.clone();
                }
                values[vt_col] = Value::Interval(new_iv);
                versions.push(Tuple::with_rt(values, t.rt().clone()));
            }
            Ok(if versions.is_empty() {
                RowEdit::Remove
            } else {
                RowEdit::Replace(versions)
            })
        })?;
        Ok(modified)
    }

    /// Physical deletion of qualifying tuples. Returns the number removed.
    pub fn delete(&mut self, pred: &Expr) -> Result<usize> {
        self.check_fixed_pred(pred)?;
        let mut removed = 0usize;
        self.edit_qualified(pred, |t| -> Result<RowEdit> {
            Ok(if pred.eval_bool(t.values())? {
                removed += 1;
                RowEdit::Remove
            } else {
                RowEdit::Keep
            })
        })?;
        Ok(removed)
    }
}

/// Tightens an upper bound: keeps the smaller limit; on equal limits the
/// exclusive bound wins (it admits fewer rows).
fn tighten_upper(hi: &mut Bound<Value>, v: &Value, inclusive: bool) {
    use std::cmp::Ordering::*;
    let tighter = match &*hi {
        Bound::Unbounded => true,
        Bound::Included(cur) => match cmp_values(v, cur) {
            Less => true,
            Equal => !inclusive,
            Greater => false,
        },
        Bound::Excluded(cur) => cmp_values(v, cur) == Less,
    };
    if tighter {
        *hi = if inclusive {
            Bound::Included(v.clone())
        } else {
            Bound::Excluded(v.clone())
        };
    }
}

/// Tightens a lower bound: keeps the larger limit; on equal limits the
/// exclusive bound wins.
fn tighten_lower(lo: &mut Bound<Value>, v: &Value, inclusive: bool) {
    use std::cmp::Ordering::*;
    let tighter = match &*lo {
        Bound::Unbounded => true,
        Bound::Included(cur) => match cmp_values(v, cur) {
            Greater => true,
            Equal => !inclusive,
            Less => false,
        },
        Bound::Excluded(cur) => cmp_values(v, cur) == Greater,
    };
    if tighter {
        *lo = if inclusive {
            Bound::Included(v.clone())
        } else {
            Bound::Excluded(v.clone())
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::date::md;
    use ongoing_relation::Schema;

    fn bugs() -> OngoingRelation {
        let schema = Schema::builder().int("BID").str("C").interval("VT").build();
        let mut r = OngoingRelation::new(schema);
        r.insert(vec![
            Value::Int(500),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
        ])
        .unwrap();
        r.insert(vec![
            Value::Int(501),
            Value::str("Search"),
            Value::Interval(OngoingInterval::fixed(md(3, 30), md(8, 21))),
        ])
        .unwrap();
        r
    }

    fn by_bid(bid: i64) -> Expr {
        Expr::Col(0).eq(Expr::lit(bid))
    }

    #[test]
    fn terminate_open_tuple_stays_ongoing() {
        // Resolve bug 500 effective 09/01 — scheduled in advance. The end
        // point becomes min(now, 09/01) = +09/01, *not* a frozen date.
        let mut r = bugs();
        let n = Modifier::new(&mut r, "VT")
            .unwrap()
            .terminate(&by_bid(500), md(9, 1))
            .unwrap();
        assert_eq!(n, 1);
        let iv = r.tuples()[0].value(2).as_interval().unwrap();
        assert_eq!(iv.te(), OngoingPoint::limited(md(9, 1)));
        // Before 09/01 the bug still tracks now; afterwards it is capped.
        assert_eq!(iv.bind(md(5, 1)), (md(1, 25), md(5, 1)));
        assert_eq!(iv.bind(md(12, 1)), (md(1, 25), md(9, 1)));
    }

    #[test]
    fn instantiate_then_modify_is_wrong_torp_motivation() {
        // The broken alternative: bind now at modification time (say
        // 05/14), store the fixed end, then cap. At any later reference
        // time the stored interval is too short — the bug was still open.
        let modification_time = md(5, 14);
        let open = OngoingInterval::from_until_now(md(1, 25));
        let frozen_end = open.te().bind(modification_time); // = 05/14
        let broken = OngoingInterval::fixed(md(1, 25), frozen_end.min_f(md(9, 1)));

        let mut r = bugs();
        Modifier::new(&mut r, "VT")
            .unwrap()
            .terminate(&by_bid(500), md(9, 1))
            .unwrap();
        let correct = r.tuples()[0].value(2).as_interval().unwrap();

        // At rt 07/01 the correct interval still grows; the broken one is
        // frozen at the modification time.
        let rt = md(7, 1);
        assert_eq!(correct.bind(rt), (md(1, 25), md(7, 1)));
        assert_eq!(broken.bind(rt), (md(1, 25), md(5, 14)));
        assert_ne!(correct.bind(rt), broken.bind(rt));
    }

    #[test]
    fn terminate_fixed_tuple_caps_end() {
        let mut r = bugs();
        Modifier::new(&mut r, "VT")
            .unwrap()
            .terminate(&by_bid(501), md(6, 1))
            .unwrap();
        let iv = r.tuples()[1].value(2).as_interval().unwrap();
        assert_eq!(iv, OngoingInterval::fixed(md(3, 30), md(6, 1)));
    }

    #[test]
    fn terminate_before_start_removes_tuple() {
        let mut r = bugs();
        Modifier::new(&mut r, "VT")
            .unwrap()
            .terminate(&by_bid(501), md(1, 1))
            .unwrap();
        assert_eq!(r.len(), 1, "always-empty validity is removed");
    }

    #[test]
    fn update_splits_at_the_effective_date() {
        // Reassign bug 500 to component 'Search' effective 06/01.
        let mut r = bugs();
        let n = Modifier::new(&mut r, "VT")
            .unwrap()
            .update(&by_bid(500), &[(1, Value::str("Search"))], md(6, 1))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(r.len(), 3);
        let old = &r.tuples()[0];
        let new = &r.tuples()[1];
        assert_eq!(old.value(1).as_str(), Some("Spam filter"));
        assert_eq!(
            old.value(2).as_interval().unwrap().te(),
            OngoingPoint::limited(md(6, 1))
        );
        assert_eq!(new.value(1).as_str(), Some("Search"));
        let niv = new.value(2).as_interval().unwrap();
        assert_eq!(niv.ts(), OngoingPoint::fixed(md(6, 1)));
        assert_eq!(niv.te(), OngoingPoint::now());
        // At every rt, exactly one version is valid at any instant the bug
        // is open: the versions meet at 06/01 without overlap.
        for rt in [md(5, 1), md(8, 1), md(12, 1)] {
            let (os, oe) = old.value(2).as_interval().unwrap().bind(rt);
            let (ns, ne) = niv.bind(rt);
            if os < oe && ns < ne {
                assert!(oe <= ns, "versions must not overlap at rt={rt}");
            }
        }
    }

    #[test]
    fn update_cannot_touch_vt_directly() {
        let mut r = bugs();
        let e = Modifier::new(&mut r, "VT").unwrap().update(
            &by_bid(500),
            &[(2, Value::Int(1))],
            md(6, 1),
        );
        assert!(e.is_err());
    }

    #[test]
    fn insert_open_and_delete() {
        let mut r = bugs();
        {
            let mut m = Modifier::new(&mut r, "VT").unwrap();
            m.insert_open(
                vec![Value::Int(502), Value::str("Compose"), Value::Bool(false)],
                md(7, 4),
            )
            .unwrap();
        }
        assert_eq!(r.len(), 3);
        let iv = r.tuples()[2].value(2).as_interval().unwrap();
        assert_eq!(iv, OngoingInterval::from_until_now(md(7, 4)));
        let n = Modifier::new(&mut r, "VT")
            .unwrap()
            .delete(&by_bid(502))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn ongoing_predicates_are_rejected() {
        let mut r = bugs();
        let pred = Expr::Col(2).overlaps(Expr::lit(Value::Interval(OngoingInterval::fixed(
            md(1, 1),
            md(2, 1),
        ))));
        assert!(Modifier::new(&mut r, "VT")
            .unwrap()
            .terminate(&pred, md(6, 1))
            .is_err());
    }

    #[test]
    fn modifier_requires_interval_column() {
        let mut r = bugs();
        assert!(Modifier::new(&mut r, "BID").is_err());
        assert!(Modifier::new(&mut r, "missing").is_err());
    }
}
