//! The work-unit cost model.
//!
//! Estimates, for a physical plan running in **ongoing mode**, the same
//! quantities the executors *measure* in [`ExecStats`](crate::exec::ExecStats):
//! tuples scanned, tuples filtered, candidate pairs compared, index
//! candidates and interval-set merges. Estimating in the measured unit
//! system is what makes the model *calibratable*: `repro_costmodel` and
//! `tests/cost_model.rs` compare [`NodeEstimate::work`] against the
//! deterministic counters of an actual run and assert a bounded ratio.
//!
//! The optimizer uses the per-candidate helpers
//! ([`hash_join_work`], [`sweep_join_work`], [`nested_loop_work`]) to
//! enumerate join strategies and pick the cheapest; `EXPLAIN` rendering
//! uses [`estimate`]/[`explain_with_estimates`](crate::plan::PhysicalPlan::explain_with_estimates)
//! to show estimated rows and work next to the actual counters.
//!
//! Column-level information (distinct counts, interval summaries) is
//! propagated bottom-up through the plan: scans seed it from the catalog's
//! [`TableStatistics`], filters scale it, joins concatenate it. Plans over
//! tables that were never `ANALYZE`d fall back to conservative defaults and
//! are flagged `analyzed = false`; the optimizer then keeps the classic
//! heuristic priority (hash > sweep > nested loops) instead of trusting
//! made-up numbers.

use crate::plan::physical::PhysicalPlan;
use crate::stats::{const_envelope, FixedSummary, IntervalSummary};
use ongoing_core::allen::TemporalPredicate;
use ongoing_relation::algebra::ProjItem;
use ongoing_relation::{CmpOp, Expr, Value};
use std::fmt;
use std::sync::Arc;

/// Default selectivity for predicates the model cannot resolve.
pub const DEFAULT_SEL: f64 = 1.0 / 3.0;
/// Default envelope-overlap selectivity when interval statistics are
/// missing. Deliberately pessimistic relative to equality keys, so the
/// un-analyzed fallback ranks hash < sweep < nested loops like the classic
/// heuristic.
pub const DEFAULT_OVERLAP_SEL: f64 = 0.25;

/// Estimated work units, mirroring the [`ExecStats`](crate::exec::ExecStats)
/// counters as `f64` expectations.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct WorkEstimate {
    /// Expected tuples produced by base-table access paths.
    pub tuples_scanned: f64,
    /// Expected tuples evaluated by filters / index residuals.
    pub tuples_filtered: f64,
    /// Expected join candidate pairs.
    pub pairs_compared: f64,
    /// Expected interval-index candidates.
    pub index_candidates: f64,
    /// Expected interval-set merges.
    pub intervals_merged: f64,
}

impl WorkEstimate {
    /// Sum of all expected counters — comparable to
    /// [`ExecStats::total_work`](crate::exec::ExecStats::total_work).
    pub fn total(&self) -> f64 {
        self.tuples_scanned
            + self.tuples_filtered
            + self.pairs_compared
            + self.index_candidates
            + self.intervals_merged
    }

    /// Adds another estimate in place.
    pub fn add(&mut self, other: &WorkEstimate) {
        self.tuples_scanned += other.tuples_scanned;
        self.tuples_filtered += other.tuples_filtered;
        self.pairs_compared += other.pairs_compared;
        self.index_candidates += other.index_candidates;
        self.intervals_merged += other.intervals_merged;
    }
}

impl fmt::Display for WorkEstimate {
    /// Same shape as the `ExecStats` rendering, with `≈` marking estimates.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned≈{:.0} filtered≈{:.0} pairs≈{:.0} idx≈{:.0} merges≈{:.0} (work≈{:.0})",
            self.tuples_scanned,
            self.tuples_filtered,
            self.pairs_compared,
            self.index_candidates,
            self.intervals_merged,
            self.total()
        )
    }
}

/// Column-level estimate carried bottom-up through the plan.
#[derive(Debug, Clone, Default)]
pub struct ColEstimate {
    /// Estimated distinct values (`rows` when unknown).
    pub distinct: f64,
    /// Fixed-attribute summary, when the column descends from an analyzed
    /// base column.
    pub fixed: Option<Arc<FixedSummary>>,
    /// Interval summary, when the column descends from an analyzed base
    /// interval column. Filters are assumed not to change the envelope
    /// *distribution* (only the row count scales).
    pub interval: Option<Arc<IntervalSummary>>,
}

impl ColEstimate {
    fn unknown(rows: f64) -> Self {
        ColEstimate {
            distinct: rows.max(1.0),
            fixed: None,
            interval: None,
        }
    }

    fn scaled(&self, rows: f64) -> Self {
        ColEstimate {
            distinct: self.distinct.min(rows.max(1.0)),
            fixed: self.fixed.clone(),
            interval: self.interval.clone(),
        }
    }
}

/// Per-operator estimate tree produced by [`estimate`].
#[derive(Debug, Clone)]
pub struct NodeEstimate {
    /// Estimated output cardinality.
    pub rows: f64,
    /// Work performed by this operator alone.
    pub self_work: WorkEstimate,
    /// Cumulative work of this operator and its inputs.
    pub work: WorkEstimate,
    /// `true` iff every base table below this node has collected
    /// statistics (the estimates are grounded, not defaults).
    pub analyzed: bool,
    /// Per-output-column estimates.
    pub cols: Vec<ColEstimate>,
    /// Child estimates, in `explain` order.
    pub children: Vec<NodeEstimate>,
}

impl NodeEstimate {
    fn leaf(rows: f64, self_work: WorkEstimate, analyzed: bool, cols: Vec<ColEstimate>) -> Self {
        NodeEstimate {
            rows,
            self_work,
            work: self_work,
            analyzed,
            cols,
            children: Vec::new(),
        }
    }

    fn with_children(
        rows: f64,
        self_work: WorkEstimate,
        cols: Vec<ColEstimate>,
        children: Vec<NodeEstimate>,
    ) -> Self {
        let mut work = self_work;
        let analyzed = children.iter().all(|c| c.analyzed);
        for c in &children {
            work.add(&c.work);
        }
        NodeEstimate {
            rows,
            self_work,
            work,
            analyzed,
            cols,
            children,
        }
    }
}

// ----------------------------------------------------------------------
// Selectivity estimation.
// ----------------------------------------------------------------------

/// Scale factor applied to the envelope-overlap fraction per temporal
/// predicate: envelope overlap is the candidate condition; stricter
/// predicates match a shrinking subset of the candidates.
fn temporal_scale(p: TemporalPredicate) -> f64 {
    match p {
        TemporalPredicate::Overlaps => 1.0,
        TemporalPredicate::During => 0.5,
        TemporalPredicate::Starts | TemporalPredicate::Finishes => 0.1,
        TemporalPredicate::Equals => 0.05,
        // Not envelope-driven; handled separately where possible.
        TemporalPredicate::Before => 0.3,
        TemporalPredicate::Meets => 0.05,
    }
}

fn col_of(e: &Expr) -> Option<usize> {
    match e {
        Expr::Col(i) => Some(*i),
        _ => None,
    }
}

fn const_of(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Const(v) => Some(v),
        _ => None,
    }
}

fn cmp_selectivity(op: CmpOp, l: &Expr, r: &Expr, cols: &[ColEstimate]) -> f64 {
    let eq_sel = |cols: &[ColEstimate]| -> f64 {
        match (col_of(l), col_of(r)) {
            (Some(i), Some(j)) => {
                let di = cols.get(i).map(|c| c.distinct).unwrap_or(1.0);
                let dj = cols.get(j).map(|c| c.distinct).unwrap_or(1.0);
                1.0 / di.max(dj).max(1.0)
            }
            (Some(i), None) | (None, Some(i)) => {
                1.0 / cols.get(i).map(|c| c.distinct).unwrap_or(1.0).max(1.0)
            }
            _ => DEFAULT_SEL,
        }
    };
    // Range comparison `Col op literal` against a value histogram.
    let range_sel = |i: usize, v: &Value, col_on_left: bool| -> Option<f64> {
        let hist = cols.get(i)?.fixed.as_ref()?.histogram.as_ref()?;
        let x = match v {
            Value::Int(n) => *n,
            Value::Time(t) => t.ticks(),
            _ => return None,
        };
        // Normalize to `col OP x`.
        let op = if col_on_left {
            op
        } else {
            match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                other => other,
            }
        };
        Some(match op {
            CmpOp::Lt => hist.frac_lt(x),
            CmpOp::Le => hist.frac_le(x),
            CmpOp::Gt => 1.0 - hist.frac_le(x),
            CmpOp::Ge => 1.0 - hist.frac_lt(x),
            CmpOp::Eq | CmpOp::Ne => return None,
        })
    };
    match op {
        CmpOp::Eq => eq_sel(cols),
        CmpOp::Ne => (1.0 - eq_sel(cols)).max(0.0),
        _ => {
            let resolved = match (col_of(l), const_of(r), const_of(l), col_of(r)) {
                (Some(i), Some(v), _, _) => range_sel(i, v, true),
                (_, _, Some(v), Some(j)) => range_sel(j, v, false),
                _ => None,
            };
            resolved.unwrap_or(DEFAULT_SEL)
        }
    }
}

fn temporal_selectivity(p: TemporalPredicate, l: &Expr, r: &Expr, cols: &[ColEstimate]) -> f64 {
    let summary = |e: &Expr| col_of(e).and_then(|i| cols.get(i)?.interval.clone());
    match (summary(l), summary(r)) {
        (Some(a), Some(b)) => match p {
            TemporalPredicate::Before | TemporalPredicate::Meets => temporal_scale(p),
            _ => (a.pair_overlap_frac(&b) * temporal_scale(p)).clamp(0.0, 1.0),
        },
        (Some(s), None) | (None, Some(s)) => {
            let lit = const_of(l).or_else(|| const_of(r)).and_then(const_envelope);
            match lit {
                Some((qs, qe)) => {
                    let frac = match p {
                        // `before` matches rows *away* from the literal, so
                        // the overlap proxy would estimate ~0 for exactly
                        // the rows that qualify; the end/start CDFs answer
                        // it directly.
                        TemporalPredicate::Before if col_of(l).is_some() => {
                            // `col before lit`: envelope end ≤ literal start.
                            s.ends.frac_le(qs)
                        }
                        TemporalPredicate::Before => {
                            // `lit before col`: envelope start ≥ literal end.
                            1.0 - s.starts.frac_lt(qe)
                        }
                        // A point-coincidence condition, not envelope-driven.
                        TemporalPredicate::Meets => temporal_scale(p),
                        // `col during lit`: the column's envelope start must
                        // fall inside the literal's envelope — the start
                        // histogram answers that more tightly than the
                        // scaled overlap proxy.
                        TemporalPredicate::During if col_of(l).is_some() => {
                            s.starts.frac_in(qs, qe)
                        }
                        _ => s.overlap_frac(qs, qe) * temporal_scale(p),
                    };
                    (s.nonempty_frac() * frac).clamp(0.0, 1.0)
                }
                None => DEFAULT_OVERLAP_SEL * temporal_scale(p),
            }
        }
        (None, None) => DEFAULT_OVERLAP_SEL * temporal_scale(p),
    }
}

/// Estimated fraction of tuples satisfying `expr`, given the input's
/// column estimates.
pub fn selectivity(expr: &Expr, cols: &[ColEstimate]) -> f64 {
    let s = match expr {
        Expr::And(l, r) => selectivity(l, cols) * selectivity(r, cols),
        Expr::Or(l, r) => {
            let (a, b) = (selectivity(l, cols), selectivity(r, cols));
            a + b - a * b
        }
        Expr::Not(e) => 1.0 - selectivity(e, cols),
        Expr::Cmp(op, l, r) => cmp_selectivity(*op, l, r, cols),
        Expr::Temporal(p, l, r) => temporal_selectivity(*p, l, r, cols),
        Expr::Const(Value::Bool(b)) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        _ => DEFAULT_SEL,
    };
    s.clamp(0.0, 1.0)
}

fn opt_sel(pred: Option<&Expr>, cols: &[ColEstimate]) -> f64 {
    pred.map(|p| selectivity(p, cols)).unwrap_or(1.0)
}

// ----------------------------------------------------------------------
// Per-operator work models.
// ----------------------------------------------------------------------

/// Work and output rows of evaluating the fixed/ongoing residual pair over
/// `pairs` candidate join pairs — the shared tail of every join executor
/// (`join_pair_into`): one merge per concatenation, two more per pair that
/// passes the fixed gate when an ongoing conjunct is present.
fn residual_work(
    pairs: f64,
    fixed: Option<&Expr>,
    ongoing: Option<&Expr>,
    cols: &[ColEstimate],
) -> (f64, WorkEstimate) {
    let sf = opt_sel(fixed, cols);
    let so = opt_sel(ongoing, cols);
    let mut w = WorkEstimate {
        pairs_compared: pairs,
        intervals_merged: pairs,
        ..WorkEstimate::default()
    };
    if ongoing.is_some() {
        w.intervals_merged += 2.0 * pairs * sf;
    }
    (pairs * sf * so, w)
}

/// Estimated candidate pairs of a hash join on `keys`: uniform-key model
/// `|L|·|R| / Π max(d_l, d_r)`.
pub fn hash_join_pairs(left: &NodeEstimate, right: &NodeEstimate, keys: &[(usize, usize)]) -> f64 {
    let mut denom = 1.0f64;
    for &(i, j) in keys {
        let dl = left.cols.get(i).map(|c| c.distinct).unwrap_or(1.0);
        let dr = right.cols.get(j).map(|c| c.distinct).unwrap_or(1.0);
        denom *= dl.max(dr).max(1.0);
    }
    (left.rows * right.rows / denom).min(left.rows * right.rows)
}

/// Estimated candidate pairs of a sweep join over envelope columns
/// `l_col`/`r_col` (right-local index).
pub fn sweep_join_pairs(
    left: &NodeEstimate,
    right: &NodeEstimate,
    l_col: usize,
    r_col: usize,
) -> f64 {
    let frac = match (
        left.cols.get(l_col).and_then(|c| c.interval.as_ref()),
        right.cols.get(r_col).and_then(|c| c.interval.as_ref()),
    ) {
        (Some(a), Some(b)) => a.pair_overlap_frac(b),
        _ => DEFAULT_OVERLAP_SEL,
    };
    left.rows * right.rows * frac
}

/// Top-node work of a hash join candidate.
pub fn hash_join_work(
    left: &NodeEstimate,
    right: &NodeEstimate,
    keys: &[(usize, usize)],
    fixed: Option<&Expr>,
    ongoing: Option<&Expr>,
    cols: &[ColEstimate],
) -> (f64, WorkEstimate) {
    residual_work(hash_join_pairs(left, right, keys), fixed, ongoing, cols)
}

/// Top-node work of a sweep join candidate.
pub fn sweep_join_work(
    left: &NodeEstimate,
    right: &NodeEstimate,
    l_col: usize,
    r_col: usize,
    fixed: Option<&Expr>,
    ongoing: Option<&Expr>,
    cols: &[ColEstimate],
) -> (f64, WorkEstimate) {
    let (_, work) = residual_work(
        sweep_join_pairs(left, right, l_col, r_col),
        fixed,
        ongoing,
        cols,
    );
    // Output cardinality is strategy-independent: the full predicate over
    // the cross product. The envelope pass only filters *work* — the
    // ongoing residual re-contains the driving temporal conjunct, so
    // applying its selectivity to the candidate count (as `residual_work`
    // does for rows) would square the overlap fraction and starve every
    // operator above this node of cardinality.
    let rows = left.rows * right.rows * opt_sel(fixed, cols) * opt_sel(ongoing, cols);
    (rows, work)
}

/// Top-node work of a nested-loop join candidate.
pub fn nested_loop_work(
    left: &NodeEstimate,
    right: &NodeEstimate,
    fixed: Option<&Expr>,
    ongoing: Option<&Expr>,
    cols: &[ColEstimate],
) -> (f64, WorkEstimate) {
    residual_work(left.rows * right.rows, fixed, ongoing, cols)
}

/// Concatenated column estimates of a join product.
pub fn product_cols(left: &NodeEstimate, right: &NodeEstimate) -> Vec<ColEstimate> {
    let mut cols = left.cols.clone();
    cols.extend(right.cols.iter().cloned());
    cols
}

// ----------------------------------------------------------------------
// Modification-qualification costing (the write path's access-path
// choice).
// ----------------------------------------------------------------------

/// The qualification access path chosen for a `Modifier` predicate, with
/// the work-unit figures (rows visited — the storage layer's
/// `qual_work` currency, same system as [`WorkEstimate`]) that drove the
/// choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QualPath {
    /// Qualify through the keyed index: `keyed` rows visited (candidates
    /// plus overlay deltas, pending tail and one probe per chunk) vs the
    /// `scan` alternative.
    Keyed {
        /// The indexed column the probe addresses.
        col: usize,
        /// Work of the keyed path.
        keyed: u64,
        /// Work of the rejected full scan.
        scan: u64,
    },
    /// Qualify by scanning every live row.
    Scan {
        /// Work of the scan (the live row count).
        rows: u64,
    },
}

impl QualPath {
    /// Does the path use the keyed index?
    pub fn is_keyed(&self) -> bool {
        matches!(self, QualPath::Keyed { .. })
    }
}

/// Chooses the qualification access path from the storage layer's *exact*
/// per-path figures ([`ongoing_relation::QualEstimate`]) — exact because
/// the per-chunk key maps can count matching rows without visiting them,
/// so unlike the read-path join choice no histogram estimate is needed.
/// The keyed path wins strictly: on ties (tiny tables, probes matching
/// everything) the scan's better constants prevail.
pub fn qualification_path(col: usize, est: &ongoing_relation::QualEstimate) -> QualPath {
    if est.keyed < est.scan {
        QualPath::Keyed {
            col,
            keyed: est.keyed,
            scan: est.scan,
        }
    } else {
        QualPath::Scan { rows: est.scan }
    }
}

fn filter_work(
    input_rows: f64,
    fixed: Option<&Expr>,
    ongoing: Option<&Expr>,
    cols: &[ColEstimate],
) -> (f64, WorkEstimate) {
    let sf = opt_sel(fixed, cols);
    let so = opt_sel(ongoing, cols);
    let mut w = WorkEstimate {
        tuples_filtered: input_rows,
        ..WorkEstimate::default()
    };
    if ongoing.is_some() {
        w.intervals_merged += 2.0 * input_rows * sf;
    }
    (input_rows * sf * so, w)
}

// ----------------------------------------------------------------------
// Plan estimation.
// ----------------------------------------------------------------------

/// Estimates rows and work units for every operator of a physical plan
/// (ongoing-mode execution). Statistics come from the `Arc<Table>` handles
/// embedded in the scans; un-analyzed tables yield default estimates with
/// `analyzed = false`.
pub fn estimate(plan: &PhysicalPlan) -> NodeEstimate {
    match plan {
        PhysicalPlan::SeqScan { table, schema } => {
            let rows = table.data().len() as f64;
            let stats = table.statistics();
            let cols = match &stats {
                Some(s) => schema
                    .attrs()
                    .iter()
                    .enumerate()
                    .map(|(i, _)| ColEstimate {
                        distinct: s
                            .fixed(i)
                            .map(|f| f.distinct as f64)
                            .unwrap_or(rows)
                            .max(1.0),
                        fixed: s.fixed(i).cloned(),
                        interval: s.interval(i).cloned(),
                    })
                    .collect(),
                None => schema
                    .attrs()
                    .iter()
                    .map(|_| ColEstimate::unknown(rows))
                    .collect(),
            };
            let w = WorkEstimate {
                tuples_scanned: rows,
                ..WorkEstimate::default()
            };
            NodeEstimate::leaf(rows, w, stats.is_some(), cols)
        }
        PhysicalPlan::IndexScan {
            table,
            schema,
            col,
            range,
            fixed,
            ongoing,
        } => {
            let rows = table.data().len() as f64;
            let stats = table.statistics();
            let summary = stats.as_ref().and_then(|s| s.interval(*col).cloned());
            let candidates = match &summary {
                Some(s) => s.overlap_count(rows, range.0.ticks(), range.1.ticks()),
                None => rows * DEFAULT_OVERLAP_SEL,
            };
            let cols: Vec<ColEstimate> = match &stats {
                Some(s) => schema
                    .attrs()
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        ColEstimate {
                            distinct: s
                                .fixed(i)
                                .map(|f| f.distinct as f64)
                                .unwrap_or(rows)
                                .max(1.0),
                            fixed: s.fixed(i).cloned(),
                            interval: s.interval(i).cloned(),
                        }
                        .scaled(candidates)
                    })
                    .collect(),
                None => schema
                    .attrs()
                    .iter()
                    .map(|_| ColEstimate::unknown(candidates))
                    .collect(),
            };
            let (out_rows, mut w) =
                filter_work(candidates, fixed.as_ref(), ongoing.as_ref(), &cols);
            w.index_candidates += candidates;
            w.tuples_scanned += candidates;
            NodeEstimate::leaf(out_rows, w, stats.is_some(), cols)
        }
        PhysicalPlan::KeyScan {
            table,
            schema,
            probe,
            fixed,
            ongoing,
        } => {
            let rows = table.data().len() as f64;
            let stats = table.statistics();
            // Exact for this version: the visited count comes straight from
            // the store's per-chunk key maps (candidates + overlay +
            // pending + map lookups), no histogram needed.
            let visited = table
                .data()
                .qualification_estimate(probe)
                .map(|q| q.keyed as f64)
                .unwrap_or(rows);
            let cols: Vec<ColEstimate> = match &stats {
                Some(s) => schema
                    .attrs()
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        ColEstimate {
                            distinct: s
                                .fixed(i)
                                .map(|f| f.distinct as f64)
                                .unwrap_or(rows)
                                .max(1.0),
                            fixed: s.fixed(i).cloned(),
                            interval: s.interval(i).cloned(),
                        }
                        .scaled(visited)
                    })
                    .collect(),
                None => schema
                    .attrs()
                    .iter()
                    .map(|_| ColEstimate::unknown(visited))
                    .collect(),
            };
            let (out_rows, mut w) = filter_work(visited, fixed.as_ref(), ongoing.as_ref(), &cols);
            w.index_candidates += visited;
            w.tuples_scanned += visited;
            NodeEstimate::leaf(out_rows, w, stats.is_some(), cols)
        }
        PhysicalPlan::Filter {
            input,
            fixed,
            ongoing,
        } => {
            let child = estimate(input);
            let (rows, w) = filter_work(child.rows, fixed.as_ref(), ongoing.as_ref(), &child.cols);
            let cols = child.cols.iter().map(|c| c.scaled(rows)).collect();
            NodeEstimate::with_children(rows, w, cols, vec![child])
        }
        PhysicalPlan::Project { input, items, .. } => {
            let child = estimate(input);
            let rows = child.rows;
            let cols = items
                .iter()
                .map(|item| match item {
                    ProjItem::Col(i) => child
                        .cols
                        .get(*i)
                        .cloned()
                        .unwrap_or_else(|| ColEstimate::unknown(rows)),
                    ProjItem::Named { .. } => ColEstimate::unknown(rows),
                })
                .collect();
            NodeEstimate::with_children(rows, WorkEstimate::default(), cols, vec![child])
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            fixed,
            ongoing,
        } => {
            let (l, r) = (estimate(left), estimate(right));
            let cols = product_cols(&l, &r);
            let (rows, w) = nested_loop_work(&l, &r, fixed.as_ref(), ongoing.as_ref(), &cols);
            let cols = cols.iter().map(|c| c.scaled(rows)).collect();
            NodeEstimate::with_children(rows, w, cols, vec![l, r])
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            keys,
            fixed,
            ongoing,
            // The keyed build is an execution strategy with the same output;
            // its saving (no build materialization) is not modelled, so the
            // estimate stays comparable with the unkeyed plan.
            keyed: _,
        } => {
            let (l, r) = (estimate(left), estimate(right));
            let cols = product_cols(&l, &r);
            let (rows, w) = hash_join_work(&l, &r, keys, fixed.as_ref(), ongoing.as_ref(), &cols);
            let cols = cols.iter().map(|c| c.scaled(rows)).collect();
            NodeEstimate::with_children(rows, w, cols, vec![l, r])
        }
        PhysicalPlan::SweepJoin {
            left,
            right,
            l_col,
            r_col,
            fixed,
            ongoing,
        } => {
            let (l, r) = (estimate(left), estimate(right));
            let cols = product_cols(&l, &r);
            let (rows, w) = sweep_join_work(
                &l,
                &r,
                *l_col,
                *r_col,
                fixed.as_ref(),
                ongoing.as_ref(),
                &cols,
            );
            let cols = cols.iter().map(|c| c.scaled(rows)).collect();
            NodeEstimate::with_children(rows, w, cols, vec![l, r])
        }
        PhysicalPlan::Union { left, right } => {
            let (l, r) = (estimate(left), estimate(right));
            let rows = l.rows + r.rows;
            let cols = l.cols.iter().map(|c| c.scaled(rows)).collect();
            NodeEstimate::with_children(rows, WorkEstimate::default(), cols, vec![l, r])
        }
        PhysicalPlan::Difference { left, right } => {
            let (l, r) = (estimate(left), estimate(right));
            let rows = l.rows;
            let cols = l.cols.clone();
            NodeEstimate::with_children(rows, WorkEstimate::default(), cols, vec![l, r])
        }
        PhysicalPlan::Aggregate {
            input,
            group_cols,
            aggs,
            ..
        } => {
            let child = estimate(input);
            let groups: f64 = group_cols
                .iter()
                .map(|&c| child.cols.get(c).map(|c| c.distinct).unwrap_or(1.0))
                .product::<f64>()
                .min(child.rows.max(1.0));
            let mut cols: Vec<ColEstimate> = group_cols
                .iter()
                .map(|&c| {
                    child
                        .cols
                        .get(c)
                        .cloned()
                        .unwrap_or_else(|| ColEstimate::unknown(groups))
                        .scaled(groups)
                })
                .collect();
            cols.extend(aggs.iter().map(|_| ColEstimate::unknown(groups)));
            NodeEstimate::with_children(groups, WorkEstimate::default(), cols, vec![child])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::plan::{compile, PlannerConfig};
    use crate::queries;
    use ongoing_core::allen::TemporalPredicate;
    use ongoing_core::date::md;
    use ongoing_core::OngoingInterval;
    use ongoing_relation::{OngoingRelation, Schema};

    fn db(n: i64) -> Database {
        let db = Database::new();
        let schema = Schema::builder().int("K").interval("VT").build();
        let mut r = OngoingRelation::new(schema);
        for i in 0..n {
            r.insert(vec![
                Value::Int(i % 7),
                Value::Interval(OngoingInterval::fixed(
                    ongoing_core::TimePoint::new(md(1, 1).ticks() + i),
                    ongoing_core::TimePoint::new(md(1, 1).ticks() + i + 5),
                )),
            ])
            .unwrap();
        }
        db.create_table("T", r).unwrap();
        db
    }

    #[test]
    fn scan_estimate_matches_actual_rows() {
        let d = db(200);
        d.analyze("T").unwrap();
        let plan = crate::QueryBuilder::scan(&d, "T").unwrap().build();
        let phys = compile(&d, &plan, &PlannerConfig::default()).unwrap();
        let est = estimate(&phys);
        assert!(est.analyzed);
        assert_eq!(est.rows, 200.0);
        assert_eq!(est.work.tuples_scanned, 200.0);
        // Distinct count of K flows through.
        assert_eq!(est.cols[0].distinct, 7.0);
    }

    #[test]
    fn unanalyzed_scan_is_flagged() {
        let d = db(50);
        let plan = crate::QueryBuilder::scan(&d, "T").unwrap().build();
        let phys = compile(&d, &plan, &PlannerConfig::default()).unwrap();
        let est = estimate(&phys);
        assert!(!est.analyzed);
        assert_eq!(est.cols[0].distinct, 50.0, "defaults to row count");
    }

    #[test]
    fn equality_selectivity_uses_distinct_counts() {
        let d = db(140);
        d.analyze("T").unwrap();
        let plan = crate::QueryBuilder::scan(&d, "T")
            .unwrap()
            .filter(|s| Ok(Expr::col(s, "K")?.eq(Expr::lit(3i64))))
            .unwrap()
            .build();
        let phys = compile(&d, &plan, &PlannerConfig::default()).unwrap();
        let est = estimate(&phys);
        // 140 rows, 7 distinct keys → ~20 expected.
        assert!((est.rows - 20.0).abs() < 1.0, "{}", est.rows);
    }

    #[test]
    fn selection_estimate_tracks_measured_work() {
        let d = db(400);
        d.analyze("T").unwrap();
        let plan = queries::selection(
            &d,
            "T",
            TemporalPredicate::Overlaps,
            (
                md(1, 1),
                ongoing_core::TimePoint::new(md(1, 1).ticks() + 100),
            ),
        )
        .unwrap();
        let cfg = PlannerConfig::default();
        let phys = compile(&d, &plan, &cfg).unwrap();
        let est = estimate(&phys);
        let (_, actual) = phys.execute_with_stats(&cfg.exec_context()).unwrap();
        let ratio = est.work.total() / actual.total_work() as f64;
        assert!((0.2..5.0).contains(&ratio), "est/actual ratio {ratio}");
    }
}
