//! Table statistics for cost-based planning (the `ANALYZE` subsystem).
//!
//! The relative cost of the engine's join strategies depends on the data
//! shape: hash joins win when fixed equality keys are selective, the
//! envelope sweep join wins when temporal predicates prune harder than the
//! keys, nested loops only ever win on tiny inputs. This module collects
//! the summaries that let the optimizer make that choice *per workload*
//! instead of hard-coding it:
//!
//! * per-table row counts,
//! * per-column **fixed summaries** — exact distinct counts plus an
//!   equi-depth [`PointHistogram`] for integer/time attributes,
//! * per-column **interval summaries** for (ongoing) interval attributes —
//!   start-point, end-point and envelope-length histograms, the ongoing
//!   fraction, a deterministic stride sample of instantiation envelopes,
//!   and a self-join overlap-density estimate.
//!
//! Statistics are collected by [`analyze_relation`] (wired to
//! `Database::analyze` / the OngoingQL `ANALYZE` statement) and consumed by
//! the work-unit cost model in [`cost`].

pub mod cost;

use ongoing_core::hist::DEFAULT_BUCKETS;
use ongoing_core::PointHistogram;
use ongoing_relation::{OngoingRelation, Value, ValueType};
use std::collections::HashSet;
use std::sync::Arc;

/// Size of the deterministic envelope sample kept per interval column.
pub const SAMPLE_SIZE: usize = 128;

/// Summary of a fixed (non-temporal) attribute.
#[derive(Debug, Clone)]
pub struct FixedSummary {
    /// Exact number of distinct values at analyze time.
    pub distinct: u64,
    /// Value histogram for orderable numeric domains (`Int`, `Time`,
    /// `Bool`); `None` for strings.
    pub histogram: Option<PointHistogram>,
}

/// Summary of an (ongoing) interval attribute.
///
/// All histograms are built over the **instantiation envelopes**
/// `[ts.a, te.b)` of the non-empty intervals — the same abstraction the
/// sweep join and the envelope interval index operate on, so estimates and
/// executor work units speak the same language.
#[derive(Debug, Clone)]
pub struct IntervalSummary {
    /// Rows analyzed (including always-empty envelopes).
    pub rows: u64,
    /// Intervals with a non-empty envelope (`ts.a < te.b`).
    pub nonempty: u64,
    /// Intervals with at least one ongoing endpoint.
    pub ongoing: u64,
    /// Envelope start points.
    pub starts: PointHistogram,
    /// Envelope end points (`∞` for ongoing ends, kept as a saturated
    /// tick so the mass above any finite query point stays visible).
    pub ends: PointHistogram,
    /// Envelope lengths in ticks (saturating for infinite envelopes).
    pub lengths: PointHistogram,
    /// Deterministic stride sample of non-empty envelopes `(start, end)`
    /// in ticks, used to estimate join pair counts.
    pub sample: Vec<(i64, i64)>,
    /// Overlap density: the mean, over the sample, of the fraction of this
    /// column's envelopes a single envelope overlaps — the expected
    /// candidate fraction of an envelope self-join.
    pub overlap_density: f64,
}

impl IntervalSummary {
    /// Fraction of rows with a non-empty envelope.
    pub fn nonempty_frac(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.nonempty as f64 / self.rows as f64
    }

    /// Fraction of rows with an ongoing endpoint.
    pub fn ongoing_frac(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.ongoing as f64 / self.rows as f64
    }

    /// Median envelope length in ticks, `None` when no non-empty envelopes
    /// exist or the median envelope is infinite (ongoing-dominated
    /// columns). The robust summary of the length histogram — a mean would
    /// be swamped by the saturated lengths of ongoing intervals.
    pub fn median_envelope_days(&self) -> Option<i64> {
        self.lengths.median().filter(|&m| m < i64::MAX - 1)
    }

    /// Estimated fraction of the *non-empty* envelopes that overlap the
    /// query envelope `[qs, qe)`.
    ///
    /// Uses the exact identity `#(s < qe ∧ e > qs) = #(s < qe) − #(e <= qs)`
    /// (an envelope ending at or before `qs` necessarily also starts before
    /// `qe`), so the only error is histogram interpolation error.
    pub fn overlap_frac(&self, qs: i64, qe: i64) -> f64 {
        if qs >= qe {
            return 0.0;
        }
        (self.starts.frac_lt(qe) - self.ends.frac_le(qs)).clamp(0.0, 1.0)
    }

    /// Estimated number of rows whose envelope overlaps `[qs, qe)`, for a
    /// (possibly filtered) input of `rows` tuples with this distribution.
    pub fn overlap_count(&self, rows: f64, qs: i64, qe: i64) -> f64 {
        rows * self.nonempty_frac() * self.overlap_frac(qs, qe)
    }

    /// Estimated fraction of `left × right` pairs whose envelopes overlap —
    /// the sweep join's candidate selectivity. Averages the right-side
    /// overlap fraction over the left sample (falling back to the mirrored
    /// direction, then to the overlap density).
    pub fn pair_overlap_frac(&self, other: &IntervalSummary) -> f64 {
        let avg_over = |sample: &[(i64, i64)], against: &IntervalSummary| -> Option<f64> {
            if sample.is_empty() {
                return None;
            }
            let sum: f64 = sample
                .iter()
                .map(|&(s, e)| against.overlap_frac(s, e))
                .sum();
            Some(sum / sample.len() as f64)
        };
        let frac = avg_over(&self.sample, other)
            .or_else(|| avg_over(&other.sample, self))
            .unwrap_or_else(|| self.overlap_density.max(other.overlap_density));
        (frac * self.nonempty_frac() * other.nonempty_frac()).clamp(0.0, 1.0)
    }
}

/// Per-column statistics.
#[derive(Debug, Clone)]
pub enum ColumnStats {
    /// A fixed attribute.
    Fixed(Arc<FixedSummary>),
    /// An (ongoing) interval attribute.
    Interval(Arc<IntervalSummary>),
    /// A type the subsystem keeps no summary for (ongoing points, ongoing
    /// integers); only the row count applies.
    Opaque,
}

/// Statistics of one table, produced by `ANALYZE`.
#[derive(Debug, Clone)]
pub struct TableStatistics {
    /// Row count at analyze time.
    pub rows: u64,
    /// One entry per schema attribute.
    pub columns: Vec<ColumnStats>,
}

impl TableStatistics {
    /// The fixed summary of column `i`, if one was collected.
    pub fn fixed(&self, i: usize) -> Option<&Arc<FixedSummary>> {
        match self.columns.get(i) {
            Some(ColumnStats::Fixed(f)) => Some(f),
            _ => None,
        }
    }

    /// The interval summary of column `i`, if one was collected.
    pub fn interval(&self, i: usize) -> Option<&Arc<IntervalSummary>> {
        match self.columns.get(i) {
            Some(ColumnStats::Interval(s)) => Some(s),
            _ => None,
        }
    }

    /// One-line rendering per column, for diagnostics and the repro
    /// binaries.
    pub fn describe(&self, schema: &ongoing_relation::Schema) -> String {
        let mut out = format!("rows={}\n", self.rows);
        for (attr, col) in schema.attrs().iter().zip(&self.columns) {
            match col {
                ColumnStats::Fixed(f) => {
                    out.push_str(&format!("  {}: distinct={}\n", attr.name, f.distinct));
                }
                ColumnStats::Interval(s) => {
                    out.push_str(&format!(
                        "  {}: nonempty={} ongoing={:.0}% overlap-density={:.4} median-envelope={}\n",
                        attr.name,
                        s.nonempty,
                        s.ongoing_frac() * 100.0,
                        s.overlap_density,
                        s.median_envelope_days()
                            .map(|d| d.to_string())
                            .unwrap_or_else(|| "∞".into()),
                    ));
                }
                ColumnStats::Opaque => {
                    out.push_str(&format!("  {}: (no summary)\n", attr.name));
                }
            }
        }
        out
    }
}

/// The instantiation envelope of a value's interval, in ticks, if the value
/// is an interval with a non-empty envelope.
fn envelope(v: &Value) -> Option<(i64, i64)> {
    let iv = v.as_interval()?;
    let (s, e) = (iv.ts().a(), iv.te().b());
    (s < e).then(|| (s.ticks(), e.ticks()))
}

fn analyze_fixed(rel: &OngoingRelation, col: usize, ty: ValueType) -> FixedSummary {
    let mut distinct: HashSet<&Value> = HashSet::new();
    for t in rel.iter() {
        distinct.insert(t.value(col));
    }
    let histogram = match ty {
        ValueType::Int => Some(PointHistogram::build(
            rel.iter().filter_map(|t| t.value(col).as_int()).collect(),
            DEFAULT_BUCKETS,
        )),
        ValueType::Time => Some(PointHistogram::build(
            rel.iter()
                .filter_map(|t| match t.value(col) {
                    Value::Time(p) => Some(p.ticks()),
                    _ => None,
                })
                .collect(),
            DEFAULT_BUCKETS,
        )),
        ValueType::Bool => Some(PointHistogram::build(
            rel.iter()
                .filter_map(|t| t.value(col).as_bool().map(i64::from))
                .collect(),
            2,
        )),
        _ => None,
    };
    FixedSummary {
        distinct: distinct.len() as u64,
        histogram,
    }
}

fn analyze_interval(rel: &OngoingRelation, col: usize) -> IntervalSummary {
    let mut starts = Vec::new();
    let mut ends = Vec::new();
    let mut lengths = Vec::new();
    let mut envelopes = Vec::new();
    let mut ongoing = 0u64;
    for t in rel.iter() {
        let Some(iv) = t.value(col).as_interval() else {
            continue;
        };
        if iv.is_ongoing() {
            ongoing += 1;
        }
        if let Some((s, e)) = envelope(t.value(col)) {
            starts.push(s);
            ends.push(e);
            lengths.push(e.saturating_sub(s));
            envelopes.push((s, e));
        }
    }
    let nonempty = envelopes.len() as u64;
    let stride = (envelopes.len() / SAMPLE_SIZE).max(1);
    let sample: Vec<(i64, i64)> = envelopes.iter().step_by(stride).copied().collect();
    let mut summary = IntervalSummary {
        rows: rel.len() as u64,
        nonempty,
        ongoing,
        starts: PointHistogram::build(starts, DEFAULT_BUCKETS),
        ends: PointHistogram::build(ends, DEFAULT_BUCKETS),
        lengths: PointHistogram::build(lengths, DEFAULT_BUCKETS),
        sample,
        overlap_density: 0.0,
    };
    if !summary.sample.is_empty() {
        let sum: f64 = summary
            .sample
            .iter()
            .map(|&(s, e)| summary.overlap_frac(s, e))
            .sum();
        summary.overlap_density = sum / summary.sample.len() as f64;
    }
    summary
}

/// Collects full statistics over one relation — the `ANALYZE` primitive.
///
/// The walk is deterministic (stride sampling, no randomness), so repeated
/// analyzes of the same data produce identical statistics and therefore
/// identical plans.
pub fn analyze_relation(rel: &OngoingRelation) -> TableStatistics {
    let columns = rel
        .schema()
        .attrs()
        .iter()
        .enumerate()
        .map(|(i, attr)| match attr.ty {
            ValueType::OngoingInterval | ValueType::Span => {
                ColumnStats::Interval(Arc::new(analyze_interval(rel, i)))
            }
            ValueType::Int | ValueType::Str | ValueType::Bool | ValueType::Time => {
                ColumnStats::Fixed(Arc::new(analyze_fixed(rel, i, attr.ty)))
            }
            ValueType::OngoingPoint | ValueType::OngoingInt => ColumnStats::Opaque,
        })
        .collect();
    TableStatistics {
        rows: rel.len() as u64,
        columns,
    }
}

/// Convenience: the envelope of a constant interval value in ticks
/// (used by the cost model for `Col pred literal` selections).
pub fn const_envelope(v: &Value) -> Option<(i64, i64)> {
    envelope(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::date::md;
    use ongoing_core::{OngoingInterval, TimePoint};
    use ongoing_relation::Schema;

    fn rel() -> OngoingRelation {
        let schema = Schema::builder().int("K").str("C").interval("VT").build();
        let mut r = OngoingRelation::new(schema);
        for i in 0..100i64 {
            let vt = if i % 5 == 0 {
                OngoingInterval::from_until_now(md(1, 1))
            } else {
                OngoingInterval::fixed(
                    TimePoint::new(md(1, 1).ticks() + i),
                    TimePoint::new(md(1, 1).ticks() + i + 10),
                )
            };
            r.insert(vec![
                Value::Int(i % 4),
                Value::str(if i % 2 == 0 { "a" } else { "b" }),
                Value::Interval(vt),
            ])
            .unwrap();
        }
        r
    }

    #[test]
    fn analyze_counts_rows_and_distincts() {
        let s = analyze_relation(&rel());
        assert_eq!(s.rows, 100);
        assert_eq!(s.fixed(0).unwrap().distinct, 4);
        assert_eq!(s.fixed(1).unwrap().distinct, 2);
        assert!(s.fixed(0).unwrap().histogram.is_some());
        assert!(
            s.fixed(1).unwrap().histogram.is_none(),
            "no string histogram"
        );
    }

    #[test]
    fn interval_summary_tracks_ongoing_and_overlap() {
        let s = analyze_relation(&rel());
        let iv = s.interval(2).unwrap();
        assert_eq!(iv.rows, 100);
        assert_eq!(iv.nonempty, 100);
        assert_eq!(iv.ongoing, 20);
        assert!(iv.overlap_density > 0.0 && iv.overlap_density <= 1.0);
        // A window over the whole data overlaps everything.
        let all = iv.overlap_frac(md(1, 1).ticks() - 10, md(1, 1).ticks() + 1000);
        assert!(all > 0.95, "{all}");
        // A window strictly before the data overlaps nothing.
        let none = iv.overlap_frac(0, md(1, 1).ticks() - 100);
        assert!(none < 0.05, "{none}");
    }

    #[test]
    fn pair_overlap_uses_samples_symmetrically() {
        let s = analyze_relation(&rel());
        let iv = s.interval(2).unwrap();
        let f = iv.pair_overlap_frac(iv);
        let g = iv.overlap_density;
        assert!((f - g).abs() < 0.05, "self pair frac {f} vs density {g}");
    }

    #[test]
    fn always_empty_envelopes_are_excluded() {
        let schema = Schema::builder().interval("VT").build();
        let mut r = OngoingRelation::new(schema);
        r.insert(vec![Value::Interval(OngoingInterval::fixed(
            md(5, 1),
            md(2, 1),
        ))])
        .unwrap();
        let s = analyze_relation(&r);
        let iv = s.interval(0).unwrap();
        assert_eq!(iv.rows, 1);
        assert_eq!(iv.nonempty, 0);
        assert_eq!(iv.nonempty_frac(), 0.0);
        assert_eq!(iv.pair_overlap_frac(iv), 0.0);
    }

    #[test]
    fn describe_mentions_every_column() {
        let s = analyze_relation(&rel());
        let d = s.describe(rel().schema());
        assert!(d.contains("rows=100"));
        assert!(d.contains("K:"));
        assert!(d.contains("VT:"));
    }
}
