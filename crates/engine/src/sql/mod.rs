//! OngoingQL — a small SQL-like query language for ongoing databases.
//!
//! The paper's prototype extends PostgreSQL, so its queries are SQL with
//! ongoing data types. This module provides the equivalent front end for
//! the Rust engine: a lexer, a recursive-descent parser and a planner that
//! lowers parsed queries onto [`LogicalPlan`]s. The running example of
//! Sec. II reads:
//!
//! ```text
//! SELECT B.BID, B.VT, P.PID, L.Name, INTERSECTION(B.VT, L.VT) AS Resp
//! FROM B JOIN P ON B.C = P.C AND B.VT BEFORE P.VT
//!        JOIN L ON B.C = L.C AND B.VT OVERLAPS L.VT
//! WHERE B.C = 'Spam filter'
//! ```
//!
//! Literals: integers, `'strings'`, `TRUE`/`FALSE`, `DATE 'YYYY-MM-DD'`,
//! `NOW`, and `PERIOD(point, point)` interval constants. The Table II
//! predicates are infix keywords (`BEFORE`, `MEETS`, `OVERLAPS`, `STARTS`,
//! `FINISHES`, `DURING`, `EQUALS`); `INTERSECTION(a, b)`, `START(iv)` and
//! `END(iv)` are scalar functions.
//!
//! Beyond queries, [`run_statement`] also accepts `ANALYZE [table]`, which
//! collects the optimizer statistics of the [`crate::stats`] subsystem.

pub mod ast;
pub mod parser;
pub mod prepare;
pub mod token;

pub use prepare::{prepare, Prepared};

use crate::catalog::Database;
use crate::error::{EngineError, Result};
use crate::exec::{rescache, ExecStats};
use crate::obs::{EngineEvent, SpanNode, TraceCollector};
use crate::plan::{LogicalPlan, PlannerConfig, QueryBuilder};
use crate::stats::TableStatistics;
use ast::{AstExpr, Query, SelectStmt, Statement};
use ongoing_relation::algebra::ProjItem;
use ongoing_relation::{Expr, Schema};
use std::sync::Arc;
use std::time::Instant;

/// Parses and plans an OngoingQL query against a database.
///
/// Use [`crate::execute`] / [`crate::execute_at`] (or compile with a custom
/// [`crate::PlannerConfig`]) to run the returned plan.
pub fn plan_query(db: &Database, sql: &str) -> Result<LogicalPlan> {
    let query = parser::parse(sql).map_err(|e| EngineError::Plan(e.to_string()))?;
    plan(db, &query)
}

/// Parses, plans and executes in ongoing mode — the one-liner entry point.
/// Runs through the shared execution seam, so per-query metrics are
/// recorded and the result cache is consulted, exactly like
/// [`run_statement`] and prepared statements.
pub fn query(db: &Database, sql: &str) -> Result<ongoing_relation::OngoingRelation> {
    let q = parser::parse(sql).map_err(|e| EngineError::Plan(e.to_string()))?;
    run_query(db, &q, &PlannerConfig::default(), sql).map(|(rel, _)| rel)
}

/// The outcome of executing a top-level statement.
#[derive(Debug)]
pub enum StatementResult {
    /// The rows of a query.
    Rows(ongoing_relation::OngoingRelation),
    /// The tables analyzed by an `ANALYZE` statement, with their collected
    /// statistics, in name order.
    Analyzed(Vec<(String, Arc<TableStatistics>)>),
    /// The rendered plan of an `EXPLAIN [ANALYZE]` statement.
    Explained(String),
}

/// Parses and executes a top-level statement: queries run in ongoing mode
/// (recording per-query metrics through the database's observability
/// layer), `ANALYZE [table]` collects optimizer statistics through the
/// catalog, and `EXPLAIN [ANALYZE] <query>` renders the physical plan —
/// with per-operator actuals when `ANALYZE` is given.
pub fn run_statement(db: &Database, sql: &str) -> Result<StatementResult> {
    let stmt = parser::parse_statement(sql).map_err(|e| EngineError::Plan(e.to_string()))?;
    let cfg = PlannerConfig::default();
    match stmt {
        Statement::Query(q) => {
            let report = run_query(db, &q, &cfg, sql)?;
            Ok(StatementResult::Rows(report.0))
        }
        Statement::Analyze(Some(table)) => {
            let stats = db.analyze(&table)?;
            Ok(StatementResult::Analyzed(vec![(table, stats)]))
        }
        Statement::Analyze(None) => Ok(StatementResult::Analyzed(db.analyze_all())),
        Statement::Explain {
            analyze: false,
            query,
        } => {
            let lp = plan(db, &query)?;
            let phys = crate::plan::optimizer::compile(db, &lp, &cfg)?;
            Ok(StatementResult::Explained(phys.explain_with_estimates()))
        }
        Statement::Explain {
            analyze: true,
            query,
        } => {
            let report = analyze_query(db, &query, &cfg, sql)?;
            Ok(StatementResult::Explained(report.text))
        }
    }
}

/// Everything `EXPLAIN ANALYZE` measured about one query execution.
///
/// `text` is the rendered plan — per operator, the planner's estimates next
/// to the actual rows, deterministic work units, and wall-clock time — and
/// `root` is the span tree behind it for programmatic inspection. Work
/// units are identical at every thread count; wall times are not.
#[derive(Debug)]
pub struct ExplainReport {
    /// The rendered plan with per-operator estimates and actuals.
    pub text: String,
    /// Root span of the execution trace.
    pub root: SpanNode,
    /// Total deterministic work counters for the execution.
    pub stats: ExecStats,
    /// Tuples in the (ongoing) result.
    pub rows: u64,
    /// Wall-clock time of the execute phase, in nanoseconds.
    pub wall_ns: u64,
}

/// Parses, plans and executes `sql`, returning an [`ExplainReport`] — the
/// API equivalent of the `EXPLAIN ANALYZE` statement.
pub fn explain_analyze(db: &Database, sql: &str) -> Result<ExplainReport> {
    explain_analyze_with(db, sql, &PlannerConfig::default())
}

/// [`explain_analyze`] under an explicit planner configuration (thread
/// count, join strategy, ...).
pub fn explain_analyze_with(
    db: &Database,
    sql: &str,
    cfg: &PlannerConfig,
) -> Result<ExplainReport> {
    let query = parser::parse(sql).map_err(|e| EngineError::Plan(e.to_string()))?;
    analyze_query(db, &query, cfg, sql)
}

/// Executes a parsed query without tracing, recording query metrics.
fn run_query(
    db: &Database,
    q: &Query,
    cfg: &PlannerConfig,
    label: &str,
) -> Result<(ongoing_relation::OngoingRelation, ExecStats)> {
    let lp = plan(db, q)?;
    let phys = crate::plan::optimizer::compile(db, &lp, cfg)?;
    execute_compiled(db, &phys, cfg, label)
}

/// Executes an already-compiled physical plan under `cfg`, recording query
/// metrics and pool scheduling events through the database's observability
/// layer. Shared by one-shot queries, prepared statements and materialized
/// view refreshes.
///
/// This is the result-cache seam: before executing, the database's
/// [`ResultCache`](crate::exec::ResultCache) is consulted under the plan's
/// structural fingerprint and the exact table versions it embeds. A hit
/// returns the cached relation **and the stored work counters** — the same
/// per-query metrics are recorded either way, so deterministic work-unit
/// assertions hold with the cache on or off. `EXPLAIN ANALYZE` runs through
/// [`analyze_query`] instead and therefore always executes for real.
pub(crate) fn execute_compiled(
    db: &Database,
    phys: &crate::plan::PhysicalPlan,
    cfg: &PlannerConfig,
    label: &str,
) -> Result<(ongoing_relation::OngoingRelation, ExecStats)> {
    let cache = db.result_cache();
    let obs = db.observability();
    let start = Instant::now();
    let cached_key = if cache.budget() > 0 {
        let key = rescache::plan_fingerprint(phys, cfg);
        let deps = rescache::plan_tables(phys);
        if let Some((rel, stats)) = cache.lookup(&key, &deps, obs) {
            db.record_query(label, &stats, start.elapsed());
            return Ok((rel, stats));
        }
        Some((key, deps))
    } else {
        None
    };
    let ctx = cfg.exec_context().with_events(Arc::clone(&obs.events));
    match phys.execute_with_stats(&ctx) {
        Ok((rel, stats)) => {
            db.record_query(label, &stats, start.elapsed());
            if let Some((key, deps)) = cached_key {
                let deps = deps.iter().map(Arc::downgrade).collect();
                cache.insert(key, deps, &rel, stats, obs);
            }
            Ok((rel, stats))
        }
        Err(e) => {
            record_failure(db, label, &e);
            Err(e)
        }
    }
}

/// Executes a parsed query under a trace collector and renders the span
/// tree against the planner estimates.
fn analyze_query(
    db: &Database,
    q: &Query,
    cfg: &PlannerConfig,
    label: &str,
) -> Result<ExplainReport> {
    let lp = plan(db, q)?;
    let phys = crate::plan::optimizer::compile(db, &lp, cfg)?;
    let tracer = Arc::new(TraceCollector::new());
    let ctx = cfg
        .exec_context()
        .with_events(Arc::clone(&db.observability().events))
        .with_trace(Arc::clone(&tracer));
    let start = Instant::now();
    let (rel, stats) = match phys.execute_with_stats(&ctx) {
        Ok(v) => v,
        Err(e) => {
            record_failure(db, label, &e);
            return Err(e);
        }
    };
    let wall = start.elapsed();
    db.record_query(label, &stats, wall);
    let root = tracer
        .finish()
        .pop()
        .ok_or_else(|| EngineError::Plan("trace produced no root span".into()))?;
    let text = phys.explain_analyzed(&root);
    Ok(ExplainReport {
        text,
        root,
        stats,
        rows: rel.len() as u64,
        wall_ns: wall.as_nanos() as u64,
    })
}

/// Surfaces deadline/cancellation failures in the structured event log.
pub(crate) fn record_failure(db: &Database, label: &str, e: &EngineError) {
    let obs = db.observability();
    match e {
        EngineError::DeadlineExceeded => {
            obs.events.record(EngineEvent::DeadlineExceeded {
                context: label.to_string(),
            });
        }
        EngineError::Cancelled => {
            obs.events.record(EngineEvent::Cancelled {
                context: label.to_string(),
            });
        }
        _ => {}
    }
}

pub(crate) fn plan(db: &Database, q: &Query) -> Result<LogicalPlan> {
    match q {
        Query::Select(s) => plan_select(db, s),
        Query::Union(l, r) => {
            let left = plan(db, l)?;
            let right = plan(db, r)?;
            check_compatible(&left, &right, "UNION")?;
            Ok(LogicalPlan::Union {
                left: Box::new(left),
                right: Box::new(right),
            })
        }
        Query::Except(l, r) => {
            let left = plan(db, l)?;
            let right = plan(db, r)?;
            check_compatible(&left, &right, "EXCEPT")?;
            Ok(LogicalPlan::Difference {
                left: Box::new(left),
                right: Box::new(right),
            })
        }
    }
}

fn check_compatible(l: &LogicalPlan, r: &LogicalPlan, op: &str) -> Result<()> {
    if !l.schema().compatible_with(&r.schema()) {
        return Err(EngineError::Plan(format!(
            "{op} requires type-compatible inputs ({} vs {})",
            l.schema(),
            r.schema()
        )));
    }
    Ok(())
}

fn plan_select(db: &Database, s: &SelectStmt) -> Result<LogicalPlan> {
    // Single table without alias keeps plain names; anything else gets
    // qualified bindings so self-joins resolve unambiguously.
    let qualify = !s.joins.is_empty() || s.from.alias.is_some();
    let mut builder = if qualify {
        QueryBuilder::scan_as(db, &s.from.table, s.from.binding())?
    } else {
        QueryBuilder::scan(db, &s.from.table)?
    };
    for (t, on) in &s.joins {
        let right = QueryBuilder::scan_as(db, &t.table, t.binding())?;
        let on = on.clone();
        builder = builder.join(right, move |schema| {
            resolve(&on, schema).map_err(|e| match e {
                EngineError::Schema(se) => se,
                other => ongoing_relation::SchemaError::Mismatch(other.to_string()),
            })
        })?;
    }
    if let Some(w) = &s.where_clause {
        let w = w.clone();
        builder = builder.filter(move |schema| {
            resolve(&w, schema).map_err(|e| match e {
                EngineError::Schema(se) => se,
                other => ongoing_relation::SchemaError::Mismatch(other.to_string()),
            })
        })?;
    }
    if let Some(items) = &s.items {
        let schema = builder.schema().clone();
        let mut proj = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let expr = resolve(&item.expr, &schema)?;
            match (&expr, &item.alias) {
                (Expr::Col(idx), None) => proj.push(ProjItem::Col(*idx)),
                (_, alias) => {
                    let name = alias.clone().unwrap_or_else(|| match &item.expr {
                        AstExpr::Col(_, n) => n.clone(),
                        _ => format!("col{}", i + 1),
                    });
                    proj.push(ProjItem::named(expr, name));
                }
            }
        }
        builder = builder.project(proj)?;
    }
    Ok(builder.build())
}

/// Resolves an AST expression against a schema.
fn resolve(ast: &AstExpr, schema: &Schema) -> Result<Expr> {
    Ok(match ast {
        AstExpr::Col(alias, name) => {
            let full = match alias {
                Some(a) => format!("{a}.{name}"),
                None => name.clone(),
            };
            Expr::Col(schema.index_of(&full)?)
        }
        AstExpr::Lit(v) => Expr::Const(v.clone()),
        AstExpr::Cmp(op, l, r) => Expr::Cmp(
            *op,
            Box::new(resolve(l, schema)?),
            Box::new(resolve(r, schema)?),
        ),
        AstExpr::Temporal(p, l, r) => Expr::Temporal(
            *p,
            Box::new(resolve(l, schema)?),
            Box::new(resolve(r, schema)?),
        ),
        AstExpr::And(l, r) => resolve(l, schema)?.and(resolve(r, schema)?),
        AstExpr::Or(l, r) => resolve(l, schema)?.or(resolve(r, schema)?),
        AstExpr::Not(e) => resolve(e, schema)?.not(),
        AstExpr::Intersection(l, r) => resolve(l, schema)?.intersect(resolve(r, schema)?),
        AstExpr::Start(e) => resolve(e, schema)?.start_point(),
        AstExpr::End(e) => resolve(e, schema)?.end_point(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::date::md;
    use ongoing_core::{IntervalSet, OngoingInterval};
    use ongoing_relation::{OngoingRelation, Value};

    fn fig1_db() -> Database {
        let db = Database::new();
        let mut b =
            OngoingRelation::new(Schema::builder().int("BID").str("C").interval("VT").build());
        b.insert(vec![
            Value::Int(500),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
        ])
        .unwrap();
        b.insert(vec![
            Value::Int(501),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::fixed(md(3, 30), md(8, 21))),
        ])
        .unwrap();
        db.create_table("B", b).unwrap();
        let mut p =
            OngoingRelation::new(Schema::builder().int("PID").str("C").interval("VT").build());
        p.insert(vec![
            Value::Int(201),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::fixed(md(8, 15), md(8, 24))),
        ])
        .unwrap();
        p.insert(vec![
            Value::Int(202),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::fixed(md(8, 24), md(8, 27))),
        ])
        .unwrap();
        db.create_table("P", p).unwrap();
        let mut l = OngoingRelation::new(
            Schema::builder()
                .str("Name")
                .str("C")
                .interval("VT")
                .build(),
        );
        l.insert(vec![
            Value::str("Ann"),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::fixed(md(1, 20), md(8, 18))),
        ])
        .unwrap();
        l.insert(vec![
            Value::str("Bob"),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::from_until_now(md(8, 18))),
        ])
        .unwrap();
        db.create_table("L", l).unwrap();
        db
    }

    #[test]
    fn running_example_via_sql_reproduces_fig_2() {
        let db = fig1_db();
        let v = query(
            &db,
            "SELECT B.BID, B.VT, P.PID, L.Name, INTERSECTION(B.VT, L.VT) AS Resp \
             FROM B JOIN P ON B.C = P.C AND B.VT BEFORE P.VT \
             JOIN L ON B.C = L.C AND B.VT OVERLAPS L.VT \
             WHERE B.C = 'Spam filter'",
        )
        .unwrap();
        assert_eq!(v.len(), 5);
        // Spot-check v1's reference time {[01/26, 08/16)}.
        let v1 = v
            .tuples()
            .iter()
            .find(|t| {
                t.value(0) == &Value::Int(500)
                    && t.value(2) == &Value::Int(201)
                    && t.value(3).as_str() == Some("Ann")
            })
            .unwrap();
        assert_eq!(v1.rt(), &IntervalSet::range(md(1, 26), md(8, 16)));
    }

    #[test]
    fn where_with_period_literal() {
        let db = fig1_db();
        let r = query(
            &db,
            "SELECT BID FROM B WHERE VT OVERLAPS PERIOD(DATE '2019-08-01', DATE '2019-09-01')",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn select_star_and_union_except() {
        let db = fig1_db();
        let u = query(
            &db,
            "SELECT BID FROM B WHERE BID = 500 UNION SELECT BID FROM B WHERE BID = 501",
        )
        .unwrap();
        assert_eq!(u.len(), 2);
        let e = query(
            &db,
            "SELECT BID FROM B EXCEPT SELECT BID FROM B WHERE BID = 501",
        )
        .unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e.tuples()[0].value(0), &Value::Int(500));
        let all = query(&db, "SELECT * FROM B").unwrap();
        assert_eq!(all.schema().len(), 3);
    }

    #[test]
    fn start_end_now_predicates() {
        let db = fig1_db();
        // Bugs whose (ongoing) start lies before 2019-06-01 at every rt.
        let r = query(&db, "SELECT BID FROM B WHERE START(VT) < DATE '2019-06-01'").unwrap();
        assert_eq!(r.len(), 2);
        // now <= end: restricts RT for the fixed-interval bug.
        let r = query(&db, "SELECT BID FROM B WHERE NOW <= END(VT)").unwrap();
        let b501 = r
            .tuples()
            .iter()
            .find(|t| t.value(0) == &Value::Int(501))
            .unwrap();
        assert!(b501.rt().contains(md(8, 21)));
        assert!(!b501.rt().contains(md(8, 22)));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let db = fig1_db();
        assert!(matches!(
            plan_query(&db, "SELECT * FROM nope"),
            Err(EngineError::UnknownTable(_))
        ));
        let e = plan_query(&db, "SELECT nope FROM B").unwrap_err();
        assert!(e.to_string().contains("nope"), "{e}");
        let e = plan_query(&db, "SELECT * FROM B WHERE").unwrap_err();
        assert!(e.to_string().contains("parse error"), "{e}");
    }

    #[test]
    fn analyze_statement_collects_statistics() {
        let db = fig1_db();
        assert!(db.table("B").unwrap().statistics().is_none());
        // Targeted ANALYZE touches only the named table.
        match run_statement(&db, "ANALYZE B").unwrap() {
            StatementResult::Analyzed(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].0, "B");
                assert_eq!(v[0].1.rows, 2);
            }
            other => panic!("expected Analyzed, got {other:?}"),
        }
        assert!(db.table("B").unwrap().statistics().is_some());
        assert!(db.table("P").unwrap().statistics().is_none());
        // Bare ANALYZE covers every table.
        match run_statement(&db, "ANALYZE").unwrap() {
            StatementResult::Analyzed(v) => {
                let names: Vec<&str> = v.iter().map(|(n, _)| n.as_str()).collect();
                assert_eq!(names, ["B", "L", "P"]);
            }
            other => panic!("expected Analyzed, got {other:?}"),
        }
        assert!(db.table("P").unwrap().statistics().is_some());
        // Unknown tables error; queries still run through the same entry.
        assert!(run_statement(&db, "ANALYZE nope").is_err());
        match run_statement(&db, "SELECT BID FROM B").unwrap() {
            StatementResult::Rows(r) => assert_eq!(r.len(), 2),
            other => panic!("expected Rows, got {other:?}"),
        }
    }

    #[test]
    fn explain_statement_plans_without_executing() {
        let db = fig1_db();
        let text = match run_statement(&db, "EXPLAIN SELECT BID FROM B WHERE BID = 500").unwrap() {
            StatementResult::Explained(text) => text,
            other => panic!("expected Explained, got {other:?}"),
        };
        assert!(text.contains("est rows≈"), "{text}");
        assert!(
            !text.contains("wall="),
            "plain EXPLAIN must not execute: {text}"
        );
    }

    #[test]
    fn explain_analyze_three_way_join_reports_actuals() {
        let db = fig1_db();
        run_statement(&db, "ANALYZE").unwrap();
        let sql = "SELECT B.BID, P.PID, L.Name \
                   FROM B JOIN P ON B.C = P.C AND B.VT BEFORE P.VT \
                   JOIN L ON B.C = L.C AND B.VT OVERLAPS L.VT \
                   WHERE B.C = 'Spam filter'";
        let text = match run_statement(&db, &format!("EXPLAIN ANALYZE {sql}")).unwrap() {
            StatementResult::Explained(text) => text,
            other => panic!("expected Explained, got {other:?}"),
        };
        // Every operator line carries estimates and actuals side by side.
        for line in text.lines().filter(|l| l.contains("est rows≈")) {
            assert!(line.contains("rows="), "{line}");
            assert!(line.contains("work="), "{line}");
            assert!(line.contains("wall="), "{line}");
        }
        assert!(text.lines().filter(|l| l.contains("wall=")).count() >= 3);

        // The API twin reports totals that match a plain traced execution.
        let report = explain_analyze(&db, sql).unwrap();
        assert_eq!(report.rows, 5);
        assert_eq!(report.root.total_work, report.stats);
        let child_total: u64 = report
            .root
            .children
            .iter()
            .map(|c| c.total_work.total_work())
            .sum();
        assert_eq!(
            report.root.self_work.total_work() + child_total,
            report.stats.total_work()
        );
    }

    #[test]
    fn incompatible_union_rejected() {
        let db = fig1_db();
        let e = plan_query(&db, "SELECT BID FROM B UNION SELECT C FROM B").unwrap_err();
        assert!(e.to_string().contains("UNION"), "{e}");
    }

    #[test]
    fn sql_matches_builder_plan_results() {
        let db = fig1_db();
        let via_sql = query(
            &db,
            "SELECT BID FROM B WHERE VT OVERLAPS PERIOD(DATE '2019-08-01', DATE '2019-09-01')",
        )
        .unwrap();
        let plan = crate::queries::selection(
            &db,
            "B",
            ongoing_core::allen::TemporalPredicate::Overlaps,
            (md(8, 1), md(9, 1)),
        )
        .unwrap();
        let via_builder = crate::execute(&db, &plan).unwrap();
        for rt in [md(2, 1), md(8, 15), md(12, 1)] {
            let sql_rows: Vec<_> = via_sql.bind(rt).rows().to_vec();
            let builder_rows: Vec<Vec<Value>> = via_builder
                .bind(rt)
                .rows()
                .iter()
                .map(|r| vec![r[0].clone()])
                .collect();
            assert_eq!(
                sql_rows, builder_rows,
                "SQL and builder plans must agree at rt={rt}"
            );
        }
    }
}
