//! Prepared statements: parse once, plan once, execute many times.
//!
//! [`prepare`] parses an OngoingQL query into a [`Prepared`] handle that
//! caches the parsed AST for the lifetime of the handle and the resolved
//! physical plan for as long as it stays valid. A cached plan is reused
//! only when *nothing it depended on* has changed:
//!
//! - every referenced table still resolves to the **same** `Arc<Table>`
//!   (publications swap the table `Arc`, so a publication invalidates),
//! - every table's optimizer statistics are still the same
//!   `Arc<TableStatistics>` (an `ANALYZE` swaps the stats `Arc`, which can
//!   flip join-order or algorithm choices, so it invalidates too),
//! - the [`PlannerConfig`] is identical to the one the plan was compiled
//!   under.
//!
//! On mismatch the statement transparently replans — callers never see a
//! stale plan, only a cache miss. Hits and misses are counted in the
//! `ongoingdb_prepared_hits` / `ongoingdb_prepared_misses` metrics.

use crate::catalog::{Database, Table};
use crate::error::{EngineError, Result};
use crate::exec::ExecStats;
use crate::plan::{PhysicalPlan, PlannerConfig};
use crate::sql::ast::{Query, SelectStmt};
use crate::sql::{execute_compiled, parser, plan};
use crate::stats::TableStatistics;
use ongoing_relation::OngoingRelation;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// Metric counting plan-cache hits across all prepared statements.
pub const PREPARED_HITS_METRIC: &str = "ongoingdb_prepared_hits";
/// Metric counting plan-cache misses (initial compiles and invalidations).
pub const PREPARED_MISSES_METRIC: &str = "ongoingdb_prepared_misses";

/// One table the cached plan was compiled against, pinned by identity.
#[derive(Debug)]
struct Dep {
    name: String,
    table: Arc<Table>,
    stats: Option<Arc<TableStatistics>>,
}

impl Dep {
    /// Still the exact table version (and stats version) we planned for?
    fn valid(&self, db: &Database) -> bool {
        match db.table(&self.name) {
            Ok(t) => {
                Arc::ptr_eq(&t, &self.table)
                    && match (t.statistics(), &self.stats) {
                        (Some(a), Some(b)) => Arc::ptr_eq(&a, b),
                        (None, None) => true,
                        _ => false,
                    }
            }
            Err(_) => false,
        }
    }
}

/// A compiled plan plus everything that must stay fixed for it to be valid.
#[derive(Debug)]
struct CachedPlan {
    /// Fingerprint of the [`PlannerConfig`] the plan was compiled under.
    cfg_key: String,
    deps: Vec<Dep>,
    phys: Arc<PhysicalPlan>,
}

/// A parsed, plan-caching query handle — see the [module docs](self).
///
/// `Prepared` is `Send + Sync`; clones of the wrapping `Arc` (or `&`
/// references from several threads) share one plan cache.
#[derive(Debug)]
pub struct Prepared {
    text: String,
    query: Query,
    cache: Mutex<Option<CachedPlan>>,
}

/// Parses `sql` into a [`Prepared`] statement and eagerly compiles its
/// plan against `db` under the default [`PlannerConfig`], so planning
/// errors (unknown tables, type mismatches) surface at prepare time rather
/// than first execution.
pub fn prepare(db: &Database, sql: &str) -> Result<Prepared> {
    let query = parser::parse(sql).map_err(|e| EngineError::Plan(e.to_string()))?;
    let prepared = Prepared {
        text: sql.to_string(),
        query,
        cache: Mutex::new(None),
    };
    prepared.plan_for(db, &PlannerConfig::default())?;
    Ok(prepared)
}

impl Prepared {
    /// The original query text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Executes under the default [`PlannerConfig`], reusing the cached
    /// plan when still valid. Records per-query metrics exactly like
    /// [`crate::sql::query`].
    pub fn execute(&self, db: &Database) -> Result<OngoingRelation> {
        self.execute_with(db, &PlannerConfig::default())
            .map(|(rel, _)| rel)
    }

    /// [`execute`](Self::execute) under an explicit configuration,
    /// returning the deterministic work-unit stats alongside the rows.
    pub fn execute_with(
        &self,
        db: &Database,
        cfg: &PlannerConfig,
    ) -> Result<(OngoingRelation, ExecStats)> {
        let phys = self.plan_for(db, cfg)?;
        execute_compiled(db, &phys, cfg, &self.text)
    }

    /// Returns the cached physical plan if the database still matches the
    /// versions it was compiled against, else replans and refills the
    /// cache. Counts a hit or miss either way.
    fn plan_for(&self, db: &Database, cfg: &PlannerConfig) -> Result<Arc<PhysicalPlan>> {
        let cfg_key = format!("{cfg:?}");
        // A panicking sibling (poisoned lock) leaves at worst a valid-but-
        // stale cached plan, and staleness is re-checked below anyway —
        // recover the guard instead of poisoning every later execution.
        let mut guard = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cached) = guard.as_ref() {
            if cached.cfg_key == cfg_key && cached.deps.iter().all(|d| d.valid(db)) {
                db.observability()
                    .metrics
                    .counter(PREPARED_HITS_METRIC)
                    .inc();
                return Ok(Arc::clone(&cached.phys));
            }
        }
        db.observability()
            .metrics
            .counter(PREPARED_MISSES_METRIC)
            .inc();
        let lp = plan(db, &self.query)?;
        let phys = Arc::new(crate::plan::optimizer::compile(db, &lp, cfg)?);
        let mut deps = Vec::new();
        for name in table_names(&self.query) {
            let table = db.table(&name)?;
            let stats = table.statistics();
            deps.push(Dep { name, table, stats });
        }
        *guard = Some(CachedPlan {
            cfg_key,
            deps,
            phys: Arc::clone(&phys),
        });
        Ok(phys)
    }
}

/// Every catalog table name a query references (deduplicated, ordered).
fn table_names(q: &Query) -> BTreeSet<String> {
    fn walk(q: &Query, out: &mut BTreeSet<String>) {
        match q {
            Query::Select(s) => select_names(s, out),
            Query::Union(l, r) | Query::Except(l, r) => {
                walk(l, out);
                walk(r, out);
            }
        }
    }
    fn select_names(s: &SelectStmt, out: &mut BTreeSet<String>) {
        out.insert(s.from.table.clone());
        for (t, _) in &s.joins {
            out.insert(t.table.clone());
        }
    }
    let mut out = BTreeSet::new();
    walk(q, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_relation::{Schema, Value};

    fn small_db() -> Database {
        let db = Database::new();
        let mut b = OngoingRelation::new(Schema::builder().int("BID").str("C").build());
        b.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        b.insert(vec![Value::Int(2), Value::str("y")]).unwrap();
        db.create_table("B", b).unwrap();
        let mut p = OngoingRelation::new(Schema::builder().int("PID").str("C").build());
        p.insert(vec![Value::Int(10), Value::str("x")]).unwrap();
        db.create_table("P", p).unwrap();
        db
    }

    fn counter(db: &Database, name: &str) -> u64 {
        db.metrics_snapshot().value(name)
    }

    #[test]
    fn repeated_execution_hits_the_plan_cache() {
        let db = small_db();
        let stmt = prepare(&db, "SELECT BID FROM B WHERE BID = 1").unwrap();
        assert_eq!(counter(&db, PREPARED_MISSES_METRIC), 1);
        for _ in 0..3 {
            let rows = stmt.execute(&db).unwrap();
            assert_eq!(rows.len(), 1);
        }
        assert_eq!(counter(&db, PREPARED_MISSES_METRIC), 1);
        assert_eq!(counter(&db, PREPARED_HITS_METRIC), 3);
    }

    #[test]
    fn analyze_invalidates_the_cached_plan() {
        let db = small_db();
        let stmt = prepare(&db, "SELECT B.BID FROM B JOIN P ON B.C = P.C").unwrap();
        stmt.execute(&db).unwrap();
        assert_eq!(counter(&db, PREPARED_HITS_METRIC), 1);
        // New statistics may change the chosen join strategy: must replan.
        db.analyze("B").unwrap();
        stmt.execute(&db).unwrap();
        assert_eq!(counter(&db, PREPARED_MISSES_METRIC), 2);
        // And the refreshed cache is hit again afterwards.
        stmt.execute(&db).unwrap();
        assert_eq!(counter(&db, PREPARED_HITS_METRIC), 2);
    }

    #[test]
    fn publication_invalidates_the_cached_plan() {
        let db = small_db();
        let stmt = prepare(&db, "SELECT BID FROM B").unwrap();
        assert_eq!(stmt.execute(&db).unwrap().len(), 2);
        assert_eq!(counter(&db, PREPARED_HITS_METRIC), 1);
        // A publication swaps the table Arc; the next execute must replan
        // and see the new row.
        db.modify_table("B", |rel| {
            rel.insert(vec![Value::Int(3), Value::str("z")])?;
            Ok(())
        })
        .unwrap();
        assert_eq!(stmt.execute(&db).unwrap().len(), 3);
        assert_eq!(counter(&db, PREPARED_MISSES_METRIC), 2);
    }

    #[test]
    fn config_change_invalidates_the_cached_plan() {
        let db = small_db();
        let stmt = prepare(&db, "SELECT BID FROM B").unwrap();
        let misses = counter(&db, PREPARED_MISSES_METRIC);
        let cfg = PlannerConfig {
            parallelism: 2,
            ..PlannerConfig::default()
        };
        stmt.execute_with(&db, &cfg).unwrap();
        assert_eq!(counter(&db, PREPARED_MISSES_METRIC), misses + 1);
        // Same config again: hit.
        stmt.execute_with(&db, &cfg).unwrap();
        assert_eq!(counter(&db, PREPARED_HITS_METRIC), 1);
    }

    #[test]
    fn poisoned_plan_cache_recovers() {
        let db = small_db();
        let stmt = Arc::new(prepare(&db, "SELECT BID FROM B").unwrap());
        // Poison the cache lock: a thread panics while holding the guard.
        let s = Arc::clone(&stmt);
        let joined = std::thread::spawn(move || {
            let _guard = s.cache.lock().unwrap();
            panic!("poison the prepared-plan cache");
        })
        .join();
        assert!(joined.is_err());
        assert!(stmt.cache.is_poisoned());
        // The statement keeps working — and keeps serving cache hits,
        // because the poisoned guard held a perfectly valid plan.
        let hits = counter(&db, PREPARED_HITS_METRIC);
        assert_eq!(stmt.execute(&db).unwrap().len(), 2);
        assert_eq!(counter(&db, PREPARED_HITS_METRIC), hits + 1);
    }

    #[test]
    fn prepare_rejects_unknown_tables_eagerly() {
        let db = small_db();
        assert!(prepare(&db, "SELECT * FROM nope").is_err());
        assert!(prepare(&db, "SELECT * FROM B WHERE").is_err());
    }
}
