//! Lexer for the OngoingQL query language.

use std::fmt;

/// A lexical token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token start in the input.
    pub at: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier (keywords are case-insensitive; the parser
    /// decides which is which).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Single-quoted string literal (with `''` escaping).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Word(w) => write!(f, "{w}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// Lexer error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset.
    pub at: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes an input query.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let at = i;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    at,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    at,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    at,
                });
                i += 1;
            }
            '.' => {
                out.push(Token {
                    kind: TokenKind::Dot,
                    at,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    at,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    at,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token {
                    kind: TokenKind::Ne,
                    at,
                });
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token {
                        kind: TokenKind::Le,
                        at,
                    });
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        at,
                    });
                    i += 2;
                }
                _ => {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        at,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        at,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        at,
                    });
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                message: "unterminated string literal".into(),
                                at,
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Multi-byte UTF-8 safe: advance char-wise.
                            let ch = input[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    at,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let v: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer literal `{text}` out of range"),
                    at,
                })?;
                out.push(Token {
                    kind: TokenKind::Int(v),
                    at,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Word(input[start..i].to_string()),
                    at,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    at,
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        at: input.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_numbers_symbols() {
        assert_eq!(
            kinds("SELECT a.b, 42 FROM t WHERE x <= 5"),
            vec![
                TokenKind::Word("SELECT".into()),
                TokenKind::Word("a".into()),
                TokenKind::Dot,
                TokenKind::Word("b".into()),
                TokenKind::Comma,
                TokenKind::Int(42),
                TokenKind::Word("FROM".into()),
                TokenKind::Word("t".into()),
                TokenKind::Word("WHERE".into()),
                TokenKind::Word("x".into()),
                TokenKind::Le,
                TokenKind::Int(5),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'Spam filter' 'it''s'"),
            vec![
                TokenKind::Str("Spam filter".into()),
                TokenKind::Str("it's".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= != <> < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a -- comment\n b"),
            vec![
                TokenKind::Word("a".into()),
                TokenKind::Word("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_position() {
        let e = lex("abc $").unwrap_err();
        assert_eq!(e.at, 4);
        assert!(e.message.contains("unexpected character"));
        let e = lex("'open").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            kinds("'héllo ∩ wörld'"),
            vec![TokenKind::Str("héllo ∩ wörld".into()), TokenKind::Eof]
        );
    }
}
