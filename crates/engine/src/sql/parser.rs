//! Recursive-descent parser for OngoingQL.
//!
//! ```text
//! query      := select ( (UNION | EXCEPT) select )*
//! select     := SELECT items FROM table_ref (JOIN table_ref ON expr)* (WHERE expr)?
//! items      := '*' | item (',' item)*
//! item       := expr (AS ident)?
//! table_ref  := ident (AS ident)?
//! expr       := and_expr (OR and_expr)*
//! and_expr   := unary (AND unary)*
//! unary      := NOT unary | comparison
//! comparison := operand ( cmp_op operand | temporal_kw operand )?
//! operand    := literal | function | column | '(' expr ')'
//! function   := INTERSECTION '(' expr ',' expr ')'
//!             | START '(' expr ')' | END '(' expr ')'
//!             | PERIOD '(' point ',' point ')'
//! literal    := Int | 'string' | TRUE | FALSE | NOW | DATE 'YYYY-MM-DD'
//! ```
//!
//! `PERIOD(a, b)` builds an ongoing interval literal from two constant time
//! points (dates or `NOW`); temporal keywords are the Table II predicates.

use crate::sql::ast::{AstExpr, Query, SelectItem, SelectStmt, Statement, TableRef};
use crate::sql::token::{lex, Token, TokenKind};
use ongoing_core::allen::TemporalPredicate;
use ongoing_core::date::days_from_civil;
use ongoing_core::{OngoingInterval, OngoingPoint, TimePoint};
use ongoing_relation::{CmpOp, Value};
use std::fmt;

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the query text.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parses a full OngoingQL query.
pub fn parse(input: &str) -> PResult<Query> {
    let tokens = lex(input).map_err(|e| ParseError {
        message: e.message,
        at: e.at,
    })?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parses a top-level OngoingQL statement: a query, or
/// `ANALYZE [table]`.
pub fn parse_statement(input: &str) -> PResult<Statement> {
    let tokens = lex(input).map_err(|e| ParseError {
        message: e.message,
        at: e.at,
    })?;
    let mut p = Parser { tokens, pos: 0 };
    if p.eat_kw("EXPLAIN") {
        let analyze = p.eat_kw("ANALYZE");
        let query = p.query()?;
        p.expect_eof()?;
        return Ok(Statement::Explain { analyze, query });
    }
    if p.eat_kw("ANALYZE") {
        let table = if matches!(p.peek().kind, TokenKind::Eof) {
            None
        } else {
            Some(p.ident()?)
        };
        p.expect_eof()?;
        return Ok(Statement::Analyze(table));
    }
    let q = p.query()?;
    p.expect_eof()?;
    Ok(Statement::Query(q))
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        self.pos += 1;
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            message: message.into(),
            at: self.peek().at,
        })
    }

    /// Consumes a keyword (case-insensitive) if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let TokenKind::Word(w) = &self.peek().kind {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found `{}`", self.peek().kind))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> PResult<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            self.err(format!("expected `{kind}`, found `{}`", self.peek().kind))
        }
    }

    fn expect_eof(&mut self) -> PResult<()> {
        if matches!(self.peek().kind, TokenKind::Eof) {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input `{}`", self.peek().kind))
        }
    }

    /// A bare identifier (rejects reserved words used by the grammar).
    fn ident(&mut self) -> PResult<String> {
        match &self.peek().kind {
            TokenKind::Word(w) if !is_reserved(w) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn query(&mut self) -> PResult<Query> {
        let mut q = Query::Select(self.select()?);
        loop {
            if self.eat_kw("UNION") {
                let rhs = Query::Select(self.select()?);
                q = Query::Union(Box::new(q), Box::new(rhs));
            } else if self.eat_kw("EXCEPT") {
                let rhs = Query::Select(self.select()?);
                q = Query::Except(Box::new(q), Box::new(rhs));
            } else {
                return Ok(q);
            }
        }
    }

    fn select(&mut self) -> PResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let items = if self.eat(&TokenKind::Star) {
            None
        } else {
            let mut items = vec![self.select_item()?];
            while self.eat(&TokenKind::Comma) {
                items.push(self.select_item()?);
            }
            Some(items)
        };
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        while self.eat_kw("JOIN") {
            let t = self.table_ref()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            joins.push((t, on));
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            joins,
            where_clause,
        })
    }

    fn select_item(&mut self) -> PResult<SelectItem> {
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn table_ref(&mut self) -> PResult<TableRef> {
        let table = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let TokenKind::Word(w) = &self.peek().kind {
            // Bare alias (FROM BugInfo B) — only if not a reserved word.
            if !is_reserved(w) {
                let w = w.clone();
                self.pos += 1;
                Some(w)
            } else {
                None
            }
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    fn expr(&mut self) -> PResult<AstExpr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = AstExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<AstExpr> {
        let mut lhs = self.unary()?;
        while self.eat_kw("AND") {
            let rhs = self.unary()?;
            lhs = AstExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<AstExpr> {
        if self.eat_kw("NOT") {
            return Ok(AstExpr::Not(Box::new(self.unary()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> PResult<AstExpr> {
        let lhs = self.operand()?;
        let cmp = match &self.peek().kind {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Ne => Some(CmpOp::Ne),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = cmp {
            self.pos += 1;
            let rhs = self.operand()?;
            return Ok(AstExpr::Cmp(op, Box::new(lhs), Box::new(rhs)));
        }
        if let TokenKind::Word(w) = &self.peek().kind {
            if let Some(pred) = temporal_keyword(w) {
                self.pos += 1;
                let rhs = self.operand()?;
                return Ok(AstExpr::Temporal(pred, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn operand(&mut self) -> PResult<AstExpr> {
        match self.peek().kind.clone() {
            TokenKind::LParen => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Int(v) => {
                self.pos += 1;
                Ok(AstExpr::Lit(Value::Int(v)))
            }
            TokenKind::Str(s) => {
                self.pos += 1;
                Ok(AstExpr::Lit(Value::str(&s)))
            }
            TokenKind::Word(w) if w.eq_ignore_ascii_case("TRUE") => {
                self.pos += 1;
                Ok(AstExpr::Lit(Value::Bool(true)))
            }
            TokenKind::Word(w) if w.eq_ignore_ascii_case("FALSE") => {
                self.pos += 1;
                Ok(AstExpr::Lit(Value::Bool(false)))
            }
            TokenKind::Word(w) if w.eq_ignore_ascii_case("NOW") => {
                self.pos += 1;
                Ok(AstExpr::Lit(Value::Point(OngoingPoint::now())))
            }
            TokenKind::Word(w) if w.eq_ignore_ascii_case("DATE") => {
                self.pos += 1;
                let t = self.date_literal()?;
                Ok(AstExpr::Lit(Value::Time(t)))
            }
            TokenKind::Word(w) if w.eq_ignore_ascii_case("PERIOD") => {
                self.pos += 1;
                self.expect(&TokenKind::LParen)?;
                let ts = self.point_literal()?;
                self.expect(&TokenKind::Comma)?;
                let te = self.point_literal()?;
                self.expect(&TokenKind::RParen)?;
                Ok(AstExpr::Lit(Value::Interval(OngoingInterval::new(ts, te))))
            }
            TokenKind::Word(w) if w.eq_ignore_ascii_case("INTERSECTION") => {
                self.pos += 1;
                self.expect(&TokenKind::LParen)?;
                let a = self.expr()?;
                self.expect(&TokenKind::Comma)?;
                let b = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(AstExpr::Intersection(Box::new(a), Box::new(b)))
            }
            TokenKind::Word(w) if w.eq_ignore_ascii_case("START") => {
                self.pos += 1;
                self.expect(&TokenKind::LParen)?;
                let a = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(AstExpr::Start(Box::new(a)))
            }
            TokenKind::Word(w) if w.eq_ignore_ascii_case("END") => {
                self.pos += 1;
                self.expect(&TokenKind::LParen)?;
                let a = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(AstExpr::End(Box::new(a)))
            }
            TokenKind::Word(w) if !is_reserved(&w) => {
                self.pos += 1;
                if self.eat(&TokenKind::Dot) {
                    let col = self.ident()?;
                    Ok(AstExpr::Col(Some(w), col))
                } else {
                    Ok(AstExpr::Col(None, w))
                }
            }
            other => self.err(format!("expected expression, found `{other}`")),
        }
    }

    /// A constant time point: `DATE 'YYYY-MM-DD'` or `NOW`.
    fn point_literal(&mut self) -> PResult<OngoingPoint> {
        if self.eat_kw("NOW") {
            return Ok(OngoingPoint::now());
        }
        if self.eat_kw("DATE") {
            return Ok(OngoingPoint::fixed(self.date_literal()?));
        }
        self.err("expected DATE '...' or NOW")
    }

    /// The string payload of a `DATE 'YYYY-MM-DD'` literal.
    fn date_literal(&mut self) -> PResult<TimePoint> {
        let at = self.peek().at;
        match self.next().kind {
            TokenKind::Str(s) => parse_date(&s).ok_or(ParseError {
                message: format!("invalid date `{s}` (expected YYYY-MM-DD)"),
                at,
            }),
            other => Err(ParseError {
                message: format!("expected date string, found `{other}`"),
                at,
            }),
        }
    }
}

fn parse_date(s: &str) -> Option<TimePoint> {
    let mut it = s.split('-');
    let year: i32 = it.next()?.parse().ok()?;
    let month: u8 = it.next()?.parse().ok()?;
    let day: u8 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    Some(TimePoint::new(days_from_civil(year, month, day)))
}

fn temporal_keyword(w: &str) -> Option<TemporalPredicate> {
    TemporalPredicate::ALL
        .into_iter()
        .find(|p| w.eq_ignore_ascii_case(p.name()))
}

fn is_reserved(w: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "JOIN",
        "ON",
        "AS",
        "AND",
        "OR",
        "NOT",
        "UNION",
        "EXCEPT",
        "TRUE",
        "FALSE",
        "NOW",
        "DATE",
        "PERIOD",
        "INTERSECTION",
        "START",
        "END",
        "BEFORE",
        "MEETS",
        "OVERLAPS",
        "STARTS",
        "FINISHES",
        "DURING",
        "EQUALS",
    ];
    RESERVED.iter().any(|r| w.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::date::date;

    #[test]
    fn parses_analyze_statements() {
        assert_eq!(
            parse_statement("ANALYZE").unwrap(),
            Statement::Analyze(None)
        );
        assert_eq!(
            parse_statement("analyze BugInfo").unwrap(),
            Statement::Analyze(Some("BugInfo".to_string()))
        );
        assert!(matches!(
            parse_statement("SELECT * FROM t").unwrap(),
            Statement::Query(_)
        ));
        // Trailing garbage after the table name is rejected.
        assert!(parse_statement("ANALYZE a b").is_err());
    }

    #[test]
    fn parses_the_running_example_query() {
        let q = parse(
            "SELECT B.BID, B.VT, P.PID, L.Name, INTERSECTION(B.VT, L.VT) AS Resp \
             FROM B JOIN P ON B.C = P.C AND B.VT BEFORE P.VT \
             JOIN L ON B.C = L.C AND B.VT OVERLAPS L.VT \
             WHERE B.C = 'Spam filter'",
        )
        .unwrap();
        let Query::Select(s) = q else {
            panic!("single select")
        };
        assert_eq!(s.items.as_ref().unwrap().len(), 5);
        assert_eq!(s.items.as_ref().unwrap()[4].alias.as_deref(), Some("Resp"));
        assert_eq!(s.from.table, "B");
        assert_eq!(s.joins.len(), 2);
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn parses_literals() {
        let q = parse(
            "SELECT * FROM t WHERE vt OVERLAPS PERIOD(DATE '2019-08-01', NOW) \
             AND n = 42 AND s != 'x' AND ok = TRUE AND d < DATE '2019-12-31'",
        )
        .unwrap();
        let Query::Select(s) = q else { panic!() };
        let w = format!("{:?}", s.where_clause.unwrap());
        assert!(w.contains("Overlaps"));
        assert!(w.contains("Interval"));
        // Date parses to the right day tick.
        assert!(parse_date("2019-08-01").unwrap() == date(2019, 8, 1));
    }

    #[test]
    fn parses_set_operations_left_assoc() {
        let q = parse("SELECT * FROM a UNION SELECT * FROM b EXCEPT SELECT * FROM c").unwrap();
        match q {
            Query::Except(l, _) => match *l {
                Query::Union(..) => {}
                other => panic!("expected union on the left, got {other:?}"),
            },
            other => panic!("expected except at the top, got {other:?}"),
        }
    }

    #[test]
    fn bare_and_as_aliases() {
        let q = parse("SELECT * FROM BugInfo B JOIN BugInfo AS B2 ON B.ID = B2.ID").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.from.binding(), "B");
        assert_eq!(s.joins[0].0.binding(), "B2");
    }

    #[test]
    fn precedence_not_and_or() {
        let q = parse("SELECT * FROM t WHERE NOT a = 1 AND b = 2 OR c = 3").unwrap();
        let Query::Select(s) = q else { panic!() };
        // ((NOT (a=1)) AND (b=2)) OR (c=3)
        match s.where_clause.unwrap() {
            AstExpr::Or(l, _) => match *l {
                AstExpr::And(l2, _) => assert!(matches!(*l2, AstExpr::Not(_))),
                other => panic!("expected AND, got {other:?}"),
            },
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn error_positions_and_messages() {
        let e = parse("SELECT FROM t").unwrap_err();
        assert!(e.message.contains("expected expression"), "{e}");
        let e = parse("SELECT * FROM t WHERE").unwrap_err();
        assert!(e.message.contains("expected expression"), "{e}");
        let e = parse("SELECT * FROM t extra garbage").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
        let e = parse("SELECT * FROM t WHERE vt OVERLAPS PERIOD(DATE 'nope', NOW)").unwrap_err();
        assert!(e.message.contains("invalid date"), "{e}");
    }

    #[test]
    fn start_end_functions() {
        let q = parse("SELECT * FROM t WHERE START(vt) <= NOW AND NOW < END(vt)").unwrap();
        let Query::Select(s) = q else { panic!() };
        let w = format!("{:?}", s.where_clause.unwrap());
        assert!(w.contains("Start"));
        assert!(w.contains("End"));
    }
}
