//! Abstract syntax tree for OngoingQL.

use ongoing_core::allen::TemporalPredicate;
use ongoing_relation::{CmpOp, Value};

/// An unresolved expression (names instead of column indices).
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Column reference `name` or `alias.name`.
    Col(Option<String>, String),
    /// A literal value.
    Lit(Value),
    /// Scalar comparison.
    Cmp(CmpOp, Box<AstExpr>, Box<AstExpr>),
    /// Temporal predicate (Table II keyword).
    Temporal(TemporalPredicate, Box<AstExpr>, Box<AstExpr>),
    /// Conjunction.
    And(Box<AstExpr>, Box<AstExpr>),
    /// Disjunction.
    Or(Box<AstExpr>, Box<AstExpr>),
    /// Negation.
    Not(Box<AstExpr>),
    /// `INTERSECTION(a, b)` — scalar interval intersection `∩`.
    Intersection(Box<AstExpr>, Box<AstExpr>),
    /// `START(interval)`.
    Start(Box<AstExpr>),
    /// `END(interval)`.
    End(Box<AstExpr>),
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: AstExpr,
    /// Optional `AS` name.
    pub alias: Option<String>,
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Catalog table name.
    pub table: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name other parts of the query use to refer to this table.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection; `None` is `SELECT *`.
    pub items: Option<Vec<SelectItem>>,
    /// The first `FROM` table.
    pub from: TableRef,
    /// `JOIN ... ON ...` clauses, in order.
    pub joins: Vec<(TableRef, AstExpr)>,
    /// Optional `WHERE` predicate.
    pub where_clause: Option<AstExpr>,
}

/// A full query: selects combined with set operations.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A single select.
    Select(SelectStmt),
    /// `UNION` of two queries.
    Union(Box<Query>, Box<Query>),
    /// `EXCEPT` (difference) of two queries.
    Except(Box<Query>, Box<Query>),
}

/// A top-level OngoingQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query.
    Query(Query),
    /// `ANALYZE [table]`: collect optimizer statistics for one table, or
    /// for every table when the name is omitted.
    Analyze(Option<String>),
    /// `EXPLAIN [ANALYZE] <query>`: render the physical plan, with actual
    /// per-operator rows/work/time when `analyze` is set.
    Explain {
        /// `EXPLAIN ANALYZE` executes the query and reports actuals;
        /// plain `EXPLAIN` only plans it.
        analyze: bool,
        /// The query being explained.
        query: Query,
    },
}
