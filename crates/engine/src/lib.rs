//! # ongoing-engine
//!
//! The relational engine substrate for ongoing databases — the role the
//! PostgreSQL 9.4 kernel plays in the paper's prototype (Sec. VIII):
//!
//! * a [`catalog`] of base ongoing relations — in-memory
//!   ([`Database::new`]) or durable ([`Database::open`]: write-ahead
//!   logged, checkpointed into immutable chunk files, crash-recoverable),
//! * a byte-accurate [`storage`] layer (tuple codec, checksummed chunk
//!   files, WAL + manifest, and the Table V layout model),
//! * logical [`plan`]s with an optimizer implementing the paper's
//!   fixed/ongoing predicate split, selection push-down and join algorithm
//!   choice,
//! * physical executors running in two modes — **ongoing** (results remain
//!   valid as time passes by) and **instantiated at `rt`** (the Clifford
//!   baseline),
//! * a [`stats`] subsystem — `ANALYZE`-collected per-table statistics
//!   (distinct counts, interval histograms, overlap density) feeding a
//!   work-unit cost model that drives the optimizer's join-strategy and
//!   index-scan choices,
//! * the state-of-the-art [`baseline`]s the evaluation compares against,
//! * [`matview`] materialized ongoing views with cheap instantiation, and
//! * the [`queries`] of the paper's evaluation section.
//!
//! ```
//! use ongoing_engine::{Database, QueryBuilder, PlannerConfig};
//! use ongoing_engine::plan::optimizer::compile;
//! use ongoing_core::{date::md, OngoingInterval};
//! use ongoing_relation::{Expr, OngoingRelation, Schema, Value};
//!
//! let db = Database::new();
//! let schema = Schema::builder().int("BID").str("C").interval("VT").build();
//! let mut bugs = OngoingRelation::new(schema);
//! bugs.insert(vec![
//!     Value::Int(500),
//!     Value::str("Spam filter"),
//!     Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
//! ]).unwrap();
//! db.create_table("B", bugs).unwrap();
//!
//! let plan = QueryBuilder::scan(&db, "B").unwrap()
//!     .filter(|s| Ok(Expr::col(s, "C")?.eq(Expr::lit("Spam filter"))))
//!     .unwrap()
//!     .build();
//! let physical = compile(&db, &plan, &PlannerConfig::default()).unwrap();
//!
//! // Ongoing execution: valid at every reference time.
//! let ongoing = physical.execute().unwrap();
//! assert_eq!(ongoing.len(), 1);
//!
//! // Instantiated execution (Clifford baseline): valid only at `rt`.
//! let snapshot = physical.execute_at(md(8, 15)).unwrap();
//! assert_eq!(snapshot.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod matview;
pub mod modify;
pub mod obs;
pub mod plan;
pub mod queries;
pub mod sql;
pub mod stats;
pub mod storage;

pub use catalog::{Database, RetryPolicy, Table};
pub use error::{EngineError, Result};
pub use exec::{
    ExecContext, ExecStats, QueryControl, ResultCache, WorkerPool, POOL_MAX_QUERIES_ENV,
    RESULT_CACHE_BUDGET_ENV, THREADS_ENV,
};
pub use matview::{MaterializedView, RefreshOutcome};
pub use obs::{
    EngineEvent, EventLog, EventRecord, MetricsRegistry, MetricsSnapshot, SpanNode, TraceCollector,
    EVENT_LOG_ENV, SLOW_QUERY_ENV,
};
pub use plan::{JoinStrategy, LogicalPlan, PhysicalPlan, PlannerConfig, QueryBuilder};
pub use sql::{
    explain_analyze, explain_analyze_with, prepare, ExplainReport, Prepared, StatementResult,
};
pub use stats::cost::QualPath;
pub use stats::TableStatistics;
pub use storage::durable::{DurableOptions, DurableStats};
pub use storage::{CacheStats, ChunkCache, DiskError, RealFs, Vfs};

use ongoing_core::TimePoint;
use ongoing_relation::{FixedRelation, OngoingRelation};

/// Compiles and executes a logical plan in ongoing mode with the default
/// planner configuration (auto parallelism — see [`ExecContext`]).
pub fn execute(db: &Database, plan: &LogicalPlan) -> Result<OngoingRelation> {
    let cfg = PlannerConfig::default();
    plan::optimizer::compile(db, plan, &cfg)?.execute_ctx(&cfg.exec_context())
}

/// Compiles and executes a logical plan with the Clifford baseline:
/// ongoing attributes are instantiated at `rt` when scanned; the result is
/// valid only at `rt`.
pub fn execute_at(db: &Database, plan: &LogicalPlan, rt: TimePoint) -> Result<FixedRelation> {
    let cfg = PlannerConfig::default();
    let phys = plan::optimizer::compile(db, plan, &cfg)?;
    let (rel, _) = phys.execute_at_with_stats(rt, &cfg.exec_context())?;
    Ok(rel)
}
