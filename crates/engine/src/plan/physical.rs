//! Physical plans and their two execution modes.
//!
//! A [`PhysicalPlan`] executes either
//!
//! * **ongoing** ([`PhysicalPlan::execute`]): the paper's approach — ongoing
//!   attributes stay uninstantiated, predicates evaluate to ongoing
//!   booleans, every operator restricts the result tuples' reference time
//!   (Theorem 2); or
//! * **instantiated** ([`PhysicalPlan::execute_at`]): the Clifford et al.
//!   baseline — ongoing attributes are bound at a chosen reference time the
//!   moment they are scanned, all predicates run on fixed values with the
//!   fixed-interval fast path, and no reference-time bookkeeping happens at
//!   all. The result is only valid at that reference time.
//!
//! Running both modes through the same operator tree is what makes the
//! paper's runtime comparisons (Sec. IX) meaningful: both sides pay for the
//! same scans, joins and projections; the ongoing mode additionally pays for
//! interval-set arithmetic, the baseline instead pays once per re-evaluation.

use crate::catalog::Table;
use crate::error::{EngineError, Result};
use ongoing_core::allen::TemporalPredicate;
use ongoing_core::{IntervalSet, TimePoint};
use ongoing_relation::algebra::{self, ProjItem};
use ongoing_relation::{Expr, FixedRelation, OngoingRelation, Schema, Tuple, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A physical operator tree.
#[derive(Debug)]
pub enum PhysicalPlan {
    /// Sequential scan of a base table.
    SeqScan {
        /// The resolved table.
        table: Arc<Table>,
        /// Output schema (possibly re-qualified names).
        schema: Schema,
    },
    /// Envelope-index pre-filtered scan: candidates from an
    /// [`IntervalIndex`](crate::exec::IntervalIndex) query, exact predicate as residual.
    IndexScan {
        /// The resolved table.
        table: Arc<Table>,
        /// Output schema.
        schema: Schema,
        /// Interval column the index is built over.
        col: usize,
        /// Envelope query range.
        range: (TimePoint, TimePoint),
        /// Exact predicate re-checked per candidate (fixed part).
        fixed: Option<Expr>,
        /// Exact predicate re-checked per candidate (ongoing part).
        ongoing: Option<Expr>,
    },
    /// Filter with the paper's fixed/ongoing predicate split.
    Filter {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Conjunct over fixed attributes (plain boolean gate).
        fixed: Option<Expr>,
        /// Conjunct over ongoing attributes (restricts `RT`).
        ongoing: Option<Expr>,
    },
    /// Projection.
    Project {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Output columns.
        items: Vec<ProjItem>,
        /// Output schema.
        schema: Schema,
    },
    /// Tuple-at-a-time nested-loop join.
    NestedLoopJoin {
        /// Left (outer) input.
        left: Box<PhysicalPlan>,
        /// Right (inner) input.
        right: Box<PhysicalPlan>,
        /// Fixed-attribute conjunct.
        fixed: Option<Expr>,
        /// Ongoing-attribute conjunct.
        ongoing: Option<Expr>,
    },
    /// Hash join on fixed-attribute equality keys, with residual conjuncts.
    HashJoin {
        /// Left (probe) input.
        left: Box<PhysicalPlan>,
        /// Right (build) input.
        right: Box<PhysicalPlan>,
        /// `(left column, right column)` equality key pairs.
        keys: Vec<(usize, usize)>,
        /// Fixed residual conjunct.
        fixed: Option<Expr>,
        /// Ongoing residual conjunct.
        ongoing: Option<Expr>,
    },
    /// Sort-merge interval join: a forward-scan plane sweep over the
    /// instantiation envelopes of two interval columns, with the exact
    /// predicate as residual.
    SweepJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Left interval column.
        l_col: usize,
        /// Right interval column (right-local index).
        r_col: usize,
        /// Fixed residual conjunct (includes the driving temporal conjunct
        /// when inputs are fixed).
        fixed: Option<Expr>,
        /// Ongoing residual conjunct.
        ongoing: Option<Expr>,
    },
    /// Union (coalescing set union).
    Union {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Difference (Theorem 2 semantics).
    Difference {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Grouped aggregation into ongoing integers.
    Aggregate {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Group-by columns.
        group_cols: Vec<usize>,
        /// Aggregate functions.
        aggs: Vec<ongoing_relation::aggregate::AggFn>,
        /// Output schema.
        schema: Schema,
    },
}

impl PhysicalPlan {
    /// The output schema.
    pub fn schema(&self) -> Schema {
        match self {
            PhysicalPlan::SeqScan { schema, .. }
            | PhysicalPlan::IndexScan { schema, .. }
            | PhysicalPlan::Project { schema, .. }
            | PhysicalPlan::Aggregate { schema, .. } => schema.clone(),
            PhysicalPlan::Filter { input, .. } => input.schema(),
            PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::SweepJoin { left, right, .. } => left.schema().product(&right.schema()),
            PhysicalPlan::Union { left, .. } | PhysicalPlan::Difference { left, .. } => {
                left.schema()
            }
        }
    }

    /// EXPLAIN-style rendering (one operator per line).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let preds = |fixed: &Option<Expr>, ongoing: &Option<Expr>| {
            let mut s = String::new();
            if let Some(f) = fixed {
                s.push_str(&format!(" fixed: {f}"));
            }
            if let Some(o) = ongoing {
                s.push_str(&format!(" ongoing: {o}"));
            }
            s
        };
        match self {
            PhysicalPlan::SeqScan { table, .. } => {
                out.push_str(&format!("{pad}SeqScan {}\n", table.name()));
            }
            PhysicalPlan::IndexScan {
                table,
                col,
                range,
                fixed,
                ongoing,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}IndexScan {} col #{col} env [{}, {}){}\n",
                    table.name(),
                    range.0,
                    range.1,
                    preds(fixed, ongoing)
                ));
            }
            PhysicalPlan::Filter {
                input,
                fixed,
                ongoing,
            } => {
                out.push_str(&format!("{pad}Filter{}\n", preds(fixed, ongoing)));
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::Project { input, items, .. } => {
                out.push_str(&format!("{pad}Project [{} cols]\n", items.len()));
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                fixed,
                ongoing,
            } => {
                out.push_str(&format!("{pad}NestedLoopJoin{}\n", preds(fixed, ongoing)));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                keys,
                fixed,
                ongoing,
            } => {
                out.push_str(&format!(
                    "{pad}HashJoin on {keys:?}{}\n",
                    preds(fixed, ongoing)
                ));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PhysicalPlan::SweepJoin {
                left,
                right,
                l_col,
                r_col,
                fixed,
                ongoing,
            } => {
                out.push_str(&format!(
                    "{pad}SweepJoin envelopes #{l_col} x #{r_col}{}\n",
                    preds(fixed, ongoing)
                ));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PhysicalPlan::Union { left, right } => {
                out.push_str(&format!("{pad}Union\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PhysicalPlan::Difference { left, right } => {
                out.push_str(&format!("{pad}Difference\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PhysicalPlan::Aggregate {
                input,
                group_cols,
                aggs,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Aggregate group by {group_cols:?} [{} aggs]\n",
                    aggs.len()
                ));
                input.explain_into(depth + 1, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Ongoing execution (the paper's approach).
    // ------------------------------------------------------------------

    /// Executes in ongoing mode: the result is an ongoing relation that
    /// remains valid as time passes by.
    pub fn execute(&self) -> Result<OngoingRelation> {
        match self {
            PhysicalPlan::SeqScan { table, schema } => Ok(table
                .data()
                .clone()
                .with_schema(schema.clone())
                .expect("scan schema is a rename of the table schema")),
            PhysicalPlan::IndexScan {
                table,
                schema,
                col,
                range,
                fixed,
                ongoing,
            } => {
                let idx = table.interval_index(*col)?;
                let data = table.data();
                let mut out = OngoingRelation::new(schema.clone());
                for id in idx.query(range.0, range.1) {
                    let t = &data.tuples()[id];
                    push_filtered(&mut out, t, fixed.as_ref(), ongoing.as_ref())?;
                }
                Ok(out)
            }
            PhysicalPlan::Filter {
                input,
                fixed,
                ongoing,
            } => {
                let rel = input.execute()?;
                let mut out = OngoingRelation::new(rel.schema().clone());
                for t in rel.tuples() {
                    push_filtered(&mut out, t, fixed.as_ref(), ongoing.as_ref())?;
                }
                Ok(out)
            }
            PhysicalPlan::Project {
                input,
                items,
                schema,
            } => {
                let rel = input.execute()?;
                let projected = algebra::project(&rel, items)?;
                projected
                    .with_schema(schema.clone())
                    .map_err(EngineError::Schema)
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                fixed,
                ongoing,
            } => {
                let l = left.execute()?;
                let r = right.execute()?;
                let mut out = OngoingRelation::new(l.schema().product(r.schema()));
                for lt in l.tuples() {
                    for rt_ in r.tuples() {
                        join_pair(&mut out, lt, rt_, fixed.as_ref(), ongoing.as_ref())?;
                    }
                }
                Ok(out)
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                keys,
                fixed,
                ongoing,
            } => {
                let l = left.execute()?;
                let r = right.execute()?;
                let mut out = OngoingRelation::new(l.schema().product(r.schema()));
                // Build on the right side.
                let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(r.len());
                for rt_ in r.tuples() {
                    let key: Vec<Value> = keys.iter().map(|&(_, j)| rt_.value(j).clone()).collect();
                    table.entry(key).or_default().push(rt_);
                }
                for lt in l.tuples() {
                    let key: Vec<Value> = keys.iter().map(|&(i, _)| lt.value(i).clone()).collect();
                    if let Some(matches) = table.get(&key) {
                        for rt_ in matches {
                            join_pair(&mut out, lt, rt_, fixed.as_ref(), ongoing.as_ref())?;
                        }
                    }
                }
                Ok(out)
            }
            PhysicalPlan::SweepJoin {
                left,
                right,
                l_col,
                r_col,
                fixed,
                ongoing,
            } => {
                let l = left.execute()?;
                let r = right.execute()?;
                let mut out = OngoingRelation::new(l.schema().product(r.schema()));
                let le = envelopes(l.tuples(), *l_col)?;
                let re = envelopes(r.tuples(), *r_col)?;
                sweep_pairs(&le, &re, |li, ri| {
                    join_pair(
                        &mut out,
                        &l.tuples()[li],
                        &r.tuples()[ri],
                        fixed.as_ref(),
                        ongoing.as_ref(),
                    )
                })?;
                Ok(out)
            }
            PhysicalPlan::Union { left, right } => {
                let l = left.execute()?;
                let r = right.execute()?;
                algebra::union(&l, &r).map_err(EngineError::Schema)
            }
            PhysicalPlan::Difference { left, right } => {
                let l = left.execute()?;
                let r = right.execute()?;
                algebra::difference(&l, &r).map_err(EngineError::Schema)
            }
            PhysicalPlan::Aggregate {
                input,
                group_cols,
                aggs,
                schema,
            } => {
                let rel = input.execute()?;
                let names: Vec<String> = schema
                    .attrs()
                    .iter()
                    .skip(group_cols.len())
                    .map(|a| a.name.clone())
                    .collect();
                let agg =
                    ongoing_relation::aggregate::aggregate_relation(&rel, group_cols, aggs, &names)
                        .map_err(EngineError::Schema)?;
                agg.with_schema(schema.clone()).map_err(EngineError::Schema)
            }
        }
    }

    // ------------------------------------------------------------------
    // Instantiated execution (Clifford et al. baseline).
    // ------------------------------------------------------------------

    /// Executes in instantiated mode at reference time `rt`: ongoing
    /// attributes are bound during the scan, everything downstream runs on
    /// fixed values. The result is valid only at `rt`.
    pub fn execute_at(&self, rt: TimePoint) -> Result<FixedRelation> {
        Ok(FixedRelation::from_rows(self.rows_at(rt)?))
    }

    /// Instantiated execution returning the raw row bag (deduplicated by
    /// [`FixedRelation`] in `execute_at`).
    pub fn rows_at(&self, rt: TimePoint) -> Result<Vec<Vec<Value>>> {
        match self {
            PhysicalPlan::SeqScan { table, .. } => Ok(table
                .data()
                .tuples()
                .iter()
                .filter_map(|t| t.bind(rt))
                .collect()),
            PhysicalPlan::IndexScan {
                table,
                col,
                range,
                fixed,
                ongoing,
                ..
            } => {
                let idx = table.interval_index(*col)?;
                let data = table.data();
                let fixed = fixed.as_ref().map(|e| e.bind_consts(rt));
                let ongoing = ongoing.as_ref().map(|e| e.bind_consts(rt));
                let mut out = Vec::new();
                for id in idx.query(range.0, range.1) {
                    if let Some(row) = data.tuples()[id].bind(rt) {
                        if pass_fixed(&row, fixed.as_ref())? && pass_fixed(&row, ongoing.as_ref())?
                        {
                            out.push(row);
                        }
                    }
                }
                Ok(out)
            }
            PhysicalPlan::Filter {
                input,
                fixed,
                ongoing,
            } => {
                let rows = input.rows_at(rt)?;
                // Instantiate ongoing literals in the predicates (the bind
                // operator applies to the query, not only the data).
                let fixed = fixed.as_ref().map(|e| e.bind_consts(rt));
                let ongoing = ongoing.as_ref().map(|e| e.bind_consts(rt));
                let mut out = Vec::with_capacity(rows.len() / 2);
                for row in rows {
                    if pass_fixed(&row, fixed.as_ref())? && pass_fixed(&row, ongoing.as_ref())? {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            PhysicalPlan::Project { input, items, .. } => {
                let rows = input.rows_at(rt)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(items.len());
                    for item in items {
                        match item {
                            ProjItem::Col(i) => vals.push(row[*i].clone()),
                            ProjItem::Named { expr, .. } => {
                                // Bind computed values so e.g. an interval
                                // intersection instantiates to a fixed span.
                                vals.push(expr.eval_scalar(&row)?.bind(rt));
                            }
                        }
                    }
                    out.push(vals);
                }
                Ok(out)
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                fixed,
                ongoing,
            } => {
                let l = left.rows_at(rt)?;
                let r = right.rows_at(rt)?;
                let fixed = fixed.as_ref().map(|e| e.bind_consts(rt));
                let ongoing = ongoing.as_ref().map(|e| e.bind_consts(rt));
                let mut out = Vec::new();
                for lr in &l {
                    for rr in &r {
                        join_rows(&mut out, lr, rr, fixed.as_ref(), ongoing.as_ref())?;
                    }
                }
                Ok(out)
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                keys,
                fixed,
                ongoing,
            } => {
                let l = left.rows_at(rt)?;
                let r = right.rows_at(rt)?;
                let mut table: HashMap<Vec<Value>, Vec<&Vec<Value>>> =
                    HashMap::with_capacity(r.len());
                for rr in &r {
                    let key: Vec<Value> = keys.iter().map(|&(_, j)| rr[j].clone()).collect();
                    table.entry(key).or_default().push(rr);
                }
                let fixed = fixed.as_ref().map(|e| e.bind_consts(rt));
                let ongoing = ongoing.as_ref().map(|e| e.bind_consts(rt));
                let mut out = Vec::new();
                for lr in &l {
                    let key: Vec<Value> = keys.iter().map(|&(i, _)| lr[i].clone()).collect();
                    if let Some(matches) = table.get(&key) {
                        for rr in matches {
                            join_rows(&mut out, lr, rr, fixed.as_ref(), ongoing.as_ref())?;
                        }
                    }
                }
                Ok(out)
            }
            PhysicalPlan::SweepJoin {
                left,
                right,
                l_col,
                r_col,
                fixed,
                ongoing,
            } => {
                let l = left.rows_at(rt)?;
                let r = right.rows_at(rt)?;
                let le = row_envelopes(&l, *l_col)?;
                let re = row_envelopes(&r, *r_col)?;
                let fixed = fixed.as_ref().map(|e| e.bind_consts(rt));
                let ongoing = ongoing.as_ref().map(|e| e.bind_consts(rt));
                let mut out = Vec::new();
                sweep_pairs(&le, &re, |li, ri| {
                    join_rows(&mut out, &l[li], &r[ri], fixed.as_ref(), ongoing.as_ref())
                })?;
                Ok(out)
            }
            PhysicalPlan::Union { left, right } => {
                let mut l = left.rows_at(rt)?;
                l.extend(right.rows_at(rt)?);
                Ok(l)
            }
            PhysicalPlan::Difference { left, right } => {
                let l = left.rows_at(rt)?;
                let r = FixedRelation::from_rows(right.rows_at(rt)?);
                Ok(l.into_iter().filter(|row| !r.contains(row)).collect())
            }
            PhysicalPlan::Aggregate {
                input,
                group_cols,
                aggs,
                ..
            } => {
                // Fixed grouped aggregation over the instantiated rows —
                // the semantics the ongoing operator must instantiate to.
                use ongoing_relation::aggregate::AggFn;
                let rows = FixedRelation::from_rows(input.rows_at(rt)?);
                let mut order: Vec<Vec<Value>> = Vec::new();
                let mut groups: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::new();
                for row in rows.rows() {
                    let key: Vec<Value> = group_cols.iter().map(|&c| row[c].clone()).collect();
                    match groups.entry(key) {
                        std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(row),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            order.push(e.key().clone());
                            e.insert(vec![row]);
                        }
                    }
                }
                let mut out = Vec::with_capacity(order.len());
                for key in order {
                    let members = &groups[&key];
                    let mut vals = key;
                    for a in aggs {
                        let v = match a {
                            AggFn::CountStar => members.len() as i64,
                            AggFn::SumInt(col) => {
                                members.iter().map(|r| r[*col].as_int().unwrap_or(0)).sum()
                            }
                        };
                        vals.push(Value::Int(v));
                    }
                    out.push(vals);
                }
                Ok(out)
            }
        }
    }
}

// ----------------------------------------------------------------------
// Shared helpers.
// ----------------------------------------------------------------------

/// Ongoing-mode filter application: fixed conjunct gates, ongoing conjunct
/// restricts `RT`.
fn push_filtered(
    out: &mut OngoingRelation,
    t: &Tuple,
    fixed: Option<&Expr>,
    ongoing: Option<&Expr>,
) -> Result<()> {
    if let Some(f) = fixed {
        if !f.eval_bool(t.values())? {
            return Ok(());
        }
    }
    match ongoing {
        Some(o) => {
            let theta = o.eval_predicate(t.values())?;
            let rt = t.rt().intersect(theta.true_set());
            if !rt.is_empty() {
                out.push(t.restricted(rt));
            }
        }
        None => out.push(t.clone()),
    }
    Ok(())
}

/// Ongoing-mode join pair: concat (intersecting `RT`s), gate on the fixed
/// conjunct, restrict by the ongoing conjunct.
fn join_pair(
    out: &mut OngoingRelation,
    lt: &Tuple,
    rt_: &Tuple,
    fixed: Option<&Expr>,
    ongoing: Option<&Expr>,
) -> Result<()> {
    let t = lt.concat(rt_);
    if t.rt().is_empty() {
        return Ok(());
    }
    if let Some(f) = fixed {
        if !f.eval_bool(t.values())? {
            return Ok(());
        }
    }
    match ongoing {
        Some(o) => {
            let theta = o.eval_predicate(t.values())?;
            let rt = t.rt().intersect(theta.true_set());
            if !rt.is_empty() {
                out.push(t.restricted(rt));
            }
        }
        None => out.push(t),
    }
    Ok(())
}

/// Instantiated-mode predicate gate (all values fixed at this point).
fn pass_fixed(row: &[Value], pred: Option<&Expr>) -> Result<bool> {
    match pred {
        Some(p) => Ok(p.eval_bool(row)?),
        None => Ok(true),
    }
}

/// Instantiated-mode join pair.
fn join_rows(
    out: &mut Vec<Vec<Value>>,
    l: &[Value],
    r: &[Value],
    fixed: Option<&Expr>,
    ongoing: Option<&Expr>,
) -> Result<()> {
    let mut row = Vec::with_capacity(l.len() + r.len());
    row.extend_from_slice(l);
    row.extend_from_slice(r);
    if pass_fixed(&row, fixed)? && pass_fixed(&row, ongoing)? {
        out.push(row);
    }
    Ok(())
}

/// `(envelope start, envelope end, position)` for a tuple list, skipping
/// always-empty intervals (no predicate with a non-empty check can match
/// them).
fn envelopes(tuples: &[Tuple], col: usize) -> Result<Vec<(TimePoint, TimePoint, usize)>> {
    let mut out = Vec::with_capacity(tuples.len());
    for (i, t) in tuples.iter().enumerate() {
        let iv = t.value(col).as_interval().ok_or_else(|| {
            EngineError::Plan(format!("sweep join column #{col} is not an interval"))
        })?;
        let (s, e) = (iv.ts().a(), iv.te().b());
        if s < e {
            out.push((s, e, i));
        }
    }
    out.sort_unstable_by_key(|&(s, e, _)| (s, e));
    Ok(out)
}

/// Envelopes over instantiated rows (the bound span *is* the envelope).
fn row_envelopes(rows: &[Vec<Value>], col: usize) -> Result<Vec<(TimePoint, TimePoint, usize)>> {
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let iv = row[col].as_interval().ok_or_else(|| {
            EngineError::Plan(format!("sweep join column #{col} is not an interval"))
        })?;
        let (s, e) = (iv.ts().a(), iv.te().b());
        if s < e {
            out.push((s, e, i));
        }
    }
    out.sort_unstable_by_key(|&(s, e, _)| (s, e));
    Ok(out)
}

/// Forward-scan plane sweep (Bouros & Mamoulis style) enumerating all pairs
/// with overlapping envelopes, in O(sorted inputs + output).
fn sweep_pairs<E>(
    l: &[(TimePoint, TimePoint, usize)],
    r: &[(TimePoint, TimePoint, usize)],
    mut emit: impl FnMut(usize, usize) -> std::result::Result<(), E>,
) -> std::result::Result<(), E> {
    let (mut i, mut j) = (0usize, 0usize);
    while i < l.len() && j < r.len() {
        if l[i].0 <= r[j].0 {
            // Scan forward on the right while it starts before l[i] ends.
            let (ls, le, li) = l[i];
            let mut k = j;
            while k < r.len() && r[k].0 < le {
                if r[k].1 > ls {
                    emit(li, r[k].2)?;
                }
                k += 1;
            }
            i += 1;
        } else {
            let (rs, re, ri) = r[j];
            let mut k = i;
            while k < l.len() && l[k].0 < re {
                if l[k].1 > rs {
                    emit(l[k].2, ri)?;
                }
                k += 1;
            }
            j += 1;
        }
    }
    Ok(())
}

/// Extracts the left/right interval columns of a temporal conjunct suitable
/// for a sweep join: `Temporal(pred, Col(i), Col(j))` with `i` left of the
/// split and `j` right of it (or mirrored). Only predicates whose truth at a
/// reference time implies a shared instantiation time point are sweepable.
pub fn sweepable_columns(conjunct: &Expr, split: usize) -> Option<(usize, usize)> {
    let sweep_sound = |p: TemporalPredicate| {
        matches!(
            p,
            TemporalPredicate::Overlaps | TemporalPredicate::Starts | TemporalPredicate::Finishes
        )
    };
    if let Expr::Temporal(p, l, r) = conjunct {
        if !sweep_sound(*p) {
            return None;
        }
        if let (Expr::Col(i), Expr::Col(j)) = (l.as_ref(), r.as_ref()) {
            let (i, j) = (*i, *j);
            if i < split && j >= split {
                return Some((i, j - split));
            }
            if j < split && i >= split {
                return Some((j, i - split));
            }
        }
    }
    None
}

/// Extracts an index-scan opportunity from a selection conjunct:
/// `Col(i) overlaps <fixed interval literal>` (either operand order).
/// Returns the column and the envelope query range.
pub fn indexable_selection(conjunct: &Expr) -> Option<(usize, (TimePoint, TimePoint))> {
    if let Expr::Temporal(p, l, r) = conjunct {
        if !matches!(
            p,
            TemporalPredicate::Overlaps | TemporalPredicate::Starts | TemporalPredicate::Finishes
        ) {
            return None;
        }
        let lit_env = |e: &Expr| -> Option<(TimePoint, TimePoint)> {
            if let Expr::Const(v) = e {
                v.as_interval().map(|iv| (iv.ts().a(), iv.te().b()))
            } else {
                None
            }
        };
        match (l.as_ref(), r.as_ref()) {
            (Expr::Col(i), lit) => lit_env(lit).map(|env| (*i, env)),
            (lit, Expr::Col(i)) => lit_env(lit).map(|env| (*i, env)),
            _ => None,
        }
    } else {
        None
    }
}

/// The set of reference times a relation's tuples cover — used by tests and
/// the harness to pick representative instantiation points.
pub fn reference_span(rel: &OngoingRelation) -> IntervalSet {
    let mut acc = IntervalSet::empty();
    for t in rel.tuples() {
        acc = acc.union(t.rt());
    }
    acc
}
