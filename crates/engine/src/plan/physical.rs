//! Physical plans and their two execution modes.
//!
//! A [`PhysicalPlan`] executes either
//!
//! * **ongoing** ([`PhysicalPlan::execute`]): the paper's approach — ongoing
//!   attributes stay uninstantiated, predicates evaluate to ongoing
//!   booleans, every operator restricts the result tuples' reference time
//!   (Theorem 2); or
//! * **instantiated** ([`PhysicalPlan::execute_at`]): the Clifford et al.
//!   baseline — ongoing attributes are bound at a chosen reference time the
//!   moment they are scanned, all predicates run on fixed values with the
//!   fixed-interval fast path, and no reference-time bookkeeping happens at
//!   all. The result is only valid at that reference time.
//!
//! Running both modes through the same operator tree is what makes the
//! paper's runtime comparisons (Sec. IX) meaningful: both sides pay for the
//! same scans, joins and projections; the ongoing mode additionally pays for
//! interval-set arithmetic, the baseline instead pays once per re-evaluation.
//!
//! # Morsel-driven parallel execution
//!
//! Both modes run morsel-style on the process-wide
//! [`WorkerPool`](crate::exec::WorkerPool): an [`ExecContext`] carries the
//! parallelism budget and the query's pool session, and relation-valued
//! inputs are partitioned into morsels — along the copy-on-write store's
//! natural chunk boundaries ([`OngoingRelation::lazy_views`]) for scans
//! and probe/outer join sides, by contiguous index ranges for positional
//! inputs. Each morsel becomes one `'static` task over `Arc`-shared
//! operator state, submitted to the query's task queue; the shared
//! scheduler dispatches morsels round-robin across concurrent queries and
//! the submitting thread helps drain its own queue, so no operator ever
//! spawns threads of its own. Partial results are merged in morsel
//! (partition) order, so the output — tuple order included — is identical
//! for every pool size. Each morsel accumulates a local [`ExecStats`]
//! that is folded at the merge point; since every work unit is counted
//! exactly once no matter which thread performs it, the totals are
//! deterministic across pool sizes and can replace wall-clock durations
//! in benchmark assertions.

use crate::catalog::Table;
use crate::error::{EngineError, Result};
use crate::exec::pool::Morsel;
use crate::exec::{ExecContext, ExecStats};
use ongoing_core::allen::TemporalPredicate;
use ongoing_core::{IntervalSet, TimePoint};
use ongoing_relation::algebra::{self, ProjItem};
use ongoing_relation::{
    Expr, FixedRelation, KeyProbe, LazyChunkView, OngoingRelation, PinnedChunk, Schema, Tuple,
    Value,
};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// Minimum number of per-tuple work items a worker must receive before a
/// partition-parallel operator fans out — below this, thread-spawn overhead
/// dwarfs the work.
const MIN_MORSEL: usize = 256;

/// Minimum number of candidate join pairs per worker for outer-partitioned
/// joins.
const MIN_PAIR_WORK: usize = 4096;

/// A physical operator tree.
#[derive(Debug)]
pub enum PhysicalPlan {
    /// Sequential scan of a base table.
    SeqScan {
        /// The resolved table.
        table: Arc<Table>,
        /// Output schema (possibly re-qualified names).
        schema: Schema,
    },
    /// Envelope-index pre-filtered scan: candidates from an
    /// [`IntervalIndex`](crate::exec::IntervalIndex) query, exact predicate as residual.
    IndexScan {
        /// The resolved table.
        table: Arc<Table>,
        /// Output schema.
        schema: Schema,
        /// Interval column the index is built over.
        col: usize,
        /// Envelope query range.
        range: (TimePoint, TimePoint),
        /// Exact predicate re-checked per candidate (fixed part).
        fixed: Option<Expr>,
        /// Exact predicate re-checked per candidate (ongoing part).
        ongoing: Option<Expr>,
    },
    /// Key-map pre-filtered scan: candidates come from the store's
    /// per-chunk keyed qualification indexes (PR 5's write-path `KeyMap`s,
    /// now serving the read path) via [`OngoingRelation::keyed_rows`];
    /// the exact predicate is re-checked as residual.
    KeyScan {
        /// The resolved table.
        table: Arc<Table>,
        /// Output schema.
        schema: Schema,
        /// The key condition driving the index lookup (a necessary
        /// condition of the residual predicate).
        probe: KeyProbe,
        /// Exact predicate re-checked per candidate (fixed part).
        fixed: Option<Expr>,
        /// Exact predicate re-checked per candidate (ongoing part).
        ongoing: Option<Expr>,
    },
    /// Filter with the paper's fixed/ongoing predicate split.
    Filter {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Conjunct over fixed attributes (plain boolean gate).
        fixed: Option<Expr>,
        /// Conjunct over ongoing attributes (restricts `RT`).
        ongoing: Option<Expr>,
    },
    /// Projection.
    Project {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Output columns.
        items: Vec<ProjItem>,
        /// Output schema.
        schema: Schema,
    },
    /// Tuple-at-a-time nested-loop join (outer side partitioned across
    /// workers).
    NestedLoopJoin {
        /// Left (outer) input.
        left: Box<PhysicalPlan>,
        /// Right (inner) input.
        right: Box<PhysicalPlan>,
        /// Fixed-attribute conjunct.
        fixed: Option<Expr>,
        /// Ongoing-attribute conjunct.
        ongoing: Option<Expr>,
    },
    /// Hash join on fixed-attribute equality keys, with residual conjuncts.
    /// The build side is hashed once; probe partitions run concurrently.
    HashJoin {
        /// Left (probe) input.
        left: Box<PhysicalPlan>,
        /// Right (build) input.
        right: Box<PhysicalPlan>,
        /// `(left column, right column)` equality key pairs.
        keys: Vec<(usize, usize)>,
        /// Borrow the build from the build table's per-chunk `KeyMap`s:
        /// probe morsels look matches up through
        /// [`OngoingRelation::keyed_rows`] instead of materializing and
        /// hashing the build side. Set by the optimizer only when the
        /// build side is a bare scan of a key-indexed column (ongoing
        /// mode; the instantiated baseline always hashes).
        keyed: bool,
        /// Fixed residual conjunct.
        fixed: Option<Expr>,
        /// Ongoing residual conjunct.
        ongoing: Option<Expr>,
    },
    /// Sort-merge interval join: a forward-scan plane sweep over the
    /// instantiation envelopes of two interval columns, with the exact
    /// predicate as residual. Parallel workers sweep contiguous slices of
    /// the left envelope list against the full right list and emit
    /// candidates in canonical `(left, right)` envelope order.
    SweepJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Left interval column.
        l_col: usize,
        /// Right interval column (right-local index).
        r_col: usize,
        /// Fixed residual conjunct (includes the driving temporal conjunct
        /// when inputs are fixed).
        fixed: Option<Expr>,
        /// Ongoing residual conjunct.
        ongoing: Option<Expr>,
    },
    /// Union (coalescing set union).
    Union {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Difference (Theorem 2 semantics).
    Difference {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Grouped aggregation into ongoing integers.
    Aggregate {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Group-by columns.
        group_cols: Vec<usize>,
        /// Aggregate functions.
        aggs: Vec<ongoing_relation::aggregate::AggFn>,
        /// Output schema.
        schema: Schema,
    },
}

impl PhysicalPlan {
    /// The output schema.
    pub fn schema(&self) -> Schema {
        match self {
            PhysicalPlan::SeqScan { schema, .. }
            | PhysicalPlan::IndexScan { schema, .. }
            | PhysicalPlan::KeyScan { schema, .. }
            | PhysicalPlan::Project { schema, .. }
            | PhysicalPlan::Aggregate { schema, .. } => schema.clone(),
            PhysicalPlan::Filter { input, .. } => input.schema(),
            PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::SweepJoin { left, right, .. } => left.schema().product(&right.schema()),
            PhysicalPlan::Union { left, .. } | PhysicalPlan::Difference { left, .. } => {
                left.schema()
            }
        }
    }

    /// EXPLAIN-style rendering (one operator per line).
    pub fn explain(&self) -> String {
        crate::obs::trace::render_tree(self, None, None)
    }

    /// EXPLAIN rendering with the cost model's per-operator estimates
    /// (`est rows≈…  self work≈…`) attached — the `EXPLAIN` analogue
    /// before execution. Estimates come from the catalog statistics of the
    /// scanned tables (defaults when un-analyzed).
    pub fn explain_with_estimates(&self) -> String {
        let est = crate::stats::cost::estimate(self);
        crate::obs::trace::render_tree(self, Some(&est), None)
    }

    /// EXPLAIN rendering followed by work-unit accounting — each operator
    /// line carries its *estimated* rows and work; the trailing lines put
    /// the measured [`ExecStats`] next to the estimated totals so estimate
    /// quality is visible at a glance. Shares its renderer with
    /// [`explain_with_estimates`](Self::explain_with_estimates) and
    /// [`explain_analyzed`](Self::explain_analyzed), so the layouts cannot
    /// drift.
    pub fn explain_with_stats(&self, stats: &ExecStats) -> String {
        let est = crate::stats::cost::estimate(self);
        let tree = crate::obs::trace::render_tree(self, Some(&est), None);
        format!(
            "{tree}{}",
            crate::obs::trace::render_summary(stats, &est.work)
        )
    }

    /// The full `EXPLAIN ANALYZE` rendering: per-operator estimated rows
    /// and work next to the *measured* span (actual rows, deterministic
    /// work units, wall ns), plus the measured-vs-estimated trailer.
    /// `span` must come from executing this plan with a
    /// [`TraceCollector`](crate::obs::TraceCollector) attached.
    pub fn explain_analyzed(&self, span: &crate::obs::SpanNode) -> String {
        let est = crate::stats::cost::estimate(self);
        let tree = crate::obs::trace::render_tree(self, Some(&est), Some(span));
        format!(
            "{tree}{}",
            crate::obs::trace::render_summary(&span.total_work, &est.work)
        )
    }

    /// The operator's children in `explain` order.
    pub(crate) fn inputs(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::IndexScan { .. }
            | PhysicalPlan::KeyScan { .. } => Vec::new(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Aggregate { input, .. } => vec![input],
            PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::SweepJoin { left, right, .. }
            | PhysicalPlan::Union { left, right }
            | PhysicalPlan::Difference { left, right } => vec![left, right],
        }
    }

    /// One-line rendering of this operator (no indentation, no children).
    pub(crate) fn node_line(&self) -> String {
        let preds = |fixed: &Option<Expr>, ongoing: &Option<Expr>| {
            let mut s = String::new();
            if let Some(f) = fixed {
                s.push_str(&format!(" fixed: {f}"));
            }
            if let Some(o) = ongoing {
                s.push_str(&format!(" ongoing: {o}"));
            }
            s
        };
        match self {
            PhysicalPlan::SeqScan { table, .. } => format!("SeqScan {}", table.name()),
            PhysicalPlan::IndexScan {
                table,
                col,
                range,
                fixed,
                ongoing,
                ..
            } => format!(
                "IndexScan {} col #{col} env [{}, {}){}",
                table.name(),
                range.0,
                range.1,
                preds(fixed, ongoing)
            ),
            PhysicalPlan::KeyScan {
                table,
                probe,
                fixed,
                ongoing,
                ..
            } => format!(
                "KeyScan {} {}{}",
                table.name(),
                probe_line(probe),
                preds(fixed, ongoing)
            ),
            PhysicalPlan::Filter { fixed, ongoing, .. } => {
                format!("Filter{}", preds(fixed, ongoing))
            }
            PhysicalPlan::Project { items, .. } => format!("Project [{} cols]", items.len()),
            PhysicalPlan::NestedLoopJoin { fixed, ongoing, .. } => {
                format!("NestedLoopJoin{}", preds(fixed, ongoing))
            }
            PhysicalPlan::HashJoin {
                keys,
                keyed,
                fixed,
                ongoing,
                ..
            } => format!(
                "HashJoin on {keys:?}{}{}",
                if *keyed { " (keyed build)" } else { "" },
                preds(fixed, ongoing)
            ),
            PhysicalPlan::SweepJoin {
                l_col,
                r_col,
                fixed,
                ongoing,
                ..
            } => format!(
                "SweepJoin envelopes #{l_col} x #{r_col}{}",
                preds(fixed, ongoing)
            ),
            PhysicalPlan::Union { .. } => "Union".to_string(),
            PhysicalPlan::Difference { .. } => "Difference".to_string(),
            PhysicalPlan::Aggregate {
                group_cols, aggs, ..
            } => format!("Aggregate group by {group_cols:?} [{} aggs]", aggs.len()),
        }
    }

    // ------------------------------------------------------------------
    // Ongoing execution (the paper's approach).
    // ------------------------------------------------------------------

    /// Executes in ongoing mode with the ambient context
    /// ([`ExecContext::from_env`]): the result is an ongoing relation that
    /// remains valid as time passes by.
    pub fn execute(&self) -> Result<OngoingRelation> {
        self.execute_ctx(&ExecContext::from_env())
    }

    /// Executes in ongoing mode under an explicit execution context.
    pub fn execute_ctx(&self, ctx: &ExecContext) -> Result<OngoingRelation> {
        let mut stats = ExecStats::default();
        self.execute_stats(ctx, &mut stats)
    }

    /// Executes in ongoing mode, returning the result together with the
    /// deterministic work-unit accounting of the run.
    pub fn execute_with_stats(&self, ctx: &ExecContext) -> Result<(OngoingRelation, ExecStats)> {
        let mut stats = ExecStats::default();
        let rel = self.execute_stats(ctx, &mut stats)?;
        Ok((rel, stats))
    }

    fn execute_stats(&self, ctx: &ExecContext, stats: &mut ExecStats) -> Result<OngoingRelation> {
        let Some(tracer) = ctx.trace.clone() else {
            return self.execute_stats_impl(ctx, stats);
        };
        // Traced execution: bracket the operator with an accumulator
        // snapshot and a child frame. The subtree's work is the
        // accumulator delta; the operator's own work is that delta minus
        // the children's deltas — all deterministic counters, so span work
        // units are bit-identical at every thread count. Wall time is
        // informational only.
        let before = *stats;
        let start = std::time::Instant::now();
        tracer.open_frame();
        let result = self.execute_stats_impl(ctx, stats);
        let children = tracer.close_frame();
        let rel = result?;
        let total_work = stats.diff(&before);
        let mut child_work = ExecStats::default();
        for c in &children {
            child_work += &c.total_work;
        }
        tracer.record(crate::obs::SpanNode {
            label: self.node_line(),
            rows: rel.len() as u64,
            self_work: total_work.diff(&child_work),
            total_work,
            wall_ns: start.elapsed().as_nanos() as u64,
            children,
        });
        Ok(rel)
    }

    fn execute_stats_impl(
        &self,
        ctx: &ExecContext,
        stats: &mut ExecStats,
    ) -> Result<OngoingRelation> {
        // Cooperative governance: polled at every operator entry, per
        // partition in the parallel drivers, and per chunk in the lazy
        // (budget-honoring) scan driver — so cancellation or an expired
        // deadline surfaces within one morsel of work, with the store
        // untouched (executors never mutate published tables).
        ctx.control.check()?;
        match self {
            PhysicalPlan::SeqScan { table, schema } => {
                stats.tuples_scanned += table.data().len() as u64;
                // A version fork: every sealed chunk is shared, so this is
                // O(#chunks) reference bumps, not a row copy.
                Ok(table
                    .data()
                    .clone()
                    .with_schema(schema.clone())
                    .expect("scan schema is a rename of the table schema"))
            }
            PhysicalPlan::IndexScan {
                table,
                schema,
                col,
                range,
                fixed,
                ongoing,
            } => {
                let idx = table.interval_index(*col)?;
                // A cheap version fork of the table's relation, so the
                // pool tasks own their input.
                let data = table.data().clone();
                let ids = idx.query(range.0, range.1);
                stats.index_candidates += ids.len() as u64;
                stats.tuples_scanned += ids.len() as u64;
                let n = ids.len();
                let ids = Arc::new(ids);
                let fixed = fixed.clone();
                let ongoing = ongoing.clone();
                let parts = run_partitioned(ctx, n, MIN_MORSEL, move |r| {
                    let mut local = ExecStats::default();
                    let mut out = Vec::new();
                    for &id in &ids[r] {
                        let t = data.tuple_at(id).expect("index ids are live positions");
                        filter_into(&mut out, t, fixed.as_ref(), ongoing.as_ref(), &mut local)?;
                    }
                    Ok((out, local))
                })?;
                Ok(assemble_tuples(schema.clone(), parts, stats))
            }
            PhysicalPlan::KeyScan {
                table,
                schema,
                probe,
                fixed,
                ongoing,
            } => {
                // A cheap version fork, so the pool tasks own the input.
                let data = table.data().clone();
                let rows = match data.keyed_rows(probe) {
                    Some((rows, visited)) => {
                        stats.index_candidates += visited;
                        stats.tuples_scanned += visited;
                        rows
                    }
                    // The optimizer only lowers KeyScan when the pinned
                    // version covers the probe column, but fall back to the
                    // full scan rather than assume.
                    None => {
                        stats.tuples_scanned += data.len() as u64;
                        data.iter().cloned().collect()
                    }
                };
                let n = rows.len();
                let rows = Arc::new(rows);
                let fixed = fixed.clone();
                let ongoing = ongoing.clone();
                let parts = run_partitioned(ctx, n, MIN_MORSEL, move |r| {
                    let mut local = ExecStats::default();
                    let mut out = Vec::new();
                    for t in &rows[r] {
                        filter_into(&mut out, t, fixed.as_ref(), ongoing.as_ref(), &mut local)?;
                    }
                    Ok((out, local))
                })?;
                Ok(assemble_tuples(schema.clone(), parts, stats))
            }
            PhysicalPlan::Filter {
                input,
                fixed,
                ongoing,
            } => {
                let rel = input.execute_stats(ctx, stats)?;
                let schema = rel.schema().clone();
                // Morsels follow the store's chunk boundaries; surviving
                // tuples are shallow-cloned (payloads are `Arc`-shared).
                // Chunks are pinned one at a time, so a filter over a
                // beyond-RAM table keeps at most one cold chunk per
                // in-flight morsel resident.
                let fixed = fixed.clone();
                let ongoing = ongoing.clone();
                let parts =
                    run_partitioned_lazy(ctx, rel, MIN_MORSEL, move |pinned, out, local| {
                        for t in pinned.iter() {
                            filter_into(out, t, fixed.as_ref(), ongoing.as_ref(), local)?;
                        }
                        Ok(())
                    })?;
                Ok(assemble_tuples(schema, parts, stats))
            }
            PhysicalPlan::Project {
                input,
                items,
                schema,
            } => {
                let rel = input.execute_stats(ctx, stats)?;
                let projected = algebra::project(&rel, items)?;
                projected
                    .with_schema(schema.clone())
                    .map_err(EngineError::Schema)
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                fixed,
                ongoing,
            } => {
                let l = left.execute_stats(ctx, stats)?;
                let r = right.execute_stats(ctx, stats)?;
                let schema = l.schema().product(r.schema());
                // The inner side is materialized as owned shallow clones
                // (payloads are `Arc`-shared) so the pool tasks can share
                // it; the outer side streams through lazy per-chunk pins,
                // so only the smaller side should be inner.
                let inner: Arc<Vec<Tuple>> = Arc::new(r.iter().cloned().collect());
                let min_chunk = outer_min_chunk(inner.len());
                let fixed = fixed.clone();
                let ongoing = ongoing.clone();
                let parts = run_partitioned_lazy(ctx, l, min_chunk, move |pinned, out, local| {
                    for lt in pinned.iter() {
                        for rt_ in inner.iter() {
                            join_pair_into(out, lt, rt_, fixed.as_ref(), ongoing.as_ref(), local)?;
                        }
                    }
                    Ok(())
                })?;
                Ok(assemble_tuples(schema, parts, stats))
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                keys,
                keyed,
                fixed,
                ongoing,
            } => {
                // Keyed build: the build side is a bare scan of a
                // key-indexed column, so probe morsels look matches up in
                // the table's per-chunk `KeyMap`s (memoized per morsel)
                // instead of materializing and hashing the build side.
                // `keyed_rows` returns matches in live order — exactly the
                // order the hashed build would emit — so results are
                // bit-identical to the unkeyed path.
                if *keyed {
                    if let (PhysicalPlan::SeqScan { table, schema: rs }, [(lk, rk)]) =
                        (right.as_ref(), keys.as_slice())
                    {
                        let (lk, rk) = (*lk, *rk);
                        let l = left.execute_stats(ctx, stats)?;
                        let schema = l.schema().product(rs);
                        let rdata = table.data().clone();
                        let fixed = fixed.clone();
                        let ongoing = ongoing.clone();
                        let parts =
                            run_partitioned_lazy(ctx, l, MIN_MORSEL, move |pinned, out, local| {
                                let mut memo: HashMap<Value, Vec<Tuple>> = HashMap::new();
                                for lt in pinned.iter() {
                                    let key = lt.value(lk);
                                    let matches = memo.entry(key.clone()).or_insert_with(|| {
                                        let probe = KeyProbe::Eq {
                                            col: rk,
                                            key: key.clone(),
                                        };
                                        let (rows, visited) =
                                            rdata.keyed_rows(&probe).unwrap_or_else(|| {
                                                // Defensive: the optimizer only
                                                // sets `keyed` for covered
                                                // columns of this pinned version.
                                                let rows = rdata
                                                    .iter()
                                                    .filter(|t| probe.matches(t.value(rk)))
                                                    .cloned()
                                                    .collect();
                                                (rows, rdata.len() as u64)
                                            });
                                        local.index_candidates += visited;
                                        local.tuples_scanned += visited;
                                        rows
                                    });
                                    for rt_ in matches.iter() {
                                        join_pair_into(
                                            out,
                                            lt,
                                            rt_,
                                            fixed.as_ref(),
                                            ongoing.as_ref(),
                                            local,
                                        )?;
                                    }
                                }
                                Ok(())
                            })?;
                        return Ok(assemble_tuples(schema, parts, stats));
                    }
                }
                let l = left.execute_stats(ctx, stats)?;
                let r = right.execute_stats(ctx, stats)?;
                let schema = l.schema().product(r.schema());
                // Build once on the right side into owned rows (shallow
                // clones; payloads are `Arc`-shared) keyed by position, so
                // the probe morsels can share build rows and table without
                // borrows; the probe side streams through lazy per-chunk
                // pins.
                let rows: Vec<Tuple> = r.iter().cloned().collect();
                let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(rows.len());
                for (i, rt_) in rows.iter().enumerate() {
                    let key: Vec<Value> = keys.iter().map(|&(_, j)| rt_.value(j).clone()).collect();
                    table.entry(key).or_default().push(i);
                }
                let rows = Arc::new(rows);
                let table = Arc::new(table);
                let keys = keys.clone();
                let fixed = fixed.clone();
                let ongoing = ongoing.clone();
                let parts = run_partitioned_lazy(ctx, l, MIN_MORSEL, move |pinned, out, local| {
                    for lt in pinned.iter() {
                        let key: Vec<Value> =
                            keys.iter().map(|&(i, _)| lt.value(i).clone()).collect();
                        if let Some(matches) = table.get(&key) {
                            for &ri in matches {
                                join_pair_into(
                                    out,
                                    lt,
                                    &rows[ri],
                                    fixed.as_ref(),
                                    ongoing.as_ref(),
                                    local,
                                )?;
                            }
                        }
                    }
                    Ok(())
                })?;
                Ok(assemble_tuples(schema, parts, stats))
            }
            PhysicalPlan::SweepJoin {
                left,
                right,
                l_col,
                r_col,
                fixed,
                ongoing,
            } => {
                let l = left.execute_stats(ctx, stats)?;
                let r = right.execute_stats(ctx, stats)?;
                let schema = l.schema().product(r.schema());
                // Both sides materialize as owned shallow clones so the
                // sweep morsels can share rows and envelope lists.
                let l_rows: Arc<Vec<Tuple>> = Arc::new(l.iter().cloned().collect());
                let r_rows: Arc<Vec<Tuple>> = Arc::new(r.iter().cloned().collect());
                let le = Arc::new(envelopes(&l_rows, *l_col)?);
                let re = Arc::new(envelopes(&r_rows, *r_col)?);
                let n = le.len();
                let min_chunk = sweep_min_chunk(re.len(), ctx.parallelism);
                let fixed = fixed.clone();
                let ongoing = ongoing.clone();
                let parts = run_partitioned(ctx, n, min_chunk, move |range| {
                    let mut local = ExecStats::default();
                    let mut out = Vec::new();
                    let mut pairs = Vec::new();
                    sweep_positions(&le, range, &re, &mut pairs);
                    pairs.sort_unstable();
                    for &(lp, rp) in &pairs {
                        join_pair_into(
                            &mut out,
                            &l_rows[le[lp].2],
                            &r_rows[re[rp].2],
                            fixed.as_ref(),
                            ongoing.as_ref(),
                            &mut local,
                        )?;
                    }
                    Ok((out, local))
                })?;
                Ok(assemble_tuples(schema, parts, stats))
            }
            PhysicalPlan::Union { left, right } => {
                let l = left.execute_stats(ctx, stats)?;
                let r = right.execute_stats(ctx, stats)?;
                algebra::union(&l, &r).map_err(EngineError::Schema)
            }
            PhysicalPlan::Difference { left, right } => {
                let l = left.execute_stats(ctx, stats)?;
                let r = right.execute_stats(ctx, stats)?;
                algebra::difference(&l, &r).map_err(EngineError::Schema)
            }
            PhysicalPlan::Aggregate {
                input,
                group_cols,
                aggs,
                schema,
            } => {
                let rel = input.execute_stats(ctx, stats)?;
                let names: Vec<String> = schema
                    .attrs()
                    .iter()
                    .skip(group_cols.len())
                    .map(|a| a.name.clone())
                    .collect();
                let agg =
                    ongoing_relation::aggregate::aggregate_relation(&rel, group_cols, aggs, &names)
                        .map_err(EngineError::Schema)?;
                agg.with_schema(schema.clone()).map_err(EngineError::Schema)
            }
        }
    }

    // ------------------------------------------------------------------
    // Instantiated execution (Clifford et al. baseline).
    // ------------------------------------------------------------------

    /// Executes in instantiated mode at reference time `rt`: ongoing
    /// attributes are bound during the scan, everything downstream runs on
    /// fixed values. The result is valid only at `rt`.
    pub fn execute_at(&self, rt: TimePoint) -> Result<FixedRelation> {
        Ok(FixedRelation::from_rows(self.rows_at(rt)?))
    }

    /// Instantiated execution under an explicit context, returning the
    /// result together with the work-unit accounting (note
    /// `intervals_merged` stays 0 here: the baseline never touches
    /// interval sets).
    pub fn execute_at_with_stats(
        &self,
        rt: TimePoint,
        ctx: &ExecContext,
    ) -> Result<(FixedRelation, ExecStats)> {
        let (rows, stats) = self.rows_at_with_stats(rt, ctx)?;
        Ok((FixedRelation::from_rows(rows), stats))
    }

    /// Instantiated execution returning the raw row bag (deduplicated by
    /// [`FixedRelation`] in `execute_at`), with the ambient context.
    pub fn rows_at(&self, rt: TimePoint) -> Result<Vec<Vec<Value>>> {
        let mut stats = ExecStats::default();
        self.rows_at_stats(rt, &ExecContext::from_env(), &mut stats)
    }

    /// Raw instantiated rows plus work-unit accounting.
    pub fn rows_at_with_stats(
        &self,
        rt: TimePoint,
        ctx: &ExecContext,
    ) -> Result<(Vec<Vec<Value>>, ExecStats)> {
        let mut stats = ExecStats::default();
        let rows = self.rows_at_stats(rt, ctx, &mut stats)?;
        Ok((rows, stats))
    }

    fn rows_at_stats(
        &self,
        rt: TimePoint,
        ctx: &ExecContext,
        stats: &mut ExecStats,
    ) -> Result<Vec<Vec<Value>>> {
        let Some(tracer) = ctx.trace.clone() else {
            return self.rows_at_stats_impl(rt, ctx, stats);
        };
        // Same span bracketing as `execute_stats` — spans work for the
        // instantiated (Clifford) mode too.
        let before = *stats;
        let start = std::time::Instant::now();
        tracer.open_frame();
        let result = self.rows_at_stats_impl(rt, ctx, stats);
        let children = tracer.close_frame();
        let rows = result?;
        let total_work = stats.diff(&before);
        let mut child_work = ExecStats::default();
        for c in &children {
            child_work += &c.total_work;
        }
        tracer.record(crate::obs::SpanNode {
            label: self.node_line(),
            rows: rows.len() as u64,
            self_work: total_work.diff(&child_work),
            total_work,
            wall_ns: start.elapsed().as_nanos() as u64,
            children,
        });
        Ok(rows)
    }

    fn rows_at_stats_impl(
        &self,
        rt: TimePoint,
        ctx: &ExecContext,
        stats: &mut ExecStats,
    ) -> Result<Vec<Vec<Value>>> {
        // Same cooperative governance as `execute_stats`.
        ctx.control.check()?;
        match self {
            PhysicalPlan::SeqScan { table, .. } => {
                // A cheap version fork, so the pool tasks own the input.
                let data = table.data().clone();
                stats.tuples_scanned += data.len() as u64;
                // Bind during the scan through lazy per-chunk pins: an
                // instantiated scan of a beyond-RAM table keeps at most one
                // cold chunk per in-flight morsel resident.
                let parts =
                    run_partitioned_lazy(ctx, data, MIN_MORSEL, move |pinned, out, _local| {
                        out.extend(pinned.iter().filter_map(|t| t.bind(rt)));
                        Ok(())
                    })?;
                Ok(assemble_rows(parts, stats))
            }
            PhysicalPlan::IndexScan {
                table,
                col,
                range,
                fixed,
                ongoing,
                ..
            } => {
                let idx = table.interval_index(*col)?;
                let data = table.data().clone();
                let ids = idx.query(range.0, range.1);
                stats.index_candidates += ids.len() as u64;
                stats.tuples_scanned += ids.len() as u64;
                let fixed = fixed.as_ref().map(|e| e.bind_consts(rt));
                let ongoing = ongoing.as_ref().map(|e| e.bind_consts(rt));
                let n = ids.len();
                let ids = Arc::new(ids);
                let parts = run_partitioned(ctx, n, MIN_MORSEL, move |r| {
                    let mut local = ExecStats::default();
                    let mut out = Vec::new();
                    for &id in &ids[r] {
                        local.tuples_filtered += 1;
                        let t = data.tuple_at(id).expect("index ids are live positions");
                        if let Some(row) = t.bind(rt) {
                            if pass_fixed(&row, fixed.as_ref())?
                                && pass_fixed(&row, ongoing.as_ref())?
                            {
                                out.push(row);
                            }
                        }
                    }
                    Ok((out, local))
                })?;
                Ok(assemble_rows(parts, stats))
            }
            PhysicalPlan::KeyScan {
                table,
                probe,
                fixed,
                ongoing,
                ..
            } => {
                let data = table.data().clone();
                let rows = match data.keyed_rows(probe) {
                    Some((rows, visited)) => {
                        stats.index_candidates += visited;
                        stats.tuples_scanned += visited;
                        rows
                    }
                    None => {
                        stats.tuples_scanned += data.len() as u64;
                        data.iter().cloned().collect()
                    }
                };
                let fixed = fixed.as_ref().map(|e| e.bind_consts(rt));
                let ongoing = ongoing.as_ref().map(|e| e.bind_consts(rt));
                let n = rows.len();
                let rows = Arc::new(rows);
                let parts = run_partitioned(ctx, n, MIN_MORSEL, move |r| {
                    let mut local = ExecStats::default();
                    let mut out = Vec::new();
                    for t in &rows[r] {
                        local.tuples_filtered += 1;
                        if let Some(row) = t.bind(rt) {
                            if pass_fixed(&row, fixed.as_ref())?
                                && pass_fixed(&row, ongoing.as_ref())?
                            {
                                out.push(row);
                            }
                        }
                    }
                    Ok((out, local))
                })?;
                Ok(assemble_rows(parts, stats))
            }
            PhysicalPlan::Filter {
                input,
                fixed,
                ongoing,
            } => {
                let rows = input.rows_at_stats(rt, ctx, stats)?;
                stats.tuples_filtered += rows.len() as u64;
                // Instantiate ongoing literals in the predicates (the bind
                // operator applies to the query, not only the data).
                let fixed = fixed.as_ref().map(|e| e.bind_consts(rt));
                let ongoing = ongoing.as_ref().map(|e| e.bind_consts(rt));
                let parts = run_partitioned_owned(ctx, rows, MIN_MORSEL, move |chunk| {
                    let mut out = Vec::with_capacity(chunk.len() / 2);
                    for row in chunk {
                        if pass_fixed(&row, fixed.as_ref())? && pass_fixed(&row, ongoing.as_ref())?
                        {
                            out.push(row);
                        }
                    }
                    Ok((out, ExecStats::default()))
                })?;
                Ok(assemble_rows(parts, stats))
            }
            PhysicalPlan::Project { input, items, .. } => {
                let rows = input.rows_at_stats(rt, ctx, stats)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(items.len());
                    for item in items {
                        match item {
                            ProjItem::Col(i) => vals.push(row[*i].clone()),
                            ProjItem::Named { expr, .. } => {
                                // Bind computed values so e.g. an interval
                                // intersection instantiates to a fixed span.
                                vals.push(expr.eval_scalar(&row)?.bind(rt));
                            }
                        }
                    }
                    out.push(vals);
                }
                Ok(out)
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                fixed,
                ongoing,
            } => {
                let l = left.rows_at_stats(rt, ctx, stats)?;
                let r = right.rows_at_stats(rt, ctx, stats)?;
                let fixed = fixed.as_ref().map(|e| e.bind_consts(rt));
                let ongoing = ongoing.as_ref().map(|e| e.bind_consts(rt));
                let min_chunk = outer_min_chunk(r.len());
                let n = l.len();
                let l = Arc::new(l);
                let r = Arc::new(r);
                let parts = run_partitioned(ctx, n, min_chunk, move |range| {
                    let mut local = ExecStats::default();
                    let mut out = Vec::new();
                    for lr in &l[range] {
                        for rr in r.iter() {
                            join_rows_into(
                                &mut out,
                                lr,
                                rr,
                                fixed.as_ref(),
                                ongoing.as_ref(),
                                &mut local,
                            )?;
                        }
                    }
                    Ok((out, local))
                })?;
                Ok(assemble_rows(parts, stats))
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                keys,
                fixed,
                ongoing,
                // The instantiated baseline always hashes — `keyed` only
                // changes how the ongoing mode finds build matches.
                keyed: _,
            } => {
                let l = left.rows_at_stats(rt, ctx, stats)?;
                let r = right.rows_at_stats(rt, ctx, stats)?;
                // Position-keyed build table so the probe morsels can
                // share build rows and table without borrows.
                let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(r.len());
                for (i, rr) in r.iter().enumerate() {
                    let key: Vec<Value> = keys.iter().map(|&(_, j)| rr[j].clone()).collect();
                    table.entry(key).or_default().push(i);
                }
                let fixed = fixed.as_ref().map(|e| e.bind_consts(rt));
                let ongoing = ongoing.as_ref().map(|e| e.bind_consts(rt));
                let keys = keys.clone();
                let n = l.len();
                let l = Arc::new(l);
                let r = Arc::new(r);
                let table = Arc::new(table);
                let parts = run_partitioned(ctx, n, MIN_MORSEL, move |range| {
                    let mut local = ExecStats::default();
                    let mut out = Vec::new();
                    for lr in &l[range] {
                        let key: Vec<Value> = keys.iter().map(|&(i, _)| lr[i].clone()).collect();
                        if let Some(matches) = table.get(&key) {
                            for &ri in matches {
                                join_rows_into(
                                    &mut out,
                                    lr,
                                    &r[ri],
                                    fixed.as_ref(),
                                    ongoing.as_ref(),
                                    &mut local,
                                )?;
                            }
                        }
                    }
                    Ok((out, local))
                })?;
                Ok(assemble_rows(parts, stats))
            }
            PhysicalPlan::SweepJoin {
                left,
                right,
                l_col,
                r_col,
                fixed,
                ongoing,
            } => {
                let l = left.rows_at_stats(rt, ctx, stats)?;
                let r = right.rows_at_stats(rt, ctx, stats)?;
                let le = Arc::new(row_envelopes(&l, *l_col)?);
                let re = Arc::new(row_envelopes(&r, *r_col)?);
                let fixed = fixed.as_ref().map(|e| e.bind_consts(rt));
                let ongoing = ongoing.as_ref().map(|e| e.bind_consts(rt));
                let n = le.len();
                let min_chunk = sweep_min_chunk(re.len(), ctx.parallelism);
                let l = Arc::new(l);
                let r = Arc::new(r);
                let parts = run_partitioned(ctx, n, min_chunk, move |range| {
                    let mut local = ExecStats::default();
                    let mut out = Vec::new();
                    let mut pairs = Vec::new();
                    sweep_positions(&le, range, &re, &mut pairs);
                    pairs.sort_unstable();
                    for &(lp, rp) in &pairs {
                        join_rows_into(
                            &mut out,
                            &l[le[lp].2],
                            &r[re[rp].2],
                            fixed.as_ref(),
                            ongoing.as_ref(),
                            &mut local,
                        )?;
                    }
                    Ok((out, local))
                })?;
                Ok(assemble_rows(parts, stats))
            }
            PhysicalPlan::Union { left, right } => {
                let mut l = left.rows_at_stats(rt, ctx, stats)?;
                l.extend(right.rows_at_stats(rt, ctx, stats)?);
                Ok(l)
            }
            PhysicalPlan::Difference { left, right } => {
                let l = left.rows_at_stats(rt, ctx, stats)?;
                let r = FixedRelation::from_rows(right.rows_at_stats(rt, ctx, stats)?);
                Ok(l.into_iter().filter(|row| !r.contains(row)).collect())
            }
            PhysicalPlan::Aggregate {
                input,
                group_cols,
                aggs,
                ..
            } => {
                // Fixed grouped aggregation over the instantiated rows —
                // the semantics the ongoing operator must instantiate to.
                use ongoing_relation::aggregate::AggFn;
                let rows = FixedRelation::from_rows(input.rows_at_stats(rt, ctx, stats)?);
                let mut order: Vec<Vec<Value>> = Vec::new();
                let mut groups: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::new();
                for row in rows.rows() {
                    let key: Vec<Value> = group_cols.iter().map(|&c| row[c].clone()).collect();
                    match groups.entry(key) {
                        std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(row),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            order.push(e.key().clone());
                            e.insert(vec![row]);
                        }
                    }
                }
                let mut out = Vec::with_capacity(order.len());
                for key in order {
                    let members = &groups[&key];
                    let mut vals = key;
                    for a in aggs {
                        let v = match a {
                            AggFn::CountStar => members.len() as i64,
                            AggFn::SumInt(col) => {
                                members.iter().map(|r| r[*col].as_int().unwrap_or(0)).sum()
                            }
                        };
                        vals.push(Value::Int(v));
                    }
                    out.push(vals);
                }
                Ok(out)
            }
        }
    }
}

// ----------------------------------------------------------------------
// Morsel-parallel infrastructure (all fan-out flows through the shared
// worker pool; no operator spawns threads).
// ----------------------------------------------------------------------

/// Morsels per unit of parallelism. Splitting finer than the worker count
/// lets the shared scheduler interleave concurrent queries below operator
/// granularity (a short query's single morsel slots in between a long
/// query's morsels) and evens out skew; the morsel count only shapes who
/// executes what, never the merged result.
const MORSELS_PER_WORKER: usize = 4;

/// Number of morsels for `len` items with at least `min_chunk` items per
/// morsel. `parallelism <= 1` stays at one morsel (inline execution);
/// never 0.
fn morsel_count(parallelism: usize, len: usize, min_chunk: usize) -> usize {
    if len == 0 || parallelism <= 1 {
        return 1;
    }
    (parallelism * MORSELS_PER_WORKER).clamp(1, len.div_ceil(min_chunk.max(1)))
}

/// Contiguous, deterministic morsel bounds covering `0..len` (sizes differ
/// by at most one; earlier morsels take the remainder).
fn chunk_bounds(len: usize, morsels: usize) -> Vec<Range<usize>> {
    let base = len / morsels;
    let rem = len % morsels;
    let mut bounds = Vec::with_capacity(morsels);
    let mut start = 0usize;
    for m in 0..morsels {
        let size = base + usize::from(m < rem);
        bounds.push(start..start + size);
        start += size;
    }
    bounds
}

/// Outer-side chunk floor for pair-at-a-time joins: enough outer tuples
/// that each worker sees at least [`MIN_PAIR_WORK`] candidate pairs.
fn outer_min_chunk(inner_len: usize) -> usize {
    (MIN_PAIR_WORK / inner_len.max(1)).max(1)
}

/// Left-side chunk floor for the sweep join. Every worker merge-scans the
/// full right envelope list, so fanning out costs `workers × |right|`
/// redundant advances; requiring at least `|right| / parallelism` left
/// envelopes per chunk keeps that overhead proportional to the left-side
/// work a chunk actually carries (a tiny left side against a huge right
/// side stays serial).
fn sweep_min_chunk(right_len: usize, parallelism: usize) -> usize {
    (right_len / parallelism.max(1)).max(MIN_MORSEL)
}

/// Partitions `0..len` into contiguous index ranges with at least
/// `min_chunk` items per morsel and runs them on the shared worker pool —
/// for inputs that are positional lists (index-candidate ids, sorted
/// envelope lists, instantiated row vectors). Results come back *in morsel
/// order*: concatenating them reproduces the serial output exactly, and
/// folding the per-morsel [`ExecStats`] reproduces the serial counts
/// exactly. The control token is polled per morsel (a cancelled query's
/// queued morsels are additionally dropped at dequeue by the pool).
fn run_partitioned<T, F>(
    ctx: &ExecContext,
    len: usize,
    min_chunk: usize,
    run: F,
) -> Result<Vec<(T, ExecStats)>>
where
    T: Send + 'static,
    F: Fn(Range<usize>) -> Result<(T, ExecStats)> + Send + Sync + 'static,
{
    let morsels = morsel_count(ctx.parallelism, len, min_chunk);
    if morsels <= 1 {
        ctx.control.check()?;
        return Ok(vec![run(0..len)?]);
    }
    let run = Arc::new(run);
    let jobs: Vec<Morsel<(T, ExecStats)>> = chunk_bounds(len, morsels)
        .into_iter()
        .map(|range| {
            let run = Arc::clone(&run);
            let control = ctx.control.clone();
            let job: Morsel<(T, ExecStats)> = Box::new(move || {
                control.check()?;
                run(range)
            });
            job
        })
        .collect();
    ctx.session.run_morsels(&ctx.control, jobs)
}

/// Like [`run_partitioned`], but moves ownership of the items into the
/// morsels (chunk vectors are split off in order), so surviving items need
/// not be cloned.
fn run_partitioned_owned<I, T, F>(
    ctx: &ExecContext,
    items: Vec<I>,
    min_chunk: usize,
    run: F,
) -> Result<Vec<(T, ExecStats)>>
where
    I: Send + 'static,
    T: Send + 'static,
    F: Fn(Vec<I>) -> Result<(T, ExecStats)> + Send + Sync + 'static,
{
    let morsels = morsel_count(ctx.parallelism, items.len(), min_chunk);
    if morsels <= 1 {
        ctx.control.check()?;
        return Ok(vec![run(items)?]);
    }
    let bounds = chunk_bounds(items.len(), morsels);
    // Split from the back so every element moves at most once
    // (front-first splitting would re-move the shrinking tail per chunk).
    let mut rest = items;
    let mut chunks = Vec::with_capacity(morsels);
    for range in bounds.iter().rev() {
        chunks.push(rest.split_off(range.start));
    }
    chunks.reverse();
    let run = Arc::new(run);
    let jobs: Vec<Morsel<(T, ExecStats)>> = chunks
        .into_iter()
        .map(|chunk| {
            let run = Arc::clone(&run);
            let control = ctx.control.clone();
            let job: Morsel<(T, ExecStats)> = Box::new(move || {
                control.check()?;
                run(chunk)
            });
            job
        })
        .collect();
    ctx.session.run_morsels(&ctx.control, jobs)
}

/// The chunk-morsel scan driver: partitions the relation's *lazy* chunk
/// views into contiguous runs (live-row balanced; partitioning metadata is
/// free — no page-in), then each morsel walks its run **one pinned chunk
/// at a time**. A cold chunk is paged in only while its morsel is being
/// processed and released immediately after, so a scan of a table N× the
/// memory budget keeps at most one chunk per in-flight morsel resident
/// beyond the cache. The control token is polled before every chunk pin,
/// so cancellation and deadlines surface within one morsel. The relation
/// is `Arc`-shared with the pool tasks, which re-derive the (cheap,
/// metadata-only) chunk views from the same immutable version — so the
/// per-run view slices are identical to the submitter's. Output assembly
/// is identical to the other drivers: concatenating the per-run vectors
/// reproduces the serial output exactly.
fn run_partitioned_lazy<T, F>(
    ctx: &ExecContext,
    rel: OngoingRelation,
    min_chunk: usize,
    run: F,
) -> Result<Vec<(Vec<T>, ExecStats)>>
where
    T: Send + 'static,
    F: Fn(&PinnedChunk<'_>, &mut Vec<T>, &mut ExecStats) -> Result<()> + Send + Sync + 'static,
{
    fn drive<T, F>(
        control: &crate::exec::QueryControl,
        run_views: &[LazyChunkView<'_>],
        run: &F,
    ) -> Result<(Vec<T>, ExecStats)>
    where
        F: Fn(&PinnedChunk<'_>, &mut Vec<T>, &mut ExecStats) -> Result<()>,
    {
        let mut out = Vec::new();
        let mut local = ExecStats::default();
        for v in run_views {
            control.check()?;
            let pinned = v.pin()?;
            run(&pinned, &mut out, &mut local)?;
        }
        Ok((out, local))
    }

    let views = rel.lazy_views();
    let total: usize = views.iter().map(|v| v.len()).sum();
    let morsels = morsel_count(ctx.parallelism, total, min_chunk);
    if morsels <= 1 || views.len() <= 1 {
        return Ok(vec![drive(&ctx.control, &views, &run)?]);
    }
    // Greedy live-row-balanced split into contiguous chunk-index ranges.
    let target = total.div_ceil(morsels);
    let mut ranges: Vec<Range<usize>> = Vec::with_capacity(morsels);
    let (mut start, mut acc) = (0usize, 0usize);
    for (i, v) in views.iter().enumerate() {
        acc += v.len();
        if acc >= target && ranges.len() + 1 < morsels {
            ranges.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < views.len() {
        ranges.push(start..views.len());
    }
    drop(views);
    let rel = Arc::new(rel);
    let run = Arc::new(run);
    let jobs: Vec<Morsel<(Vec<T>, ExecStats)>> = ranges
        .into_iter()
        .map(|range| {
            let rel = Arc::clone(&rel);
            let run = Arc::clone(&run);
            let control = ctx.control.clone();
            let job: Morsel<(Vec<T>, ExecStats)> = Box::new(move || {
                let views = rel.lazy_views();
                drive(&control, &views[range], run.as_ref())
            });
            job
        })
        .collect();
    ctx.session.run_morsels(&ctx.control, jobs)
}

/// One-line rendering of a key probe for EXPLAIN output.
fn probe_line(probe: &KeyProbe) -> String {
    match probe {
        KeyProbe::Eq { col, key } => format!("col #{col} = {key}"),
        KeyProbe::Range { col, lo, hi } => format!("col #{col} in ({lo:?}, {hi:?})"),
    }
}

/// Concatenates ordered tuple partitions into a relation and folds their
/// work-unit counters.
fn assemble_tuples(
    schema: Schema,
    parts: Vec<(Vec<Tuple>, ExecStats)>,
    stats: &mut ExecStats,
) -> OngoingRelation {
    let total: usize = parts.iter().map(|(p, _)| p.len()).sum();
    let mut tuples = Vec::with_capacity(total);
    for (part, local) in parts {
        stats.merge(&local);
        tuples.extend(part);
    }
    OngoingRelation::from_tuples(schema, tuples)
        .expect("partition outputs match the operator schema")
}

/// Concatenates ordered row partitions and folds their counters.
fn assemble_rows(
    parts: Vec<(Vec<Vec<Value>>, ExecStats)>,
    stats: &mut ExecStats,
) -> Vec<Vec<Value>> {
    let total: usize = parts.iter().map(|(p, _)| p.len()).sum();
    let mut rows = Vec::with_capacity(total);
    for (part, local) in parts {
        stats.merge(&local);
        rows.extend(part);
    }
    rows
}

// ----------------------------------------------------------------------
// Shared helpers.
// ----------------------------------------------------------------------

/// Ongoing-mode filter application over a borrowed tuple (candidates stay
/// in their chunk): fixed conjunct gates, ongoing conjunct restricts `RT`
/// (in place, reusing the predicate true-set's allocation). Only passing
/// tuples are cloned, and the clone is shallow (payloads are `Arc`-shared).
fn filter_into(
    out: &mut Vec<Tuple>,
    t: &Tuple,
    fixed: Option<&Expr>,
    ongoing: Option<&Expr>,
    stats: &mut ExecStats,
) -> Result<()> {
    stats.tuples_filtered += 1;
    if let Some(f) = fixed {
        if !f.eval_bool(t.values())? {
            return Ok(());
        }
    }
    match ongoing {
        Some(o) => {
            let theta = o.eval_predicate(t.values())?;
            // One merge for the true-set construction, one for the RT
            // restriction.
            stats.intervals_merged += 2;
            let mut rt = theta.into_true_set();
            rt.intersect_assign(t.rt());
            if !rt.is_empty() {
                out.push(t.restricted(rt));
            }
        }
        None => out.push(t.clone()),
    }
    Ok(())
}

/// Ongoing-mode join pair: concat (intersecting `RT`s), gate on the fixed
/// conjunct, restrict by the ongoing conjunct.
fn join_pair_into(
    out: &mut Vec<Tuple>,
    lt: &Tuple,
    rt_: &Tuple,
    fixed: Option<&Expr>,
    ongoing: Option<&Expr>,
    stats: &mut ExecStats,
) -> Result<()> {
    stats.pairs_compared += 1;
    // `concat` intersects the two reference times.
    stats.intervals_merged += 1;
    let t = lt.concat(rt_);
    if t.rt().is_empty() {
        return Ok(());
    }
    if let Some(f) = fixed {
        if !f.eval_bool(t.values())? {
            return Ok(());
        }
    }
    match ongoing {
        Some(o) => {
            let theta = o.eval_predicate(t.values())?;
            stats.intervals_merged += 2;
            let mut rt = theta.into_true_set();
            rt.intersect_assign(t.rt());
            if !rt.is_empty() {
                out.push(t.restricted(rt));
            }
        }
        None => out.push(t),
    }
    Ok(())
}

/// Instantiated-mode predicate gate (all values fixed at this point).
fn pass_fixed(row: &[Value], pred: Option<&Expr>) -> Result<bool> {
    match pred {
        Some(p) => Ok(p.eval_bool(row)?),
        None => Ok(true),
    }
}

/// Instantiated-mode join pair.
fn join_rows_into(
    out: &mut Vec<Vec<Value>>,
    l: &[Value],
    r: &[Value],
    fixed: Option<&Expr>,
    ongoing: Option<&Expr>,
    stats: &mut ExecStats,
) -> Result<()> {
    stats.pairs_compared += 1;
    let mut row = Vec::with_capacity(l.len() + r.len());
    row.extend_from_slice(l);
    row.extend_from_slice(r);
    if pass_fixed(&row, fixed)? && pass_fixed(&row, ongoing)? {
        out.push(row);
    }
    Ok(())
}

/// `(envelope start, envelope end, position)` for a tuple list, skipping
/// always-empty intervals (no predicate with a non-empty check can match
/// them).
fn envelopes(tuples: &[Tuple], col: usize) -> Result<Vec<(TimePoint, TimePoint, usize)>> {
    let mut out = Vec::with_capacity(tuples.len());
    for (i, t) in tuples.iter().enumerate() {
        let iv = t.value(col).as_interval().ok_or_else(|| {
            EngineError::Plan(format!("sweep join column #{col} is not an interval"))
        })?;
        let (s, e) = (iv.ts().a(), iv.te().b());
        if s < e {
            out.push((s, e, i));
        }
    }
    out.sort_unstable_by_key(|&(s, e, _)| (s, e));
    Ok(out)
}

/// Envelopes over instantiated rows (the bound span *is* the envelope).
fn row_envelopes(rows: &[Vec<Value>], col: usize) -> Result<Vec<(TimePoint, TimePoint, usize)>> {
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let iv = row[col].as_interval().ok_or_else(|| {
            EngineError::Plan(format!("sweep join column #{col} is not an interval"))
        })?;
        let (s, e) = (iv.ts().a(), iv.te().b());
        if s < e {
            out.push((s, e, i));
        }
    }
    out.sort_unstable_by_key(|&(s, e, _)| (s, e));
    Ok(out)
}

/// Forward-scan plane sweep (Bouros & Mamoulis style) enumerating all pairs
/// with overlapping envelopes between the `l_range` slice of `l` and all of
/// `r`, in O(sorted inputs + output). Emits `(left position, right
/// position)` pairs into the *global* envelope arrays; callers sort them to
/// get the canonical candidate order, which makes partitioned sweeps emit
/// exactly the serial candidate sequence after concatenation.
fn sweep_positions(
    l: &[(TimePoint, TimePoint, usize)],
    l_range: Range<usize>,
    r: &[(TimePoint, TimePoint, usize)],
    out: &mut Vec<(usize, usize)>,
) {
    let offset = l_range.start;
    let l = &l[l_range];
    let (mut i, mut j) = (0usize, 0usize);
    while i < l.len() && j < r.len() {
        if l[i].0 <= r[j].0 {
            // Scan forward on the right while it starts before l[i] ends.
            let (ls, le, _) = l[i];
            let mut k = j;
            while k < r.len() && r[k].0 < le {
                if r[k].1 > ls {
                    out.push((offset + i, k));
                }
                k += 1;
            }
            i += 1;
        } else {
            let (rs, re, _) = r[j];
            let mut k = i;
            while k < l.len() && l[k].0 < re {
                if l[k].1 > rs {
                    out.push((offset + k, j));
                }
                k += 1;
            }
            j += 1;
        }
    }
}

/// Extracts the left/right interval columns of a temporal conjunct suitable
/// for a sweep join: `Temporal(pred, Col(i), Col(j))` with `i` left of the
/// split and `j` right of it (or mirrored). Only predicates whose truth at a
/// reference time implies a shared instantiation time point are sweepable.
pub fn sweepable_columns(conjunct: &Expr, split: usize) -> Option<(usize, usize)> {
    let sweep_sound = |p: TemporalPredicate| {
        matches!(
            p,
            TemporalPredicate::Overlaps | TemporalPredicate::Starts | TemporalPredicate::Finishes
        )
    };
    if let Expr::Temporal(p, l, r) = conjunct {
        if !sweep_sound(*p) {
            return None;
        }
        if let (Expr::Col(i), Expr::Col(j)) = (l.as_ref(), r.as_ref()) {
            let (i, j) = (*i, *j);
            if i < split && j >= split {
                return Some((i, j - split));
            }
            if j < split && i >= split {
                return Some((j, i - split));
            }
        }
    }
    None
}

/// Extracts an index-scan opportunity from a selection conjunct:
/// `Col(i) overlaps <fixed interval literal>` (either operand order).
/// Returns the column and the envelope query range.
pub fn indexable_selection(conjunct: &Expr) -> Option<(usize, (TimePoint, TimePoint))> {
    if let Expr::Temporal(p, l, r) = conjunct {
        if !matches!(
            p,
            TemporalPredicate::Overlaps | TemporalPredicate::Starts | TemporalPredicate::Finishes
        ) {
            return None;
        }
        let lit_env = |e: &Expr| -> Option<(TimePoint, TimePoint)> {
            if let Expr::Const(v) = e {
                v.as_interval().map(|iv| (iv.ts().a(), iv.te().b()))
            } else {
                None
            }
        };
        match (l.as_ref(), r.as_ref()) {
            (Expr::Col(i), lit) => lit_env(lit).map(|env| (*i, env)),
            (lit, Expr::Col(i)) => lit_env(lit).map(|env| (*i, env)),
            _ => None,
        }
    } else {
        None
    }
}

/// The set of reference times a relation's tuples cover — used by tests and
/// the harness to pick representative instantiation points.
pub fn reference_span(rel: &OngoingRelation) -> IntervalSet {
    let mut acc = IntervalSet::empty();
    for t in rel.iter() {
        acc.union_assign(t.rt());
    }
    acc
}
