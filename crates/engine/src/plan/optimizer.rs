//! Query optimization (Sec. VIII "Query Optimization").
//!
//! The paper's observation is that the standard relational rewrite rules
//! carry over unchanged to ongoing relations (e.g.
//! `σ_{θ1∧θ2}(R) ≡ σ_{θ1}(σ_{θ2}(R))`), so classic techniques — selection
//! push-down, join algorithm choice — apply after splitting conjunctive
//! predicates into a part over fixed attributes and a part referencing
//! ongoing attributes. The fixed part is evaluated as a plain boolean (and
//! can drive hash joins); the ongoing part restricts the result tuples'
//! reference time.
//!
//! [`rewrite`] performs the logical rewrites; [`compile`] picks physical
//! operators under a [`PlannerConfig`]. Every knob exists so the ablation
//! benches can measure the value of each technique.
//!
//! # Cost-based strategy choice
//!
//! Under [`JoinStrategy::Auto`], joins over **analyzed** inputs (every base
//! table below both sides has `ANALYZE` statistics) are planned by
//! enumeration: the optimizer estimates the work units of each applicable
//! candidate — hash join on the fixed equality keys, envelope sweep join on
//! a sweep-sound temporal conjunct, nested loops — with the
//! [cost model](crate::stats::cost) and picks the cheapest. Without
//! statistics it falls back to the classic fixed priority
//! (hash > sweep > nested loops). Likewise, an
//! [index scan](PhysicalPlan::IndexScan) opportunity is taken
//! unconditionally without statistics, but cost-gated against the
//! sequential scan + filter alternative once the table is analyzed.

use crate::catalog::{Database, Table};
use crate::error::Result;
use crate::exec::ExecContext;
use crate::plan::logical::LogicalPlan;
use crate::plan::physical::{indexable_selection, sweepable_columns, PhysicalPlan};
use crate::stats::cost;
use ongoing_relation::{CmpOp, Expr, KeyProbe, Schema, ValueType};
use std::ops::Bound;

/// Join algorithm selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Cost-based choice from collected statistics (see the
    /// [module docs](self)); classic heuristic priority (hash, then sweep,
    /// then nested loops) when the inputs are not analyzed.
    #[default]
    Auto,
    /// Always nested loops (the ablation baseline).
    NestedLoop,
    /// Force the envelope sweep join whenever a sweep-sound temporal
    /// conjunct exists (explicit override; nested loops otherwise).
    Sweep,
    /// Force hash joins on fixed equality keys (explicit override; nested
    /// loops otherwise).
    Hash,
}

/// Planner knobs. Defaults reproduce the paper's configuration; individual
/// flags are switched off by the ablation benches.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Push single-side conjuncts below joins.
    pub pushdown: bool,
    /// Split conjunctive predicates into fixed and ongoing parts
    /// (Sec. VIII). When off, whole predicates are evaluated as ongoing
    /// booleans.
    pub split_predicates: bool,
    /// Join algorithm policy.
    pub join_strategy: JoinStrategy,
    /// Use the envelope interval index for selections over base tables.
    pub use_interval_index: bool,
    /// Executor worker threads. `0` means auto: the `ONGOINGDB_THREADS`
    /// environment variable if set, else the machine's available
    /// parallelism. Results and work-unit counts are identical for every
    /// setting.
    pub parallelism: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            pushdown: true,
            split_predicates: true,
            join_strategy: JoinStrategy::Auto,
            use_interval_index: false,
            parallelism: 0,
        }
    }
}

impl PlannerConfig {
    /// The execution context this configuration resolves to (explicit
    /// [`parallelism`](Self::parallelism) knob, `ONGOINGDB_THREADS`, or
    /// machine parallelism — in that order).
    pub fn exec_context(&self) -> ExecContext {
        ExecContext::resolve(self.parallelism)
    }
}

/// Conjunction of a list of predicates (`None` when empty).
fn and_all(mut preds: Vec<Expr>) -> Option<Expr> {
    let first = preds.drain(..).reduce(Expr::and);
    first
}

/// The key-equality probe of a conjunct, when it compares a key-indexed
/// column of `table` against a constant of the column's type
/// (`#i = const` or `const = #i`).
fn key_eq_probe(c: &Expr, table: &Table) -> Option<KeyProbe> {
    let (col, key) = match c {
        Expr::Cmp(CmpOp::Eq, l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Col(i), Expr::Const(v)) | (Expr::Const(v), Expr::Col(i)) => (*i, v.clone()),
            _ => return None,
        },
        _ => return None,
    };
    if !table.data().key_indexed_columns().contains(&col) {
        return None;
    }
    // A cross-type comparison never drives the index: the probe must agree
    // with the predicate on every row, which only type-matched keys do.
    if table.data().schema().attr(col).ok()?.ty != key.value_type() {
        return None;
    }
    Some(KeyProbe::Eq { col, key })
}

/// Should this hash join borrow its build from the build table's per-chunk
/// key maps? Only when the build side is a bare scan, there is a single
/// equality key, the pinned version covers that column with key maps, and
/// the unindexed delta (overlay + pending, walked once per distinct probe
/// key) is small relative to the table.
fn keyed_build(r: &PhysicalPlan, keys: &[(usize, usize)]) -> bool {
    let (PhysicalPlan::SeqScan { table, .. }, [(_, rk)]) = (r, keys) else {
        return false;
    };
    let probe = KeyProbe::Range {
        col: *rk,
        lo: Bound::Unbounded,
        hi: Bound::Unbounded,
    };
    match table.data().qualification_estimate(&probe) {
        Some(q) => (q.overlay + q.pending) * 8 <= q.scan,
        None => false,
    }
}

/// Logical rewrites: merge selections into joins, turn selected products
/// into joins, push single-side conjuncts below joins, and fuse stacked
/// selections.
pub fn rewrite(plan: LogicalPlan, pushdown: bool) -> LogicalPlan {
    match plan {
        LogicalPlan::Select { input, pred } => {
            let input = rewrite(*input, pushdown);
            if !pushdown {
                return LogicalPlan::Select {
                    input: Box::new(input),
                    pred,
                };
            }
            match input {
                LogicalPlan::Join {
                    left,
                    right,
                    pred: jp,
                } => rewrite_join(
                    *left,
                    *right,
                    {
                        let mut cs = jp.conjuncts();
                        cs.extend(pred.conjuncts());
                        cs
                    },
                    pushdown,
                ),
                LogicalPlan::Product { left, right } => {
                    rewrite_join(*left, *right, pred.conjuncts(), pushdown)
                }
                LogicalPlan::Select {
                    input: inner,
                    pred: p2,
                } => LogicalPlan::Select {
                    input: inner,
                    pred: p2.and(pred),
                },
                other => LogicalPlan::Select {
                    input: Box::new(other),
                    pred,
                },
            }
        }
        LogicalPlan::Join { left, right, pred } => {
            let left = rewrite(*left, pushdown);
            let right = rewrite(*right, pushdown);
            if pushdown {
                rewrite_join(left, right, pred.conjuncts(), pushdown)
            } else {
                LogicalPlan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    pred,
                }
            }
        }
        LogicalPlan::Product { left, right } => LogicalPlan::Product {
            left: Box::new(rewrite(*left, pushdown)),
            right: Box::new(rewrite(*right, pushdown)),
        },
        LogicalPlan::Project {
            input,
            items,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(rewrite(*input, pushdown)),
            items,
            schema,
        },
        LogicalPlan::Union { left, right } => LogicalPlan::Union {
            left: Box::new(rewrite(*left, pushdown)),
            right: Box::new(rewrite(*right, pushdown)),
        },
        LogicalPlan::Difference { left, right } => LogicalPlan::Difference {
            left: Box::new(rewrite(*left, pushdown)),
            right: Box::new(rewrite(*right, pushdown)),
        },
        LogicalPlan::Aggregate {
            input,
            group_cols,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite(*input, pushdown)),
            group_cols,
            aggs,
            schema,
        },
        leaf @ LogicalPlan::Scan { .. } => leaf,
    }
}

/// Distributes join conjuncts: single-side ones become selections below the
/// join, the rest stay as the join predicate.
fn rewrite_join(
    left: LogicalPlan,
    right: LogicalPlan,
    conjuncts: Vec<Expr>,
    pushdown: bool,
) -> LogicalPlan {
    let la = left.schema().len();
    let mut left_preds = Vec::new();
    let mut right_preds = Vec::new();
    let mut join_preds = Vec::new();
    for c in conjuncts {
        let cols = c.columns();
        if !cols.is_empty() && cols.iter().all(|&i| i < la) {
            left_preds.push(c);
        } else if !cols.is_empty() && cols.iter().all(|&i| i >= la) {
            right_preds.push(c.map_columns(&|i| i - la));
        } else {
            join_preds.push(c);
        }
    }
    let left = match and_all(left_preds) {
        Some(p) => rewrite(
            LogicalPlan::Select {
                input: Box::new(left),
                pred: p,
            },
            pushdown,
        ),
        None => left,
    };
    let right = match and_all(right_preds) {
        Some(p) => rewrite(
            LogicalPlan::Select {
                input: Box::new(right),
                pred: p,
            },
            pushdown,
        ),
        None => right,
    };
    match and_all(join_preds) {
        Some(pred) => LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            pred,
        },
        None => LogicalPlan::Product {
            left: Box::new(left),
            right: Box::new(right),
        },
    }
}

/// Splits an optional predicate into (fixed, ongoing) conjuncts per the
/// planner configuration.
fn split_pred(pred: Option<Expr>, schema: &Schema, split: bool) -> (Option<Expr>, Option<Expr>) {
    match pred {
        None => (None, None),
        Some(p) if split => p.split_fixed_ongoing(schema),
        Some(p) => (None, Some(p)),
    }
}

/// Compiles a logical plan into a physical plan.
pub fn compile(db: &Database, plan: &LogicalPlan, cfg: &PlannerConfig) -> Result<PhysicalPlan> {
    let rewritten = rewrite(plan.clone(), cfg.pushdown);
    compile_node(db, rewritten, cfg)
}

fn compile_node(db: &Database, plan: LogicalPlan, cfg: &PlannerConfig) -> Result<PhysicalPlan> {
    match plan {
        LogicalPlan::Scan { table, schema } => Ok(PhysicalPlan::SeqScan {
            table: db.table(&table)?,
            schema,
        }),
        LogicalPlan::Select { input, pred } => {
            let schema = input.schema();
            // Key-scan opportunity: selection directly over a base scan
            // with a key-equality conjunct on an indexed column. The
            // store's qualification estimate is exact for the pinned
            // version, so the gate needs no histogram: take the keyed path
            // whenever it visits fewer rows than the scan.
            if let LogicalPlan::Scan {
                ref table,
                schema: ref scan_schema,
            } = *input
            {
                let resolved = db.table(table)?;
                let probe = pred
                    .clone()
                    .conjuncts()
                    .iter()
                    .find_map(|c| key_eq_probe(c, &resolved));
                if let Some(probe) = probe {
                    let q = resolved
                        .data()
                        .qualification_estimate(&probe)
                        .expect("key_eq_probe only matches indexed columns");
                    if q.keyed < q.scan {
                        let (fixed, ongoing) =
                            split_pred(Some(pred), &schema, cfg.split_predicates);
                        return Ok(PhysicalPlan::KeyScan {
                            table: resolved,
                            schema: scan_schema.clone(),
                            probe,
                            fixed,
                            ongoing,
                        });
                    }
                }
            }
            // Index-scan opportunity: selection directly over a base scan
            // with an indexable temporal conjunct.
            if cfg.use_interval_index {
                if let LogicalPlan::Scan {
                    ref table,
                    schema: ref scan_schema,
                } = *input
                {
                    let hit = pred
                        .clone()
                        .conjuncts()
                        .iter()
                        .find_map(indexable_selection);
                    if let Some((col, range)) = hit {
                        let (fixed, ongoing) =
                            split_pred(Some(pred.clone()), &schema, cfg.split_predicates);
                        let index_plan = PhysicalPlan::IndexScan {
                            table: db.table(table)?,
                            schema: scan_schema.clone(),
                            col,
                            range,
                            fixed,
                            ongoing,
                        };
                        let idx_est = cost::estimate(&index_plan);
                        if !idx_est.analyzed {
                            // No statistics: take the index unconditionally
                            // (the pre-statistics behaviour).
                            return Ok(index_plan);
                        }
                        // Cost gate: a non-selective envelope query can
                        // visit more candidates than a plain scan filters.
                        let (fixed, ongoing) =
                            split_pred(Some(pred), &schema, cfg.split_predicates);
                        let seq_plan = PhysicalPlan::Filter {
                            input: Box::new(PhysicalPlan::SeqScan {
                                table: db.table(table)?,
                                schema: scan_schema.clone(),
                            }),
                            fixed,
                            ongoing,
                        };
                        if idx_est.work.total() <= cost::estimate(&seq_plan).work.total() {
                            return Ok(index_plan);
                        }
                        return Ok(seq_plan);
                    }
                }
            }
            let (fixed, ongoing) = split_pred(Some(pred), &schema, cfg.split_predicates);
            Ok(PhysicalPlan::Filter {
                input: Box::new(compile_node(db, *input, cfg)?),
                fixed,
                ongoing,
            })
        }
        LogicalPlan::Project {
            input,
            items,
            schema,
        } => Ok(PhysicalPlan::Project {
            input: Box::new(compile_node(db, *input, cfg)?),
            items,
            schema,
        }),
        LogicalPlan::Join { left, right, pred } => {
            let schema = left.schema().product(&right.schema());
            let la = left.schema().len();
            let conjuncts = pred.conjuncts();
            compile_join(db, *left, *right, conjuncts, &schema, la, cfg)
        }
        LogicalPlan::Product { left, right } => {
            let l = compile_node(db, *left, cfg)?;
            let r = compile_node(db, *right, cfg)?;
            Ok(PhysicalPlan::NestedLoopJoin {
                left: Box::new(l),
                right: Box::new(r),
                fixed: None,
                ongoing: None,
            })
        }
        LogicalPlan::Union { left, right } => Ok(PhysicalPlan::Union {
            left: Box::new(compile_node(db, *left, cfg)?),
            right: Box::new(compile_node(db, *right, cfg)?),
        }),
        LogicalPlan::Difference { left, right } => Ok(PhysicalPlan::Difference {
            left: Box::new(compile_node(db, *left, cfg)?),
            right: Box::new(compile_node(db, *right, cfg)?),
        }),
        LogicalPlan::Aggregate {
            input,
            group_cols,
            aggs,
            schema,
        } => Ok(PhysicalPlan::Aggregate {
            input: Box::new(compile_node(db, *input, cfg)?),
            group_cols,
            aggs,
            schema,
        }),
    }
}

/// The physical join operators the optimizer enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JoinChoice {
    Hash,
    Sweep,
    Nested,
}

#[allow(clippy::too_many_arguments)]
fn compile_join(
    db: &Database,
    left: LogicalPlan,
    right: LogicalPlan,
    conjuncts: Vec<Expr>,
    schema: &Schema,
    split_at: usize,
    cfg: &PlannerConfig,
) -> Result<PhysicalPlan> {
    let l = compile_node(db, left, cfg)?;
    let r = compile_node(db, right, cfg)?;

    let fixed_type =
        |i: usize| -> bool { schema.attr(i).map(|a| !a.ty.is_ongoing()).unwrap_or(false) };
    let interval_type = |i: usize| -> bool {
        schema
            .attr(i)
            .map(|a| matches!(a.ty, ValueType::OngoingInterval | ValueType::Span))
            .unwrap_or(false)
    };

    // Candidate features, computed regardless of the strategy knob:
    // hash keys (fixed-attribute equality conjuncts across the split, the
    // rest as residual) and a sweep-sound temporal conjunct over two
    // interval columns.
    let mut keys = Vec::new();
    let mut hash_residual = Vec::new();
    for c in &conjuncts {
        match c.as_equi_key(split_at) {
            Some((i, j)) if fixed_type(i) && fixed_type(split_at + j) => keys.push((i, j)),
            _ => hash_residual.push(c.clone()),
        }
    }
    let sweep = conjuncts
        .iter()
        .find_map(|c| sweepable_columns(c, split_at))
        .filter(|&(i, j)| interval_type(i) && interval_type(split_at + j));

    let choice = match cfg.join_strategy {
        JoinStrategy::NestedLoop => JoinChoice::Nested,
        JoinStrategy::Hash if !keys.is_empty() => JoinChoice::Hash,
        JoinStrategy::Hash => JoinChoice::Nested,
        JoinStrategy::Sweep if sweep.is_some() => JoinChoice::Sweep,
        JoinStrategy::Sweep => JoinChoice::Nested,
        JoinStrategy::Auto => choose_join(
            &l,
            &r,
            &keys,
            sweep,
            &conjuncts,
            &hash_residual,
            schema,
            cfg.split_predicates,
        ),
    };

    match choice {
        JoinChoice::Hash => {
            let (fixed, ongoing) = split_pred(and_all(hash_residual), schema, cfg.split_predicates);
            let keyed = keyed_build(&r, &keys);
            Ok(PhysicalPlan::HashJoin {
                left: Box::new(l),
                right: Box::new(r),
                keys,
                keyed,
                fixed,
                ongoing,
            })
        }
        JoinChoice::Sweep => {
            let (l_col, r_col) = sweep.expect("sweep choice implies a sweepable conjunct");
            // The envelope pass is a pre-filter; the complete predicate
            // stays as residual.
            let (fixed, ongoing) = split_pred(and_all(conjuncts), schema, cfg.split_predicates);
            Ok(PhysicalPlan::SweepJoin {
                left: Box::new(l),
                right: Box::new(r),
                l_col,
                r_col,
                fixed,
                ongoing,
            })
        }
        JoinChoice::Nested => {
            let (fixed, ongoing) = split_pred(and_all(conjuncts), schema, cfg.split_predicates);
            Ok(PhysicalPlan::NestedLoopJoin {
                left: Box::new(l),
                right: Box::new(r),
                fixed,
                ongoing,
            })
        }
    }
}

/// `Auto` strategy choice: cost-based enumeration over analyzed inputs,
/// classic heuristic priority otherwise.
#[allow(clippy::too_many_arguments)]
fn choose_join(
    l: &PhysicalPlan,
    r: &PhysicalPlan,
    keys: &[(usize, usize)],
    sweep: Option<(usize, usize)>,
    conjuncts: &[Expr],
    hash_residual: &[Expr],
    schema: &Schema,
    split_predicates: bool,
) -> JoinChoice {
    if keys.is_empty() && sweep.is_none() {
        return JoinChoice::Nested;
    }
    let le = cost::estimate(l);
    let re = cost::estimate(r);
    if !(le.analyzed && re.analyzed) {
        // Without statistics the estimates are defaults; keep the
        // pre-statistics priority so un-analyzed databases plan exactly as
        // before.
        return if keys.is_empty() {
            JoinChoice::Sweep
        } else {
            JoinChoice::Hash
        };
    }
    let cols = cost::product_cols(&le, &re);
    let (nl_fixed, nl_ongoing) = split_pred(and_all(conjuncts.to_vec()), schema, split_predicates);
    let nl = cost::nested_loop_work(&le, &re, nl_fixed.as_ref(), nl_ongoing.as_ref(), &cols)
        .1
        .total();
    let mut best = (JoinChoice::Nested, nl);
    if let Some((l_col, r_col)) = sweep {
        let w = cost::sweep_join_work(
            &le,
            &re,
            l_col,
            r_col,
            nl_fixed.as_ref(),
            nl_ongoing.as_ref(),
            &cols,
        )
        .1
        .total();
        if w < best.1 {
            best = (JoinChoice::Sweep, w);
        }
    }
    if !keys.is_empty() {
        let (h_fixed, h_ongoing) =
            split_pred(and_all(hash_residual.to_vec()), schema, split_predicates);
        let w = cost::hash_join_work(&le, &re, keys, h_fixed.as_ref(), h_ongoing.as_ref(), &cols)
            .1
            .total();
        // Ties go to the hash join: its un-counted constants (building the
        // table) are cheaper than the sweep's envelope sort.
        if w <= best.1 {
            best = (JoinChoice::Hash, w);
        }
    }
    best.0
}
