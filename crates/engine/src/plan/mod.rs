//! Logical plans, the optimizer, and physical execution.

pub mod logical;
pub mod optimizer;
pub mod physical;

pub use logical::{LogicalPlan, QueryBuilder};
pub use optimizer::{compile, rewrite, JoinStrategy, PlannerConfig};
pub use physical::PhysicalPlan;
