//! Logical query plans over ongoing relations.
//!
//! Plans are built against a `Database` with the
//! fluent [`QueryBuilder`], which resolves attribute names to positions as
//! the plan grows — the same role the parser/analyzer plays in the paper's
//! PostgreSQL prototype.

use crate::catalog::Database;
use crate::error::{EngineError, Result};
use ongoing_relation::algebra::ProjItem;
use ongoing_relation::{Attribute, Expr, Schema, SchemaError};

/// A logical relational-algebra plan (Theorem 2 operators).
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Scan of a named base relation.
    Scan {
        /// Table name in the catalog.
        table: String,
        /// Schema of the table (possibly re-qualified).
        schema: Schema,
    },
    /// Selection `σ_θ`.
    Select {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        pred: Expr,
    },
    /// Projection `π` with optional computed columns.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output columns.
        items: Vec<ProjItem>,
        /// Pre-computed output schema.
        schema: Schema,
    },
    /// Theta-join `⋈_θ` (σ_θ over the product, fused).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join predicate over the concatenated schema.
        pred: Expr,
    },
    /// Cartesian product `×`.
    Product {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Union `∪` (type-compatible inputs).
    Union {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Difference `−` (type-compatible inputs).
    Difference {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Grouped aggregation `γ` over fixed attributes (Sec. X extension):
    /// aggregates are ongoing integers.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by columns (fixed attributes).
        group_cols: Vec<usize>,
        /// Aggregate functions.
        aggs: Vec<ongoing_relation::aggregate::AggFn>,
        /// Pre-computed output schema (group attrs + one ongoing-integer
        /// attr per aggregate).
        schema: Schema,
    },
}

impl LogicalPlan {
    /// The output schema of the plan.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::Scan { schema, .. } => schema.clone(),
            LogicalPlan::Select { input, .. } => input.schema(),
            LogicalPlan::Project { schema, .. } => schema.clone(),
            LogicalPlan::Join { left, right, .. } | LogicalPlan::Product { left, right } => {
                left.schema().product(&right.schema())
            }
            LogicalPlan::Union { left, .. } | LogicalPlan::Difference { left, .. } => left.schema(),
            LogicalPlan::Aggregate { schema, .. } => schema.clone(),
        }
    }

    /// One-line-per-node plan rendering for tests and EXPLAIN-style output.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { table, .. } => {
                out.push_str(&format!("{pad}Scan {table}\n"));
            }
            LogicalPlan::Select { input, pred } => {
                out.push_str(&format!("{pad}Select {pred}\n"));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Project { input, items, .. } => {
                out.push_str(&format!("{pad}Project [{} cols]\n", items.len()));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Join { left, right, pred } => {
                out.push_str(&format!("{pad}Join {pred}\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            LogicalPlan::Product { left, right } => {
                out.push_str(&format!("{pad}Product\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            LogicalPlan::Union { left, right } => {
                out.push_str(&format!("{pad}Union\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            LogicalPlan::Difference { left, right } => {
                out.push_str(&format!("{pad}Difference\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            LogicalPlan::Aggregate {
                input,
                group_cols,
                aggs,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Aggregate group by {group_cols:?} [{} aggs]\n",
                    aggs.len()
                ));
                input.explain_into(depth + 1, out);
            }
        }
    }
}

/// Fluent builder that resolves names against schemas while assembling a
/// [`LogicalPlan`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    plan: LogicalPlan,
    schema: Schema,
}

impl QueryBuilder {
    /// Starts from a base table.
    pub fn scan(db: &Database, table: &str) -> Result<Self> {
        let t = db.table(table)?;
        let schema = t.schema().clone();
        Ok(QueryBuilder {
            plan: LogicalPlan::Scan {
                table: table.to_string(),
                schema: schema.clone(),
            },
            schema,
        })
    }

    /// Starts from a base table under an alias: attribute names are
    /// qualified `alias.name`, enabling self-joins (`B` vs `B'`).
    pub fn scan_as(db: &Database, table: &str, alias: &str) -> Result<Self> {
        let t = db.table(table)?;
        let schema = t.schema().qualify(alias);
        Ok(QueryBuilder {
            plan: LogicalPlan::Scan {
                table: table.to_string(),
                schema: schema.clone(),
            },
            schema,
        })
    }

    /// The schema at this point of the pipeline.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Appends a selection; the closure builds the predicate against the
    /// current schema.
    pub fn filter(
        self,
        f: impl FnOnce(&Schema) -> std::result::Result<Expr, SchemaError>,
    ) -> Result<Self> {
        let pred = f(&self.schema)?;
        Ok(QueryBuilder {
            plan: LogicalPlan::Select {
                input: Box::new(self.plan),
                pred,
            },
            schema: self.schema,
        })
    }

    /// Appends a theta-join with another pipeline; the closure sees the
    /// concatenated schema.
    pub fn join(
        self,
        right: QueryBuilder,
        f: impl FnOnce(&Schema) -> std::result::Result<Expr, SchemaError>,
    ) -> Result<Self> {
        let schema = self.schema.product(&right.schema);
        let pred = f(&schema)?;
        Ok(QueryBuilder {
            plan: LogicalPlan::Join {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
                pred,
            },
            schema,
        })
    }

    /// Appends a Cartesian product.
    pub fn product(self, right: QueryBuilder) -> Self {
        let schema = self.schema.product(&right.schema);
        QueryBuilder {
            plan: LogicalPlan::Product {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
            },
            schema,
        }
    }

    /// Projects onto named attributes.
    pub fn project_cols(self, names: &[&str]) -> Result<Self> {
        let mut items = Vec::with_capacity(names.len());
        for n in names {
            items.push(ProjItem::col(&self.schema, n).map_err(EngineError::Schema)?);
        }
        self.project(items)
    }

    /// Projects with explicit items (pass-through and computed columns).
    pub fn project(self, items: Vec<ProjItem>) -> Result<Self> {
        let mut attrs = Vec::with_capacity(items.len());
        for item in &items {
            match item {
                ProjItem::Col(i) => attrs.push(self.schema.attr(*i)?.clone()),
                ProjItem::Named { expr, name } => attrs.push(Attribute::new(
                    name.clone(),
                    expr.result_type(&self.schema).map_err(EngineError::Eval)?,
                )),
            }
        }
        let schema = Schema::new(attrs);
        Ok(QueryBuilder {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                items,
                schema: schema.clone(),
            },
            schema,
        })
    }

    /// Set union with another pipeline.
    pub fn union(self, right: QueryBuilder) -> Result<Self> {
        if !self.schema.compatible_with(&right.schema) {
            return Err(EngineError::Schema(SchemaError::Mismatch(
                "union requires type-compatible schemas".into(),
            )));
        }
        Ok(QueryBuilder {
            plan: LogicalPlan::Union {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
            },
            schema: self.schema,
        })
    }

    /// Set difference with another pipeline.
    pub fn difference(self, right: QueryBuilder) -> Result<Self> {
        if !self.schema.compatible_with(&right.schema) {
            return Err(EngineError::Schema(SchemaError::Mismatch(
                "difference requires type-compatible schemas".into(),
            )));
        }
        Ok(QueryBuilder {
            plan: LogicalPlan::Difference {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
            },
            schema: self.schema,
        })
    }

    /// Grouped aggregation: group on the named (fixed) attributes and
    /// compute each aggregate as an ongoing integer. Output attribute names
    /// are the group names followed by `names` (one per aggregate; pass
    /// ``&[]`-style defaults via [`AggFn::default_name`] if preferred).[]`-style defaults via `AggFn::default_name` if preferred).
    pub fn aggregate(
        self,
        group_names: &[&str],
        aggs: Vec<ongoing_relation::aggregate::AggFn>,
        names: Vec<String>,
    ) -> Result<Self> {
        use ongoing_relation::ValueType;
        if aggs.len() != names.len() {
            return Err(EngineError::Plan(
                "one output name per aggregate required".into(),
            ));
        }
        let mut group_cols = Vec::with_capacity(group_names.len());
        let mut attrs = Vec::with_capacity(group_names.len() + aggs.len());
        for n in group_names {
            let idx = self.schema.index_of(n)?;
            let attr = self.schema.attr(idx)?;
            if attr.ty.is_ongoing() {
                return Err(EngineError::Plan(format!(
                    "cannot group on ongoing attribute `{n}`"
                )));
            }
            group_cols.push(idx);
            attrs.push(attr.clone());
        }
        for (a, name) in aggs.iter().zip(&names) {
            if let ongoing_relation::aggregate::AggFn::SumInt(col) = a {
                let attr = self.schema.attr(*col)?;
                if attr.ty != ValueType::Int {
                    return Err(EngineError::Plan(format!(
                        "SUM requires an Int attribute, `{}` is {:?}",
                        attr.name, attr.ty
                    )));
                }
            }
            attrs.push(Attribute::new(name.clone(), ValueType::OngoingInt));
        }
        let schema = Schema::new(attrs);
        Ok(QueryBuilder {
            plan: LogicalPlan::Aggregate {
                input: Box::new(self.plan),
                group_cols,
                aggs,
                schema: schema.clone(),
            },
            schema,
        })
    }

    /// Finishes the pipeline.
    pub fn build(self) -> LogicalPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ongoing_core::date::md;
    use ongoing_core::OngoingInterval;
    use ongoing_relation::{OngoingRelation, Value};

    fn db() -> Database {
        let db = Database::new();
        let schema = Schema::builder().int("BID").str("C").interval("VT").build();
        let mut b = OngoingRelation::new(schema.clone());
        b.insert(vec![
            Value::Int(500),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::from_until_now(md(1, 25))),
        ])
        .unwrap();
        db.create_table("B", b).unwrap();
        let mut p =
            OngoingRelation::new(Schema::builder().int("PID").str("C").interval("VT").build());
        p.insert(vec![
            Value::Int(201),
            Value::str("Spam filter"),
            Value::Interval(OngoingInterval::fixed(md(8, 15), md(8, 24))),
        ])
        .unwrap();
        db.create_table("P", p).unwrap();
        db
    }

    #[test]
    fn scan_resolves_schema() {
        let db = db();
        let q = QueryBuilder::scan(&db, "B").unwrap();
        assert_eq!(q.schema().len(), 3);
        assert!(QueryBuilder::scan(&db, "missing").is_err());
    }

    #[test]
    fn scan_as_qualifies() {
        let db = db();
        let q = QueryBuilder::scan_as(&db, "B", "B1").unwrap();
        assert_eq!(q.schema().attrs()[0].name, "B1.BID");
    }

    #[test]
    fn join_schema_concatenates_and_explains() {
        let db = db();
        let b = QueryBuilder::scan_as(&db, "B", "B").unwrap();
        let p = QueryBuilder::scan_as(&db, "P", "P").unwrap();
        let plan = b
            .join(p, |s| {
                Ok(Expr::col(s, "B.C")?
                    .eq(Expr::col(s, "P.C")?)
                    .and(Expr::col(s, "B.VT")?.before(Expr::col(s, "P.VT")?)))
            })
            .unwrap()
            .build();
        assert_eq!(plan.schema().len(), 6);
        let explain = plan.explain();
        assert!(explain.contains("Join"));
        assert!(explain.contains("Scan B"));
        assert!(explain.contains("Scan P"));
    }

    #[test]
    fn union_rejects_incompatible() {
        let db = db();
        let b = QueryBuilder::scan(&db, "B").unwrap();
        let p = QueryBuilder::scan(&db, "P")
            .unwrap()
            .project_cols(&["C"])
            .unwrap();
        assert!(b.union(p).is_err());
    }

    #[test]
    fn project_computes_schema() {
        let db = db();
        let q = QueryBuilder::scan(&db, "B")
            .unwrap()
            .project_cols(&["VT", "BID"])
            .unwrap();
        assert_eq!(q.schema().attrs()[0].name, "VT");
        assert_eq!(q.schema().attrs()[1].name, "BID");
    }
}
