//! Date and timestamp granularities for [`TimePoint`] ticks.
//!
//! The paper's PostgreSQL prototype supports ongoing time points at the two
//! granularities PostgreSQL offers: dates (days) and timestamps
//! (microseconds). [`TimePoint`] is granularity-agnostic; this module maps
//! civil dates to day ticks (days since 1970-01-01, proleptic Gregorian) and
//! wall-clock instants to microsecond ticks.
//!
//! The civil-date conversion uses Howard Hinnant's `days_from_civil` /
//! `civil_from_days` algorithms, which are exact over the full supported
//! range.

use crate::time::TimePoint;
use std::fmt;

/// Microseconds per day; converts between the two supported granularities.
pub const MICROS_PER_DAY: i64 = 86_400_000_000;

/// A civil (year, month, day) date.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
#[allow(missing_docs)]
pub struct Civil {
    pub year: i32,
    pub month: u8,
    pub day: u8,
}

/// Days since 1970-01-01 for a civil date (proleptic Gregorian calendar).
pub fn days_from_civil(year: i32, month: u8, day: u8) -> i64 {
    debug_assert!((1..=12).contains(&month), "month out of range: {month}");
    debug_assert!((1..=31).contains(&day), "day out of range: {day}");
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(month);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + i64::from(day) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for a days-since-1970-01-01 count (inverse of
/// [`days_from_civil`]).
pub fn civil_from_days(days: i64) -> Civil {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let day = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let month = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8; // [1, 12]
    Civil {
        year: (y + i64::from(month <= 2)) as i32,
        month,
        day,
    }
}

/// A [`TimePoint`] at day granularity from a civil date.
pub fn date(year: i32, month: u8, day: u8) -> TimePoint {
    TimePoint::new(days_from_civil(year, month, day))
}

/// The paper's `mm/dd` shorthand: a day-granularity time point in 2019
/// ("time point 08/15 denotes August 15, 2019").
pub fn md(month: u8, day: u8) -> TimePoint {
    date(2019, month, day)
}

/// A [`TimePoint`] at microsecond granularity from a civil date at midnight.
pub fn timestamp(year: i32, month: u8, day: u8) -> TimePoint {
    TimePoint::new(days_from_civil(year, month, day) * MICROS_PER_DAY)
}

/// A microsecond-granularity point with an intra-day offset.
pub fn timestamp_at(year: i32, month: u8, day: u8, micros_of_day: i64) -> TimePoint {
    debug_assert!((0..MICROS_PER_DAY).contains(&micros_of_day));
    TimePoint::new(days_from_civil(year, month, day) * MICROS_PER_DAY + micros_of_day)
}

/// Formats a day-granularity [`TimePoint`] as `yyyy/mm/dd` (limits print as
/// `-inf` / `+inf`).
pub struct AsDate(pub TimePoint);

impl fmt::Display for AsDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.0.is_finite() {
            return write!(f, "{}", self.0);
        }
        let c = civil_from_days(self.0.ticks());
        write!(f, "{:04}/{:02}/{:02}", c.year, c.month, c.day)
    }
}

/// Formats a day-granularity [`TimePoint`] in the paper's `mm/dd` shorthand
/// (only sensible for points within 2019; other years fall back to
/// `yyyy/mm/dd`).
pub struct AsMd(pub TimePoint);

impl fmt::Display for AsMd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.0.is_finite() {
            return write!(f, "{}", self.0);
        }
        let c = civil_from_days(self.0.ticks());
        if c.year == 2019 {
            write!(f, "{:02}/{:02}", c.month, c.day)
        } else {
            write!(f, "{:04}/{:02}/{:02}", c.year, c.month, c.day)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(
            civil_from_days(0),
            Civil {
                year: 1970,
                month: 1,
                day: 1
            }
        );
    }

    #[test]
    fn known_dates_round_trip() {
        // Spot checks against known day numbers.
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
        assert_eq!(days_from_civil(2019, 8, 15), 18_123);
        for days in [-1_000_000, -1, 0, 1, 365, 18_123, 2_000_000] {
            let c = civil_from_days(days);
            assert_eq!(days_from_civil(c.year, c.month, c.day), days);
        }
    }

    #[test]
    fn leap_year_handling() {
        // 2000 is a leap year (divisible by 400), 1900 is not.
        assert_eq!(
            days_from_civil(2000, 2, 29) + 1,
            days_from_civil(2000, 3, 1)
        );
        assert_eq!(
            days_from_civil(1900, 2, 28) + 1,
            days_from_civil(1900, 3, 1)
        );
        // 2020 is a leap year.
        assert_eq!(
            days_from_civil(2020, 2, 29) + 1,
            days_from_civil(2020, 3, 1)
        );
    }

    #[test]
    fn md_is_2019() {
        assert_eq!(md(8, 15), date(2019, 8, 15));
        assert_eq!(AsMd(md(8, 15)).to_string(), "08/15");
        assert_eq!(AsDate(md(8, 15)).to_string(), "2019/08/15");
    }

    #[test]
    fn ordering_matches_civil_ordering() {
        assert!(md(1, 25) < md(3, 30));
        assert!(md(8, 15) < md(8, 24));
        assert!(date(2018, 12, 31) < date(2019, 1, 1));
    }

    #[test]
    fn timestamps_scale_days_by_micros() {
        assert_eq!(timestamp(1970, 1, 2), TimePoint::new(MICROS_PER_DAY));
        assert_eq!(
            timestamp_at(1970, 1, 1, 1_500_000),
            TimePoint::new(1_500_000)
        );
    }

    #[test]
    fn limits_format_as_infinities() {
        assert_eq!(AsDate(TimePoint::NEG_INF).to_string(), "-inf");
        assert_eq!(AsMd(TimePoint::POS_INF).to_string(), "+inf");
    }
}
