//! Ongoing booleans `b[St, Sf]` (Definition 3).
//!
//! An ongoing boolean is a boolean whose truth value depends on the
//! reference time: it is `true` at the reference times in `St` and `false`
//! at those in `Sf`, where `St` and `Sf` partition the time domain.
//!
//! Following the paper's implementation (Sec. VIII), only `St` is stored —
//! as a canonical [`IntervalSet`] — and `Sf` is its complement. Storing `St`
//! in the same representation as a tuple's reference time lets a relational
//! operator restrict `RT` with a predicate result through a single sweep-line
//! conjunction.

use crate::set::IntervalSet;
use crate::time::TimePoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ongoing boolean: `true` exactly at the reference times in its
/// (canonically represented) true-set `St`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OngoingBool {
    st: IntervalSet,
}

impl OngoingBool {
    /// The ongoing boolean that is true everywhere — the generalization of
    /// fixed `true` (`b[{(-∞,∞)}, ∅]`).
    #[inline]
    pub fn always_true() -> Self {
        OngoingBool {
            st: IntervalSet::full(),
        }
    }

    /// The ongoing boolean that is false everywhere (`b[∅, {(-∞,∞)}]`).
    #[inline]
    pub fn always_false() -> Self {
        OngoingBool {
            st: IntervalSet::empty(),
        }
    }

    /// Embeds a fixed boolean (predicates on fixed attributes keep their
    /// standard behaviour, Sec. VII-B).
    #[inline]
    pub fn from_bool(v: bool) -> Self {
        if v {
            Self::always_true()
        } else {
            Self::always_false()
        }
    }

    /// An ongoing boolean from its true-set.
    #[inline]
    pub fn from_set(st: IntervalSet) -> Self {
        OngoingBool { st }
    }

    /// The bind operator `∥b[St, Sf]∥rt`: `true` iff `rt ∈ St`.
    #[inline]
    pub fn bind(&self, rt: TimePoint) -> bool {
        self.st.contains(rt)
    }

    /// The true-set `St`.
    #[inline]
    pub fn true_set(&self) -> &IntervalSet {
        &self.st
    }

    /// The false-set `Sf = T \ St` (materialized on demand).
    #[inline]
    pub fn false_set(&self) -> IntervalSet {
        self.st.complement()
    }

    /// Consumes the boolean, returning its true-set — used when restricting
    /// a tuple's reference time (Theorem 2).
    #[inline]
    pub fn into_true_set(self) -> IntervalSet {
        self.st
    }

    /// Is this boolean `true` at every reference time?
    #[inline]
    pub fn is_always_true(&self) -> bool {
        self.st.is_full()
    }

    /// Is this boolean `false` at every reference time?
    #[inline]
    pub fn is_always_false(&self) -> bool {
        self.st.is_empty()
    }

    /// Logical conjunction `b1 ∧ b2 ≡ b[St ∩ ˜St, Sf ∪ ˜Sf]` (Theorem 1),
    /// computed with the sweep-line Algorithm 1.
    #[inline]
    pub fn and(&self, other: &OngoingBool) -> OngoingBool {
        OngoingBool {
            st: self.st.intersect(&other.st),
        }
    }

    /// Logical disjunction `b1 ∨ b2 ≡ b[St ∪ ˜St, Sf ∩ ˜Sf]` (Theorem 1).
    #[inline]
    pub fn or(&self, other: &OngoingBool) -> OngoingBool {
        OngoingBool {
            st: self.st.union(&other.st),
        }
    }

    /// Logical negation `¬b[St, Sf] ≡ b[Sf, St]` (Theorem 1).
    #[inline]
    pub fn not(&self) -> OngoingBool {
        OngoingBool {
            st: self.st.complement(),
        }
    }
}

impl From<bool> for OngoingBool {
    #[inline]
    fn from(v: bool) -> Self {
        OngoingBool::from_bool(v)
    }
}

impl From<IntervalSet> for OngoingBool {
    #[inline]
    fn from(st: IntervalSet) -> Self {
        OngoingBool::from_set(st)
    }
}

impl fmt::Debug for OngoingBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for OngoingBool {
    /// Prints `b[St, Sf]` in the paper's notation, with the false-set
    /// implied: `b[{[10/18, +inf)}]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b[{}]", self.st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::tp;

    fn ob(ranges: &[(i64, i64)]) -> OngoingBool {
        OngoingBool::from_set(IntervalSet::from_ranges(
            ranges.iter().map(|&(a, b)| (tp(a), tp(b))),
        ))
    }

    #[test]
    fn definition_3_example() {
        // b[{[10/18, ∞)}, {(-∞, 10/18)}] is true at 10/18 and later, false
        // earlier.
        let b = OngoingBool::from_set(IntervalSet::range(tp(18), TimePoint::POS_INF));
        assert!(b.bind(tp(18)));
        assert!(b.bind(tp(100)));
        assert!(!b.bind(tp(17)));
    }

    #[test]
    fn booleans_generalize_fixed_booleans() {
        assert!(OngoingBool::from_bool(true).is_always_true());
        assert!(OngoingBool::from_bool(false).is_always_false());
        for rt in [-10i64, 0, 10] {
            assert!(OngoingBool::from_bool(true).bind(tp(rt)));
            assert!(!OngoingBool::from_bool(false).bind(tp(rt)));
        }
    }

    #[test]
    fn connectives_are_pointwise() {
        let x = ob(&[(0, 10)]);
        let y = ob(&[(5, 15)]);
        for rt in -2i64..18 {
            let rt = tp(rt);
            assert_eq!(x.and(&y).bind(rt), x.bind(rt) && y.bind(rt));
            assert_eq!(x.or(&y).bind(rt), x.bind(rt) || y.bind(rt));
            assert_eq!(x.not().bind(rt), !x.bind(rt));
        }
    }

    #[test]
    fn negation_swaps_st_and_sf() {
        let x = ob(&[(0, 10)]);
        assert_eq!(x.not().true_set(), &x.false_set());
        assert_eq!(x.not().not(), x);
    }

    #[test]
    fn conjunction_with_true_is_identity() {
        let x = ob(&[(0, 10), (20, 30)]);
        assert_eq!(x.and(&OngoingBool::always_true()), x);
        assert!(x.and(&OngoingBool::always_false()).is_always_false());
        assert_eq!(x.or(&OngoingBool::always_false()), x);
        assert!(x.or(&OngoingBool::always_true()).is_always_true());
    }

    #[test]
    fn example_3_reference_time_restriction() {
        use crate::date::md;
        // x.RT ∧ θ(x): {(-∞, 08/16)} ∧ b[{[01/26, ∞)}] = {[01/26, 08/16)}
        let rt = OngoingBool::from_set(IntervalSet::range(TimePoint::NEG_INF, md(8, 16)));
        let theta = OngoingBool::from_set(IntervalSet::range(md(1, 26), TimePoint::POS_INF));
        let restricted = rt.and(&theta);
        assert_eq!(
            restricted.into_true_set(),
            IntervalSet::range(md(1, 26), md(8, 16))
        );
    }

    #[test]
    fn display_shows_true_set() {
        assert_eq!(ob(&[(1, 3)]).to_string(), "b[{[1, 3)}]");
        assert_eq!(OngoingBool::always_true().to_string(), "b[{[-inf, +inf)}]");
    }
}
