//! Ongoing integers — integers whose value depends on the reference time.
//!
//! The paper's conclusions (Sec. X) name two extensions that need a numeric
//! ongoing data type: a `duration` function for ongoing time intervals
//! "whose result are ongoing integers", and aggregation over ongoing
//! relations. [`OngoingInt`] provides that type.
//!
//! An ongoing integer is represented as a piecewise-affine function of the
//! reference time: a sorted list of segments `[startᵢ, startᵢ₊₁)`, each
//! carrying an affine value `coef · rt + offset`. Instantiating an ongoing
//! interval's endpoints yields clamp functions with slopes in `{0, 1}`, so
//! durations are piecewise affine with slopes in `{-1, 0, 1}`; aggregation
//! over reference times yields step functions (slope 0 everywhere). The type
//! is closed under addition, negation, `min`/`max`, and scaling — exactly
//! the operations the duration and aggregation extensions need.

use crate::interval::OngoingInterval;
use crate::point::OngoingPoint;
use crate::set::IntervalSet;
use crate::time::TimePoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One affine piece: on `[start, next start)` the value is
/// `coef · rt + offset`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
struct Segment {
    start: TimePoint,
    coef: i64,
    offset: i64,
}

impl Segment {
    #[inline]
    fn eval(&self, rt: TimePoint) -> i64 {
        let v = i128::from(self.offset) + i128::from(self.coef) * i128::from(rt.ticks());
        v.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64
    }

    #[inline]
    fn same_fn(&self, other: &Segment) -> bool {
        self.coef == other.coef && self.offset == other.offset
    }
}

/// An integer value that changes as time passes by, represented as a
/// piecewise-affine function of the reference time.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OngoingInt {
    /// Non-empty; `segs[0].start == -∞`; starts strictly ascending; adjacent
    /// segments carry different affine functions (canonical form).
    segs: Vec<Segment>,
}

impl OngoingInt {
    /// The constant function `v`.
    pub fn constant(v: i64) -> Self {
        OngoingInt {
            segs: vec![Segment {
                start: TimePoint::NEG_INF,
                coef: 0,
                offset: v,
            }],
        }
    }

    /// The instantiation function of an ongoing point:
    /// `rt ↦ ∥a+b∥rt = clamp(rt; a, b)` (in ticks).
    ///
    /// Infinite components saturate: `∥now∥rt = rt` is the identity
    /// function, unbounded in both directions.
    pub fn from_point(p: OngoingPoint) -> Self {
        let (a, b) = (p.a(), p.b());
        let mut segs = Vec::with_capacity(3);
        if !a.is_neg_inf() {
            segs.push(Segment {
                start: TimePoint::NEG_INF,
                coef: 0,
                offset: a.ticks(),
            });
        }
        if a < b {
            // The identity piece [a, b).
            segs.push(Segment {
                start: if a.is_neg_inf() {
                    TimePoint::NEG_INF
                } else {
                    a
                },
                coef: 1,
                offset: 0,
            });
            if !b.is_pos_inf() {
                segs.push(Segment {
                    start: b,
                    coef: 0,
                    offset: b.ticks(),
                });
            }
        }
        if segs.is_empty() {
            // a == b == ±∞: constant at the (saturated) limit.
            return OngoingInt::constant(a.ticks());
        }
        let mut r = OngoingInt { segs };
        r.canonicalize();
        r
    }

    /// The indicator function of a reference-time set: `1` inside, `0`
    /// outside. The building block of reference-time-resolved aggregation.
    pub fn indicator(set: &IntervalSet) -> Self {
        let mut segs = vec![Segment {
            start: TimePoint::NEG_INF,
            coef: 0,
            offset: 0,
        }];
        for r in set.ranges() {
            segs.push(Segment {
                start: r.ts(),
                coef: 0,
                offset: 1,
            });
            if !r.te().is_pos_inf() {
                segs.push(Segment {
                    start: r.te(),
                    coef: 0,
                    offset: 0,
                });
            }
        }
        let mut r = OngoingInt { segs };
        r.canonicalize();
        r
    }

    /// The `duration` function of Sec. X: the number of time points in the
    /// instantiation of an ongoing interval, as an ongoing integer —
    /// `rt ↦ maxF(0, ∥te∥rt - ∥ts∥rt)`.
    pub fn duration(interval: OngoingInterval) -> Self {
        let start = Self::from_point(interval.ts());
        let end = Self::from_point(interval.te());
        end.sub(&start).max_with(&Self::constant(0))
    }

    /// The value at reference time `rt` (saturating at the `i64` limits).
    pub fn bind(&self, rt: TimePoint) -> i64 {
        let idx = match self.segs.binary_search_by(|s| s.start.cmp(&rt)) {
            Ok(i) => i,
            Err(i) => i - 1, // segs[0].start == -∞ <= rt always
        };
        self.segs[idx].eval(rt)
    }

    /// Pointwise sum (saturating).
    pub fn add(&self, other: &OngoingInt) -> OngoingInt {
        let mut r = self.zip_with(other, |f, g| Segment {
            start: TimePoint::NEG_INF, // overwritten by zip_with
            coef: f.coef.saturating_add(g.coef),
            offset: f.offset.saturating_add(g.offset),
        });
        r.canonicalize();
        r
    }

    /// Pointwise negation.
    pub fn neg(&self) -> OngoingInt {
        OngoingInt {
            segs: self
                .segs
                .iter()
                .map(|s| Segment {
                    start: s.start,
                    coef: s.coef.saturating_neg(),
                    offset: s.offset.saturating_neg(),
                })
                .collect(),
        }
    }

    /// Pointwise difference.
    pub fn sub(&self, other: &OngoingInt) -> OngoingInt {
        self.add(&other.neg())
    }

    /// Pointwise scaling by a constant.
    pub fn scale(&self, k: i64) -> OngoingInt {
        let mut r = OngoingInt {
            segs: self
                .segs
                .iter()
                .map(|s| Segment {
                    start: s.start,
                    coef: s.coef.saturating_mul(k),
                    offset: s.offset.saturating_mul(k),
                })
                .collect(),
        };
        r.canonicalize();
        r
    }

    /// Pointwise maximum. Within each merged segment two affine functions
    /// cross at most once, so each segment splits into at most two pieces.
    pub fn max_with(&self, other: &OngoingInt) -> OngoingInt {
        self.combine_minmax(other, true)
    }

    /// Pointwise minimum.
    pub fn min_with(&self, other: &OngoingInt) -> OngoingInt {
        self.combine_minmax(other, false)
    }

    /// The set of reference times at which the value is strictly positive.
    /// Useful to turn aggregates back into reference-time sets
    /// (e.g. "times with at least one open bug").
    pub fn positive_set(&self) -> IntervalSet {
        self.cmp_zero_set(|v| v > 0)
    }

    /// The set of reference times at which the value is zero.
    pub fn zero_set(&self) -> IntervalSet {
        self.cmp_zero_set(|v| v == 0)
    }

    /// Number of affine pieces (canonical form).
    pub fn piece_count(&self) -> usize {
        self.segs.len()
    }

    /// Is the value independent of the reference time?
    pub fn is_constant(&self) -> bool {
        self.segs.len() == 1 && self.segs[0].coef == 0
    }

    /// The canonical pieces as `(start, coef, offset)` triples —
    /// `value(rt) = coef · rt + offset` on `[start, next start)`.
    pub fn pieces(&self) -> impl Iterator<Item = (TimePoint, i64, i64)> + '_ {
        self.segs.iter().map(|s| (s.start, s.coef, s.offset))
    }

    /// Rebuilds an ongoing integer from `(start, coef, offset)` pieces.
    /// The first piece must start at `-∞`; starts must be strictly
    /// ascending.
    pub fn from_pieces<I>(pieces: I) -> Option<Self>
    where
        I: IntoIterator<Item = (TimePoint, i64, i64)>,
    {
        let segs: Vec<Segment> = pieces
            .into_iter()
            .map(|(start, coef, offset)| Segment {
                start,
                coef,
                offset,
            })
            .collect();
        if segs.first().map(|s| s.start) != Some(TimePoint::NEG_INF) {
            return None;
        }
        if segs.windows(2).any(|w| w[0].start >= w[1].start) {
            return None;
        }
        let mut v = OngoingInt { segs };
        v.canonicalize();
        Some(v)
    }

    /// The set of reference times where `self == other`.
    pub fn eq_set(&self, other: &OngoingInt) -> IntervalSet {
        self.sub(other).zero_set()
    }

    /// The set of reference times where `self < other`.
    pub fn lt_set(&self, other: &OngoingInt) -> IntervalSet {
        other.sub(self).positive_set()
    }

    fn cmp_zero_set(&self, keep: impl Fn(i64) -> bool) -> IntervalSet {
        let mut ranges: Vec<(TimePoint, TimePoint)> = Vec::new();
        for (i, s) in self.segs.iter().enumerate() {
            let end = self.segs.get(i + 1).map_or(TimePoint::POS_INF, |n| n.start);
            if s.coef == 0 {
                if keep(s.offset) {
                    ranges.push((s.start, end));
                }
            } else {
                // Affine piece: walk the (at most two) sign regions around
                // the root of coef·rt + offset relative to the predicate.
                // We split at the root and test one representative point in
                // each half.
                let root = -(i128::from(s.offset)) / i128::from(s.coef);
                let mut cuts = vec![s.start];
                for delta in [-1i128, 0, 1, 2] {
                    let c = root + delta;
                    if c > i128::from(s.start.ticks()) && c < i128::from(end.ticks()) {
                        cuts.push(TimePoint::new(c as i64));
                    }
                }
                cuts.push(end);
                cuts.dedup();
                for w in cuts.windows(2) {
                    let (lo, hi) = (w[0], w[1]);
                    if lo >= hi {
                        continue;
                    }
                    // Representative: lo when finite, else just below hi.
                    let rep = if lo.is_neg_inf() {
                        hi.pred().pred()
                    } else {
                        lo
                    };
                    if keep(s.eval(rep)) {
                        ranges.push((lo, hi));
                    }
                }
            }
        }
        IntervalSet::from_ranges(ranges)
    }

    /// Applies `f` segment-pair-wise over the merged breakpoints of the two
    /// inputs. `f` receives the active segment of each input; the returned
    /// segment's `start` is fixed up by the caller.
    fn zip_with(
        &self,
        other: &OngoingInt,
        f: impl Fn(&Segment, &Segment) -> Segment,
    ) -> OngoingInt {
        let mut segs = Vec::with_capacity(self.segs.len() + other.segs.len());
        let (mut i, mut j) = (0usize, 0usize);
        let mut start = TimePoint::NEG_INF;
        loop {
            let s = &self.segs[i];
            let t = &other.segs[j];
            let mut seg = f(s, t);
            seg.start = start;
            segs.push(seg);
            // Advance to the next merged breakpoint.
            let next_i = self.segs.get(i + 1).map(|s| s.start);
            let next_j = other.segs.get(j + 1).map(|s| s.start);
            match (next_i, next_j) {
                (None, None) => break,
                (Some(a), None) => {
                    start = a;
                    i += 1;
                }
                (None, Some(b)) => {
                    start = b;
                    j += 1;
                }
                (Some(a), Some(b)) => {
                    start = a.min_f(b);
                    if a <= start {
                        i += 1;
                    }
                    if b <= start {
                        j += 1;
                    }
                }
            }
        }
        OngoingInt { segs }
    }

    fn combine_minmax(&self, other: &OngoingInt, want_max: bool) -> OngoingInt {
        // First merge breakpoints, then split each merged segment at the
        // crossing of its two affine functions.
        let mut segs: Vec<Segment> = Vec::new();
        let merged = self.zip_with(other, |_, _| Segment {
            start: TimePoint::NEG_INF,
            coef: 0,
            offset: 0,
        });
        for (k, probe) in merged.segs.iter().enumerate() {
            let seg_start = probe.start;
            let seg_end = merged
                .segs
                .get(k + 1)
                .map_or(TimePoint::POS_INF, |n| n.start);
            let f = self.segment_at(seg_start);
            let g = other.segment_at(seg_start);
            let pick = |better_f: bool| if better_f == want_max { f } else { g };
            if f.coef == g.coef {
                let better_f = f.offset >= g.offset;
                let chosen = pick(better_f);
                segs.push(Segment {
                    start: seg_start,
                    ..*chosen
                });
                continue;
            }
            // f - g = (dc)·rt + dofs; f >= g iff (dc)·rt >= -dofs.
            let dc = i128::from(f.coef) - i128::from(g.coef);
            let dofs = i128::from(f.offset) - i128::from(g.offset);
            // Threshold: smallest rt with f >= g (dc > 0) or largest rt
            // with f >= g (dc < 0).
            if dc > 0 {
                // f >= g iff rt >= ceil(-dofs / dc).
                let thr = (-dofs).div_euclid(dc) + i128::from((-dofs).rem_euclid(dc) != 0);
                let thr = clamp_tick(thr);
                // Below thr: g bigger; from thr on: f bigger-or-equal.
                push_split(&mut segs, seg_start, seg_end, thr, pick(false), pick(true));
            } else {
                // dc < 0: f >= g iff rt <= floor(-dofs / dc)  — division by
                // a negative number; rewrite: (-dc)·rt <= dofs.
                let ndc = -dc;
                let thr = dofs.div_euclid(ndc); // floor
                let thr = clamp_tick(thr + 1); // first rt where g wins
                push_split(&mut segs, seg_start, seg_end, thr, pick(true), pick(false));
            }
        }
        let mut r = OngoingInt { segs };
        r.canonicalize();
        r
    }

    fn segment_at(&self, rt: TimePoint) -> &Segment {
        let idx = match self.segs.binary_search_by(|s| s.start.cmp(&rt)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        &self.segs[idx]
    }

    fn canonicalize(&mut self) {
        debug_assert!(!self.segs.is_empty());
        debug_assert!(self.segs[0].start == TimePoint::NEG_INF);
        let mut out: Vec<Segment> = Vec::with_capacity(self.segs.len());
        for s in self.segs.drain(..) {
            match out.last() {
                Some(last) if last.same_fn(&s) => {}
                Some(last) if last.start == s.start => {
                    *out.last_mut().unwrap() = s;
                }
                _ => out.push(s),
            }
        }
        self.segs = out;
    }
}

#[inline]
fn clamp_tick(v: i128) -> TimePoint {
    TimePoint::new(v.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64)
}

/// Pushes `lo_seg` on `[start, thr)` and `hi_seg` on `[thr, end)` (either
/// side may be empty after clamping).
fn push_split(
    segs: &mut Vec<Segment>,
    start: TimePoint,
    end: TimePoint,
    thr: TimePoint,
    lo_seg: &Segment,
    hi_seg: &Segment,
) {
    if thr > start {
        segs.push(Segment { start, ..*lo_seg });
    }
    let hi_start = thr.max_f(start);
    if hi_start < end {
        segs.push(Segment {
            start: hi_start,
            ..*hi_seg
        });
    }
}

/// Sums the indicator functions of many reference-time sets — the
/// reference-time-resolved `COUNT` aggregate.
pub fn count_over<'a, I>(sets: I) -> OngoingInt
where
    I: IntoIterator<Item = &'a IntervalSet>,
{
    sets.into_iter().fold(OngoingInt::constant(0), |acc, s| {
        acc.add(&OngoingInt::indicator(s))
    })
}

impl fmt::Debug for OngoingInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for OngoingInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "int[")?;
        for (i, s) in self.segs.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            match s.coef {
                0 => write!(f, "{} ↦ {}", s.start, s.offset)?,
                1 if s.offset == 0 => write!(f, "{} ↦ rt", s.start)?,
                c => write!(f, "{} ↦ {c}·rt{:+}", s.start, s.offset)?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::tp;

    fn op(a: i64, b: i64) -> OngoingPoint {
        OngoingPoint::new(tp(a), tp(b)).unwrap()
    }

    #[test]
    fn constant_evaluates_everywhere() {
        let c = OngoingInt::constant(42);
        for rt in [-100i64, 0, 100] {
            assert_eq!(c.bind(tp(rt)), 42);
        }
        assert_eq!(c.piece_count(), 1);
    }

    #[test]
    fn from_point_matches_bind() {
        let pts = [
            op(3, 7),
            OngoingPoint::fixed(tp(5)),
            OngoingPoint::now(),
            OngoingPoint::growing(tp(2)),
            OngoingPoint::limited(tp(4)),
        ];
        for p in pts {
            let f = OngoingInt::from_point(p);
            for rt in -10i64..12 {
                assert_eq!(f.bind(tp(rt)), p.bind(tp(rt)).ticks(), "p={p} rt={rt}");
            }
        }
    }

    #[test]
    fn add_and_sub_are_pointwise() {
        let f = OngoingInt::from_point(op(0, 5));
        let g = OngoingInt::from_point(op(3, 9));
        let sum = f.add(&g);
        let diff = f.sub(&g);
        for rt in -5i64..15 {
            let rt = tp(rt);
            assert_eq!(sum.bind(rt), f.bind(rt) + g.bind(rt));
            assert_eq!(diff.bind(rt), f.bind(rt) - g.bind(rt));
        }
    }

    #[test]
    fn max_min_are_pointwise() {
        let f = OngoingInt::from_point(op(0, 8));
        let g = OngoingInt::constant(4);
        let mx = f.max_with(&g);
        let mn = f.min_with(&g);
        for rt in -5i64..15 {
            let rt = tp(rt);
            assert_eq!(mx.bind(rt), f.bind(rt).max(4), "rt={rt}");
            assert_eq!(mn.bind(rt), f.bind(rt).min(4), "rt={rt}");
        }
    }

    #[test]
    fn max_of_crossing_ramps() {
        // f = rt, g = -rt: max is |rt|, min is -|rt|.
        let f = OngoingInt::from_point(OngoingPoint::now());
        let g = f.neg();
        let mx = f.max_with(&g);
        let mn = f.min_with(&g);
        for rt in -10i64..11 {
            assert_eq!(mx.bind(tp(rt)), rt.abs());
            assert_eq!(mn.bind(tp(rt)), -rt.abs());
        }
    }

    #[test]
    fn duration_of_expanding_interval() {
        // [3, now): duration 0 before rt 3, then rt - 3.
        let i = OngoingInterval::from_until_now(tp(3));
        let d = OngoingInt::duration(i);
        assert_eq!(d.bind(tp(0)), 0);
        assert_eq!(d.bind(tp(3)), 0);
        assert_eq!(d.bind(tp(5)), 2);
        assert_eq!(d.bind(tp(100)), 97);
    }

    #[test]
    fn duration_matches_fixed_semantics_pointwise() {
        let intervals = [
            OngoingInterval::fixed(tp(2), tp(9)),
            OngoingInterval::from_until_now(tp(3)),
            OngoingInterval::from_now_until(tp(6)),
            OngoingInterval::new(op(1, 4), op(5, 8)),
            OngoingInterval::new(op(5, 8), op(1, 4)), // always empty
        ];
        for i in intervals {
            let d = OngoingInt::duration(i);
            for rt in -5i64..15 {
                let rt = tp(rt);
                let (s, e) = i.bind(rt);
                let expect = s.distance_to(e).max(0);
                assert_eq!(d.bind(rt), expect, "i={i} rt={rt}");
            }
        }
    }

    #[test]
    fn indicator_is_membership() {
        let s = IntervalSet::from_ranges([(tp(0), tp(3)), (tp(7), tp(9))]);
        let f = OngoingInt::indicator(&s);
        for rt in -2i64..12 {
            assert_eq!(f.bind(tp(rt)), i64::from(s.contains(tp(rt))));
        }
    }

    #[test]
    fn count_over_sums_indicators() {
        let sets = [
            IntervalSet::range(tp(0), tp(10)),
            IntervalSet::range(tp(5), tp(15)),
            IntervalSet::range(tp(8), tp(9)),
        ];
        let c = count_over(sets.iter());
        for rt in -2i64..18 {
            let expect = sets.iter().filter(|s| s.contains(tp(rt))).count() as i64;
            assert_eq!(c.bind(tp(rt)), expect, "rt={rt}");
        }
        // Peak of 3 at rt = 8.
        assert_eq!(c.bind(tp(8)), 3);
    }

    #[test]
    fn positive_and_zero_sets() {
        let c = count_over(
            [
                IntervalSet::range(tp(0), tp(5)),
                IntervalSet::range(tp(10), tp(12)),
            ]
            .iter(),
        );
        let pos = c.positive_set();
        assert_eq!(
            pos,
            IntervalSet::from_ranges([(tp(0), tp(5)), (tp(10), tp(12))])
        );
        assert_eq!(pos.complement(), c.zero_set());
    }

    #[test]
    fn positive_set_of_ramp() {
        // duration of [3, now) is positive exactly after rt 3.
        let d = OngoingInt::duration(OngoingInterval::from_until_now(tp(3)));
        let pos = d.positive_set();
        assert!(!pos.contains(tp(3)));
        assert!(pos.contains(tp(4)));
        assert!(pos.contains(tp(1000)));
        assert!(!pos.contains(tp(-5)));
    }

    #[test]
    fn canonical_form_merges_equal_pieces() {
        let f = OngoingInt::constant(1).add(&OngoingInt::constant(2));
        assert_eq!(f.piece_count(), 1);
        assert_eq!(f.bind(tp(0)), 3);
    }

    #[test]
    fn display_is_readable() {
        let d = OngoingInt::duration(OngoingInterval::from_until_now(tp(3)));
        let s = d.to_string();
        assert!(s.starts_with("int["), "{s}");
    }

    #[test]
    fn pieces_round_trip() {
        let d = OngoingInt::duration(OngoingInterval::from_until_now(tp(3)));
        let back = OngoingInt::from_pieces(d.pieces()).unwrap();
        assert_eq!(back, d);
        // Bad inputs rejected.
        assert!(OngoingInt::from_pieces([(tp(0), 0, 1)]).is_none());
        assert!(OngoingInt::from_pieces([
            (TimePoint::NEG_INF, 0, 1),
            (tp(5), 1, 0),
            (tp(5), 0, 2),
        ])
        .is_none());
    }

    #[test]
    fn eq_and_lt_sets_are_pointwise() {
        let f = OngoingInt::from_point(op(0, 8));
        let g = OngoingInt::constant(4);
        let eq = f.eq_set(&g);
        let lt = f.lt_set(&g);
        for rt in -5i64..15 {
            let rt = tp(rt);
            assert_eq!(eq.contains(rt), f.bind(rt) == g.bind(rt), "eq rt={rt}");
            assert_eq!(lt.contains(rt), f.bind(rt) < g.bind(rt), "lt rt={rt}");
        }
    }

    #[test]
    fn is_constant_detection() {
        assert!(OngoingInt::constant(5).is_constant());
        assert!(!OngoingInt::from_point(OngoingPoint::now()).is_constant());
        assert!(!OngoingInt::indicator(&IntervalSet::range(tp(0), tp(5))).is_constant());
    }
}
