//! Canonical sets of fixed time intervals.
//!
//! The paper represents both a tuple's reference time `RT` and the `St` set
//! of an ongoing boolean as "a list of fixed time intervals" that are
//! *maximal, non-overlapping, and sorted in ascending order* (Sec. VIII).
//! [`IntervalSet`] is that representation. The canonical form makes equality
//! structural and lets the logical connectives run as single-pass sweep-line
//! algorithms (Algorithm 1 of the paper, implemented in
//! [`IntervalSet::intersect`] / [`IntervalSet::union`]).

use crate::time::TimePoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A non-empty, closed-open fixed time interval `[ts, te)` with `ts < te`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimeRange {
    ts: TimePoint,
    te: TimePoint,
}

impl TimeRange {
    /// Creates `[ts, te)`; returns `None` when the interval would be empty.
    #[inline]
    pub fn new(ts: TimePoint, te: TimePoint) -> Option<Self> {
        if ts < te {
            Some(TimeRange { ts, te })
        } else {
            None
        }
    }

    /// The inclusive start point.
    #[inline]
    pub fn ts(self) -> TimePoint {
        self.ts
    }

    /// The exclusive end point.
    #[inline]
    pub fn te(self) -> TimePoint {
        self.te
    }

    /// Does `[ts, te)` contain `t`?
    #[inline]
    pub fn contains(self, t: TimePoint) -> bool {
        self.ts <= t && t < self.te
    }

    /// Number of time points in the range; saturates at `i64::MAX` when a
    /// domain limit is involved.
    pub fn duration(self) -> i64 {
        self.ts.distance_to(self.te)
    }
}

impl fmt::Debug for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.ts, self.te)
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.ts, self.te)
    }
}

/// A canonical set of fixed time points, stored as maximal, non-overlapping
/// time ranges in ascending order.
///
/// This is the value type of the reference-time attribute `RT` and the
/// carrier of ongoing booleans ([`crate::OngoingBool`]). The empty set is
/// `{}` (a deleted tuple / `false`); the full set is `{(-∞, ∞)}` (a base
/// tuple's trivial reference time / `true`).
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct IntervalSet {
    ranges: Vec<TimeRange>,
}

impl IntervalSet {
    /// The empty set `{}`.
    #[inline]
    pub fn empty() -> Self {
        IntervalSet { ranges: Vec::new() }
    }

    /// The full set `{(-∞, ∞)}` containing every reference time.
    #[inline]
    pub fn full() -> Self {
        IntervalSet {
            ranges: vec![TimeRange {
                ts: TimePoint::NEG_INF,
                te: TimePoint::POS_INF,
            }],
        }
    }

    /// The set containing the single interval `[ts, te)`; empty if `ts >= te`.
    pub fn range(ts: TimePoint, te: TimePoint) -> Self {
        match TimeRange::new(ts, te) {
            Some(r) => IntervalSet { ranges: vec![r] },
            None => IntervalSet::empty(),
        }
    }

    /// The singleton set `{t}` = `[t, succ(t))`.
    pub fn point(t: TimePoint) -> Self {
        IntervalSet::range(t, t.succ())
    }

    /// Builds a canonical set from arbitrary `(ts, te)` pairs: empty pairs
    /// are dropped, the rest are sorted and overlapping or adjacent ranges
    /// are merged so the result is maximal.
    pub fn from_ranges<I>(ranges: I) -> Self
    where
        I: IntoIterator<Item = (TimePoint, TimePoint)>,
    {
        let mut rs: Vec<TimeRange> = ranges
            .into_iter()
            .filter_map(|(ts, te)| TimeRange::new(ts, te))
            .collect();
        rs.sort_unstable();
        let mut out: Vec<TimeRange> = Vec::with_capacity(rs.len());
        for r in rs {
            match out.last_mut() {
                // Merge overlap and adjacency: [1,3) and [3,5) are one
                // maximal range [1,5).
                Some(last) if r.ts <= last.te => {
                    if r.te > last.te {
                        last.te = r.te;
                    }
                }
                _ => out.push(r),
            }
        }
        IntervalSet { ranges: out }
    }

    /// The canonical ranges, ascending, non-overlapping, maximal.
    #[inline]
    pub fn ranges(&self) -> &[TimeRange] {
        &self.ranges
    }

    /// Number of ranges needed to represent the set — the "cardinality of
    /// RT" that Table IV and Table V of the paper analyze.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.ranges.len()
    }

    /// Is this the empty set?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Is this the full set `{(-∞, ∞)}`?
    #[inline]
    pub fn is_full(&self) -> bool {
        self.ranges.len() == 1
            && self.ranges[0].ts == TimePoint::NEG_INF
            && self.ranges[0].te == TimePoint::POS_INF
    }

    /// Does the set contain reference time `rt`? Binary search over the
    /// canonical ranges.
    pub fn contains(&self, rt: TimePoint) -> bool {
        match self.ranges.binary_search_by(|r| r.ts.cmp(&rt)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.ranges[i - 1].contains(rt),
        }
    }

    /// The earliest contained time point, if any.
    pub fn first_point(&self) -> Option<TimePoint> {
        self.ranges.first().map(|r| r.ts)
    }

    /// The exclusive upper bound of the latest range, if any.
    pub fn last_bound(&self) -> Option<TimePoint> {
        self.ranges.last().map(|r| r.te)
    }

    /// Total number of contained time points; saturates at `i64::MAX` when a
    /// domain limit is involved.
    pub fn total_duration(&self) -> i64 {
        let mut acc: i64 = 0;
        for r in &self.ranges {
            acc = acc.saturating_add(r.duration());
        }
        acc
    }

    /// Set intersection — the logical conjunction of ongoing booleans
    /// (Algorithm 1 of the paper).
    ///
    /// A single sweep over both canonical inputs: no sorting is needed, each
    /// input range is visited at most once, and the output is canonical by
    /// construction.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let (b1, b2) = (&self.ranges, &other.ranges);
        let mut out = Vec::with_capacity(b1.len().min(b2.len()));
        let (mut i1, mut i2) = (0usize, 0usize);
        while i1 < b1.len() && i2 < b2.len() {
            let (r1, r2) = (b1[i1], b2[i2]);
            if r1.te <= r2.ts {
                i1 += 1;
            } else if r2.te <= r1.ts {
                i2 += 1;
            } else {
                // Append the intersection of r1 and r2.
                let ts = r1.ts.max_f(r2.ts);
                let te = r1.te.min_f(r2.te);
                out.push(TimeRange { ts, te });
                if r1.te < r2.te {
                    i1 += 1;
                } else {
                    i2 += 1;
                }
            }
        }
        // Intersections of canonical inputs cannot touch, so `out` is
        // already maximal, disjoint and ascending.
        IntervalSet { ranges: out }
    }

    /// In-place set intersection: `*self = self ∩ other`, reusing the
    /// receiver's `Vec` allocation. This is the executor hot-loop variant of
    /// [`intersect`](Self::intersect): restricting a reference time per
    /// tuple (pair) does not have to allocate a fresh range vector.
    ///
    /// The sweep writes results back into the receiver. Each input range is
    /// only read once (it is copied into a register when the read cursor
    /// reaches it), so in-place writes behind the read cursor are safe; in
    /// the rare case where the output outgrows the consumed prefix (one
    /// coarse receiver range split by many `other` ranges), the tail spills
    /// into a temporary and is appended afterwards.
    pub fn intersect_assign(&mut self, other: &IntervalSet) {
        if self.ranges.is_empty() || other.is_full() {
            return;
        }
        if other.ranges.is_empty() {
            self.ranges.clear();
            return;
        }
        let n = self.ranges.len();
        let b2 = &other.ranges;
        let (mut i1, mut i2) = (0usize, 0usize);
        let mut w = 0usize;
        let mut spill: Vec<TimeRange> = Vec::new();
        let mut cur1 = self.ranges[0];
        while i1 < n && i2 < b2.len() {
            let r2 = b2[i2];
            if cur1.te <= r2.ts {
                i1 += 1;
                if i1 < n {
                    cur1 = self.ranges[i1];
                }
            } else if r2.te <= cur1.ts {
                i2 += 1;
            } else {
                let piece = TimeRange {
                    ts: cur1.ts.max_f(r2.ts),
                    te: cur1.te.min_f(r2.te),
                };
                // Keep output order: once a piece spills, all later pieces
                // spill too.
                if spill.is_empty() && w <= i1 {
                    self.ranges[w] = piece;
                    w += 1;
                } else {
                    spill.push(piece);
                }
                if cur1.te < r2.te {
                    i1 += 1;
                    if i1 < n {
                        cur1 = self.ranges[i1];
                    }
                } else {
                    i2 += 1;
                }
            }
        }
        self.ranges.truncate(w);
        self.ranges.extend(spill);
    }

    /// Set union — the logical disjunction of ongoing booleans. Sweep-line
    /// merge of the two canonical inputs; each range is visited once.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let (b1, b2) = (&self.ranges, &other.ranges);
        let mut out: Vec<TimeRange> = Vec::with_capacity(b1.len() + b2.len());
        let (mut i1, mut i2) = (0usize, 0usize);
        let push = |out: &mut Vec<TimeRange>, r: TimeRange| match out.last_mut() {
            Some(last) if r.ts <= last.te => {
                if r.te > last.te {
                    last.te = r.te;
                }
            }
            _ => out.push(r),
        };
        while i1 < b1.len() || i2 < b2.len() {
            let take_first = match (b1.get(i1), b2.get(i2)) {
                (Some(r1), Some(r2)) => r1.ts <= r2.ts,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            if take_first {
                push(&mut out, b1[i1]);
                i1 += 1;
            } else {
                push(&mut out, b2[i2]);
                i2 += 1;
            }
        }
        IntervalSet { ranges: out }
    }

    /// In-place set union: `*self = self ∪ other`, reusing the receiver's
    /// `Vec` allocation (amortized: the vector only grows, it is never
    /// reallocated from scratch). The hot-loop variant of
    /// [`union`](Self::union) for accumulator patterns such as folding the
    /// reference span of a relation.
    pub fn union_assign(&mut self, other: &IntervalSet) {
        if other.ranges.is_empty() {
            return;
        }
        if self.ranges.is_empty() {
            // `clone_from` on the inner Vec reuses the receiver's buffer.
            self.ranges.clone_from(&other.ranges);
            return;
        }
        // Fast path for the common accumulator case: `other` lies entirely
        // after the receiver — append and merge the boundary.
        let last = *self.ranges.last().expect("non-empty");
        if other.ranges[0].ts >= last.ts {
            let boundary = self.ranges.len() - 1;
            self.ranges.extend_from_slice(&other.ranges);
            coalesce_in_place(&mut self.ranges, boundary);
            return;
        }
        self.ranges.extend_from_slice(&other.ranges);
        self.ranges.sort_unstable();
        coalesce_in_place(&mut self.ranges, 0);
    }

    /// Set complement — the logical negation `¬b[St, Sf] = b[Sf, St]`.
    pub fn complement(&self) -> IntervalSet {
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        let mut cursor = TimePoint::NEG_INF;
        for r in &self.ranges {
            if cursor < r.ts {
                out.push(TimeRange {
                    ts: cursor,
                    te: r.ts,
                });
            }
            cursor = r.te;
        }
        if cursor < TimePoint::POS_INF {
            out.push(TimeRange {
                ts: cursor,
                te: TimePoint::POS_INF,
            });
        }
        IntervalSet { ranges: out }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &IntervalSet) -> IntervalSet {
        self.intersect(&other.complement())
    }

    /// Checks the representation invariant: ranges non-empty, ascending,
    /// disjoint and maximal (no two ranges touch).
    pub fn is_canonical(&self) -> bool {
        self.ranges.iter().all(|r| r.ts < r.te) && self.ranges.windows(2).all(|w| w[0].te < w[1].ts)
    }

    /// Iterates over the contained time points inside `[lo, hi)` — used by
    /// differential tests that compare instantiations at every reference
    /// time of a window.
    pub fn points_in(&self, lo: TimePoint, hi: TimePoint) -> impl Iterator<Item = TimePoint> + '_ {
        self.ranges.iter().flat_map(move |r| {
            let s = r.ts.max_f(lo);
            let e = r.te.min_f(hi);
            (s.ticks()..e.ticks().max(s.ticks())).map(TimePoint::new)
        })
    }
}

/// Merges overlapping or adjacent ranges of a ts-sorted suffix `v[from..]`
/// in place (write index never passes the read index). The prefix
/// `v[..from]` must already be canonical and end before `v[from]` starts.
fn coalesce_in_place(v: &mut Vec<TimeRange>, from: usize) {
    if v.len().saturating_sub(from) < 2 {
        return;
    }
    let mut w = from;
    for i in from + 1..v.len() {
        let r = v[i];
        if r.ts <= v[w].te {
            if r.te > v[w].te {
                v[w].te = r.te;
            }
        } else {
            w += 1;
            v[w] = r;
        }
    }
    v.truncate(w + 1);
}

impl FromIterator<(TimePoint, TimePoint)> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = (TimePoint, TimePoint)>>(iter: I) -> Self {
        IntervalSet::from_ranges(iter)
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::tp;

    type RangeCases = [(&'static [(i64, i64)], &'static [(i64, i64)])];

    fn set(ranges: &[(i64, i64)]) -> IntervalSet {
        IntervalSet::from_ranges(ranges.iter().map(|&(a, b)| (tp(a), tp(b))))
    }

    #[test]
    fn construction_drops_empty_and_merges_adjacent() {
        let s = set(&[(5, 5), (3, 1), (0, 2), (2, 4), (10, 12)]);
        assert_eq!(s, set(&[(0, 4), (10, 12)]));
        assert!(s.is_canonical());
        assert_eq!(s.cardinality(), 2);
    }

    #[test]
    fn construction_merges_overlap() {
        let s = set(&[(0, 5), (3, 8), (8, 9)]);
        assert_eq!(s, set(&[(0, 9)]));
        assert_eq!(s.cardinality(), 1);
    }

    #[test]
    fn empty_and_full() {
        assert!(IntervalSet::empty().is_empty());
        assert!(IntervalSet::full().is_full());
        assert!(!IntervalSet::full().is_empty());
        assert!(IntervalSet::full().contains(tp(123)));
        assert!(!IntervalSet::empty().contains(tp(123)));
    }

    #[test]
    fn contains_uses_half_open_semantics() {
        let s = set(&[(0, 3), (10, 20)]);
        assert!(s.contains(tp(0)));
        assert!(s.contains(tp(2)));
        assert!(!s.contains(tp(3)));
        assert!(!s.contains(tp(9)));
        assert!(s.contains(tp(10)));
        assert!(s.contains(tp(19)));
        assert!(!s.contains(tp(20)));
    }

    #[test]
    fn intersect_matches_paper_algorithm_example() {
        // Example 3 of the paper:
        // {(-inf, 08/16)} ∧ {[01/26, inf)} = {[01/26, 08/16)}
        let d0816 = crate::date::md(8, 16);
        let d0126 = crate::date::md(1, 26);
        let a = IntervalSet::range(TimePoint::NEG_INF, d0816);
        let b = IntervalSet::range(d0126, TimePoint::POS_INF);
        assert_eq!(a.intersect(&b), IntervalSet::range(d0126, d0816));
    }

    #[test]
    fn intersect_skips_disjoint_ranges() {
        let a = set(&[(0, 5), (10, 15), (20, 25)]);
        let b = set(&[(5, 10), (15, 20)]);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn intersect_partial_overlaps() {
        let a = set(&[(0, 10), (20, 30)]);
        let b = set(&[(5, 25)]);
        assert_eq!(a.intersect(&b), set(&[(5, 10), (20, 25)]));
    }

    #[test]
    fn union_merges_touching_ranges() {
        let a = set(&[(0, 5), (10, 15)]);
        let b = set(&[(5, 10)]);
        assert_eq!(a.union(&b), set(&[(0, 15)]));
    }

    #[test]
    fn union_keeps_disjoint_ranges() {
        let a = set(&[(0, 2)]);
        let b = set(&[(4, 6)]);
        assert_eq!(a.union(&b), set(&[(0, 2), (4, 6)]));
    }

    #[test]
    fn complement_roundtrips() {
        let s = set(&[(0, 5), (10, 15)]);
        let c = s.complement();
        assert!(c.contains(tp(-1)));
        assert!(!c.contains(tp(0)));
        assert!(c.contains(tp(5)));
        assert!(c.contains(tp(9)));
        assert!(!c.contains(tp(12)));
        assert!(c.contains(tp(15)));
        assert_eq!(c.complement(), s);
        assert_eq!(IntervalSet::full().complement(), IntervalSet::empty());
        assert_eq!(IntervalSet::empty().complement(), IntervalSet::full());
    }

    #[test]
    fn difference_removes_overlap() {
        let a = set(&[(0, 10)]);
        let b = set(&[(3, 5)]);
        assert_eq!(a.difference(&b), set(&[(0, 3), (5, 10)]));
    }

    #[test]
    fn de_morgan_holds() {
        let a = set(&[(0, 6), (12, 20)]);
        let b = set(&[(4, 15)]);
        assert_eq!(
            a.intersect(&b).complement(),
            a.complement().union(&b.complement())
        );
        assert_eq!(
            a.union(&b).complement(),
            a.complement().intersect(&b.complement())
        );
    }

    #[test]
    fn intersect_assign_matches_intersect() {
        // Includes the spill case: one coarse receiver range split by many
        // `other` fragments (output outgrows the consumed prefix).
        let cases: &RangeCases = &[
            (&[(0, 100)], &[(1, 2), (4, 5), (7, 8), (10, 11), (20, 30)]),
            (&[(0, 10), (20, 30)], &[(5, 25)]),
            (&[(0, 5), (10, 15), (20, 25)], &[(5, 10), (15, 20)]),
            (&[(0, 5)], &[]),
            (&[], &[(0, 5)]),
            (&[(0, 3), (6, 9), (12, 40)], &[(2, 7), (8, 13), (30, 50)]),
        ];
        for (a, b) in cases {
            let (a, b) = (set(a), set(b));
            let mut got = a.clone();
            got.intersect_assign(&b);
            assert_eq!(got, a.intersect(&b), "{a} ∩ {b}");
            assert!(got.is_canonical());
        }
        let mut full = IntervalSet::full();
        full.intersect_assign(&set(&[(1, 2), (3, 4)]));
        assert_eq!(full, set(&[(1, 2), (3, 4)]));
    }

    #[test]
    fn union_assign_matches_union() {
        let cases: &RangeCases = &[
            (&[(0, 5), (10, 15)], &[(5, 10)]),
            (&[(0, 2)], &[(4, 6)]),
            (&[(4, 6)], &[(0, 2)]),          // other strictly before self
            (&[(0, 5)], &[(3, 8), (9, 12)]), // accumulator fast path
            (&[(0, 5)], &[]),
            (&[], &[(0, 5)]),
            (&[(0, 3), (10, 12)], &[(2, 11)]),
        ];
        for (a, b) in cases {
            let (a, b) = (set(a), set(b));
            let mut got = a.clone();
            got.union_assign(&b);
            assert_eq!(got, a.union(&b), "{a} ∪ {b}");
            assert!(got.is_canonical());
        }
    }

    #[test]
    fn assign_ops_differential_sweep() {
        // Deterministic pseudo-random differential test across many shapes.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let mk = |next: &mut dyn FnMut() -> u64| {
                let n = (next() % 5) as usize;
                IntervalSet::from_ranges((0..n).map(|_| {
                    let s = (next() % 40) as i64 - 20;
                    (tp(s), tp(s + (next() % 9) as i64))
                }))
            };
            let a = mk(&mut next);
            let b = mk(&mut next);
            let mut ia = a.clone();
            ia.intersect_assign(&b);
            assert_eq!(ia, a.intersect(&b), "{a} ∩ {b}");
            let mut ua = a.clone();
            ua.union_assign(&b);
            assert_eq!(ua, a.union(&b), "{a} ∪ {b}");
        }
    }

    #[test]
    fn total_duration_counts_points() {
        assert_eq!(set(&[(0, 5), (10, 12)]).total_duration(), 7);
        assert_eq!(IntervalSet::full().total_duration(), i64::MAX);
        assert_eq!(IntervalSet::empty().total_duration(), 0);
    }

    #[test]
    fn points_in_enumerates_window() {
        let s = set(&[(0, 3), (8, 10)]);
        let pts: Vec<i64> = s.points_in(tp(1), tp(9)).map(|p| p.ticks()).collect();
        assert_eq!(pts, vec![1, 2, 8]);
    }

    #[test]
    fn point_constructor_is_singleton() {
        let s = IntervalSet::point(tp(7));
        assert!(s.contains(tp(7)));
        assert!(!s.contains(tp(6)));
        assert!(!s.contains(tp(8)));
        assert_eq!(s.total_duration(), 1);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(IntervalSet::full().to_string(), "{[-inf, +inf)}");
        assert_eq!(set(&[(1, 3), (5, 9)]).to_string(), "{[1, 3), [5, 9)}");
        assert_eq!(IntervalSet::empty().to_string(), "{}");
    }
}
