//! The six core operations on ongoing data types (Definition 4, Theorem 1).
//!
//! `<`, `min`, `max` on ongoing time points and `∧`, `∨`, `¬` on ongoing
//! booleans. Every operation satisfies the paper's correctness criterion:
//! at each reference time its result equals the corresponding fixed
//! operation applied to the instantiated arguments,
//! `∀rt: ∥f(x, y)∥rt = fF(∥x∥rt, ∥y∥rt)`.
//!
//! The logical connectives live on [`OngoingBool`]; this module provides the
//! point operations plus the comparison predicates derived from them
//! (Table II): `≤`, `=`, `≠`, and the flipped `>`, `≥`.
//!
//! The `<` implementation follows the decision tree of Fig. 6, reaching the
//! correct case of Theorem 1's equivalence with **at most three fixed-value
//! comparisons**. A naive implementation that scans the five orderings in
//! sequence is kept as [`lt_naive`] for the ablation benchmark.

use crate::boolean::OngoingBool;
use crate::point::OngoingPoint;
use crate::set::IntervalSet;
use crate::time::TimePoint;

/// The less-than predicate `a+b < c+d` (Theorem 1), via the Fig. 6 decision
/// tree.
///
/// Case map (with `a ≤ b` and `c ≤ d` guaranteed by `Ω`):
///
/// | ordering              | result `St`               |
/// |-----------------------|---------------------------|
/// | `a ≤ b < c ≤ d`       | `{(-∞, ∞)}` (always true) |
/// | `a < c ≤ d ≤ b`       | `{(-∞, c)}`               |
/// | `c ≤ a ≤ b < d`       | `{[b+1, ∞)}`              |
/// | `a < c ≤ b < d`       | `{(-∞, c), [b+1, ∞)}`     |
/// | otherwise             | `∅` (always false)        |
pub fn lt(p: OngoingPoint, q: OngoingPoint) -> OngoingBool {
    let (a, b) = (p.a(), p.b());
    let (c, d) = (q.a(), q.b());
    if b < d {
        if b < c {
            // a <= b < c <= d: true at every reference time.
            OngoingBool::always_true()
        } else if a < c {
            // a < c <= b < d: true outside [c, b+1).
            OngoingBool::from_set(IntervalSet::from_ranges([
                (TimePoint::NEG_INF, c),
                (b.succ(), TimePoint::POS_INF),
            ]))
        } else {
            // c <= a <= b < d: true from b+1 on.
            OngoingBool::from_set(IntervalSet::range(b.succ(), TimePoint::POS_INF))
        }
    } else if a < c {
        // a < c <= d <= b: true before c.
        OngoingBool::from_set(IntervalSet::range(TimePoint::NEG_INF, c))
    } else {
        // No reference time can make the instantiations strictly ordered.
        OngoingBool::always_false()
    }
}

/// Number of fixed-value comparisons the decision tree performs for this
/// argument pair — at most three (Fig. 6); used by tests and the ablation
/// bench.
pub fn lt_comparisons(p: OngoingPoint, q: OngoingPoint) -> u32 {
    let (a, b) = (p.a(), p.b());
    let (c, d) = (q.a(), q.b());
    if b < d {
        if b < c {
            2
        } else {
            let _ = a < c;
            3
        }
    } else {
        let _ = a < c;
        2
    }
}

/// Reference implementation of `<` that tests the five orderings of
/// Theorem 1 in sequence (up to eight fixed-value comparisons). Used as the
/// baseline in the `bench_lt` ablation and in differential tests.
pub fn lt_naive(p: OngoingPoint, q: OngoingPoint) -> OngoingBool {
    let (a, b) = (p.a(), p.b());
    let (c, d) = (q.a(), q.b());
    // Case 1: a <= b < c <= d.
    if b < c {
        return OngoingBool::always_true();
    }
    // Case 2: a < c <= d <= b.
    if a < c && d <= b {
        return OngoingBool::from_set(IntervalSet::range(TimePoint::NEG_INF, c));
    }
    // Case 3: c <= a <= b < d.
    if c <= a && b < d {
        return OngoingBool::from_set(IntervalSet::range(b.succ(), TimePoint::POS_INF));
    }
    // Case 4: a < c <= b < d.
    if a < c && c <= b && b < d {
        return OngoingBool::from_set(IntervalSet::from_ranges([
            (TimePoint::NEG_INF, c),
            (b.succ(), TimePoint::POS_INF),
        ]));
    }
    // Case 5: otherwise.
    OngoingBool::always_false()
}

/// The minimum function `min(a+b, c+d) ≡ minF(a,c)+minF(b,d)` (Theorem 1).
/// `Ω` is closed under `min` — the result is again a valid ongoing point.
#[inline]
pub fn min(p: OngoingPoint, q: OngoingPoint) -> OngoingPoint {
    // minF(a,c) <= minF(b,d) holds whenever a <= b and c <= d, so the
    // constructor invariant cannot fail (proof of Theorem 1).
    OngoingPoint::new(p.a().min_f(q.a()), p.b().min_f(q.b())).expect("Ω is closed under min")
}

/// The maximum function `max(a+b, c+d) ≡ maxF(a,c)+maxF(b,d)` (Theorem 1).
#[inline]
pub fn max(p: OngoingPoint, q: OngoingPoint) -> OngoingPoint {
    OngoingPoint::new(p.a().max_f(q.a()), p.b().max_f(q.b())).expect("Ω is closed under max")
}

/// `t1 ≤ t2 ≡ ¬(t2 < t1)` (Table II).
#[inline]
pub fn le(p: OngoingPoint, q: OngoingPoint) -> OngoingBool {
    lt(q, p).not()
}

/// `t1 = t2 ≡ t1 ≤ t2 ∧ t2 ≤ t1` (Table II).
#[inline]
pub fn eq(p: OngoingPoint, q: OngoingPoint) -> OngoingBool {
    le(p, q).and(&le(q, p))
}

/// `t1 ≠ t2 ≡ (t1 < t2) ∨ (t2 < t1)` (Table II).
#[inline]
pub fn ne(p: OngoingPoint, q: OngoingPoint) -> OngoingBool {
    lt(p, q).or(&lt(q, p))
}

/// `t1 > t2 ≡ t2 < t1`.
#[inline]
pub fn gt(p: OngoingPoint, q: OngoingPoint) -> OngoingBool {
    lt(q, p)
}

/// `t1 ≥ t2 ≡ t2 ≤ t1`.
#[inline]
pub fn ge(p: OngoingPoint, q: OngoingPoint) -> OngoingBool {
    le(q, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::md;
    use crate::time::tp;

    /// Exhaustive differential check of an ongoing comparison against its
    /// fixed counterpart over a window of reference times.
    fn check_pointwise(
        f: impl Fn(OngoingPoint, OngoingPoint) -> OngoingBool,
        g: impl Fn(TimePoint, TimePoint) -> bool,
    ) {
        let lo = -4i64;
        let hi = 5i64;
        let mut points = Vec::new();
        for a in lo..=hi {
            for b in a..=hi {
                points.push(OngoingPoint::new(tp(a), tp(b)).unwrap());
            }
        }
        // Include the unbounded shapes.
        points.push(OngoingPoint::now());
        points.push(OngoingPoint::growing(tp(0)));
        points.push(OngoingPoint::limited(tp(0)));
        for &p in &points {
            for &q in &points {
                let ob = f(p, q);
                for rt in (lo - 2)..=(hi + 2) {
                    let rt = tp(rt);
                    assert_eq!(
                        ob.bind(rt),
                        g(p.bind(rt), q.bind(rt)),
                        "p={p} q={q} rt={rt} result={ob}"
                    );
                }
            }
        }
    }

    #[test]
    fn lt_is_pointwise_correct() {
        check_pointwise(lt, |x, y| x < y);
    }

    #[test]
    fn lt_naive_is_pointwise_correct() {
        check_pointwise(lt_naive, |x, y| x < y);
    }

    #[test]
    fn le_eq_ne_gt_ge_are_pointwise_correct() {
        check_pointwise(le, |x, y| x <= y);
        check_pointwise(eq, |x, y| x == y);
        check_pointwise(ne, |x, y| x != y);
        check_pointwise(gt, |x, y| x > y);
        check_pointwise(ge, |x, y| x >= y);
    }

    #[test]
    fn lt_tree_agrees_with_naive() {
        for a in -3i64..4 {
            for b in a..4 {
                for c in -3i64..4 {
                    for d in c..4 {
                        let p = OngoingPoint::new(tp(a), tp(b)).unwrap();
                        let q = OngoingPoint::new(tp(c), tp(d)).unwrap();
                        assert_eq!(lt(p, q), lt_naive(p, q), "{p} < {q}");
                    }
                }
            }
        }
    }

    #[test]
    fn lt_at_most_three_comparisons() {
        for a in -3i64..4 {
            for b in a..4 {
                for c in -3i64..4 {
                    for d in c..4 {
                        let p = OngoingPoint::new(tp(a), tp(b)).unwrap();
                        let q = OngoingPoint::new(tp(c), tp(d)).unwrap();
                        assert!(lt_comparisons(p, q) <= 3);
                    }
                }
            }
        }
    }

    #[test]
    fn min_closure_example_1() {
        // Example 1: min(10/17, now) = +10/17.
        let r = min(OngoingPoint::fixed(md(10, 17)), OngoingPoint::now());
        assert_eq!(r, OngoingPoint::limited(md(10, 17)));
        // Fig. 5: at rt 10/15 it instantiates to 10/15, at rt 10/19 to 10/17.
        assert_eq!(r.bind(md(10, 15)), md(10, 15));
        assert_eq!(r.bind(md(10, 19)), md(10, 17));
    }

    #[test]
    fn min_max_are_pointwise_correct() {
        let vals: Vec<OngoingPoint> = {
            let mut v = Vec::new();
            for a in -3i64..4 {
                for b in a..4 {
                    v.push(OngoingPoint::new(tp(a), tp(b)).unwrap());
                }
            }
            v.push(OngoingPoint::now());
            v.push(OngoingPoint::growing(tp(1)));
            v.push(OngoingPoint::limited(tp(-1)));
            v
        };
        for &p in &vals {
            for &q in &vals {
                let mn = min(p, q);
                let mx = max(p, q);
                for rt in -6i64..7 {
                    let rt = tp(rt);
                    assert_eq!(mn.bind(rt), p.bind(rt).min_f(q.bind(rt)), "min {p} {q}");
                    assert_eq!(mx.bind(rt), p.bind(rt).max_f(q.bind(rt)), "max {p} {q}");
                }
            }
        }
    }

    #[test]
    fn closure_of_omega_under_min_max() {
        // Table I: Ω is closed; applying min/max to any two ongoing points
        // yields an ongoing point (the constructor invariant holds). Torp's
        // Tf = {min(a, now)} ∪ {max(a, now)} ∪ T is not: min(max(a, now),
        // b) with a < b is a+b, which is not in Tf.
        let a = OngoingPoint::growing(tp(3)); // max(3, now) ∈ Tf
        let b = OngoingPoint::fixed(tp(7));
        let r = min(a, b);
        assert_eq!(r, OngoingPoint::new(tp(3), tp(7)).unwrap());
        // r is a general ongoing point — representable in Ω but not in Tf.
        assert_eq!(r.kind(), crate::point::PointKind::General);
    }

    #[test]
    fn table_ii_le_example() {
        // now <= 10/17 = b[{(-∞, 10/18)}, {[10/18, ∞)}]
        let b = le(OngoingPoint::now(), OngoingPoint::fixed(md(10, 17)));
        assert_eq!(
            b.true_set(),
            &IntervalSet::range(TimePoint::NEG_INF, md(10, 18))
        );
    }

    #[test]
    fn table_ii_eq_example() {
        // (10/17 = now) = b[{[10/17, 10/18)}, ...]
        let b = eq(OngoingPoint::fixed(md(10, 17)), OngoingPoint::now());
        assert_eq!(b.true_set(), &IntervalSet::range(md(10, 17), md(10, 18)));
    }

    #[test]
    fn table_ii_ne_example() {
        // 10/17 != now = b[{(-∞, 10/17), [10/18, ∞)}, ...]
        let b = ne(OngoingPoint::fixed(md(10, 17)), OngoingPoint::now());
        assert_eq!(
            b.true_set(),
            &IntervalSet::from_ranges([
                (TimePoint::NEG_INF, md(10, 17)),
                (md(10, 18), TimePoint::POS_INF),
            ])
        );
    }

    #[test]
    fn lt_infinite_endpoint_saturation() {
        // b = +∞ in case 3/4 territory: [b+1, ∞) must be empty, not wrap.
        let p = OngoingPoint::growing(tp(0)); // 0+∞
        let q = OngoingPoint::now(); // -∞+∞
                                     // b = d = +∞ -> not (b < d) -> a < c? 0 < -∞ is false -> always false.
        assert!(lt(p, q).is_always_false());
        // now < 0+: a=-∞<0=c, d=+∞<=b=+∞ -> case 2: true before 0.
        let b = lt(q, p);
        assert_eq!(b.true_set(), &IntervalSet::range(TimePoint::NEG_INF, tp(0)));
    }
}
