//! The fixed time domain `T` (Sec. IV of the paper).
//!
//! `T` is a linearly ordered, discrete time domain with `-∞` as the lower
//! limit and `∞` as the upper limit. A [`TimePoint`] is an element of `T`,
//! represented as a signed 64-bit tick count. The tick granularity is chosen
//! by the application: the paper's PostgreSQL prototype supports dates
//! (granularity of days) and timestamps (granularity of microseconds); the
//! [`crate::date`] module provides conversions for both.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed time point of the discrete time domain `T`.
///
/// The two domain limits `-∞` and `∞` are first-class values (PostgreSQL
/// likewise provides `-infinity`/`infinity` for dates and timestamps, which
/// the paper's implementation relies on to represent `now = -∞+∞`).
///
/// Ordering is the numeric tick ordering with `-∞` below and `∞` above every
/// finite point.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimePoint(i64);

impl TimePoint {
    /// The lower limit `-∞` of the time domain.
    pub const NEG_INF: TimePoint = TimePoint(i64::MIN);
    /// The upper limit `∞` of the time domain.
    pub const POS_INF: TimePoint = TimePoint(i64::MAX);
    /// The smallest finite time point.
    pub const MIN_FINITE: TimePoint = TimePoint(i64::MIN + 1);
    /// The largest finite time point.
    pub const MAX_FINITE: TimePoint = TimePoint(i64::MAX - 1);

    /// Creates a time point from a raw tick count.
    ///
    /// `i64::MIN` and `i64::MAX` map onto `-∞` and `∞` respectively.
    #[inline]
    pub const fn new(ticks: i64) -> Self {
        TimePoint(ticks)
    }

    /// The raw tick count.
    #[inline]
    pub const fn ticks(self) -> i64 {
        self.0
    }

    /// Is this the lower limit `-∞`?
    #[inline]
    pub const fn is_neg_inf(self) -> bool {
        self.0 == i64::MIN
    }

    /// Is this the upper limit `∞`?
    #[inline]
    pub const fn is_pos_inf(self) -> bool {
        self.0 == i64::MAX
    }

    /// Is this a finite (non-limit) time point?
    #[inline]
    pub const fn is_finite(self) -> bool {
        !self.is_neg_inf() && !self.is_pos_inf()
    }

    /// The discrete successor of this time point.
    ///
    /// The domain limits saturate: `succ(∞) = ∞` and, by convention,
    /// `succ(-∞) = -∞ + 1` (the smallest finite point). The successor is what
    /// the `<` equivalence of Theorem 1 uses in its `b + 1` cases.
    #[inline]
    pub const fn succ(self) -> Self {
        if self.is_pos_inf() {
            self
        } else {
            TimePoint(self.0 + 1)
        }
    }

    /// The discrete predecessor; saturates at the domain limits.
    #[inline]
    pub const fn pred(self) -> Self {
        if self.is_neg_inf() {
            self
        } else {
            TimePoint(self.0 - 1)
        }
    }

    /// `minF`: the standard minimum over fixed time points (Sec. IV).
    #[inline]
    pub fn min_f(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// `maxF`: the standard maximum over fixed time points (Sec. IV).
    #[inline]
    pub fn max_f(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamps this point into `[lo, hi]`; requires `lo <= hi`.
    #[inline]
    pub fn clamp_to(self, lo: Self, hi: Self) -> Self {
        debug_assert!(lo <= hi);
        self.max_f(lo).min_f(hi)
    }

    /// Saturating distance `other - self` in ticks. Distances touching a
    /// domain limit saturate to `i64::MAX`.
    pub fn distance_to(self, other: Self) -> i64 {
        if !self.is_finite() || !other.is_finite() {
            return i64::MAX;
        }
        other.0.saturating_sub(self.0)
    }
}

impl From<i64> for TimePoint {
    #[inline]
    fn from(ticks: i64) -> Self {
        TimePoint::new(ticks)
    }
}

impl fmt::Debug for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg_inf() {
            write!(f, "-inf")
        } else if self.is_pos_inf() {
            write!(f, "+inf")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// Convenience constructor used pervasively in tests and examples.
#[inline]
pub fn tp(ticks: i64) -> TimePoint {
    TimePoint::new(ticks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_order_around_finite_points() {
        assert!(TimePoint::NEG_INF < tp(0));
        assert!(tp(0) < TimePoint::POS_INF);
        assert!(TimePoint::NEG_INF < TimePoint::POS_INF);
        assert!(TimePoint::MIN_FINITE > TimePoint::NEG_INF);
        assert!(TimePoint::MAX_FINITE < TimePoint::POS_INF);
    }

    #[test]
    fn succ_and_pred_saturate_at_limits() {
        assert_eq!(TimePoint::POS_INF.succ(), TimePoint::POS_INF);
        assert_eq!(TimePoint::NEG_INF.pred(), TimePoint::NEG_INF);
        assert_eq!(TimePoint::NEG_INF.succ(), TimePoint::MIN_FINITE);
        assert_eq!(TimePoint::POS_INF.pred(), TimePoint::MAX_FINITE);
        assert_eq!(tp(5).succ(), tp(6));
        assert_eq!(tp(5).pred(), tp(4));
    }

    #[test]
    fn min_max_f_follow_standard_semantics() {
        assert_eq!(tp(3).min_f(tp(7)), tp(3));
        assert_eq!(tp(3).max_f(tp(7)), tp(7));
        assert_eq!(TimePoint::NEG_INF.min_f(tp(0)), TimePoint::NEG_INF);
        assert_eq!(TimePoint::POS_INF.max_f(tp(0)), TimePoint::POS_INF);
    }

    #[test]
    fn clamp_to_is_min_of_max() {
        assert_eq!(tp(5).clamp_to(tp(0), tp(3)), tp(3));
        assert_eq!(tp(-5).clamp_to(tp(0), tp(3)), tp(0));
        assert_eq!(tp(2).clamp_to(tp(0), tp(3)), tp(2));
    }

    #[test]
    fn finite_checks() {
        assert!(tp(0).is_finite());
        assert!(!TimePoint::NEG_INF.is_finite());
        assert!(!TimePoint::POS_INF.is_finite());
    }

    #[test]
    fn distance_saturates_at_limits() {
        assert_eq!(tp(3).distance_to(tp(10)), 7);
        assert_eq!(tp(10).distance_to(tp(3)), -7);
        assert_eq!(TimePoint::NEG_INF.distance_to(tp(0)), i64::MAX);
        assert_eq!(tp(0).distance_to(TimePoint::POS_INF), i64::MAX);
    }

    #[test]
    fn display_formats_limits() {
        assert_eq!(TimePoint::NEG_INF.to_string(), "-inf");
        assert_eq!(TimePoint::POS_INF.to_string(), "+inf");
        assert_eq!(tp(42).to_string(), "42");
    }
}
