//! Predicates and functions on ongoing time intervals (Table II).
//!
//! Each predicate is expressed through the six core operations, following
//! the equivalences of Table II. Because ongoing time intervals can be
//! *partially empty*, every predicate conjoins explicit non-emptiness checks
//! `ts < te` that are evaluated at each reference time — checking
//! non-emptiness once globally is not sufficient (Example 2 of the paper).
//!
//! The [`fixed`] submodule provides the corresponding predicates over fixed
//! intervals. They define the instantiated semantics the ongoing predicates
//! must match (`∀rt: ∥pred(i, j)∥rt = predF(∥i∥rt, ∥j∥rt)`), are used by
//! the Clifford/Torp baselines, and serve as the oracle in differential
//! tests.

use crate::boolean::OngoingBool;
use crate::interval::OngoingInterval;
use crate::ops;

/// The temporal predicates of Table II, as a value — used by query plans
/// and the benchmark harness to parameterize workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the predicate names themselves
pub enum TemporalPredicate {
    Before,
    Meets,
    Overlaps,
    Starts,
    Finishes,
    During,
    Equals,
}

impl TemporalPredicate {
    /// Applies the predicate to two ongoing intervals.
    pub fn eval(self, l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
        match self {
            TemporalPredicate::Before => before(l, r),
            TemporalPredicate::Meets => meets(l, r),
            TemporalPredicate::Overlaps => overlaps(l, r),
            TemporalPredicate::Starts => starts(l, r),
            TemporalPredicate::Finishes => finishes(l, r),
            TemporalPredicate::During => during(l, r),
            TemporalPredicate::Equals => equals(l, r),
        }
    }

    /// Applies the fixed counterpart to two instantiated intervals.
    pub fn eval_fixed(
        self,
        l: (crate::time::TimePoint, crate::time::TimePoint),
        r: (crate::time::TimePoint, crate::time::TimePoint),
    ) -> bool {
        match self {
            TemporalPredicate::Before => fixed::before(l, r),
            TemporalPredicate::Meets => fixed::meets(l, r),
            TemporalPredicate::Overlaps => fixed::overlaps(l, r),
            TemporalPredicate::Starts => fixed::starts(l, r),
            TemporalPredicate::Finishes => fixed::finishes(l, r),
            TemporalPredicate::During => fixed::during(l, r),
            TemporalPredicate::Equals => fixed::equals(l, r),
        }
    }

    /// All predicates, in Table II order.
    pub const ALL: [TemporalPredicate; 7] = [
        TemporalPredicate::Before,
        TemporalPredicate::Meets,
        TemporalPredicate::Overlaps,
        TemporalPredicate::Starts,
        TemporalPredicate::Finishes,
        TemporalPredicate::During,
        TemporalPredicate::Equals,
    ];

    /// Lower-case name as used in the paper ("before", "overlaps", ...).
    pub fn name(self) -> &'static str {
        match self {
            TemporalPredicate::Before => "before",
            TemporalPredicate::Meets => "meets",
            TemporalPredicate::Overlaps => "overlaps",
            TemporalPredicate::Starts => "starts",
            TemporalPredicate::Finishes => "finishes",
            TemporalPredicate::During => "during",
            TemporalPredicate::Equals => "equals",
        }
    }
}

/// The per-reference-time non-emptiness check `ts < te` of both intervals.
#[inline]
fn both_nonempty(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    ops::lt(l.ts(), l.te()).and(&ops::lt(r.ts(), r.te()))
}

/// `[ts, te) before [˜ts, ˜te) ≡ te ≤ ˜ts ∧ ts < te ∧ ˜ts < ˜te`.
pub fn before(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    ops::le(l.te(), r.ts()).and(&both_nonempty(l, r))
}

/// `[ts, te) meets [˜ts, ˜te) ≡ te = ˜ts ∧ ts < te ∧ ˜ts < ˜te`.
pub fn meets(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    ops::eq(l.te(), r.ts()).and(&both_nonempty(l, r))
}

/// `[ts, te) overlaps [˜ts, ˜te) ≡ ts < ˜te ∧ ˜ts < te ∧ ts < te ∧ ˜ts < ˜te`.
///
/// This is the symmetric "share at least one time point" overlap used in the
/// paper's experiments.
pub fn overlaps(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    ops::lt(l.ts(), r.te())
        .and(&ops::lt(r.ts(), l.te()))
        .and(&both_nonempty(l, r))
}

/// `[ts, te) starts [˜ts, ˜te) ≡ ts = ˜ts ∧ ts < te ∧ ˜ts < ˜te`.
pub fn starts(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    ops::eq(l.ts(), r.ts()).and(&both_nonempty(l, r))
}

/// `[ts, te) finishes [˜ts, ˜te) ≡ te = ˜te ∧ ts < te ∧ ˜ts < ˜te`.
pub fn finishes(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    ops::eq(l.te(), r.te()).and(&both_nonempty(l, r))
}

/// `during` per Table II: containment of a non-empty interval, or an empty
/// interval vacuously during a non-empty one:
/// `(˜ts ≤ ts ∧ te ≤ ˜te ∧ ts < te ∧ ˜ts < ˜te) ∨ (te ≤ ts ∧ ˜ts < ˜te)`.
pub fn during(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    let contained = ops::le(r.ts(), l.ts())
        .and(&ops::le(l.te(), r.te()))
        .and(&both_nonempty(l, r));
    let vacuous = ops::le(l.te(), l.ts()).and(&ops::lt(r.ts(), r.te()));
    contained.or(&vacuous)
}

/// `equals` per Table II: endpoint equality of non-empty intervals, or both
/// empty:
/// `(ts = ˜ts ∧ te = ˜te ∧ ts < te ∧ ˜ts < ˜te) ∨ (te ≤ ts ∧ ˜te ≤ ˜ts)`.
pub fn equals(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    let same = ops::eq(l.ts(), r.ts())
        .and(&ops::eq(l.te(), r.te()))
        .and(&both_nonempty(l, r));
    let both_empty = ops::le(l.te(), l.ts()).and(&ops::le(r.te(), r.ts()));
    same.or(&both_empty)
}

/// `∩`: interval intersection (re-exported from
/// [`OngoingInterval::intersect`] for symmetry with Table II).
pub fn intersection(l: OngoingInterval, r: OngoingInterval) -> OngoingInterval {
    l.intersect(r)
}

// ----------------------------------------------------------------------
// Inverse predicates. Table II lists the canonical seven; their Allen
// inverses are argument swaps and inherit the per-reference-time
// non-emptiness semantics.
// ----------------------------------------------------------------------

/// `l after r ≡ r before l`.
pub fn after(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    before(r, l)
}

/// `l met_by r ≡ r meets l`.
pub fn met_by(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    meets(r, l)
}

/// `l overlapped_by r ≡ r overlaps l` (the symmetric overlap makes this an
/// alias; kept for Allen-algebra completeness).
pub fn overlapped_by(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    overlaps(r, l)
}

/// `l started_by r ≡ r starts l`.
pub fn started_by(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    starts(r, l)
}

/// `l finished_by r ≡ r finishes l`.
pub fn finished_by(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    finishes(r, l)
}

/// `l contains r ≡ r during l`.
pub fn contains(l: OngoingInterval, r: OngoingInterval) -> OngoingBool {
    during(r, l)
}

/// The same predicates over *fixed* intervals `(ts, te)` — the semantics
/// that instantiation must reproduce at every reference time.
#[allow(missing_docs)] // mirrors of the documented ongoing predicates
pub mod fixed {
    use crate::time::TimePoint;

    type Iv = (TimePoint, TimePoint);

    #[inline]
    fn nonempty(i: Iv) -> bool {
        i.0 < i.1
    }

    pub fn before(l: Iv, r: Iv) -> bool {
        l.1 <= r.0 && nonempty(l) && nonempty(r)
    }

    pub fn meets(l: Iv, r: Iv) -> bool {
        l.1 == r.0 && nonempty(l) && nonempty(r)
    }

    pub fn overlaps(l: Iv, r: Iv) -> bool {
        l.0 < r.1 && r.0 < l.1 && nonempty(l) && nonempty(r)
    }

    pub fn starts(l: Iv, r: Iv) -> bool {
        l.0 == r.0 && nonempty(l) && nonempty(r)
    }

    pub fn finishes(l: Iv, r: Iv) -> bool {
        l.1 == r.1 && nonempty(l) && nonempty(r)
    }

    pub fn during(l: Iv, r: Iv) -> bool {
        (r.0 <= l.0 && l.1 <= r.1 && nonempty(l) && nonempty(r)) || (!nonempty(l) && nonempty(r))
    }

    pub fn equals(l: Iv, r: Iv) -> bool {
        (l.0 == r.0 && l.1 == r.1 && nonempty(l) && nonempty(r)) || (!nonempty(l) && !nonempty(r))
    }

    pub fn intersection(l: Iv, r: Iv) -> Iv {
        (l.0.max_f(r.0), l.1.min_f(r.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::md;
    use crate::point::OngoingPoint;
    use crate::set::IntervalSet;
    use crate::time::{tp, TimePoint};

    fn expanding(a: i64) -> OngoingInterval {
        OngoingInterval::from_until_now(tp(a))
    }

    fn fixed_iv(a: i64, b: i64) -> OngoingInterval {
        OngoingInterval::fixed(tp(a), tp(b))
    }

    /// Differential check: the ongoing predicate instantiates to the fixed
    /// predicate at every reference time of a window.
    fn check(pred: TemporalPredicate, l: OngoingInterval, r: OngoingInterval) {
        let ob = pred.eval(l, r);
        for rt in -8i64..20 {
            let rt = tp(rt);
            assert_eq!(
                ob.bind(rt),
                pred.eval_fixed(l.bind(rt), r.bind(rt)),
                "{} {} {} at rt={rt}",
                l,
                pred.name(),
                r,
            );
        }
    }

    #[test]
    fn all_predicates_pointwise_on_interval_mix() {
        let samples = [
            fixed_iv(0, 5),
            fixed_iv(5, 9),
            fixed_iv(9, 3), // always empty
            expanding(2),
            expanding(7),
            OngoingInterval::from_now_until(tp(6)),
            OngoingInterval::new(
                OngoingPoint::new(tp(1), tp(4)).unwrap(),
                OngoingPoint::new(tp(6), tp(11)).unwrap(),
            ),
            OngoingInterval::new(OngoingPoint::growing(tp(3)), OngoingPoint::fixed(tp(8))),
            OngoingInterval::new(OngoingPoint::limited(tp(2)), OngoingPoint::fixed(tp(8))),
        ];
        for pred in TemporalPredicate::ALL {
            for &l in &samples {
                for &r in &samples {
                    check(pred, l, r);
                }
            }
        }
    }

    #[test]
    fn table_ii_before_example() {
        // [10/17, now) before [10/20, 10/25) = b[{[10/18, 10/21)}, ...]
        let b = before(
            OngoingInterval::from_until_now(md(10, 17)),
            OngoingInterval::fixed(md(10, 20), md(10, 25)),
        );
        assert_eq!(b.true_set(), &IntervalSet::range(md(10, 18), md(10, 21)));
    }

    #[test]
    fn table_ii_meets_example() {
        // [10/17, now) meets [10/20, 10/25) = b[{[10/20, 10/21)}, ...]
        let b = meets(
            OngoingInterval::from_until_now(md(10, 17)),
            OngoingInterval::fixed(md(10, 20), md(10, 25)),
        );
        assert_eq!(b.true_set(), &IntervalSet::range(md(10, 20), md(10, 21)));
    }

    #[test]
    fn table_ii_overlaps_example() {
        // [10/17, now) overlaps [10/14, 10/20) = b[{[10/18, ∞)}, ...]
        let b = overlaps(
            OngoingInterval::from_until_now(md(10, 17)),
            OngoingInterval::fixed(md(10, 14), md(10, 20)),
        );
        assert_eq!(
            b.true_set(),
            &IntervalSet::range(md(10, 18), TimePoint::POS_INF)
        );
    }

    #[test]
    fn table_ii_starts_example() {
        // [10/17, now) starts [10/17, 10/20) = b[{[10/18, ∞)}, ...]
        let b = starts(
            OngoingInterval::from_until_now(md(10, 17)),
            OngoingInterval::fixed(md(10, 17), md(10, 20)),
        );
        assert_eq!(
            b.true_set(),
            &IntervalSet::range(md(10, 18), TimePoint::POS_INF)
        );
    }

    #[test]
    fn table_ii_finishes_example() {
        // [10/17, now) finishes [10/20, 10/25) = b[{[10/25, 10/26)}, ...]
        let b = finishes(
            OngoingInterval::from_until_now(md(10, 17)),
            OngoingInterval::fixed(md(10, 20), md(10, 25)),
        );
        assert_eq!(b.true_set(), &IntervalSet::range(md(10, 25), md(10, 26)));
    }

    #[test]
    fn table_ii_during_example() {
        // [10/20, 10/25) during [10/17, now) = b[{[10/25, ∞)}, ...]
        let b = during(
            OngoingInterval::fixed(md(10, 20), md(10, 25)),
            OngoingInterval::from_until_now(md(10, 17)),
        );
        assert_eq!(
            b.true_set(),
            &IntervalSet::range(md(10, 25), TimePoint::POS_INF)
        );
    }

    #[test]
    fn table_ii_equals_example() {
        // [10/17, now) equals [10/17, 10/20) = b[{[10/20, 10/21)}, ...]
        let b = equals(
            OngoingInterval::from_until_now(md(10, 17)),
            OngoingInterval::fixed(md(10, 17), md(10, 20)),
        );
        assert_eq!(b.true_set(), &IntervalSet::range(md(10, 20), md(10, 21)));
    }

    #[test]
    fn example_2_nonempty_check_matters() {
        // At rt 10/16, [10/17, now) is empty -> overlaps must be false even
        // though the raw overlap condition would hold.
        let l = OngoingInterval::from_until_now(md(10, 17));
        let r = OngoingInterval::fixed(md(10, 14), md(10, 20));
        let b = overlaps(l, r);
        assert!(!b.bind(md(10, 16)));
        assert!(b.bind(md(10, 18)));
    }

    #[test]
    fn running_example_join_predicate() {
        // Sec. II: b1.VT before p1.VT with b1.VT = [01/25, now) and
        // p1.VT = [08/15, 08/24) is true exactly on [01/26, 08/16).
        let b1 = OngoingInterval::from_until_now(md(1, 25));
        let p1 = OngoingInterval::fixed(md(8, 15), md(8, 24));
        let b = before(b1, p1);
        assert_eq!(b.true_set(), &IntervalSet::range(md(1, 26), md(8, 16)));
        // The paper's spot checks: true at 08/14 and 08/15, false at 08/16.
        assert!(b.bind(md(8, 14)));
        assert!(b.bind(md(8, 15)));
        assert!(!b.bind(md(8, 16)));
    }

    #[test]
    fn inverse_predicates_swap_arguments() {
        let l = OngoingInterval::from_until_now(tp(2));
        let r = fixed_iv(5, 9);
        assert_eq!(after(l, r), before(r, l));
        assert_eq!(met_by(l, r), meets(r, l));
        assert_eq!(overlapped_by(l, r), overlaps(r, l));
        assert_eq!(started_by(l, r), starts(r, l));
        assert_eq!(finished_by(l, r), finishes(r, l));
        assert_eq!(contains(l, r), during(r, l));
        // Pointwise sanity for `after` (the most used inverse).
        let b = after(fixed_iv(10, 12), fixed_iv(0, 5));
        assert!(b.is_always_true());
    }

    #[test]
    fn rt_cardinality_table_iv_spot_checks() {
        // Table IV: for expanding/shrinking inputs every predicate needs at
        // most one range; overlaps on expanding + shrinking needs two.
        let exp = expanding(3);
        let shr = OngoingInterval::from_now_until(tp(12));
        for pred in TemporalPredicate::ALL {
            assert!(pred.eval(exp, fixed_iv(5, 9)).true_set().cardinality() <= 1);
            assert!(pred.eval(shr, fixed_iv(5, 9)).true_set().cardinality() <= 1);
        }
        assert!(overlaps(exp, shr).true_set().cardinality() <= 2);
    }
}
